#!/usr/bin/env python3
"""Concurrency lint for the mmjoin tree (AST-free, stdlib-only).

Enforces repo invariants that neither the compiler nor clang-tidy check:

  atomic-order       Every std::atomic load/store/RMW (including operator
                     sugar like ++/+=/plain assignment on a declared atomic)
                     names an explicit std::memory_order. Seq-cst-by-default
                     hides the author's intent and costs fences on ARM; the
                     paper's CAS-built tables and counters are hot paths.
  raw-thread         No raw std::thread outside src/thread/. All parallelism
                     goes through the persistent Executor (PR 1); a stray
                     std::thread reintroduces per-call spawning.
                     (std::thread::hardware_concurrency() is allowed.)
  join-loop-alloc    No new/malloc/calloc/realloc inside loop bodies in
                     src/join/ -- join-phase allocations go through mem/ and
                     numa/ before the timed region starts.
  nondeterminism     No std::rand/srand/random/drand48 and no
                     std::chrono::system_clock in src/ (util/rng.h and the
                     steady-clock util/timer.h are the sanctioned sources);
                     wall-clock reads and libc rand in timed regions make
                     runs unreproducible.
  padded-assert      Every struct declared alignas(kCacheLineSize) must have
                     a static_assert naming it in the same file, so padding
                     claims are machine-checked instead of hand-counted.
  deque-guard        Every std::deque declaration in src/ carries an
                     MMJOIN_GUARDED_BY annotation in the same statement. The
                     work-stealing shards are mutex-protected deques; a bare
                     deque next to them is almost certainly a data race the
                     thread-safety analysis cannot see.
  bare-escape        MMJOIN_NO_THREAD_SAFETY_ANALYSIS must carry an
                     explanatory comment on the preceding or same line.
  exec-guard         Container-typed members in src/exec/ must either be
                     MMJOIN_GUARDED_BY-annotated or carry an ownership
                     comment (single-owner / per-thread / read-only) on the
                     same or one of the two preceding lines. Pipeline
                     operators are called concurrently with distinct tids
                     and hold no locks; every member must say which
                     discipline makes that safe.
  budget-guard       Integral members in src/mem/budget* must be std::atomic,
                     const, MMJOIN_GUARDED_BY-annotated, or carry an
                     ownership comment (single-owner / per-thread /
                     read-only) on the same or one of the two preceding
                     lines. BudgetTracker is shared by every worker of a
                     join: a plain mutable counter there is a lost-update
                     bug the admission CAS cannot compensate for.

Findings print as file:line: [rule] message. Exit code 1 when any finding is
not covered by the allowlist (scripts/concurrency_allowlist.txt), 0 otherwise.

Allowlist format: one entry per line,
    <path>:<rule>:<substring>
where <path> is repo-relative, <rule> is a rule id (or '*'), and <substring>
must appear in the offending source line. '#' starts a comment. Run with
--fix-allowlist to rewrite the allowlist from current findings (bootstrap
mode for newly-adopted rules; entries should then be pruned, not grown).
"""

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_ALLOWLIST = REPO_ROOT / "scripts" / "concurrency_allowlist.txt"

SOURCE_SUFFIXES = (".cc", ".h")

ATOMIC_CALL_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_strong|compare_exchange_weak|wait|test_and_set|"
    r"clear)\s*\("
)
ATOMIC_DECL_RE = re.compile(r"std\s*::\s*atomic\s*<[^<>]*(?:<[^<>]*>)?[^<>]*>\s+(\w+)")
RAW_THREAD_RE = re.compile(r"std\s*::\s*thread\b")
HW_CONCURRENCY_RE = re.compile(r"std\s*::\s*thread\s*::\s*hardware_concurrency")
ALLOC_RE = re.compile(r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(")
RAND_RE = re.compile(r"(?:std\s*::\s*)?\b(rand|srand|random|srandom|drand48)\s*\(")
SYSTEM_CLOCK_RE = re.compile(r"std\s*::\s*chrono\s*::\s*system_clock")
PADDED_STRUCT_RE = re.compile(r"struct\s+alignas\(kCacheLineSize\)\s+(\w+)")
DEQUE_DECL_RE = re.compile(r"std\s*::\s*deque\s*<")
ESCAPE_RE = re.compile(r"MMJOIN_NO_THREAD_SAFETY_ANALYSIS")
EXEC_CONTAINER_RE = re.compile(
    r"std\s*::\s*(?:vector|deque|unordered_map|unordered_set|map|set|"
    r"array)\s*<"
)
# Member declarations follow the trailing-underscore convention; locals,
# parameters, and return types never match.
EXEC_MEMBER_RE = re.compile(r"[>*&]\s*(\w+_)\s*(?:;|=|\{|MMJOIN_GUARDED_BY)")
EXEC_OWNERSHIP_WORDS = ("single-owner", "per-thread", "read-only")
# Trailing-underscore integral members; `std::atomic<uint64_t> x_` cannot
# match because '>' (not whitespace) follows the integral type name.
BUDGET_MEMBER_RE = re.compile(
    r"\b(?:uint64_t|uint32_t|int64_t|int32_t|std\s*::\s*size_t|size_t)"
    r"\s+(\w+_)\s*(?:;|=|\{)"
)
LOOP_HEAD_RE = re.compile(r"\b(for|while)\s*\(")
DO_RE = re.compile(r"\bdo\s*\{")


class Finding:
    def __init__(self, path, line, rule, message, source_line):
        self.path = path  # repo-relative posix string
        self.line = line
        self.rule = rule
        self.message = message
        self.source_line = source_line

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments, string and char literals, preserving offsets and
    newlines so line numbers survive."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def source_line(raw_lines, lineno):
    if 1 <= lineno <= len(raw_lines):
        return raw_lines[lineno - 1].strip()
    return ""


def matching_paren_end(text, open_paren):
    depth = 0
    i = open_paren
    n = len(text)
    while i < n:
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n - 1


def check_atomic_order(path, text, raw_lines, findings):
    # Explicit-call form: .load(...), .fetch_add(...), ...
    for m in ATOMIC_CALL_RE.finditer(text):
        open_paren = text.index("(", m.end() - 1)
        end = matching_paren_end(text, open_paren)
        call = text[m.start() : end + 1]
        # Heuristic gate: only flag when the object plausibly is an atomic --
        # we cannot type-check, so require the method name to be one only
        # atomics have, or 'load'/'store'/'exchange'/'wait'/'clear' with a
        # memory_order-shaped signature. To stay low-noise we only *require*
        # the order on the unambiguous RMW/load/store names below.
        method = m.group(1)
        if method in ("wait", "test_and_set", "clear"):
            continue  # too many non-atomic APIs share these names
        if "memory_order" not in call:
            lineno = line_of(text, m.start())
            findings.append(
                Finding(
                    path,
                    lineno,
                    "atomic-order",
                    f"atomic .{method}() without an explicit std::memory_order",
                    source_line(raw_lines, lineno),
                )
            )
    # Operator sugar on variables declared std::atomic in this file:
    # ++x / x++ / x += / x -= / x |= / x &= / x ^= / x = value
    # Only BARE identifier uses are checked (not `obj.name` / `p->name`):
    # without types we cannot tell an atomic member from a plain struct field
    # that happens to share its name. Members of the declaring class are used
    # bare inside its member functions, which is the case that matters here;
    # clang-tidy's concurrency checks complement this in CI.
    names = set(ATOMIC_DECL_RE.findall(text))
    for name in names:
        sugar = re.compile(
            r"(?:\+\+|--)\s*" + re.escape(name) + r"\b(?!\s*[.\[])"
            r"|(?<![\w.>])" + re.escape(name) +
            r"\s*(?:\+\+|--|\+=|-=|\|=|&=|\^=|=(?![=]))"
        )
        for m in sugar.finditer(text):
            # Skip declarations/initializations: 'std::atomic<T> name = ...',
            # 'uint64_t name = 0;' (same-named plain local), and references/
            # pointers ('auto& name = ...').
            prefix = text[max(0, m.start() - 120) : m.start()]
            last_line = prefix.rsplit("\n", 1)[-1].rstrip()
            if ("atomic" in last_line or
                    last_line.endswith((">", "&", "*")) or
                    (last_line and last_line[-1].isalnum() or
                     last_line.endswith("_"))):
                continue
            lineno = line_of(text, m.start())
            findings.append(
                Finding(
                    path,
                    lineno,
                    "atomic-order",
                    f"operator on std::atomic '{name}' uses implicit seq_cst; "
                    "use .load/.store/.fetch_* with an explicit order",
                    source_line(raw_lines, lineno),
                )
            )


def check_raw_thread(path, text, raw_lines, findings):
    if path.startswith("src/thread/"):
        return
    for m in RAW_THREAD_RE.finditer(text):
        if HW_CONCURRENCY_RE.match(text, m.start()):
            continue
        lineno = line_of(text, m.start())
        findings.append(
            Finding(
                path,
                lineno,
                "raw-thread",
                "raw std::thread outside src/thread/; use thread::Executor",
                source_line(raw_lines, lineno),
            )
        )


def loop_body_spans(text):
    """Yields (start, end) offsets of the brace-delimited bodies of
    for/while/do loops. Braceless single-statement loops are ignored (they
    cannot hide much) -- this is a lint, not a parser."""
    spans = []
    for m in LOOP_HEAD_RE.finditer(text):
        open_paren = text.index("(", m.end() - 1)
        close_paren = matching_paren_end(text, open_paren)
        # Find the first non-space char after the loop head.
        i = close_paren + 1
        while i < len(text) and text[i] in " \t\n":
            i += 1
        if i < len(text) and text[i] == "{":
            depth = 0
            j = i
            while j < len(text):
                if text[j] == "{":
                    depth += 1
                elif text[j] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            spans.append((i, j))
    for m in DO_RE.finditer(text):
        i = text.index("{", m.start())
        depth = 0
        j = i
        while j < len(text):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        spans.append((i, j))
    return spans


def check_join_loop_alloc(path, text, raw_lines, findings):
    if not path.startswith("src/join/"):
        return
    spans = loop_body_spans(text)
    if not spans:
        return
    for m in ALLOC_RE.finditer(text):
        pos = m.start()
        if not any(start <= pos <= end for start, end in spans):
            continue
        # 'new' in comments/strings is already stripped; skip placement-new
        # false positives like 'new (ptr) T' is still an allocation decision
        # we want reviewed, so no exception.
        lineno = line_of(text, pos)
        findings.append(
            Finding(
                path,
                lineno,
                "join-loop-alloc",
                "heap allocation inside a join-phase loop; hoist it and "
                "allocate through mem/ or numa/ before the timed region",
                source_line(raw_lines, lineno),
            )
        )


def check_nondeterminism(path, text, raw_lines, findings):
    if path.startswith("src/util/rng"):
        return
    for m in RAND_RE.finditer(text):
        lineno = line_of(text, m.start())
        findings.append(
            Finding(
                path,
                lineno,
                "nondeterminism",
                f"libc '{m.group(1)}' in src/; use util/rng.h (seeded, "
                "reproducible)",
                source_line(raw_lines, lineno),
            )
        )
    for m in SYSTEM_CLOCK_RE.finditer(text):
        lineno = line_of(text, m.start())
        findings.append(
            Finding(
                path,
                lineno,
                "nondeterminism",
                "std::chrono::system_clock in src/; timed regions use the "
                "monotonic NowNanos() from util/timer.h",
                source_line(raw_lines, lineno),
            )
        )


def check_padded_assert(path, text, raw_lines, findings):
    for m in PADDED_STRUCT_RE.finditer(text):
        name = m.group(1)
        assert_re = re.compile(
            r"static_assert\s*\([^;]*\b" + re.escape(name) + r"\b", re.DOTALL
        )
        if not assert_re.search(text):
            lineno = line_of(text, m.start())
            findings.append(
                Finding(
                    path,
                    lineno,
                    "padded-assert",
                    f"struct '{name}' is alignas(kCacheLineSize) but has no "
                    "static_assert checking its size/alignment",
                    source_line(raw_lines, lineno),
                )
            )


def check_deque_guard(path, text, raw_lines, findings):
    if not path.startswith("src/"):
        return
    for m in DEQUE_DECL_RE.finditer(text):
        # The declaration statement runs to the next ';'; the annotation
        # must sit inside it (e.g. 'std::deque<T> q MMJOIN_GUARDED_BY(mu);').
        end = text.find(";", m.start())
        stmt = text[m.start() : end if end != -1 else len(text)]
        if "MMJOIN_GUARDED_BY" in stmt:
            continue
        lineno = line_of(text, m.start())
        findings.append(
            Finding(
                path,
                lineno,
                "deque-guard",
                "std::deque without MMJOIN_GUARDED_BY; annotate which mutex "
                "protects it (work-stealing shards are the template)",
                source_line(raw_lines, lineno),
            )
        )


def check_exec_guard(path, text, raw_lines, findings):
    if not path.startswith("src/exec/"):
        return
    for m in EXEC_CONTAINER_RE.finditer(text):
        lineno = line_of(text, m.start())
        line_end = text.find("\n", m.start())
        decl = text[m.start() : line_end if line_end != -1 else len(text)]
        member = EXEC_MEMBER_RE.search(decl)
        if not member:
            continue  # local, parameter, or return type -- not member state
        if "MMJOIN_GUARDED_BY" in decl:
            continue
        window = " ".join(
            source_line(raw_lines, l)
            for l in (lineno - 2, lineno - 1, lineno)
        )
        if any(word in window for word in EXEC_OWNERSHIP_WORDS):
            continue
        findings.append(
            Finding(
                path,
                lineno,
                "exec-guard",
                f"container member '{member.group(1)}' in src/exec/ without "
                "MMJOIN_GUARDED_BY or an ownership comment "
                "(single-owner / per-thread / read-only)",
                source_line(raw_lines, lineno),
            )
        )


def check_budget_guard(path, text, raw_lines, findings):
    if not path.startswith("src/mem/budget"):
        return
    for m in BUDGET_MEMBER_RE.finditer(text):
        lineno = line_of(text, m.start())
        line_start = text.rfind("\n", 0, m.start()) + 1
        line_end = text.find("\n", m.start())
        decl = text[line_start : line_end if line_end != -1 else len(text)]
        if "const" in decl or "MMJOIN_GUARDED_BY" in decl:
            continue
        window = " ".join(
            source_line(raw_lines, l)
            for l in (lineno - 2, lineno - 1, lineno)
        )
        if any(word in window for word in EXEC_OWNERSHIP_WORDS):
            continue
        findings.append(
            Finding(
                path,
                lineno,
                "budget-guard",
                f"integral member '{m.group(1)}' in src/mem/budget* is "
                "neither std::atomic, const, MMJOIN_GUARDED_BY-annotated, "
                "nor ownership-commented (single-owner / per-thread / "
                "read-only); shared budget counters race",
                source_line(raw_lines, lineno),
            )
        )


def check_bare_escape(path, raw_text, raw_lines, findings):
    # Runs over the RAW text (comments matter here).
    for m in ESCAPE_RE.finditer(raw_text):
        lineno = line_of(raw_text, m.start())
        if path.endswith("util/annotations.h"):
            continue  # the definition site
        this_line = source_line(raw_lines, lineno)
        prev_line = source_line(raw_lines, lineno - 1)
        if "//" in this_line.split("MMJOIN_NO_THREAD_SAFETY_ANALYSIS")[-1] or \
           prev_line.startswith("//"):
            continue
        findings.append(
            Finding(
                path,
                lineno,
                "bare-escape",
                "MMJOIN_NO_THREAD_SAFETY_ANALYSIS without an explanatory "
                "comment on the same or preceding line",
                this_line,
            )
        )


def lint_file(abs_path):
    try:
        rel = abs_path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        # Outside the repo (self-tests, ad-hoc runs): path rules key off the
        # 'src/...' suffix, so recover it if present.
        s = abs_path.as_posix()
        rel = "src/" + s.split("/src/", 1)[1] if "/src/" in s else s
    raw = abs_path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    text = strip_comments_and_strings(raw)
    findings = []
    check_atomic_order(rel, text, raw_lines, findings)
    check_raw_thread(rel, text, raw_lines, findings)
    check_join_loop_alloc(rel, text, raw_lines, findings)
    check_nondeterminism(rel, text, raw_lines, findings)
    check_padded_assert(rel, text, raw_lines, findings)
    check_deque_guard(rel, text, raw_lines, findings)
    check_exec_guard(rel, text, raw_lines, findings)
    check_budget_guard(rel, text, raw_lines, findings)
    check_bare_escape(rel, raw, raw_lines, findings)
    return findings


def load_allowlist(path):
    entries = []
    if not path.exists():
        return entries
    for raw_line in path.read_text().splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(":", 2)
        if len(parts) != 3:
            print(f"warning: malformed allowlist entry ignored: {line}",
                  file=sys.stderr)
            continue
        entries.append(tuple(parts))
    return entries


def allowed(finding, entries):
    for path, rule, substring in entries:
        if path != finding.path:
            continue
        if rule != "*" and rule != finding.rule:
            continue
        if substring and substring not in finding.source_line:
            continue
        return True
    return False


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("roots", nargs="*", default=[],
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--allowlist", type=pathlib.Path,
                        default=DEFAULT_ALLOWLIST)
    parser.add_argument("--fix-allowlist", action="store_true",
                        help="rewrite the allowlist from current findings")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args()

    roots = [pathlib.Path(r) for r in args.roots] or [REPO_ROOT / "src"]
    files = []
    for root in roots:
        root = root if root.is_absolute() else REPO_ROOT / root
        if root.is_file():
            files.append(root)
        else:
            files.extend(p for p in sorted(root.rglob("*"))
                         if p.suffix in SOURCE_SUFFIXES)

    findings = []
    for f in files:
        findings.extend(lint_file(f))

    if args.fix_allowlist:
        with open(args.allowlist, "w") as out:
            out.write("# Concurrency-lint allowlist. Format: path:rule:substring\n")
            out.write("# Every entry needs a justification comment. Prune, do"
                      " not grow.\n")
            for finding in findings:
                out.write(f"# TODO: justify\n{finding.path}:{finding.rule}:"
                          f"{finding.source_line[:60]}\n")
        print(f"wrote {len(findings)} entries to {args.allowlist}")
        return 0

    entries = load_allowlist(args.allowlist)
    hard = [f for f in findings if not allowed(f, entries)]
    for finding in hard:
        print(finding)
    if not args.quiet:
        suppressed = len(findings) - len(hard)
        print(f"lint_concurrency: {len(hard)} finding(s), "
              f"{suppressed} allowlisted, {len(files)} file(s) checked",
              file=sys.stderr)
    return 1 if hard else 0


if __name__ == "__main__":
    sys.exit(main())
