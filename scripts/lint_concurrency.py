#!/usr/bin/env python3
"""DEPRECATED entry point: the concurrency lint moved into scripts/mmjoin_lint.

The nine original rules (atomic-order, raw-thread, join-loop-alloc,
nondeterminism, padded-assert, deque-guard, exec-guard, budget-guard,
bare-escape) live on unchanged in scripts/mmjoin_lint/rules_concurrency.py,
alongside the newer rule families (layer-dag, status-*, registry-drift,
barrier-protocol). This wrapper keeps the old command working with the old
exit-code contract (0 clean, 1 findings) by delegating to those nine rules
only. New callers should run:

    python3 scripts/mmjoin_lint --all

Allowlisting moved from scripts/concurrency_allowlist.txt
(path:rule:substring) to scripts/allowlists/<rule-id>.txt (path:substring);
the old file is still read through a deprecation shim that maps entries and
reports stale ones.
"""

import pathlib
import subprocess
import sys

CONCURRENCY_RULES = [
    "atomic-order",
    "raw-thread",
    "join-loop-alloc",
    "nondeterminism",
    "padded-assert",
    "deque-guard",
    "exec-guard",
    "budget-guard",
    "bare-escape",
]


def main(argv):
    sys.stderr.write(
        "note: scripts/lint_concurrency.py is deprecated and now delegates "
        "to scripts/mmjoin_lint (concurrency rules only); run `python3 "
        "scripts/mmjoin_lint --all` for the full rule set.\n")
    if "--fix-allowlist" in argv:
        sys.stderr.write(
            "error: --fix-allowlist is gone; add justified entries to "
            "scripts/allowlists/<rule-id>.txt by hand instead.\n")
        return 2
    ignored = [a for a in argv if not a.startswith("-")]
    if ignored:
        sys.stderr.write(
            f"note: subtree arguments {ignored} are ignored; mmjoin_lint "
            "always scans all of src/.\n")
    cmd = [sys.executable,
           str(pathlib.Path(__file__).resolve().parent / "mmjoin_lint"),
           "--quiet"]
    for rule in CONCURRENCY_RULES:
        cmd += ["--rule", rule]
    return subprocess.call(cmd)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
