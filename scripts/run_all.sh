#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every paper
# figure/table reproduction. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Use Ninja when available, otherwise the default generator -- the same
# build tree the tier-1 verify line in ROADMAP.md configures. If an existing
# build/ was configured with a different generator, reconfigure from scratch.
GENERATOR_ARGS=()
if command -v ninja > /dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
  grep -q 'CMAKE_GENERATOR:INTERNAL=Ninja' build/CMakeCache.txt 2> /dev/null \
    || rm -rf build
elif [ -f build/CMakeCache.txt ] \
    && grep -q 'CMAKE_GENERATOR:INTERNAL=Ninja' build/CMakeCache.txt; then
  rm -rf build
fi

cmake -B build -S . ${GENERATOR_ARGS[@]+"${GENERATOR_ARGS[@]}"}
cmake --build build -j "$(nproc)"

ctest --test-dir build 2>&1 | tee test_output.txt

# Each harness gets BENCH_TIMEOUT seconds (default 900); the sweep stops at
# the first harness that fails or hangs, with a diagnostic naming it, so a
# broken bench cannot scroll by unnoticed in bench_output.txt. Every harness
# also writes its machine-readable results (mmjoin.bench.v1 JSON Lines, see
# docs/OBSERVABILITY.md) to BENCH_<name>.json at the repository root, and
# each file is schema-validated before the sweep moves on.
BENCH_TIMEOUT="${BENCH_TIMEOUT:-900}"
(for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name="$(basename "$b")"
  json="BENCH_${name#bench_}.json"
  echo "######## $b ########"
  rc=0
  rm -f "$json"
  MMJOIN_BENCH_JSON="$json" timeout "$BENCH_TIMEOUT" "$b" || rc=$?
  if [ "$rc" -eq 124 ]; then
    echo "FAILED: $b exceeded ${BENCH_TIMEOUT}s timeout" >&2
    exit 1
  elif [ "$rc" -ne 0 ]; then
    echo "FAILED: $b exited with status $rc" >&2
    exit 1
  fi
  # The mmjoin.bench.v1 sink is opened by PrintBanner; google-benchmark
  # micro harnesses never open it and legitimately write no file.
  if [ -f "$json" ]; then
    if ! python3 scripts/check_metrics.py --kind=bench "$json"; then
      echo "FAILED: $b wrote an invalid $json" >&2
      exit 1
    fi
  else
    echo "note: $b wrote no $json (no bench JSON sink); skipping validation"
  fi
  echo
done) 2>&1 | tee bench_output.txt

# Dedicated skew sweep at the scheduler-acceptance geometry (|R| = 1M,
# |S| = 10 x |R|, 8 threads): the theta sweep up to 1.25 exercises the
# sharded work-stealing queue and the shared skew build slots, and the
# results land in BENCH_skew.json separately from the full-size
# BENCH_fig15_skew.json so skew regressions diff against a stable baseline.
(echo "######## skew sweep (BENCH_skew.json) ########"
rc=0
MMJOIN_BENCH_JSON="BENCH_skew.json" timeout "$BENCH_TIMEOUT" \
  build/bench/bench_fig15_skew --build=$((1 << 20)) --threads=8 || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAILED: skew sweep exited with status $rc" >&2
  exit 1
fi
if ! python3 scripts/check_metrics.py --kind=bench BENCH_skew.json; then
  echo "FAILED: skew sweep wrote an invalid BENCH_skew.json" >&2
  exit 1
fi) 2>&1 | tee -a bench_output.txt

# Dedicated chunk-compaction sweep (selectivity x density threshold) at a
# CI-friendly geometry. The full-size run above writes
# BENCH_exec_compaction.json; this one lands in BENCH_exec.json so the
# compaction acceptance numbers (EXPERIMENTS.md) diff against a stable
# small-geometry baseline.
(echo "######## exec compaction sweep (BENCH_exec.json) ########"
rc=0
MMJOIN_BENCH_JSON="BENCH_exec.json" timeout "$BENCH_TIMEOUT" \
  build/bench/bench_exec_compaction --build=$((1 << 19)) \
  --probe=$((1 << 21)) --threads=8 --repeat=1 || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAILED: exec compaction sweep exited with status $rc" >&2
  exit 1
fi
if ! python3 scripts/check_metrics.py --kind=bench BENCH_exec.json; then
  echo "FAILED: exec compaction sweep wrote an invalid BENCH_exec.json" >&2
  exit 1
fi) 2>&1 | tee -a bench_output.txt

# Dedicated memory-budget degradation sweep at a pinned CI-friendly
# geometry (the harness itself covers two scales and three budget
# fractions per algorithm). Overwrites the default-geometry BENCH_budget.json
# from the generic loop above so budget-ladder regressions diff against a
# stable baseline.
(echo "######## memory budget sweep (BENCH_budget.json) ########"
rc=0
MMJOIN_BENCH_JSON="BENCH_budget.json" timeout "$BENCH_TIMEOUT" \
  build/bench/bench_budget --build=$((1 << 19)) --probe=$((1 << 21)) \
  --threads=8 --repeat=1 || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAILED: memory budget sweep exited with status $rc" >&2
  exit 1
fi
if ! python3 scripts/check_metrics.py --kind=bench BENCH_budget.json; then
  echo "FAILED: memory budget sweep wrote an invalid BENCH_budget.json" >&2
  exit 1
fi) 2>&1 | tee -a bench_output.txt

# Multi-tenant service sweep: jobs/sec and p95 latency for a mixed
# small/large + Zipf job burst, one lane vs. concurrent lanes. The
# peak_running field in each record is the witness that joins really
# overlapped.
(echo "######## join service sweep (BENCH_service.json) ########"
rc=0
MMJOIN_BENCH_JSON="BENCH_service.json" timeout "$BENCH_TIMEOUT" \
  build/bench/bench_service --build=$((1 << 18)) --probe=$((1 << 20)) \
  --threads=4 --lanes=2 --jobs=16 --repeat=1 || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAILED: join service sweep exited with status $rc" >&2
  exit 1
fi
if ! python3 scripts/check_metrics.py --kind=bench BENCH_service.json; then
  echo "FAILED: join service sweep wrote an invalid BENCH_service.json" >&2
  exit 1
fi) 2>&1 | tee -a bench_output.txt

# Manifest describing this sweep: which BENCH_*.json files exist and under
# what machine/build they were produced. Two manifests (e.g. baseline vs
# branch) feed scripts/check_regression.py, which diffs the common figures
# and flags throughput regressions beyond a noise threshold.
python3 - << 'EOF'
import json
import os
import platform
import subprocess
import time

sha = "unknown"
try:
    sha = subprocess.run(["git", "rev-parse", "HEAD"], capture_output=True,
                         text=True, check=True).stdout.strip()
except (OSError, subprocess.CalledProcessError):
    pass
manifest = {
    "schema": "mmjoin.manifest.v1",
    "git_sha": sha,
    "hostname": platform.node(),
    "threads": os.cpu_count(),
    "generated_unix": int(time.time()),
    "files": sorted(f for f in os.listdir(".")
                    if f.startswith("BENCH_") and f.endswith(".json")
                    and f != "BENCH_manifest.json"),
}
with open("BENCH_manifest.json", "w") as out:
    json.dump(manifest, out, indent=2)
    out.write("\n")
print(f"BENCH_manifest.json: {len(manifest['files'])} result file(s) "
      f"@ {sha[:12]}")
EOF
