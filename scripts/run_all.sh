#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every paper
# figure/table reproduction. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Use Ninja when available, otherwise the default generator -- the same
# build tree the tier-1 verify line in ROADMAP.md configures. If an existing
# build/ was configured with a different generator, reconfigure from scratch.
GENERATOR_ARGS=()
if command -v ninja > /dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
  grep -q 'CMAKE_GENERATOR:INTERNAL=Ninja' build/CMakeCache.txt 2> /dev/null \
    || rm -rf build
elif [ -f build/CMakeCache.txt ] \
    && grep -q 'CMAKE_GENERATOR:INTERNAL=Ninja' build/CMakeCache.txt; then
  rm -rf build
fi

cmake -B build -S . ${GENERATOR_ARGS[@]+"${GENERATOR_ARGS[@]}"}
cmake --build build -j "$(nproc)"

ctest --test-dir build 2>&1 | tee test_output.txt

(for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "######## $b ########"
  timeout 900 "$b"
  echo
done) 2>&1 | tee bench_output.txt
