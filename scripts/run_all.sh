#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every paper
# figure/table reproduction. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

(for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "######## $b ########"
  timeout 900 "$b"
  echo
done) 2>&1 | tee bench_output.txt
