#!/usr/bin/env bash
# Static-analysis driver: everything the repo can check without running a
# single join. Mirrors the CI `static-analysis` job; run locally before
# sending a change that touches shared state.
#
#   1. scripts/mmjoin_lint              always (stdlib python3 only):
#        --self-test over tests/lint/ fixtures, then --all over the repo.
#   2. Clang -Wthread-safety build      if a clang++ is available
#   3. negative-compile check           if a clang++ is available:
#        tests/annotations_negative.cc MUST fail under -Werror=thread-safety
#        as written, and MUST compile with -DMMJOIN_NEGATIVE_FIXED.
#   4. clang-tidy over src/             if clang-tidy is available
#   5. scan-build (clang analyzer)      if scan-build is available
#
# Steps 2-5 print SKIPPED (with the reason) when the tool is missing -- GCC
# has no thread-safety analysis, and some dev containers carry only the LLVM
# backend tools. CI always installs clang, so nothing is skipped there.
#
# Usage: scripts/run_static_analysis.sh [build-dir]
#   build-dir defaults to build-static-analysis (created if needed).

set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-static-analysis}"
cd "${REPO_ROOT}"

failures=0
step() { printf '\n== %s ==\n' "$1"; }
skip() { printf 'SKIPPED: %s\n' "$1"; }
fail() { printf 'FAILED: %s\n' "$1"; failures=$((failures + 1)); }
ok()   { printf 'OK: %s\n' "$1"; }

# ----------------------------------------------------------------- 1. lint
step "mmjoin_lint self-test (tests/lint/ fixtures)"
if python3 scripts/mmjoin_lint --self-test --quiet; then
  ok "every bad fixture fires, every good fixture is quiet"
else
  fail "lint self-test (a rule or fixture drifted; run with --self-test --verbose)"
fi

step "mmjoin_lint --all (layer DAG, concurrency, Status, registries, barriers)"
if python3 scripts/mmjoin_lint --all; then
  ok "lint clean"
else
  fail "lint findings above (fix them or justify in scripts/allowlists/<rule>.txt)"
fi

# Locate a clang++ (plain name first, then versioned).
CLANGXX=""
for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
                 clang++-16 clang++-15 clang++-14; do
  if command -v "${candidate}" > /dev/null 2>&1; then
    CLANGXX="${candidate}"
    break
  fi
done

# ------------------------------------------- 2. clang thread-safety build
step "Clang -Werror=thread-safety build"
if [ -z "${CLANGXX}" ]; then
  skip "no clang++ on PATH (GCC has no thread-safety analysis); CI runs this"
else
  if cmake -B "${BUILD_DIR}" -S . \
        -DCMAKE_CXX_COMPILER="${CLANGXX}" \
        -DMMJOIN_THREAD_SAFETY_WERROR=ON \
        -DMMJOIN_BUILD_BENCHMARKS=OFF > "${BUILD_DIR}.configure.log" 2>&1 \
      && cmake --build "${BUILD_DIR}" -j "$(nproc)" \
           > "${BUILD_DIR}.build.log" 2>&1; then
    ok "annotated build clean under -Werror=thread-safety"
  else
    tail -40 "${BUILD_DIR}.build.log" "${BUILD_DIR}.configure.log" 2>/dev/null
    fail "thread-safety build (logs: ${BUILD_DIR}.build.log)"
  fi
fi

# --------------------------------------------- 3. negative-compile check
step "negative-compile check (tests/annotations_negative.cc)"
if [ -z "${CLANGXX}" ]; then
  skip "no clang++ on PATH; CI runs this"
else
  NEG_FLAGS="-std=c++20 -fsyntax-only -Isrc -Wthread-safety -Werror=thread-safety"
  # shellcheck disable=SC2086  # NEG_FLAGS is a flag list by construction
  if ${CLANGXX} ${NEG_FLAGS} tests/annotations_negative.cc \
       > /dev/null 2>&1; then
    fail "annotations_negative.cc compiled cleanly -- the GUARDED_BY analysis is not firing"
  else
    ok "unlocked guarded access rejected, as intended"
  fi
  # shellcheck disable=SC2086
  if ${CLANGXX} ${NEG_FLAGS} -DMMJOIN_NEGATIVE_FIXED \
       tests/annotations_negative.cc > /dev/null 2>&1; then
    ok "properly locked variant accepted"
  else
    fail "annotations_negative.cc with -DMMJOIN_NEGATIVE_FIXED must compile"
  fi
fi

# ----------------------------------------------------------- 4. clang-tidy
step "clang-tidy over src/"
CLANGTIDY=""
for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "${candidate}" > /dev/null 2>&1; then
    CLANGTIDY="${candidate}"
    break
  fi
done
if [ -z "${CLANGTIDY}" ]; then
  skip "no clang-tidy on PATH; CI runs this"
elif [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  # Without the clang build above there is no compilation database; make one
  # with whatever compiler CMake picks (compile flags are what matter).
  if ! cmake -B "${BUILD_DIR}" -S . -DMMJOIN_BUILD_BENCHMARKS=OFF \
       > "${BUILD_DIR}.configure.log" 2>&1; then
    fail "could not configure a compilation database for clang-tidy"
  fi
fi
if [ -n "${CLANGTIDY}" ] && [ -f "${BUILD_DIR}/compile_commands.json" ]; then
  # Headers are covered via HeaderFilterRegex from the TUs that include them.
  mapfile -t TUS < <(find src -name '*.cc' | sort)
  if "${CLANGTIDY}" -p "${BUILD_DIR}" --quiet "${TUS[@]}" \
       > "${BUILD_DIR}.tidy.log" 2>&1; then
    ok "clang-tidy clean ($(wc -l < "${BUILD_DIR}.tidy.log") log lines)"
  else
    grep -E "error:|warning:" "${BUILD_DIR}.tidy.log" | head -50
    fail "clang-tidy (full log: ${BUILD_DIR}.tidy.log)"
  fi
fi

# ----------------------------------------------------------- 5. scan-build
step "clang static analyzer (scan-build)"
SCANBUILD=""
for candidate in scan-build scan-build-20 scan-build-19 scan-build-18 \
                 scan-build-17 scan-build-16 scan-build-15 scan-build-14; do
  if command -v "${candidate}" > /dev/null 2>&1; then
    SCANBUILD="${candidate}"
    break
  fi
done
if [ -z "${SCANBUILD}" ]; then
  skip "no scan-build on PATH (ships with clang-tools); CI runs this when available"
else
  SB_DIR="${BUILD_DIR}-scan"
  # A fresh tree each run: scan-build only analyzes TUs the build compiles,
  # so an incremental build would silently analyze nothing.
  rm -rf "${SB_DIR}"
  if "${SCANBUILD}" --status-bugs -o "${SB_DIR}-report" \
        cmake -B "${SB_DIR}" -S . -DMMJOIN_BUILD_BENCHMARKS=OFF \
        > "${SB_DIR}.configure.log" 2>&1 \
      && "${SCANBUILD}" --status-bugs -o "${SB_DIR}-report" \
           cmake --build "${SB_DIR}" -j "$(nproc)" \
           > "${SB_DIR}.build.log" 2>&1; then
    ok "analyzer found no bugs (report dir: ${SB_DIR}-report)"
  else
    tail -40 "${SB_DIR}.build.log" 2>/dev/null
    fail "scan-build (--status-bugs; HTML report under ${SB_DIR}-report)"
  fi
fi

# ------------------------------------------------------------------ result
printf '\n'
if [ "${failures}" -ne 0 ]; then
  printf 'static analysis: %d step(s) FAILED\n' "${failures}"
  exit 1
fi
printf 'static analysis: all runnable steps passed\n'
exit 0
