#!/usr/bin/env python3
"""Diffs two bench sweeps (scripts/run_all.sh manifests) for regressions.

Usage:
    check_regression.py BASELINE_manifest.json CANDIDATE_manifest.json
                        [--threshold=0.10] [--min-ns=1000000]

Each manifest is a `mmjoin.manifest.v1` object written by run_all.sh; the
BENCH_*.json files it lists are resolved relative to the manifest's
directory, so two checkouts (or two downloaded CI artifact trees) diff
directly. Bench repeats are reduced to the minimum total_ns per
configuration -- the standard noise-resistant reduction for wall-clock
benchmarks -- keyed by (artifact, algorithm, build, probe, threads).

A configuration regresses when the candidate's best time exceeds the
baseline's by more than --threshold (default 10 %) AND by more than
--min-ns (default 1 ms, so microsecond-scale configs cannot trip the gate
on scheduler jitter). Configurations present in only one sweep are
reported but never fail the check. Exit 1 when any regression is found.
Stdlib only.
"""

import argparse
import json
import os
import sys


def fail(message):
    print(f"error: {message}", file=sys.stderr)
    return 1


def load_manifest(path):
    with open(path, "r", encoding="utf-8") as f:
        manifest = json.load(f)
    if manifest.get("schema") != "mmjoin.manifest.v1":
        raise ValueError(f"{path}: schema is {manifest.get('schema')!r}, "
                         "expected 'mmjoin.manifest.v1'")
    for key in ("git_sha", "files"):
        if key not in manifest:
            raise ValueError(f"{path}: missing field '{key}'")
    return manifest


def load_results(manifest_path, manifest):
    """(artifact, algorithm, build, probe, threads) -> min total_ns."""
    base_dir = os.path.dirname(os.path.abspath(manifest_path))
    best = {}
    for name in manifest["files"]:
        bench_path = os.path.join(base_dir, name)
        if not os.path.exists(bench_path):
            print(f"note: {bench_path} listed in manifest but missing; "
                  "skipped", file=sys.stderr)
            continue
        with open(bench_path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                if obj.get("schema") != "mmjoin.bench.v1":
                    continue
                key = (obj["artifact"], obj["algorithm"], obj["build"],
                       obj["probe"], obj["threads"])
                total_ns = obj["total_ns"]
                if key not in best or total_ns < best[key]:
                    best[key] = total_ns
    return best


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative slowdown that counts as a regression "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--min-ns", type=int, default=1_000_000,
                        help="absolute slowdown floor in ns (default 1 ms)")
    args = parser.parse_args()

    try:
        base_manifest = load_manifest(args.baseline)
        cand_manifest = load_manifest(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        return fail(str(e))

    base = load_results(args.baseline, base_manifest)
    cand = load_results(args.candidate, cand_manifest)
    if not base:
        return fail(f"{args.baseline}: no bench records resolved")
    if not cand:
        return fail(f"{args.candidate}: no bench records resolved")

    print(f"baseline : {base_manifest['git_sha'][:12]} "
          f"({len(base)} config(s))")
    print(f"candidate: {cand_manifest['git_sha'][:12]} "
          f"({len(cand)} config(s))")

    common = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    regressions = []
    improvements = 0
    for key in common:
        delta_ns = cand[key] - base[key]
        rel = delta_ns / base[key]
        if delta_ns > args.min_ns and rel > args.threshold:
            regressions.append((key, base[key], cand[key], rel))
        elif rel < -args.threshold:
            improvements += 1

    for key, base_ns, cand_ns, rel in regressions:
        artifact, algorithm, build, probe, threads = key
        print(f"REGRESSION {artifact} {algorithm} "
              f"|R|={build} |S|={probe} t={threads}: "
              f"{base_ns / 1e6:.3f} ms -> {cand_ns / 1e6:.3f} ms "
              f"(+{rel * 100:.1f}%)")
    for key in only_base:
        print(f"note: config dropped from candidate: {key}")
    for key in only_cand:
        print(f"note: config new in candidate: {key}")

    print(f"{len(common)} config(s) compared: {len(regressions)} "
          f"regression(s), {improvements} improvement(s) beyond "
          f"{args.threshold * 100:.0f}%")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
