#!/usr/bin/env python3
"""Validates the machine-readable observability artifacts.

Five file shapes are understood (auto-detected, or forced with --kind):

  bench       JSON Lines as written by the bench harnesses' --json flag /
              MMJOIN_BENCH_JSON: one `mmjoin.bench.v1` object per repeat plus
              one final `mmjoin.metrics.v1` object.
  metrics     A single `mmjoin.metrics.v1` object (run_join --metrics=PATH or
              obs::MetricsRegistry::WriteJson), optionally carrying a
              `histograms` section with per-name quantile summaries.
  trace       A Chrome trace-event file (run_join --trace=PATH or the bench
              harnesses' --trace / MMJOIN_TRACE): {"traceEvents": [...]} with
              "X" complete events carrying name/cat/pid/tid/ts/dur. Warns
              (does not fail) when metadata reports dropped spans.
  report      A single `mmjoin.report.v1` object (run_join --explain-json).
  exposition  OpenMetrics text (run_join --listen / SIGUSR1 dump): `# TYPE`
              families, `_total` counter samples, histogram families with
              cumulative monotone buckets, terminated by `# EOF`.

Schemas are documented in docs/OBSERVABILITY.md. Exit status 0 when every
given file validates; 1 with a per-file diagnostic otherwise. Stdlib only.
"""

import argparse
import json
import math
import sys

BENCH_REQUIRED = {
    "artifact": str,
    "algorithm": str,
    "repeat": int,
    "build": int,
    "probe": int,
    "threads": int,
    "matches": int,
    "checksum": int,
    "partition_ns": int,
    "build_ns": int,
    "probe_ns": int,
    "total_ns": int,
    "mtps": (int, float),
}

PHASE_REQUIRED = {"threads": int, "total_ns": int, "min_ns": int,
                  "max_ns": int}
PHASE_NAMES = {"partition.pass1", "partition.pass2", "build", "probe",
               "sort", "merge", "materialize"}

TRACE_EVENT_REQUIRED = {"name": str, "cat": str, "ph": str, "pid": int,
                        "tid": int, "ts": (int, float), "dur": (int, float)}

REPORT_REQUIRED = {
    "schema": str,
    "algorithm": str,
    "build": int,
    "probe": int,
    "threads": int,
    "matches": int,
    "checksum": int,
    "times": dict,
    "steals": dict,
    "counters": dict,
}

TIMES_REQUIRED = {"partition_ns": int, "build_ns": int, "probe_ns": int,
                  "total_ns": int}

HISTOGRAM_SUMMARY_REQUIRED = {"count": int, "sum": int, "max": int,
                              "p50": int, "p95": int, "p99": int}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def warn(path, message):
    print(f"{path}: warning: {message}", file=sys.stderr)


def check_fields(path, obj, required, where):
    for key, expected in required.items():
        if key not in obj:
            return fail(path, f"{where}: missing field '{key}'")
        if not isinstance(obj[key], expected) or isinstance(obj[key], bool):
            return fail(path, f"{where}: field '{key}' has type "
                              f"{type(obj[key]).__name__}")
    return True


def check_histogram_summary(path, name, summary, where):
    if not isinstance(summary, dict):
        return fail(path, f"{where}: histogram '{name}' must be an object")
    if not check_fields(path, summary, HISTOGRAM_SUMMARY_REQUIRED,
                        f"{where} histogram '{name}'"):
        return False
    buckets = summary.get("buckets")
    if not isinstance(buckets, list):
        return fail(path, f"{where}: histogram '{name}' missing 'buckets' "
                          "array")
    prev_le = -1
    total = 0
    for i, bucket in enumerate(buckets):
        if (not isinstance(bucket, list) or len(bucket) != 2
                or not all(isinstance(v, int) and not isinstance(v, bool)
                           for v in bucket)):
            return fail(path, f"{where}: histogram '{name}' bucket[{i}] must "
                              "be [le, count]")
        le, count = bucket
        if le <= prev_le:
            return fail(path, f"{where}: histogram '{name}' bucket "
                              f"boundaries not ascending at index {i}")
        prev_le = le
        total += count
    if total != summary["count"]:
        return fail(path, f"{where}: histogram '{name}' bucket counts sum to "
                          f"{total}, expected count={summary['count']}")
    if not summary["p50"] <= summary["p95"] <= summary["p99"]:
        return fail(path, f"{where}: histogram '{name}' quantiles not "
                          "monotone")
    return True


def check_metrics_object(path, obj, where):
    if obj.get("schema") != "mmjoin.metrics.v1":
        return fail(path, f"{where}: schema is {obj.get('schema')!r}, "
                          "expected 'mmjoin.metrics.v1'")
    counters = obj.get("counters")
    if not isinstance(counters, dict):
        return fail(path, f"{where}: 'counters' must be an object")
    for name, value in counters.items():
        if not isinstance(value, int) or isinstance(value, bool):
            return fail(path, f"{where}: counter '{name}' is not an integer")
    # The registry always contributes its own trace counters; an empty or
    # near-empty map means the providers never registered.
    if "trace.spans_recorded" not in counters:
        return fail(path, f"{where}: missing counter 'trace.spans_recorded'")
    histograms = obj.get("histograms")
    if histograms is not None:
        if not isinstance(histograms, dict):
            return fail(path, f"{where}: 'histograms' must be an object")
        for name, summary in histograms.items():
            if not check_histogram_summary(path, name, summary, where):
                return False
    return True


def check_bench_record(path, obj, where):
    if not check_fields(path, obj, BENCH_REQUIRED, where):
        return False
    if obj["total_ns"] <= 0:
        return fail(path, f"{where}: total_ns must be positive")
    phases = obj.get("phases")
    if phases is not None:
        if not isinstance(phases, dict):
            return fail(path, f"{where}: 'phases' must be an object")
        for name, stat in phases.items():
            if name not in PHASE_NAMES:
                return fail(path, f"{where}: unknown phase '{name}'")
            if not check_fields(path, stat, PHASE_REQUIRED,
                                f"{where} phase '{name}'"):
                return False
            if stat["min_ns"] > stat["max_ns"]:
                return fail(path, f"{where} phase '{name}': min_ns > max_ns")
    return True


def check_bench_file(path, text):
    if not text.endswith("\n"):
        return fail(path, "truncated bench JSONL file (no trailing newline)")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return fail(path, "empty bench JSONL file")
    bench_records = 0
    metrics_records = 0
    for i, line in enumerate(lines, start=1):
        where = f"line {i}"
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(path, f"{where}: invalid JSON: {e}")
        schema = obj.get("schema")
        if schema == "mmjoin.bench.v1":
            bench_records += 1
            if not check_bench_record(path, obj, where):
                return False
        elif schema == "mmjoin.metrics.v1":
            metrics_records += 1
            if not check_metrics_object(path, obj, where):
                return False
        else:
            return fail(path, f"{where}: unknown schema {schema!r}")
    if bench_records == 0:
        return fail(path, "no mmjoin.bench.v1 records")
    if metrics_records != 1:
        return fail(path, f"expected exactly one mmjoin.metrics.v1 record, "
                          f"found {metrics_records}")
    if lines and json.loads(lines[-1]).get("schema") != "mmjoin.metrics.v1":
        return fail(path, "metrics record must be the final line")
    print(f"{path}: OK ({bench_records} bench record(s) + metrics)")
    return True


def check_metrics_file(path, text):
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as e:
        return fail(path, f"invalid JSON: {e}")
    if not check_metrics_object(path, obj, "metrics"):
        return False
    histograms = obj.get("histograms") or {}
    print(f"{path}: OK ({len(obj['counters'])} counter(s), "
          f"{len(histograms)} histogram(s))")
    return True


def check_trace_file(path, text):
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as e:
        return fail(path, f"invalid JSON: {e}")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, "'traceEvents' must be an array")
    if not events:
        return fail(path, "trace contains no events")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not check_fields(path, event, TRACE_EVENT_REQUIRED, where):
            return False
        if event["ph"] != "X":
            return fail(path, f"{where}: expected complete event 'X', "
                              f"got {event['ph']!r}")
        if event["dur"] < 0:
            return fail(path, f"{where}: negative duration")
    dropped = 0
    metadata = obj.get("metadata")
    if isinstance(metadata, dict):
        dropped = metadata.get("dropped_spans", 0)
        if dropped:
            warn(path, f"trace recorder dropped {dropped} span(s); the ring "
                       "filled -- raise its capacity or shorten the run")
    print(f"{path}: OK ({len(events)} span(s), {dropped} dropped)")
    return True


def check_report_file(path, text):
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as e:
        return fail(path, f"invalid JSON: {e}")
    if not isinstance(obj, dict):
        return fail(path, "report must be a JSON object")
    if obj.get("schema") != "mmjoin.report.v1":
        return fail(path, f"schema is {obj.get('schema')!r}, expected "
                          "'mmjoin.report.v1'")
    if not check_fields(path, obj, REPORT_REQUIRED, "report"):
        return False
    if not check_fields(path, obj["times"], TIMES_REQUIRED, "report times"):
        return False
    steals = obj["steals"]
    for key in ("nodes", "total", "matrix"):
        if key not in steals:
            return fail(path, f"report steals: missing field '{key}'")
    nodes = steals["nodes"]
    matrix = steals["matrix"]
    if not isinstance(matrix, list) or len(matrix) != nodes * nodes:
        return fail(path, f"report steals: matrix has {len(matrix)} cells, "
                          f"expected nodes^2 = {nodes * nodes}")
    if sum(matrix) != steals["total"]:
        return fail(path, f"report steals: matrix sums to {sum(matrix)}, "
                          f"total says {steals['total']}")
    phases = obj.get("phases")
    if phases is not None:
        if not isinstance(phases, dict):
            return fail(path, "report: 'phases' must be an object")
        for name, stat in phases.items():
            if name not in PHASE_NAMES:
                return fail(path, f"report: unknown phase '{name}'")
            if not check_fields(path, stat, PHASE_REQUIRED,
                                f"report phase '{name}'"):
                return False
    for name, delta in obj["counters"].items():
        if not isinstance(delta, int) or isinstance(delta, bool):
            return fail(path, f"report: counter delta '{name}' is not an "
                              "integer")
    print(f"{path}: OK (report for {obj['algorithm']}, "
          f"{len(obj.get('phases') or {})} phase(s))")
    return True


def check_exposition_file(path, text):
    if not text.endswith("\n"):
        return fail(path, "truncated exposition (no trailing newline)")
    lines = text.splitlines()
    if not lines:
        return fail(path, "empty exposition")
    if lines[-1] != "# EOF":
        return fail(path, "missing '# EOF' terminator (truncated scrape?)")
    families = {}  # name -> type
    histogram_state = {}  # family -> {"prev_le": float, "buckets": int,
    #                                  "inf": int or None, "count": int or None}
    for i, line in enumerate(lines, start=1):
        if not line or line.startswith("#"):
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4 or parts[3] not in ("counter",
                                                       "histogram"):
                    return fail(path, f"line {i}: malformed TYPE line")
                families[parts[2]] = parts[3]
                if parts[3] == "histogram":
                    histogram_state[parts[2]] = {"prev_le": -math.inf,
                                                 "prev_count": -1,
                                                 "buckets": 0, "inf": None,
                                                 "count": None}
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) != 2:
            return fail(path, f"line {i}: malformed sample")
        sample, value_text = parts
        try:
            value = int(value_text)
        except ValueError:
            return fail(path, f"line {i}: sample value is not an integer")
        if value < 0:
            return fail(path, f"line {i}: negative sample value")
        name = sample.split("{", 1)[0]
        matched = False
        for family, kind in families.items():
            if kind == "counter" and name == family + "_total":
                matched = True
                break
            if kind == "histogram" and name in (family + "_bucket",
                                                family + "_sum",
                                                family + "_count"):
                matched = True
                state = histogram_state[family]
                if name == family + "_bucket":
                    le_text = sample.split('le="', 1)[1].split('"', 1)[0]
                    le = (math.inf if le_text == "+Inf"
                          else float(le_text))
                    if le <= state["prev_le"]:
                        return fail(path, f"line {i}: bucket boundaries not "
                                          "ascending")
                    if value < state["prev_count"]:
                        return fail(path, f"line {i}: cumulative bucket "
                                          "counts not monotone")
                    state["prev_le"] = le
                    state["prev_count"] = value
                    state["buckets"] += 1
                    if le == math.inf:
                        state["inf"] = value
                elif name == family + "_count":
                    state["count"] = value
                break
        if not matched:
            return fail(path, f"line {i}: sample '{name}' has no TYPE line "
                              "or a malformed suffix")
    for family, state in histogram_state.items():
        if state["buckets"] == 0:
            continue  # empty histogram family: no samples were rendered
        if state["inf"] is None:
            return fail(path, f"histogram '{family}' has no '+Inf' bucket")
        if state["count"] is None:
            return fail(path, f"histogram '{family}' has no _count sample")
        if state["inf"] != state["count"]:
            return fail(path, f"histogram '{family}': +Inf bucket "
                              f"({state['inf']}) != _count ({state['count']})")
    counters = sum(1 for kind in families.values() if kind == "counter")
    histograms = sum(1 for kind in families.values() if kind == "histogram")
    if not families:
        return fail(path, "exposition declares no metric families")
    print(f"{path}: OK ({counters} counter famil(ies), "
          f"{histograms} histogram famil(ies))")
    return True


def detect_kind(text):
    stripped = text.lstrip()
    if stripped.startswith("# TYPE") or text.rstrip().endswith("# EOF"):
        return "exposition"
    if "\n" in text.strip() and stripped.startswith("{"):
        first_line = text.strip().splitlines()[0]
        try:
            json.loads(first_line)
            return "bench"  # parseable first line of several -> JSON Lines
        except json.JSONDecodeError:
            pass
    try:
        obj = json.loads(text)
    except json.JSONDecodeError:
        return "bench"  # let the line-by-line checker produce the diagnostic
    if isinstance(obj, dict) and "traceEvents" in obj:
        return "trace"
    if isinstance(obj, dict) and obj.get("schema") == "mmjoin.report.v1":
        return "report"
    return "metrics"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+")
    parser.add_argument("--kind", choices=["auto", "bench", "metrics",
                                           "trace", "report", "exposition"],
                        default="auto")
    args = parser.parse_args()

    ok = True
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            ok = fail(path, str(e)) and ok
            continue
        if not text.strip():
            ok = fail(path, "file is empty") and ok
            continue
        kind = args.kind if args.kind != "auto" else detect_kind(text)
        checker = {"bench": check_bench_file, "metrics": check_metrics_file,
                   "trace": check_trace_file, "report": check_report_file,
                   "exposition": check_exposition_file}[kind]
        ok = checker(path, text) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
