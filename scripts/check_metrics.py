#!/usr/bin/env python3
"""Validates the machine-readable observability artifacts.

Three file shapes are understood (auto-detected, or forced with --kind):

  bench    JSON Lines as written by the bench harnesses' --json flag /
           MMJOIN_BENCH_JSON: one `mmjoin.bench.v1` object per repeat plus
           one final `mmjoin.metrics.v1` object.
  metrics  A single `mmjoin.metrics.v1` object (run_join --metrics=PATH or
           obs::MetricsRegistry::WriteJson).
  trace    A Chrome trace-event file (run_join --trace=PATH or the bench
           harnesses' --trace / MMJOIN_TRACE): {"traceEvents": [...]} with
           "X" complete events carrying name/cat/pid/tid/ts/dur.

Schemas are documented in docs/OBSERVABILITY.md. Exit status 0 when every
given file validates; 1 with a per-file diagnostic otherwise. Stdlib only.
"""

import argparse
import json
import sys

BENCH_REQUIRED = {
    "artifact": str,
    "algorithm": str,
    "repeat": int,
    "build": int,
    "probe": int,
    "threads": int,
    "matches": int,
    "checksum": int,
    "partition_ns": int,
    "build_ns": int,
    "probe_ns": int,
    "total_ns": int,
    "mtps": (int, float),
}

PHASE_REQUIRED = {"threads": int, "total_ns": int, "min_ns": int,
                  "max_ns": int}
PHASE_NAMES = {"partition.pass1", "partition.pass2", "build", "probe",
               "sort", "merge", "materialize"}

TRACE_EVENT_REQUIRED = {"name": str, "cat": str, "ph": str, "pid": int,
                        "tid": int, "ts": (int, float), "dur": (int, float)}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def check_fields(path, obj, required, where):
    for key, expected in required.items():
        if key not in obj:
            return fail(path, f"{where}: missing field '{key}'")
        if not isinstance(obj[key], expected) or isinstance(obj[key], bool):
            return fail(path, f"{where}: field '{key}' has type "
                              f"{type(obj[key]).__name__}")
    return True


def check_metrics_object(path, obj, where):
    if obj.get("schema") != "mmjoin.metrics.v1":
        return fail(path, f"{where}: schema is {obj.get('schema')!r}, "
                          "expected 'mmjoin.metrics.v1'")
    counters = obj.get("counters")
    if not isinstance(counters, dict):
        return fail(path, f"{where}: 'counters' must be an object")
    for name, value in counters.items():
        if not isinstance(value, int) or isinstance(value, bool):
            return fail(path, f"{where}: counter '{name}' is not an integer")
    # The registry always contributes its own trace counters; an empty or
    # near-empty map means the providers never registered.
    if "trace.spans_recorded" not in counters:
        return fail(path, f"{where}: missing counter 'trace.spans_recorded'")
    return True


def check_bench_record(path, obj, where):
    if not check_fields(path, obj, BENCH_REQUIRED, where):
        return False
    if obj["total_ns"] <= 0:
        return fail(path, f"{where}: total_ns must be positive")
    phases = obj.get("phases")
    if phases is not None:
        if not isinstance(phases, dict):
            return fail(path, f"{where}: 'phases' must be an object")
        for name, stat in phases.items():
            if name not in PHASE_NAMES:
                return fail(path, f"{where}: unknown phase '{name}'")
            if not check_fields(path, stat, PHASE_REQUIRED,
                                f"{where} phase '{name}'"):
                return False
            if stat["min_ns"] > stat["max_ns"]:
                return fail(path, f"{where} phase '{name}': min_ns > max_ns")
    return True


def check_bench_file(path, text):
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return fail(path, "empty bench JSONL file")
    bench_records = 0
    metrics_records = 0
    for i, line in enumerate(lines, start=1):
        where = f"line {i}"
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(path, f"{where}: invalid JSON: {e}")
        schema = obj.get("schema")
        if schema == "mmjoin.bench.v1":
            bench_records += 1
            if not check_bench_record(path, obj, where):
                return False
        elif schema == "mmjoin.metrics.v1":
            metrics_records += 1
            if not check_metrics_object(path, obj, where):
                return False
        else:
            return fail(path, f"{where}: unknown schema {schema!r}")
    if bench_records == 0:
        return fail(path, "no mmjoin.bench.v1 records")
    if metrics_records != 1:
        return fail(path, f"expected exactly one mmjoin.metrics.v1 record, "
                          f"found {metrics_records}")
    if lines and json.loads(lines[-1]).get("schema") != "mmjoin.metrics.v1":
        return fail(path, "metrics record must be the final line")
    print(f"{path}: OK ({bench_records} bench record(s) + metrics)")
    return True


def check_metrics_file(path, text):
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as e:
        return fail(path, f"invalid JSON: {e}")
    if not check_metrics_object(path, obj, "metrics"):
        return False
    print(f"{path}: OK ({len(obj['counters'])} counter(s))")
    return True


def check_trace_file(path, text):
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as e:
        return fail(path, f"invalid JSON: {e}")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, "'traceEvents' must be an array")
    if not events:
        return fail(path, "trace contains no events")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not check_fields(path, event, TRACE_EVENT_REQUIRED, where):
            return False
        if event["ph"] != "X":
            return fail(path, f"{where}: expected complete event 'X', "
                              f"got {event['ph']!r}")
        if event["dur"] < 0:
            return fail(path, f"{where}: negative duration")
    print(f"{path}: OK ({len(events)} span(s))")
    return True


def detect_kind(text):
    stripped = text.lstrip()
    if "\n" in text.strip() and stripped.startswith("{"):
        first_line = text.strip().splitlines()[0]
        try:
            json.loads(first_line)
            return "bench"  # parseable first line of several -> JSON Lines
        except json.JSONDecodeError:
            pass
    try:
        obj = json.loads(text)
    except json.JSONDecodeError:
        return "bench"  # let the line-by-line checker produce the diagnostic
    if isinstance(obj, dict) and "traceEvents" in obj:
        return "trace"
    return "metrics"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+")
    parser.add_argument("--kind", choices=["auto", "bench", "metrics",
                                           "trace"], default="auto")
    args = parser.parse_args()

    ok = True
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            ok = fail(path, str(e)) and ok
            continue
        kind = args.kind if args.kind != "auto" else detect_kind(text)
        checker = {"bench": check_bench_file, "metrics": check_metrics_file,
                   "trace": check_trace_file}[kind]
        ok = checker(path, text) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
