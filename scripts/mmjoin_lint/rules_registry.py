"""registry-drift: names used in src/ == registries == doc tables.

Four name families share one discipline; each has a machine-readable
X-macro registry, a set of literal use sites in src/, and a documentation
table marked with an HTML comment:

  family      registry                       uses scanned               doc table marker
  failpoints  src/util/failpoint_registry.h  MMJOIN_FAILPOINT("...")    docs/ROBUSTNESS.md    registry=failpoints
  counters    src/obs/metric_names.h         AddCounter("..."),         docs/OBSERVABILITY.md registry=counters
                                             Metric{"..."}
  histograms  src/obs/metric_names.h         GetHistogram("...")        docs/OBSERVABILITY.md registry=histograms
  log-events  src/util/log_events.h          MMJOIN_LOG(kX, "...")      docs/OBSERVABILITY.md registry=log-events

The rule fails on:
  * a literal use in src/ whose name is not registered,
  * a registry entry no site in src/ ever uses (dead registration),
  * a registry entry absent from its doc table (undocumented), and
  * a doc row naming nothing in the registry (dead doc row).

`test.`-prefixed names are exempt everywhere (reserved for tests). Doc
rows may use `<placeholder>` segments (`join.phase_ns.<phase>`) which
match any suffix of word characters and dots; one such row documents the
whole registered family it covers.
"""

import re

from .cppmodel import line_of
from .engine import Finding, register

RULE = "registry-drift"
TEST_PREFIX = "test."

X_ENTRY_RE = re.compile(r'^\s*X\("([^"]+)"\)', re.MULTILINE)

FAILPOINT_USE_RE = re.compile(r'MMJOIN_FAILPOINT\(\s*"([^"]+)"\s*\)')
ADD_COUNTER_RE = re.compile(r'AddCounter\(\s*"([^"]+)"')
# Metric{ "name", value } -- the name may sit on the next line.
METRIC_BRACE_RE = re.compile(r'Metric\{\s*"([^"]+)"')
GET_HISTOGRAM_RE = re.compile(r'GetHistogram\(\s*"([^"]+)"\s*\)')
LOG_USE_RE = re.compile(r'MMJOIN_LOG\(\s*k\w+\s*,\s*"([^"]+)"')

DOC_MARKER_RE = re.compile(r'<!--\s*mmjoin-lint:\s*registry=([\w-]+)\s*-->')
BACKTICK_RE = re.compile(r'`([^`]+)`')


def parse_x_macro(text, macro_name):
    """Extracts X("...") entries from the continuation block of
    `#define macro_name(X)`. Returns [(name, lineno)]."""
    lines = text.splitlines()
    entries = []
    in_block = False
    for idx, line in enumerate(lines, start=1):
        if not in_block:
            if re.match(r"\s*#\s*define\s+" + re.escape(macro_name)
                        + r"\s*\(", line):
                in_block = True
            else:
                continue
        for m in X_ENTRY_RE.finditer(line):
            entries.append((m.group(1), idx))
        if in_block and not line.rstrip().endswith("\\"):
            break
    return entries


def parse_doc_table(doc_text, marker_key):
    """Returns ([(identifier, lineno)], found_marker). The table is the
    first run of '|' rows after the marker; the identifier is the first
    backticked token of each row's first cell."""
    marker_line = None
    lines = doc_text.splitlines()
    for idx, line in enumerate(lines, start=1):
        m = DOC_MARKER_RE.search(line)
        if m and m.group(1) == marker_key:
            marker_line = idx
            break
    if marker_line is None:
        return [], False
    rows = []
    in_table = False
    for idx in range(marker_line, len(lines)):
        line = lines[idx].strip()
        if line.startswith("|"):
            in_table = True
            first_cell = line.split("|")[1] if line.count("|") >= 2 else ""
            if set(first_cell.strip()) <= set("-: "):
                continue  # separator row
            token = BACKTICK_RE.search(first_cell)
            if token:
                rows.append((token.group(1), idx + 1))
            # header rows carry no backticks and are skipped naturally
        elif in_table and line:
            break  # table ended
        elif in_table and not line:
            break
    return rows, True


def doc_pattern(identifier):
    """Doc identifiers may contain <placeholder> wildcards."""
    out = []
    for piece in re.split(r"(<[^<>]+>)", identifier):
        if piece.startswith("<") and piece.endswith(">"):
            out.append(r"[\w.]+")
        else:
            out.append(re.escape(piece))
    return re.compile("^" + "".join(out) + "$")


class Family:
    def __init__(self, key, registry_path, macro, doc_path, marker,
                 use_regexes, use_label):
        self.key = key
        self.registry_path = registry_path
        self.macro = macro
        self.doc_path = doc_path
        self.marker = marker
        self.use_regexes = use_regexes
        self.use_label = use_label


FAMILIES = [
    Family("failpoints", "src/util/failpoint_registry.h",
           "MMJOIN_FAILPOINT_REGISTRY", "docs/ROBUSTNESS.md", "failpoints",
           [FAILPOINT_USE_RE], "MMJOIN_FAILPOINT"),
    Family("counters", "src/obs/metric_names.h",
           "MMJOIN_COUNTER_REGISTRY", "docs/OBSERVABILITY.md", "counters",
           [ADD_COUNTER_RE, METRIC_BRACE_RE], "counter emission"),
    Family("histograms", "src/obs/metric_names.h",
           "MMJOIN_HISTOGRAM_REGISTRY", "docs/OBSERVABILITY.md",
           "histograms", [GET_HISTOGRAM_RE], "GetHistogram"),
    Family("log-events", "src/util/log_events.h",
           "MMJOIN_LOG_EVENT_REGISTRY", "docs/OBSERVABILITY.md",
           "log-events", [LOG_USE_RE], "MMJOIN_LOG"),
]


@register(RULE, "repo",
          "failpoint/metric/log-event names: src/ uses == registry == docs")
def check_registry_drift(repo, findings):
    for family in FAMILIES:
        _check_family(repo, family, findings)


def _check_family(repo, family, findings):
    registry_text = repo.read_text(family.registry_path)
    if registry_text is None:
        findings.append(Finding(
            family.registry_path, 1, RULE,
            f"registry header {family.registry_path} is missing (needed "
            f"for the {family.key} family)"))
        return
    registered = parse_x_macro(registry_text, family.macro)
    if not registered:
        findings.append(Finding(
            family.registry_path, 1, RULE,
            f"no X(\"...\") entries found under {family.macro}; either "
            "the registry is empty or its format drifted from what this "
            "rule parses"))
        return
    registered_names = {name for name, _ in registered}

    # Duplicate registration is drift too: two entries, one meaning.
    seen = {}
    for name, lineno in registered:
        if name in seen:
            findings.append(Finding(
                family.registry_path, lineno, RULE,
                f"'{name}' registered twice (first at line {seen[name]})"))
        else:
            seen[name] = lineno

    # ---- src/ literal uses vs the registry, both directions.
    used_names = set()
    for sf in repo.sources():
        if sf.path == family.registry_path:
            continue
        for use_re in family.use_regexes:
            for m in use_re.finditer(sf.code_str):
                name = m.group(1)
                used_names.add(name)
                if name.startswith(TEST_PREFIX):
                    continue
                if name not in registered_names:
                    lineno = line_of(sf.code_str, m.start())
                    findings.append(Finding(
                        sf.path, lineno, RULE,
                        f"{family.use_label} uses unregistered name "
                        f"'{name}'; add it to {family.macro} in "
                        f"{family.registry_path} (and to the doc table in "
                        f"{family.doc_path})",
                        sf.line(lineno)))
    for name, lineno in registered:
        if name not in used_names:
            findings.append(Finding(
                family.registry_path, lineno, RULE,
                f"registered {family.key} name '{name}' is never used in "
                "src/; delete the registration or wire up the site"))

    # ---- registry vs the documentation table, both directions.
    doc_text = repo.read_text(family.doc_path)
    if doc_text is None:
        findings.append(Finding(
            family.doc_path, 1, RULE,
            f"{family.doc_path} is missing (documents the {family.key} "
            "registry)"))
        return
    doc_rows, found_marker = parse_doc_table(doc_text, family.marker)
    if not found_marker:
        findings.append(Finding(
            family.doc_path, 1, RULE,
            f"no '<!-- mmjoin-lint: registry={family.marker} -->' marker "
            f"in {family.doc_path}; the {family.key} table is unmarked or "
            "gone"))
        return
    if not doc_rows:
        findings.append(Finding(
            family.doc_path, 1, RULE,
            f"marker registry={family.marker} found but no table rows "
            "with backticked identifiers follow it"))
        return
    patterns = [(ident, lineno, doc_pattern(ident))
                for ident, lineno in doc_rows]
    for name, reg_lineno in registered:
        if not any(p.match(name) for _, _, p in patterns):
            findings.append(Finding(
                family.registry_path, reg_lineno, RULE,
                f"registered {family.key} name '{name}' has no row in the "
                f"marked table of {family.doc_path}"))
    for ident, doc_lineno, pattern in patterns:
        if not any(pattern.match(name) for name in registered_names):
            findings.append(Finding(
                family.doc_path, doc_lineno, RULE,
                f"doc table row '{ident}' matches no registered "
                f"{family.key} name; the row is dead or the name was "
                "renamed without updating the table"))
