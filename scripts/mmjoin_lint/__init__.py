"""mmjoin_lint: stdlib-only, AST-free static analysis for the mmjoin tree.

The package is an executable directory: `python3 scripts/mmjoin_lint --all`
runs every rule over the repository. See __main__.py for the CLI and
docs/STATIC_ANALYSIS.md for the rule catalogue.
"""
