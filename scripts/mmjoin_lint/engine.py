"""Rule registry, allowlist handling, runner, and fixture self-tests.

Rules come in two scopes:

  file  check(sf, findings) runs once per SourceFile under src/.
  repo  check(repo, findings) runs once per Repo -- for cross-file
        invariants (registry drift needs registries + all of src + docs).

Allowlists live at scripts/allowlists/<rule-id>.txt, one entry per line:

    <path>:<substring>

where <path> is the repo-relative file and <substring> must appear in the
offending source line ('#' starts a comment; empty substring matches any
line of the file). Unlike the legacy combined allowlist, an entry only ever
suppresses its own rule. Stale entries -- entries matching no current
finding -- are themselves reported as findings (rule `allowlist-stale`):
an allowlist that outlives its justification silently re-opens the hole it
documented.

The legacy scripts/concurrency_allowlist.txt (<path>:<rule>:<substring>) is
still read through a deprecation shim that warns and maps entries onto the
per-rule form; new entries must not be added there.
"""

import pathlib
import sys
import time

from . import cppmodel


class Finding:
    def __init__(self, path, line, rule, message, source_line=""):
        self.path = path  # repo-relative posix string
        self.line = line
        self.rule = rule
        self.message = message
        self.source_line = source_line

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Rule:
    def __init__(self, rule_id, scope, check, doc):
        assert scope in ("file", "repo"), scope
        self.id = rule_id
        self.scope = scope
        self.check = check
        self.doc = doc  # one-line summary for --list


_RULES = {}


def register(rule_id, scope, doc):
    """Decorator: register a rule function under `rule_id`."""

    def wrap(fn):
        assert rule_id not in _RULES, f"duplicate rule id {rule_id}"
        _RULES[rule_id] = Rule(rule_id, scope, fn, doc)
        return fn

    return wrap


def all_rules():
    # Importing the rule modules populates the registry; done here so that
    # `import engine` alone has no side effects.
    from . import (  # noqa: F401
        rules_barrier,
        rules_concurrency,
        rules_layers,
        rules_registry,
        rules_status,
    )

    return dict(_RULES)


# --------------------------------------------------------------- allowlists


def _parse_per_rule_lines(lines, origin, errors):
    entries = []
    for idx, raw_line in enumerate(lines, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if ":" not in line:
            errors.append(f"{origin}:{idx}: malformed entry (want "
                          f"path:substring): {line}")
            continue
        path, substring = line.split(":", 1)
        entries.append((path, substring, f"{origin}:{idx}"))
    return entries


def load_allowlists(repo_root, rule_ids):
    """Returns ({rule_id: [(path, substring, origin)]}, [error strings])."""
    errors = []
    per_rule = {rule_id: [] for rule_id in rule_ids}
    alldir = repo_root / "scripts" / "allowlists"
    if alldir.is_dir():
        for f in sorted(alldir.glob("*.txt")):
            rule_id = f.stem
            if rule_id not in per_rule:
                errors.append(f"{f}: allowlist for unknown rule "
                              f"'{rule_id}' (no such rule registered)")
                continue
            per_rule[rule_id].extend(
                _parse_per_rule_lines(f.read_text().splitlines(), str(f),
                                      errors))

    # Deprecation shim for the legacy combined allowlist.
    legacy = repo_root / "scripts" / "concurrency_allowlist.txt"
    if legacy.is_file():
        lines = legacy.read_text().splitlines()
        migrated = 0
        for idx, raw_line in enumerate(lines, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(":", 2)
            if len(parts) != 3:
                errors.append(f"{legacy}:{idx}: malformed legacy entry: "
                              f"{line}")
                continue
            path, rule_id, substring = parts
            targets = [rule_id] if rule_id != "*" else list(per_rule)
            known = False
            for target in targets:
                if target in per_rule:
                    per_rule[target].append(
                        (path, substring, f"{legacy}:{idx}"))
                    known = True
            if not known:
                errors.append(f"{legacy}:{idx}: legacy entry names unknown "
                              f"rule '{rule_id}'")
            migrated += 1
        if migrated:
            print(
                f"mmjoin_lint: warning: {legacy.name} is deprecated; move "
                f"its {migrated} entr{'y' if migrated == 1 else 'ies'} to "
                "scripts/allowlists/<rule>.txt",
                file=sys.stderr,
            )
    return per_rule, errors


def apply_allowlists(findings, per_rule):
    """Splits findings into (hard, suppressed) and appends a finding per
    stale allowlist entry."""
    used = set()
    hard, suppressed = [], []
    for finding in findings:
        entry = None
        for path, substring, origin in per_rule.get(finding.rule, []):
            if path != finding.path:
                continue
            if substring and substring not in finding.source_line:
                continue
            entry = origin
            break
        if entry is None:
            hard.append(finding)
        else:
            used.add(entry)
            suppressed.append(finding)

    for rule_id, entries in sorted(per_rule.items()):
        for path, substring, origin in entries:
            if origin in used:
                continue
            hard.append(
                Finding(
                    path,
                    0,
                    "allowlist-stale",
                    f"allowlist entry at {origin} (rule {rule_id}, "
                    f"substring {substring!r}) matches no current finding; "
                    "delete it",
                )
            )
    return hard, suppressed


# -------------------------------------------------------------------- runner


def run_rules(repo, rules):
    """Runs `rules` over `repo`. Returns (findings, {rule_id: seconds})."""
    findings = []
    timings = {}
    sources = None
    for rule in rules:
        start = time.monotonic()
        rule_findings = []
        if rule.scope == "file":
            if sources is None:
                sources = repo.sources()
            for sf in sources:
                rule.check(sf, rule_findings)
        else:
            rule.check(repo, rule_findings)
        for f in rule_findings:
            assert f.rule == rule.id, (
                f"rule {rule.id} emitted finding tagged {f.rule}")
        findings.extend(rule_findings)
        timings[rule.id] = time.monotonic() - start
    return findings, timings


# ----------------------------------------------------------------- self-test


def self_test(repo_root, rules, verbose=False):
    """Runs every rule against its fixtures under tests/lint/<rule-id>/.

    File-scope rules use bad*.cc / good*.cc fixture files (each carrying a
    `// lint-path:` directive for its virtual repo path); repo-scope rules
    use bad*/ and good*/ mini-repo directories. Every bad fixture must
    produce at least one finding OF THAT RULE, every good fixture none.
    Returns a list of failure strings (empty = pass).
    """
    failures = []
    fixtures_root = repo_root / "tests" / "lint"
    for rule in rules:
        rule_dir = fixtures_root / rule.id
        if not rule_dir.is_dir():
            failures.append(f"{rule.id}: no fixture directory {rule_dir}")
            continue
        ran_bad = ran_good = 0
        if rule.scope == "file":
            for fixture in sorted(rule_dir.glob("*.cc")) + sorted(
                rule_dir.glob("*.h")
            ):
                sf = cppmodel.SourceFile.load(fixture, repo_root)
                found = []
                rule.check(sf, found)
                found = [f for f in found if f.rule == rule.id]
                if fixture.name.startswith("bad"):
                    ran_bad += 1
                    if not found:
                        failures.append(
                            f"{rule.id}: {fixture.name} produced no "
                            f"{rule.id} finding (expected at least one)")
                    elif verbose:
                        for f in found:
                            print(f"  [self-test] {fixture.name}: {f}")
                else:
                    ran_good += 1
                    for f in found:
                        failures.append(
                            f"{rule.id}: {fixture.name} unexpectedly "
                            f"flagged: {f}")
        else:
            for fixture in sorted(p for p in rule_dir.iterdir()
                                  if p.is_dir()):
                repo = cppmodel.Repo(fixture)
                found = []
                rule.check(repo, found)
                found = [f for f in found if f.rule == rule.id]
                if fixture.name.startswith("bad"):
                    ran_bad += 1
                    if not found:
                        failures.append(
                            f"{rule.id}: fixture dir {fixture.name} "
                            f"produced no {rule.id} finding")
                    elif verbose:
                        for f in found:
                            print(f"  [self-test] {fixture.name}: {f}")
                else:
                    ran_good += 1
                    for f in found:
                        failures.append(
                            f"{rule.id}: fixture dir {fixture.name} "
                            f"unexpectedly flagged: {f}")
        if ran_bad == 0:
            failures.append(
                f"{rule.id}: no bad* fixture found in {rule_dir} -- every "
                "rule must prove it can fire")
    return failures
