"""layer-dag: the src/ include graph must respect the layer order.

The architecture is a DAG of directories; an #include edge may only point
at the SAME directory or a STRICTLY LOWER layer:

    rank 0  util                 (no dependencies)
    rank 1  obs                  (util)
    rank 2  mem                  (obs, util)
    rank 3  numa                 (mem and below)
    rank 4  thread, workload,    (numa and below; siblings may not
            memsim                include each other)
    rank 5  partition, hash,     (thread and below; siblings may not
            sort                  include each other)
    rank 6  join                 (partition/hash/sort and below)
    rank 7  exec                 (join and below)
    rank 8  core, tpch           (everything below; not each other)
    rank 9  service              (the multi-tenant join service, on top of
                                  core)

Same-RANK cross-directory edges are violations too: hash including sort
would silently merge two layers the build graph keeps separate. A new
directory must be added to LAYER_RANK here (and to the table in
docs/STATIC_ANALYSIS.md) before it can be included from anywhere -- an
include of an unranked directory is itself a finding, so the rule cannot
silently rot as the tree grows.
"""

import re

from .cppmodel import line_of
from .engine import Finding, register

LAYER_RANK = {
    "util": 0,
    "obs": 1,
    "mem": 2,
    "numa": 3,
    "thread": 4,
    "workload": 4,
    "memsim": 4,
    "partition": 5,
    "hash": 5,
    "sort": 5,
    "join": 6,
    "exec": 7,
    "core": 8,
    "tpch": 8,
    "service": 9,
}

INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]+"([^"]+)"',
                        re.MULTILINE)


@register("layer-dag", "file",
          "src/ #include edges must point same-dir or strictly down-layer")
def check_layer_dag(sf, findings):
    parts = sf.path.split("/")
    if len(parts) < 3 or parts[0] != "src":
        return  # not under a src/<dir>/ layer
    my_dir = parts[1]
    my_rank = LAYER_RANK.get(my_dir)
    if my_rank is None:
        lineno = 1
        findings.append(Finding(
            sf.path, lineno, "layer-dag",
            f"directory 'src/{my_dir}/' has no layer rank; add it to "
            "LAYER_RANK in scripts/mmjoin_lint/rules_layers.py and to the "
            "layer table in docs/STATIC_ANALYSIS.md",
            sf.line(lineno)))
        return
    # Quoted includes resolve against -Isrc, so the first path component is
    # the target layer directory. (System includes use <> and are exempt.)
    # Scans code_str: comments are stripped (a commented-out include is not
    # an edge) but the include path string must survive.
    for m in INCLUDE_RE.finditer(sf.code_str):
        target = m.group(1)
        target_dir = target.split("/", 1)[0]
        if "/" not in target:
            continue  # same-directory relative include, not layered
        target_rank = LAYER_RANK.get(target_dir)
        lineno = line_of(sf.code_str, m.start())
        if target_rank is None:
            findings.append(Finding(
                sf.path, lineno, "layer-dag",
                f"include of unranked directory '{target_dir}/'; add it to "
                "LAYER_RANK in scripts/mmjoin_lint/rules_layers.py",
                sf.line(lineno)))
            continue
        if target_dir == my_dir:
            continue
        if target_rank >= my_rank:
            relation = ("an upper layer" if target_rank > my_rank
                        else "a same-rank sibling layer")
            findings.append(Finding(
                sf.path, lineno, "layer-dag",
                f"src/{my_dir}/ (rank {my_rank}) includes "
                f"\"{target}\" from {relation} "
                f"(src/{target_dir}/, rank {target_rank}); the layer DAG "
                "only allows same-directory or strictly lower includes",
                sf.line(lineno)))
