"""Shared C++ source model for mmjoin lint rules.

Nothing here parses C++; the rules work on regular expressions over
*stripped* views of each translation unit. Two views cover every rule's
needs, both offset-preserving (newlines survive, every replaced character
becomes a space) so `line_of` works on any view:

  code        comments AND string/char literals blanked -- for structural
              rules that must not trip over prose or literals.
  code_str    only comments blanked, literals kept -- for registry rules
              that need the actual name literals out of macro invocations.

A SourceFile bundles the raw text, both stripped views, and the raw lines;
a Repo is the lazily-loaded set of SourceFiles under a root directory.
"""

import pathlib
import re

SOURCE_SUFFIXES = (".cc", ".h")

# Fixture files declare the path the rules should believe they have, e.g.
#   // lint-path: src/join/bad_barrier.cc
# so path-scoped rules can be exercised from tests/lint/ without the fixture
# actually living in src/.
LINT_PATH_RE = re.compile(r"^//\s*lint-path:\s*(\S+)\s*$", re.MULTILINE)


def _strip(text, strip_strings):
    """Blanks comments (and optionally string/char literals), preserving
    offsets and newlines so line numbers survive."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (
                text[i] == "*" and i + 1 < n and text[i + 1] == "/"
            ):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            if strip_strings:
                out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    if strip_strings:
                        out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n" and strip_strings:
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n" and strip_strings:
                    out[i] = " "
                i += 1
            if i < n:
                if strip_strings:
                    out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def strip_comments_and_strings(text):
    return _strip(text, strip_strings=True)


def strip_comments(text):
    return _strip(text, strip_strings=False)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def matching_paren_end(text, open_paren):
    depth = 0
    i = open_paren
    n = len(text)
    while i < n:
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n - 1


LOOP_HEAD_RE = re.compile(r"\b(for|while)\s*\(")
DO_RE = re.compile(r"\bdo\s*\{")


def loop_body_spans(text):
    """Yields (start, end) offsets of the brace-delimited bodies of
    for/while/do loops. Braceless single-statement loops are ignored (they
    cannot hide much) -- this is a lint, not a parser."""
    spans = []
    for m in LOOP_HEAD_RE.finditer(text):
        open_paren = text.index("(", m.end() - 1)
        close_paren = matching_paren_end(text, open_paren)
        i = close_paren + 1
        while i < len(text) and text[i] in " \t\n":
            i += 1
        if i < len(text) and text[i] == "{":
            depth = 0
            j = i
            while j < len(text):
                if text[j] == "{":
                    depth += 1
                elif text[j] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            spans.append((i, j))
    for m in DO_RE.finditer(text):
        i = text.index("{", m.start())
        depth = 0
        j = i
        while j < len(text):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        spans.append((i, j))
    return spans


class SourceFile:
    """One translation unit: raw text plus the two stripped views.

    `path` is the repo-relative posix path the rules key their scoping off
    (src/join/..., src/exec/...). For fixtures it comes from the
    `// lint-path:` directive; for real files from the location on disk.
    """

    def __init__(self, path, raw, disk_path=None):
        self.path = path
        self.disk_path = disk_path  # pathlib.Path or None (for display only)
        self.raw = raw
        self.raw_lines = raw.splitlines()
        self.code = strip_comments_and_strings(raw)
        self.code_str = strip_comments(raw)

    @classmethod
    def load(cls, disk_path, repo_root):
        raw = disk_path.read_text(encoding="utf-8", errors="replace")
        directive = LINT_PATH_RE.search(raw)
        if directive:
            rel = directive.group(1)
        else:
            try:
                rel = disk_path.resolve().relative_to(repo_root).as_posix()
            except ValueError:
                s = disk_path.as_posix()
                rel = "src/" + s.split("/src/", 1)[1] if "/src/" in s else s
        return cls(rel, raw, disk_path=disk_path)

    def line(self, lineno):
        if 1 <= lineno <= len(self.raw_lines):
            return self.raw_lines[lineno - 1].strip()
        return ""


class Repo:
    """A lint target: a directory with (subsets of) the repo layout.

    The real repository and each repo-scoped fixture directory under
    tests/lint/ are both Repos; rules must only assume the pieces they
    check exist (`read_text` returns None for a missing file).
    """

    def __init__(self, root):
        self.root = pathlib.Path(root).resolve()
        self._sources = None

    def sources(self):
        if self._sources is None:
            self._sources = []
            src = self.root / "src"
            if src.is_dir():
                for p in sorted(src.rglob("*")):
                    if p.suffix in SOURCE_SUFFIXES:
                        self._sources.append(SourceFile.load(p, self.root))
        return self._sources

    def read_text(self, rel):
        p = self.root / rel
        if not p.is_file():
            return None
        return p.read_text(encoding="utf-8", errors="replace")
