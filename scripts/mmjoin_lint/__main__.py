"""mmjoin_lint CLI.

    python3 scripts/mmjoin_lint --all              # every rule over the repo
    python3 scripts/mmjoin_lint --rule layer-dag   # one rule (repeatable)
    python3 scripts/mmjoin_lint --list             # rule catalogue
    python3 scripts/mmjoin_lint --self-test        # fixtures under tests/lint/
    python3 scripts/mmjoin_lint --root DIR         # lint another tree

Exit codes: 0 clean, 1 findings (or failed self-test), 2 usage/config
errors (malformed allowlists, unknown rule ids).

Findings print as `file:line: [rule] message`. Per-rule wall time prints
to stderr after every run so CI surfaces which rule got slow.
"""

import argparse
import pathlib
import sys

if __package__ in (None, ""):
    # Executed as `python3 scripts/mmjoin_lint`: the directory itself is on
    # sys.path but the package is not importable. Put scripts/ there and
    # re-enter through the package so relative imports inside it work.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from mmjoin_lint import cppmodel, engine  # noqa: E402
else:
    from . import cppmodel, engine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="mmjoin_lint",
        description="stdlib-only multi-rule static analysis for mmjoin")
    parser.add_argument("--all", action="store_true",
                        help="run every registered rule (default)")
    parser.add_argument("--rule", action="append", default=[],
                        metavar="ID", help="run one rule; repeatable")
    parser.add_argument("--list", action="store_true",
                        help="list rules and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run every rule against tests/lint/ fixtures")
    parser.add_argument("--root", type=pathlib.Path, default=REPO_ROOT,
                        help="repository root to lint (default: this repo)")
    parser.add_argument("--no-allowlist", action="store_true",
                        help="ignore allowlists (report everything)")
    parser.add_argument("--verbose", action="store_true",
                        help="self-test: print the findings each bad "
                             "fixture produced")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary and timing lines")
    args = parser.parse_args(argv)

    rules_by_id = engine.all_rules()

    if args.list:
        width = max(len(r) for r in rules_by_id)
        for rule_id in sorted(rules_by_id):
            rule = rules_by_id[rule_id]
            print(f"{rule_id:<{width}}  [{rule.scope}]  {rule.doc}")
        return 0

    if args.rule:
        unknown = [r for r in args.rule if r not in rules_by_id]
        if unknown:
            print(f"mmjoin_lint: unknown rule id(s): {', '.join(unknown)} "
                  "(see --list)", file=sys.stderr)
            return 2
        selected = [rules_by_id[r] for r in args.rule]
    else:
        selected = [rules_by_id[r] for r in sorted(rules_by_id)]

    if args.self_test:
        failures = engine.self_test(args.root, selected,
                                    verbose=args.verbose)
        if failures:
            for failure in failures:
                print(f"self-test FAIL: {failure}")
            print(f"mmjoin_lint --self-test: {len(failures)} failure(s) "
                  f"across {len(selected)} rule(s)", file=sys.stderr)
            return 1
        if not args.quiet:
            print(f"mmjoin_lint --self-test: {len(selected)} rule(s) OK",
                  file=sys.stderr)
        return 0

    repo = cppmodel.Repo(args.root)
    findings, timings = engine.run_rules(repo, selected)

    if args.no_allowlist:
        hard, suppressed = findings, []
    else:
        per_rule, errors = engine.load_allowlists(
            args.root, list(rules_by_id))
        if errors:
            for error in errors:
                print(f"mmjoin_lint: allowlist error: {error}",
                      file=sys.stderr)
            return 2
        # Only apply entries for rules actually selected; stale detection
        # would misfire for entries of rules that did not run.
        selected_ids = {rule.id for rule in selected}
        per_rule = {rid: entries for rid, entries in per_rule.items()
                    if rid in selected_ids}
        hard, suppressed = engine.apply_allowlists(findings, per_rule)

    for finding in sorted(hard, key=lambda f: (f.path, f.line, f.rule)):
        print(finding)

    if not args.quiet:
        print(
            f"mmjoin_lint: {len(hard)} finding(s), "
            f"{len(suppressed)} allowlisted, {len(selected)} rule(s)",
            file=sys.stderr)
        for rule_id in sorted(timings, key=timings.get, reverse=True):
            print(f"  {timings[rule_id] * 1000:8.1f} ms  {rule_id}",
                  file=sys.stderr)
    return 1 if hard else 0


if __name__ == "__main__":
    sys.exit(main())
