"""Concurrency rules, ported from the original scripts/lint_concurrency.py.

Same regexes and heuristics; only the plumbing changed (SourceFile views,
per-rule allowlists). Rule-by-rule rationale lives in
docs/STATIC_ANALYSIS.md.
"""

import re

from .cppmodel import line_of, loop_body_spans, matching_paren_end
from .engine import Finding, register

ATOMIC_CALL_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_strong|compare_exchange_weak|wait|"
    r"test_and_set|clear)\s*\("
)
ATOMIC_DECL_RE = re.compile(
    r"std\s*::\s*atomic\s*<[^<>]*(?:<[^<>]*>)?[^<>]*>\s+(\w+)")
RAW_THREAD_RE = re.compile(r"std\s*::\s*thread\b")
HW_CONCURRENCY_RE = re.compile(r"std\s*::\s*thread\s*::\s*hardware_concurrency")
ALLOC_RE = re.compile(r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(")
RAND_RE = re.compile(r"(?:std\s*::\s*)?\b(rand|srand|random|srandom|drand48)\s*\(")
SYSTEM_CLOCK_RE = re.compile(r"std\s*::\s*chrono\s*::\s*system_clock")
PADDED_STRUCT_RE = re.compile(r"struct\s+alignas\(kCacheLineSize\)\s+(\w+)")
DEQUE_DECL_RE = re.compile(r"std\s*::\s*deque\s*<")
ESCAPE_RE = re.compile(r"MMJOIN_NO_THREAD_SAFETY_ANALYSIS")
EXEC_CONTAINER_RE = re.compile(
    r"std\s*::\s*(?:vector|deque|unordered_map|unordered_set|map|set|"
    r"array)\s*<"
)
# Member declarations follow the trailing-underscore convention; locals,
# parameters, and return types never match.
EXEC_MEMBER_RE = re.compile(r"[>*&]\s*(\w+_)\s*(?:;|=|\{|MMJOIN_GUARDED_BY)")
OWNERSHIP_WORDS = ("single-owner", "per-thread", "read-only")
# Trailing-underscore integral members; `std::atomic<uint64_t> x_` cannot
# match because '>' (not whitespace) follows the integral type name.
BUDGET_MEMBER_RE = re.compile(
    r"\b(?:uint64_t|uint32_t|int64_t|int32_t|std\s*::\s*size_t|size_t)"
    r"\s+(\w+_)\s*(?:;|=|\{)"
)


@register("atomic-order", "file",
          "std::atomic accesses must name an explicit std::memory_order")
def check_atomic_order(sf, findings):
    text = sf.code
    # Explicit-call form: .load(...), .fetch_add(...), ...
    for m in ATOMIC_CALL_RE.finditer(text):
        open_paren = text.index("(", m.end() - 1)
        end = matching_paren_end(text, open_paren)
        call = text[m.start(): end + 1]
        # Heuristic gate: we cannot type-check, so only *require* the order
        # on the unambiguous RMW/load/store names.
        method = m.group(1)
        if method in ("wait", "test_and_set", "clear"):
            continue  # too many non-atomic APIs share these names
        if "memory_order" not in call:
            lineno = line_of(text, m.start())
            findings.append(Finding(
                sf.path, lineno, "atomic-order",
                f"atomic .{method}() without an explicit std::memory_order",
                sf.line(lineno)))
    # Operator sugar on variables declared std::atomic in this file:
    # ++x / x++ / x += / x -= / x |= / x &= / x ^= / x = value.
    # Only BARE identifier uses are checked (not `obj.name` / `p->name`):
    # without types we cannot tell an atomic member from a plain struct
    # field that happens to share its name.
    names = set(ATOMIC_DECL_RE.findall(text))
    for name in names:
        sugar = re.compile(
            r"(?:\+\+|--)\s*" + re.escape(name) + r"\b(?!\s*[.\[])"
            r"|(?<![\w.>])" + re.escape(name) +
            r"\s*(?:\+\+|--|\+=|-=|\|=|&=|\^=|=(?![=]))"
        )
        for m in sugar.finditer(text):
            # Skip declarations/initializations: 'std::atomic<T> name = ...',
            # 'uint64_t name = 0;' (same-named plain local), and references/
            # pointers ('auto& name = ...').
            prefix = text[max(0, m.start() - 120): m.start()]
            last_line = prefix.rsplit("\n", 1)[-1].rstrip()
            if ("atomic" in last_line or
                    last_line.endswith((">", "&", "*")) or
                    (last_line and last_line[-1].isalnum() or
                     last_line.endswith("_"))):
                continue
            lineno = line_of(text, m.start())
            findings.append(Finding(
                sf.path, lineno, "atomic-order",
                f"operator on std::atomic '{name}' uses implicit seq_cst; "
                "use .load/.store/.fetch_* with an explicit order",
                sf.line(lineno)))


@register("raw-thread", "file",
          "no raw std::thread outside src/thread/ (use thread::Executor)")
def check_raw_thread(sf, findings):
    if sf.path.startswith("src/thread/"):
        return
    text = sf.code
    for m in RAW_THREAD_RE.finditer(text):
        if HW_CONCURRENCY_RE.match(text, m.start()):
            continue
        lineno = line_of(text, m.start())
        findings.append(Finding(
            sf.path, lineno, "raw-thread",
            "raw std::thread outside src/thread/; use thread::Executor",
            sf.line(lineno)))


@register("join-loop-alloc", "file",
          "no heap allocation inside loop bodies in src/join/")
def check_join_loop_alloc(sf, findings):
    if not sf.path.startswith("src/join/"):
        return
    text = sf.code
    spans = loop_body_spans(text)
    if not spans:
        return
    for m in ALLOC_RE.finditer(text):
        pos = m.start()
        if not any(start <= pos <= end for start, end in spans):
            continue
        lineno = line_of(text, pos)
        findings.append(Finding(
            sf.path, lineno, "join-loop-alloc",
            "heap allocation inside a join-phase loop; hoist it and "
            "allocate through mem/ or numa/ before the timed region",
            sf.line(lineno)))


@register("nondeterminism", "file",
          "no libc rand / system_clock in src/ (util/rng.h, util/timer.h)")
def check_nondeterminism(sf, findings):
    if sf.path.startswith("src/util/rng"):
        return
    text = sf.code
    for m in RAND_RE.finditer(text):
        lineno = line_of(text, m.start())
        findings.append(Finding(
            sf.path, lineno, "nondeterminism",
            f"libc '{m.group(1)}' in src/; use util/rng.h (seeded, "
            "reproducible)",
            sf.line(lineno)))
    for m in SYSTEM_CLOCK_RE.finditer(text):
        lineno = line_of(text, m.start())
        findings.append(Finding(
            sf.path, lineno, "nondeterminism",
            "std::chrono::system_clock in src/; timed regions use the "
            "monotonic NowNanos() from util/timer.h",
            sf.line(lineno)))


@register("padded-assert", "file",
          "alignas(kCacheLineSize) structs need a static_assert in-file")
def check_padded_assert(sf, findings):
    text = sf.code
    for m in PADDED_STRUCT_RE.finditer(text):
        name = m.group(1)
        assert_re = re.compile(
            r"static_assert\s*\([^;]*\b" + re.escape(name) + r"\b",
            re.DOTALL)
        if not assert_re.search(text):
            lineno = line_of(text, m.start())
            findings.append(Finding(
                sf.path, lineno, "padded-assert",
                f"struct '{name}' is alignas(kCacheLineSize) but has no "
                "static_assert checking its size/alignment",
                sf.line(lineno)))


@register("deque-guard", "file",
          "std::deque declarations must carry MMJOIN_GUARDED_BY")
def check_deque_guard(sf, findings):
    if not sf.path.startswith("src/"):
        return
    text = sf.code
    for m in DEQUE_DECL_RE.finditer(text):
        # The declaration statement runs to the next ';'; the annotation
        # must sit inside it ('std::deque<T> q MMJOIN_GUARDED_BY(mu);').
        end = text.find(";", m.start())
        stmt = text[m.start(): end if end != -1 else len(text)]
        if "MMJOIN_GUARDED_BY" in stmt:
            continue
        lineno = line_of(text, m.start())
        findings.append(Finding(
            sf.path, lineno, "deque-guard",
            "std::deque without MMJOIN_GUARDED_BY; annotate which mutex "
            "protects it (work-stealing shards are the template)",
            sf.line(lineno)))


@register("exec-guard", "file",
          "src/exec/ container members need a guard or ownership comment")
def check_exec_guard(sf, findings):
    if not sf.path.startswith("src/exec/"):
        return
    text = sf.code
    for m in EXEC_CONTAINER_RE.finditer(text):
        lineno = line_of(text, m.start())
        line_end = text.find("\n", m.start())
        decl = text[m.start(): line_end if line_end != -1 else len(text)]
        member = EXEC_MEMBER_RE.search(decl)
        if not member:
            continue  # local, parameter, or return type -- not member state
        if "MMJOIN_GUARDED_BY" in decl:
            continue
        window = " ".join(
            sf.line(l) for l in (lineno - 2, lineno - 1, lineno))
        if any(word in window for word in OWNERSHIP_WORDS):
            continue
        findings.append(Finding(
            sf.path, lineno, "exec-guard",
            f"container member '{member.group(1)}' in src/exec/ without "
            "MMJOIN_GUARDED_BY or an ownership comment "
            "(single-owner / per-thread / read-only)",
            sf.line(lineno)))


@register("budget-guard", "file",
          "src/mem/budget* integral members need atomic/const/guard/comment")
def check_budget_guard(sf, findings):
    if not sf.path.startswith("src/mem/budget"):
        return
    text = sf.code
    for m in BUDGET_MEMBER_RE.finditer(text):
        lineno = line_of(text, m.start())
        line_start = text.rfind("\n", 0, m.start()) + 1
        line_end = text.find("\n", m.start())
        decl = text[line_start: line_end if line_end != -1 else len(text)]
        if "const" in decl or "MMJOIN_GUARDED_BY" in decl:
            continue
        window = " ".join(
            sf.line(l) for l in (lineno - 2, lineno - 1, lineno))
        if any(word in window for word in OWNERSHIP_WORDS):
            continue
        findings.append(Finding(
            sf.path, lineno, "budget-guard",
            f"integral member '{m.group(1)}' in src/mem/budget* is "
            "neither std::atomic, const, MMJOIN_GUARDED_BY-annotated, "
            "nor ownership-commented (single-owner / per-thread / "
            "read-only); shared budget counters race",
            sf.line(lineno)))


@register("bare-escape", "file",
          "MMJOIN_NO_THREAD_SAFETY_ANALYSIS needs an explanatory comment")
def check_bare_escape(sf, findings):
    # Runs over the RAW text (comments matter here).
    if sf.path.endswith("util/annotations.h"):
        return  # the definition site
    for m in ESCAPE_RE.finditer(sf.raw):
        lineno = line_of(sf.raw, m.start())
        this_line = sf.line(lineno)
        prev_line = sf.line(lineno - 1)
        if "//" in this_line.split("MMJOIN_NO_THREAD_SAFETY_ANALYSIS")[-1] \
                or prev_line.startswith("//"):
            continue
        findings.append(Finding(
            sf.path, lineno, "bare-escape",
            "MMJOIN_NO_THREAD_SAFETY_ANALYSIS without an explanatory "
            "comment on the same or preceding line",
            this_line))
