"""barrier-protocol: the check-before-barrier / test-after-barrier idiom.

Join workers synchronize with barriers, so a worker that fails cannot just
return -- its teammates would deadlock (docs/ROBUSTNESS.md, "Failing under
a barrier protocol"). The discipline the kernels follow:

  * a worker that fails records the error in the shared JoinAbort
    (abort.Set(status)), STILL arrives at the barrier, and
  * every worker tests abort.IsSet() after the barrier before continuing.

Two textual checks approximate that protocol in src/join/ TUs:

  abort-test    for every `ArriveAndWait()` whose preceding barrier
                segment performs an abort Set (`abort.Set(` /
                `abort->Set(`), an `IsSet()` test must appear within a few
                lines after the barrier. A Set that is published at a
                barrier nobody re-checks is a join that continues past its
                own failure.

  failpoint-escape  every phase failpoint evaluation
                (`<Phase>AllocFailpoint()`) must have its failure
                propagated within the same statement window: a `return`
                (serial/driver paths) or an abort `Set(` (worker paths).
                An unconsumed failpoint evaluates the fault and then runs
                the phase anyway, which is exactly the bug fault-injection
                tests exist to catch. WaveBudgetFailpoint is exempt: it
                triggers a degradation (spill waves), not an error.

Both checks are heuristics over stripped text; they bound the idiom, not
the semantics -- the fault-matrix tests prove the behavior, this rule
keeps new barrier code from silently skipping the idiom.
"""

import re

from .cppmodel import line_of
from .engine import Finding, register

RULE = "barrier-protocol"

BARRIER_RE = re.compile(r"\bArriveAndWait\s*\(\s*\)")
ABORT_SET_RE = re.compile(r"\babort\s*(?:\.|->)\s*Set\s*\(")
IS_SET_RE = re.compile(r"\bIsSet\s*\(\s*\)")
PHASE_FAILPOINT_RE = re.compile(
    r"\b(Partition|Build|Probe|Materialize)AllocFailpoint\s*\(\s*\)")
# A prototype (`bool BuildAllocFailpoint();`) declares, it does not
# evaluate -- only call sites owe a consequence.
PROTOTYPE_RE = re.compile(
    r"^\s*(?:static\s+|inline\s+)*bool\s+"
    r"(?:Partition|Build|Probe|Materialize)AllocFailpoint\s*\(\s*\)\s*;")

# How many lines after a barrier the IsSet test may sit. The idiom is
# `barrier.ArriveAndWait(); if (abort.IsSet()) return;` possibly with a
# blank line or a `if (!abort.IsSet()) {` guard in between.
POST_BARRIER_WINDOW = 4
# How many lines after a failpoint evaluation its consequence must appear.
FAILPOINT_WINDOW = 3


@register(RULE, "file",
          "src/join/ barriers after an abort Set need an IsSet test; "
          "phase failpoints must propagate")
def check_barrier_protocol(sf, findings):
    if not sf.path.startswith("src/join/"):
        return
    text = sf.code
    lines = text.splitlines()

    # A barrier's "preceding segment" runs back to the previous barrier or
    # to the entry of the worker lambda, whichever is closer -- an abort
    # Set in a *different* dispatch body has nothing to do with this
    # barrier.
    lambda_entries = [lm.start()
                      for lm in re.finditer(r"WorkerContext", text)]
    barriers = list(BARRIER_RE.finditer(text))
    prev_end = 0
    for m in barriers:
        seg_start = prev_end
        for entry in lambda_entries:
            if seg_start < entry < m.start():
                seg_start = entry
        segment = text[seg_start:m.start()]
        prev_end = m.end()
        if not ABORT_SET_RE.search(segment):
            continue
        barrier_line = line_of(text, m.start())
        window = "\n".join(
            lines[barrier_line - 1: barrier_line - 1 + POST_BARRIER_WINDOW])
        if IS_SET_RE.search(window):
            continue
        findings.append(Finding(
            sf.path, barrier_line, RULE,
            "barrier follows an abort Set but no IsSet() test appears "
            f"within {POST_BARRIER_WINDOW} lines after it; workers must "
            "test-after-barrier or they run past a published failure",
            sf.line(barrier_line)))

    for m in PHASE_FAILPOINT_RE.finditer(text):
        fp_line = line_of(text, m.start())
        if PROTOTYPE_RE.match(lines[fp_line - 1]):
            continue
        window = "\n".join(lines[fp_line - 1: fp_line - 1 + FAILPOINT_WINDOW])
        if re.search(r"\breturn\b", window) or re.search(
                r"(?:\.|->)\s*Set\s*\(", window):
            continue
        findings.append(Finding(
            sf.path, fp_line, RULE,
            f"{m.group(1)}AllocFailpoint() result is not consumed within "
            f"{FAILPOINT_WINDOW} lines (no return, no abort Set); the "
            "injected fault would be evaluated and then ignored",
            sf.line(fp_line)))
