"""Status discipline rules.

The compiler half of the story is `class [[nodiscard]] Status` /
`class [[nodiscard]] StatusOr` in src/util/status.h: every by-value
Status(Or) return that is silently dropped becomes a -Wunused-result
warning. The lint half keeps that contract honest:

  status-nodiscard   the [[nodiscard]] attributes must stay on both class
                     declarations in src/util/status.h. Removing one would
                     silently disarm the whole sweep; the compiler has no
                     opinion about its own warning being turned off.
  status-discard     a deliberate discard is spelled `(void)call(...);` and
                     must carry a justification comment on the same or the
                     preceding line. Bare `(void)identifier;` (the classic
                     unused-parameter silencer) is exempt -- it discards a
                     value that already exists, not a Status-bearing call.
"""

import re

from .cppmodel import line_of
from .engine import Finding, register

# `(void)` followed by something that looks like a call: an optional
# `::`-qualified identifier chain then '('. The .5s of lookahead text is
# plenty -- discards are single expressions.
VOID_CALL_RE = re.compile(
    r"\(\s*void\s*\)\s*(?:::)?[A-Za-z_][\w:><.\->]*\s*\(")
NODISCARD_STATUS_RE = re.compile(r"class\s+\[\[nodiscard\]\]\s+Status\b")
NODISCARD_STATUSOR_RE = re.compile(
    r"class\s+\[\[nodiscard\]\]\s+StatusOr\b")


@register("status-nodiscard", "file",
          "util/status.h must keep [[nodiscard]] on Status and StatusOr")
def check_status_nodiscard(sf, findings):
    if not sf.path.endswith("util/status.h"):
        return
    for name, pattern in (("Status", NODISCARD_STATUS_RE),
                          ("StatusOr", NODISCARD_STATUSOR_RE)):
        if not pattern.search(sf.code):
            findings.append(Finding(
                sf.path, 1, "status-nodiscard",
                f"class {name} in util/status.h is missing [[nodiscard]]; "
                "the ignored-return sweep depends on it",
                sf.line(1)))


@register("status-discard", "file",
          "`(void)call(...)` discards need a justification comment")
def check_status_discard(sf, findings):
    if not sf.path.startswith("src/"):
        return
    for m in VOID_CALL_RE.finditer(sf.code):
        lineno = line_of(sf.code, m.start())
        this_line = sf.line(lineno)
        prev_line = sf.line(lineno - 1)
        # The comment may trail the discard on the same line or occupy the
        # preceding line; checked on the RAW lines (comments live there).
        if "//" in this_line or prev_line.startswith("//"):
            continue
        findings.append(Finding(
            sf.path, lineno, "status-discard",
            "`(void)` discard of a call result without a justification "
            "comment on the same or preceding line; say why dropping the "
            "result is safe",
            this_line))
