#!/usr/bin/env bash
# Asserts that the compiled-in observability layer costs nothing when it is
# disabled (the default). Two complementary checks back that claim:
#
#  * Per-site: ObsTest.DisabledScopeCostIsNanoseconds bounds a disabled
#    ObsScope directly (one relaxed load + predicted branches, single-digit
#    nanoseconds per site -- a few dozen sites per join, so far under 1%).
#  * End-to-end (this script): two NOPA reference runs of the instrumented
#    binary with observability disabled must agree within 1% plus an
#    absolute noise floor. A regression on the disabled path (accidental
#    recording, allocation, or a syscall per site) is orders of magnitude
#    above that band; agreement shows the instrumented binary's timing is
#    indistinguishable from noise.
#
# Usage: check_obs_overhead.sh [BINARY_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
RUN_JOIN="$BUILD_DIR/examples/run_join"
if [ ! -x "$RUN_JOIN" ]; then
  echo "check_obs_overhead: $RUN_JOIN not built" >&2
  exit 1
fi

# Small enough to finish quickly on a CI runner, large enough that the total
# is dominated by join work rather than process startup. --repeat keeps the
# fastest of N runs, which strips scheduler outliers on shared hosts.
ARGS=(--join=NOPA --build=1000000 --probe=4000000 --threads=2 --repeat=5)

total_ns() {
  # "  total      : 12.34 ms" -> nanoseconds
  awk '/^  total/ { printf "%.0f", $3 * 1e6 }'
}

baseline=$("$RUN_JOIN" "${ARGS[@]}" | total_ns)
reference=$("$RUN_JOIN" "${ARGS[@]}" | total_ns)

if [ -z "$baseline" ] || [ -z "$reference" ] \
    || [ "$baseline" -le 0 ] || [ "$reference" -le 0 ]; then
  echo "check_obs_overhead: could not parse run_join output" >&2
  exit 1
fi

# 1% relative tolerance with a 5 ms absolute floor: at the smoke-test sizes
# CI uses, a 1% band alone would be below timer/scheduler noise.
delta=$((reference - baseline)); [ "$delta" -lt 0 ] && delta=$((-delta))
allowed=$((baseline / 100))
floor=5000000
[ "$allowed" -lt "$floor" ] && allowed=$floor

echo "check_obs_overhead: baseline=${baseline}ns reference=${reference}ns" \
     "delta=${delta}ns allowed=${allowed}ns"
if [ "$delta" -gt "$allowed" ]; then
  echo "check_obs_overhead: disabled-path overhead exceeds tolerance" >&2
  exit 1
fi
echo "check_obs_overhead: OK (disabled observability is free)"
