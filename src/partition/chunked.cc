#include "partition/chunked.h"

#include "mem/aligned_alloc.h"
#include "mem/nt_store.h"
#include "thread/thread_team.h"

namespace mmjoin::partition {

ChunkedRadixPartitioner::ChunkedRadixPartitioner(numa::NumaSystem* system,
                                                 const RadixOptions& options,
                                                 ConstTupleSpan input,
                                                 TupleSpan output)
    : system_(system), options_(options), input_(input), output_(output) {
  MMJOIN_CHECK(input.size() == output.size());
  layout_.num_partitions = options.fn.num_partitions();
  layout_.num_chunks = options.num_threads;
  layout_.fragment_offsets.assign(
      static_cast<std::size_t>(options.num_threads) * layout_.num_partitions,
      0);
  layout_.fragment_sizes.assign(layout_.fragment_offsets.size(), 0);
}

void ChunkedRadixPartitioner::PartitionChunk(int tid, int thread_node) {
  const thread::Range range =
      thread::ChunkRange(input_.size(), options_.num_threads, tid);
  const RadixFn fn = options_.fn;
  const uint32_t num_partitions = layout_.num_partitions;
  Tuple* out = output_.data();

  system_->CountRead(thread_node, input_.data() + range.begin,
                     range.size() * sizeof(Tuple));

  // Local histogram.
  uint64_t* sizes =
      &layout_.fragment_sizes[static_cast<std::size_t>(tid) * num_partitions];
  for (std::size_t i = range.begin; i < range.end; ++i) {
    ++sizes[fn(input_[i].key)];
  }

  // Local prefix sum inside this thread's output chunk.
  uint64_t* offsets = &layout_.fragment_offsets[static_cast<std::size_t>(tid) *
                                                num_partitions];
  uint64_t running = range.begin;
  for (uint32_t p = 0; p < num_partitions; ++p) {
    offsets[p] = running;
    running += sizes[p];
  }
  MMJOIN_CHECK(running == range.end);

  const bool accounting = system_->accounting_enabled();

  if (!options_.use_swwcb) {
    std::vector<uint64_t> cursor(offsets, offsets + num_partitions);
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const Tuple t = input_[i];
      const uint64_t pos = cursor[fn(t.key)]++;
      out[pos] = t;
      if (MMJOIN_UNLIKELY(accounting)) {
        system_->CountWrite(thread_node, out + pos, sizeof(Tuple));
      }
    }
    return;
  }

  mem::AlignedBuffer<CacheLineBuffer> buffers(num_partitions,
                                              mem::PagePolicy::kDefault);
  std::vector<ScatterCursor> cursors(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    cursors[p] = ScatterCursor{offsets[p], offsets[p]};
  }
  for (std::size_t i = range.begin; i < range.end; ++i) {
    const Tuple t = input_[i];
    const uint32_t p = fn(t.key);
    if (MMJOIN_UNLIKELY(accounting)) {
      const uint64_t pos = cursors[p].next;
      if ((pos & (kTuplesPerCacheLine - 1)) == kTuplesPerCacheLine - 1) {
        system_->CountWrite(thread_node,
                            out + (pos - (kTuplesPerCacheLine - 1)),
                            kCacheLineSize);
      }
    }
    SwwcbPush(out, buffers.data(), cursors.data(), p, t);
  }
  for (uint32_t p = 0; p < num_partitions; ++p) {
    if (MMJOIN_UNLIKELY(accounting)) {
      const uint64_t line_base =
          cursors[p].next & ~uint64_t{kTuplesPerCacheLine - 1};
      const uint64_t begin =
          line_base > cursors[p].start ? line_base : cursors[p].start;
      if (cursors[p].next > begin) {
        system_->CountWrite(thread_node, out + begin,
                            (cursors[p].next - begin) * sizeof(Tuple));
      }
    }
    SwwcbDrain(out, buffers.data(), cursors.data(), p);
  }
  mem::StreamFence();
}

}  // namespace mmjoin::partition
