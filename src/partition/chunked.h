// Chunked parallel radix partitioning (CPRL/CPRA, paper Section 6.1,
// Figures 4(c) and 4(d)).
//
// Unlike the global variant there is no histogram merge and no global
// offsets: each thread radix-partitions its own input chunk *into its own
// same-sized output chunk* using only its local histogram. Because the
// output array is placed chunked-round-robin over NUMA nodes (matching the
// thread placement), every partition write is node-local -- the algorithm
// trades the global variant's small random remote writes for large
// sequential remote reads in the join phase.
//
// A partition is then the union of per-chunk fragments; ChunkedLayout
// records fragment offsets so the join phase can iterate a partition across
// all chunks.

#ifndef MMJOIN_PARTITION_CHUNKED_H_
#define MMJOIN_PARTITION_CHUNKED_H_

#include <cstdint>
#include <vector>

#include "numa/system.h"
#include "partition/radix.h"
#include "util/types.h"

namespace mmjoin::partition {

struct ChunkedLayout {
  uint32_t num_partitions = 0;
  int num_chunks = 0;
  // fragment_offsets[c * P + p] = first output index of chunk c's fragment
  // of partition p; fragment ends where the next fragment begins
  // (fragment_sizes keeps the length explicitly).
  std::vector<uint64_t> fragment_offsets;
  std::vector<uint64_t> fragment_sizes;

  uint64_t FragmentOffset(int chunk, uint32_t p) const {
    return fragment_offsets[static_cast<std::size_t>(chunk) * num_partitions +
                            p];
  }
  uint64_t FragmentSize(int chunk, uint32_t p) const {
    return fragment_sizes[static_cast<std::size_t>(chunk) * num_partitions +
                          p];
  }
  uint64_t PartitionSize(uint32_t p) const {
    uint64_t total = 0;
    for (int c = 0; c < num_chunks; ++c) total += FragmentSize(c, p);
    return total;
  }
};

// Orchestrates chunked partitioning; phases as in GlobalRadixPartitioner but
// there is no cross-thread offset phase -- callers only need one barrier
// after PartitionChunk before consuming the layout.
class ChunkedRadixPartitioner {
 public:
  ChunkedRadixPartitioner(numa::NumaSystem* system,
                          const RadixOptions& options, ConstTupleSpan input,
                          TupleSpan output);

  // Runs histogram + local scatter for thread `tid`'s chunk.
  void PartitionChunk(int tid, int thread_node);

  const ChunkedLayout& layout() const { return layout_; }

 private:
  numa::NumaSystem* system_;
  RadixOptions options_;
  ConstTupleSpan input_;
  TupleSpan output_;
  ChunkedLayout layout_;
};

}  // namespace mmjoin::partition

#endif  // MMJOIN_PARTITION_CHUNKED_H_
