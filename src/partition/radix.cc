#include "partition/radix.h"

#include <cstring>

#include "mem/aligned_alloc.h"
#include "mem/nt_store.h"
#include "thread/thread_team.h"

namespace mmjoin::partition {

GlobalRadixPartitioner::GlobalRadixPartitioner(numa::NumaSystem* system,
                                               const RadixOptions& options,
                                               ConstTupleSpan input,
                                               TupleSpan output)
    : system_(system),
      options_(options),
      input_(input),
      output_(output),
      num_partitions_(options.fn.num_partitions()),
      hist_(static_cast<std::size_t>(options.num_threads) * num_partitions_),
      dst_(hist_.size()) {
  MMJOIN_CHECK(input.size() == output.size());
  MMJOIN_CHECK(options.num_threads >= 1);
}

void GlobalRadixPartitioner::BuildHistogram(int tid) {
  const thread::Range range =
      thread::ChunkRange(input_.size(), options_.num_threads, tid);
  uint64_t* hist = &hist_[static_cast<std::size_t>(tid) * num_partitions_];
  const RadixFn fn = options_.fn;
  for (std::size_t i = range.begin; i < range.end; ++i) {
    ++hist[fn(input_[i].key)];
  }
}

void GlobalRadixPartitioner::ComputeOffsets() {
  // Global layout: partition-major; within a partition, thread-major.
  layout_.offsets.assign(num_partitions_ + 1, 0);
  uint64_t running = 0;
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    layout_.offsets[p] = running;
    for (int t = 0; t < options_.num_threads; ++t) {
      dst_[static_cast<std::size_t>(t) * num_partitions_ + p] = running;
      running += hist_[static_cast<std::size_t>(t) * num_partitions_ + p];
    }
  }
  layout_.offsets[num_partitions_] = running;
  MMJOIN_CHECK(running == input_.size());
}

void GlobalRadixPartitioner::Scatter(int tid, int thread_node) {
  const thread::Range range =
      thread::ChunkRange(input_.size(), options_.num_threads, tid);
  const RadixFn fn = options_.fn;
  uint64_t* dst = &dst_[static_cast<std::size_t>(tid) * num_partitions_];
  Tuple* out = output_.data();

  // Account the sequential read of this thread's chunk once.
  system_->CountRead(thread_node, input_.data() + range.begin,
                     range.size() * sizeof(Tuple));

  const bool accounting = system_->accounting_enabled();

  if (!options_.use_swwcb) {
    // PRB-style direct scatter: every tuple is a random write into one of P
    // pages.
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const Tuple t = input_[i];
      const uint64_t pos = dst[fn(t.key)]++;
      out[pos] = t;
      if (MMJOIN_UNLIKELY(accounting)) {
        system_->CountWrite(thread_node, out + pos, sizeof(Tuple));
      }
    }
    return;
  }

  // SWWCB scatter.
  mem::AlignedBuffer<CacheLineBuffer> buffers(num_partitions_,
                                              mem::PagePolicy::kDefault);
  std::vector<ScatterCursor> cursors(num_partitions_);
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    cursors[p] = ScatterCursor{dst[p], dst[p]};
  }

  for (std::size_t i = range.begin; i < range.end; ++i) {
    const Tuple t = input_[i];
    const uint32_t p = fn(t.key);
    if (MMJOIN_UNLIKELY(accounting)) {
      const uint64_t pos = cursors[p].next;
      if ((pos & (kTuplesPerCacheLine - 1)) == kTuplesPerCacheLine - 1) {
        system_->CountWrite(thread_node,
                            out + (pos - (kTuplesPerCacheLine - 1)),
                            kCacheLineSize);
      }
    }
    SwwcbPush(out, buffers.data(), cursors.data(), p, t);
  }
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    if (MMJOIN_UNLIKELY(accounting)) {
      const uint64_t line_base =
          cursors[p].next & ~uint64_t{kTuplesPerCacheLine - 1};
      const uint64_t begin =
          line_base > cursors[p].start ? line_base : cursors[p].start;
      if (cursors[p].next > begin) {
        system_->CountWrite(thread_node, out + begin,
                            (cursors[p].next - begin) * sizeof(Tuple));
      }
    }
    SwwcbDrain(out, buffers.data(), cursors.data(), p);
  }
  mem::StreamFence();

  // Record final write positions for callers that continue appending.
  for (uint32_t p = 0; p < num_partitions_; ++p) dst[p] = cursors[p].next;
}

PartitionLayout SubPartitionSerial(ConstTupleSpan input, TupleSpan output,
                                   RadixFn fn) {
  MMJOIN_CHECK(input.size() == output.size());
  const uint32_t num_partitions = fn.num_partitions();
  PartitionLayout layout;
  layout.offsets.assign(num_partitions + 1, 0);

  std::vector<uint64_t> hist(num_partitions, 0);
  for (const Tuple& t : input) ++hist[fn(t.key)];

  uint64_t running = 0;
  std::vector<uint64_t> cursor(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    layout.offsets[p] = running;
    cursor[p] = running;
    running += hist[p];
  }
  layout.offsets[num_partitions] = running;

  for (const Tuple& t : input) {
    output[cursor[fn(t.key)]++] = t;
  }
  return layout;
}

}  // namespace mmjoin::partition
