// Parallel radix partitioning (global histogram variant, paper Section 6.1,
// Figure 4(a)).
//
// Phases (caller drives the thread team and barriers):
//   (1) each thread builds a histogram over its input chunk,
//   (2) histograms are merged into global output offsets,
//   (3) each thread scatters its chunk to the shared output, optionally via
//       software write-combine buffers with non-temporal flushes.
// A serial sub-partitioning routine supports the second pass of two-pass
// radix joins (PRB), where whole first-pass partitions are work-queue tasks.

#ifndef MMJOIN_PARTITION_RADIX_H_
#define MMJOIN_PARTITION_RADIX_H_

#include <cstdint>
#include <vector>

#include "numa/system.h"
#include "partition/swwcb.h"
#include "util/macros.h"
#include "util/types.h"

namespace mmjoin::partition {

// Radix function: partition(key) = (key >> shift) & (2^bits - 1).
struct RadixFn {
  uint32_t shift = 0;
  uint32_t bits = 0;

  uint32_t num_partitions() const { return uint32_t{1} << bits; }
  MMJOIN_ALWAYS_INLINE uint32_t operator()(uint32_t key) const {
    return (key >> shift) & ((uint32_t{1} << bits) - 1);
  }
};

struct RadixOptions {
  RadixFn fn;
  bool use_swwcb = true;  // SWWCB + non-temporal streaming (PRO); false = PRB
  int num_threads = 1;
};

// Result layout: partition p occupies output[offsets[p], offsets[p+1]).
struct PartitionLayout {
  std::vector<uint64_t> offsets;  // size P+1
  uint32_t num_partitions() const {
    return static_cast<uint32_t>(offsets.size() - 1);
  }
  uint64_t PartitionBegin(uint32_t p) const { return offsets[p]; }
  uint64_t PartitionSize(uint32_t p) const {
    return offsets[p + 1] - offsets[p];
  }
};

// Orchestrates one global radix pass. The caller runs phases from its thread
// team with barriers in between:
//
//   GlobalRadixPartitioner part(sys, opts, input, output);
//   // per thread:            part.BuildHistogram(tid);
//   // barrier; single thread part.ComputeOffsets();
//   // barrier; per thread:   part.Scatter(tid, thread_node);
//
// After Scatter on all threads, layout() describes the output.
class GlobalRadixPartitioner {
 public:
  GlobalRadixPartitioner(numa::NumaSystem* system, const RadixOptions& options,
                         ConstTupleSpan input, TupleSpan output);

  void BuildHistogram(int tid);
  void ComputeOffsets();
  void Scatter(int tid, int thread_node);

  const PartitionLayout& layout() const { return layout_; }

 private:
  numa::NumaSystem* system_;
  RadixOptions options_;
  ConstTupleSpan input_;
  TupleSpan output_;
  uint32_t num_partitions_;
  // hist_[tid * P + p]; dst_[tid * P + p] = first output index of thread
  // tid's tuples for partition p.
  std::vector<uint64_t> hist_;
  std::vector<uint64_t> dst_;
  PartitionLayout layout_;
};

// Serially radix-partitions `input` (one first-pass partition) into the
// same-sized `output` range; returns local offsets (size P+1, relative to
// the start of `output`). Used by the second pass of PRB and by tests.
PartitionLayout SubPartitionSerial(ConstTupleSpan input, TupleSpan output,
                                   RadixFn fn);

}  // namespace mmjoin::partition

#endif  // MMJOIN_PARTITION_RADIX_H_
