// Radix-bit prediction model -- Equation (1) of the paper (Section 7.3).
//
// Partition-based joins are very sensitive to the number of radix bits:
// too few and the per-partition hash table misses L2; too many and the
// software write-combine buffers overflow the shared LLC and partitioning
// cost explodes. Equation (1) picks
//
//          | log2(|R| * st / (l * L2)),    if |R| * sb * st / (L2 * l) < LLCt
//   np  =  |
//          | log2(|R| * st / (l * LLCt)),  otherwise
//
// where st is the tuple footprint inside the join hash table, l the intended
// hash table load factor, sb the SWWCB size (one cache line), L2 the L2 data
// cache size, and LLCt the per-thread share of the last-level cache.

#ifndef MMJOIN_PARTITION_MODEL_H_
#define MMJOIN_PARTITION_MODEL_H_

#include <cstdint>

namespace mmjoin::partition {

// Cache capacities of the machine the model targets. Defaults are the
// paper's Xeon E7-4870v2 (Section 7.1): 32 KB L1D, 256 KB L2, 30 MB shared
// L3 per socket.
struct CacheSpec {
  uint64_t l1_bytes = 32 * 1024;
  uint64_t l2_bytes = 256 * 1024;
  uint64_t llc_bytes = 30 * 1024 * 1024;
  // Hardware threads of the machine. On the paper machine every worker has
  // a private L2; when a host runs more worker threads than hardware
  // threads (oversubscription, e.g. container hosts), co-scheduled workers
  // share L2 and the model scales the per-worker L2 share accordingly.
  int hardware_threads = 60;
};

// Returns the CacheSpec of the host we run on (parsed from sysfs when
// available, paper defaults otherwise). Wall-clock sweeps use this; the
// memsim experiments use the paper defaults.
CacheSpec DetectHostCacheSpec();

// Hash-table space parameters per table flavour (paper: "the different hash
// table implementations differ in their space efficiency", Section 7.3).
struct TableSpaceSpec {
  double bytes_per_tuple;  // hash table bytes per build tuple, incl. load
  // factor headroom: chained ~16 B (32 B bucket / 2 tuples), linear probing
  // 16 B (8 B slot at load 0.5), array ~4.5 B (payload + bitmap).
};

inline constexpr TableSpaceSpec kChainedSpace{16.0};
inline constexpr TableSpaceSpec kLinearSpace{16.0};
inline constexpr TableSpaceSpec kArraySpace{4.5};

// Equation (1). `build_tuples` = |R|; `num_threads` determines the
// per-thread LLC share LLCt. Returns the predicted number of radix bits,
// clamped to [1, 24].
uint32_t PredictRadixBits(uint64_t build_tuples, TableSpaceSpec table,
                          int num_threads, const CacheSpec& cache);

// ---------------------------------------------------------------------------
// Memory-budget planning for the radix joins (docs/ROBUSTNESS.md "Memory
// budgets"). Given the working-set shape of a PR*/CPR* run, PlanMemoryBudget
// decides up front how the join fits a byte budget, degrading in stages:
//
//   stage 1: raise radix bits (shrinking per-worker scratch tables) and/or
//            drop two-pass to one-pass (eliminating the mid buffers);
//   stage 2: split the probe side into `wave_count` sequential spill waves,
//            so only |S|/wave_count probe tuples are resident at once;
//   stage 3: infeasible -- the caller returns ResourceExhausted.
//
// The same estimate is charged against mem::BudgetTracker by the join, so an
// admitted plan never fails a budget check mid-run.

// Upper bound on spill waves: beyond this the per-wave partitioning overhead
// dominates and the budget is considered infeasible.
inline constexpr uint32_t kMaxSpillWaves = 64;

struct MemoryPlanInput {
  uint64_t build_tuples = 0;  // |R|
  uint64_t probe_tuples = 0;  // |S|
  int num_threads = 1;
  uint32_t base_bits = 1;   // radix bits the cache model picked
  uint32_t max_bits = 24;   // escalation cap (Eq (1) clamp / domain bound)
  bool bits_fixed = false;  // caller pinned radix_bits: stage 1 must not move
  // Total scratch-table bytes if one worker processed every partition at
  // once: bytes_per_tuple * |R| for chained/linear, array bytes * domain for
  // array tables. Per-worker footprint = this / 2^bits (times skew headroom).
  double scratch_total_bytes = 0.0;
  // Bytes resident regardless of bits/waves (e.g. two-pass mid buffers).
  uint64_t fixed_overhead_bytes = 0;
  uint64_t budget_bytes = 0;  // 0 = unbounded
};

struct MemoryPlan {
  uint32_t radix_bits = 1;
  uint32_t wave_count = 1;     // > 1 => spill-wave mode
  bool replanned = false;      // stage 1 moved the bits
  bool feasible = true;        // false => stage 3 (reject)
  uint64_t planned_bytes = 0;  // estimate the join reserves up front
};

// Per-worker scratch bytes at `radix_bits` (with skew headroom + floor);
// exposed so tests and the kernels share one estimate.
uint64_t BudgetScratchBytesPerWorker(double scratch_total_bytes,
                                     uint32_t radix_bits);

MemoryPlan PlanMemoryBudget(const MemoryPlanInput& in);

}  // namespace mmjoin::partition

#endif  // MMJOIN_PARTITION_MODEL_H_
