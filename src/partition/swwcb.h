// Software write-combine buffers (SWWCB, paper Section 5.1, Algorithm 1).
//
// Instead of scattering tuples straight to their (page-sprawling) target
// partitions, each thread stages tuples in one cache-line-sized buffer per
// partition and flushes full lines with non-temporal stores. This cuts TLB
// pressure by a factor of 8 (tuples per line) and avoids polluting the cache
// with output data (Schuhknecht et al., PVLDB 2015).
//
// Alignment subtlety: a thread's output range for a partition starts at an
// arbitrary tuple offset, so the first line of each range may be partial --
// flushing a full 64-byte line there would clobber the preceding thread's
// tuples. ScatterBuffer handles the partial head and tail with scalar
// copies and streams only interior, line-aligned flushes.

#ifndef MMJOIN_PARTITION_SWWCB_H_
#define MMJOIN_PARTITION_SWWCB_H_

#include <cstdint>

#include "mem/nt_store.h"
#include "util/macros.h"
#include "util/types.h"

namespace mmjoin::partition {

// One cache line of staged tuples.
struct alignas(kCacheLineSize) CacheLineBuffer {
  Tuple data[kTuplesPerCacheLine];
};
static_assert(sizeof(CacheLineBuffer) == kCacheLineSize,
              "CacheLineBuffer must occupy exactly one cache line");

// Per-thread scatter state for one target partition.
//
// `next` is the global tuple index (into the shared output array) the
// thread's next tuple for this partition goes to; `start` is where the
// thread's range began (to detect the partial head line).
struct ScatterCursor {
  uint64_t next;
  uint64_t start;
};

// Pushes `t` for partition `p`, flushing on line boundaries.
MMJOIN_ALWAYS_INLINE void SwwcbPush(Tuple* output, CacheLineBuffer* buffers,
                                    ScatterCursor* cursors, uint32_t p,
                                    Tuple t) {
  ScatterCursor& cursor = cursors[p];
  const uint64_t pos = cursor.next++;
  const uint32_t slot = static_cast<uint32_t>(pos & (kTuplesPerCacheLine - 1));
  buffers[p].data[slot] = t;
  if (slot == kTuplesPerCacheLine - 1) {
    const uint64_t line_base = pos - (kTuplesPerCacheLine - 1);
    if (MMJOIN_LIKELY(line_base >= cursor.start)) {
      mem::StoreCacheLineNonTemporal(output + line_base, buffers[p].data);
    } else {
      // Partial head line: only slots >= (start - line_base) are ours.
      const uint64_t first = cursor.start - line_base;
      mem::StoreTuples(output + cursor.start, buffers[p].data + first,
                       kTuplesPerCacheLine - first);
    }
  }
}

// Drains the partial tail line of partition `p` after the scan finished.
inline void SwwcbDrain(Tuple* output, const CacheLineBuffer* buffers,
                       const ScatterCursor* cursors, uint32_t p) {
  const ScatterCursor& cursor = cursors[p];
  const uint64_t line_base = cursor.next & ~(kTuplesPerCacheLine - 1);
  const uint64_t begin = line_base > cursor.start ? line_base : cursor.start;
  for (uint64_t i = begin; i < cursor.next; ++i) {
    output[i] = buffers[p].data[i & (kTuplesPerCacheLine - 1)];
  }
}

}  // namespace mmjoin::partition

#endif  // MMJOIN_PARTITION_SWWCB_H_
