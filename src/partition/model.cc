#include "partition/model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/bits.h"
#include "util/macros.h"
#include "util/types.h"

namespace mmjoin::partition {
namespace {

// Reads an integer like "256K" / "30720K" from a sysfs cache size file.
uint64_t ReadSysfsCacheBytes(const char* path) {
  std::FILE* file = std::fopen(path, "r");
  if (file == nullptr) return 0;
  char buf[64] = {0};
  const bool ok = std::fgets(buf, sizeof(buf), file) != nullptr;
  std::fclose(file);
  if (!ok) return 0;
  char* end = nullptr;
  const uint64_t value = std::strtoull(buf, &end, 10);
  if (end == nullptr || value == 0) return 0;
  switch (*end) {
    case 'K':
      return value * 1024;
    case 'M':
      return value * 1024 * 1024;
    default:
      return value;
  }
}

}  // namespace

CacheSpec DetectHostCacheSpec() {
  CacheSpec spec;  // paper defaults
  const uint64_t l1 = ReadSysfsCacheBytes(
      "/sys/devices/system/cpu/cpu0/cache/index0/size");
  const uint64_t l2 = ReadSysfsCacheBytes(
      "/sys/devices/system/cpu/cpu0/cache/index2/size");
  const uint64_t llc = ReadSysfsCacheBytes(
      "/sys/devices/system/cpu/cpu0/cache/index3/size");
  if (l1 != 0) spec.l1_bytes = l1;
  if (l2 != 0) spec.l2_bytes = l2;
  if (llc != 0) spec.llc_bytes = llc;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0) spec.hardware_threads = static_cast<int>(hw);
  return spec;
}

uint32_t PredictRadixBits(uint64_t build_tuples, TableSpaceSpec table,
                          int num_threads, const CacheSpec& cache) {
  MMJOIN_CHECK(build_tuples > 0);
  MMJOIN_CHECK(num_threads >= 1);

  // Total hash-table footprint if the whole build side were one table.
  const double table_bytes =
      static_cast<double>(build_tuples) * table.bytes_per_tuple;
  const double llc_per_thread =
      static_cast<double>(cache.llc_bytes) / num_threads;

  // Per-worker L2 share: private on real multicores, divided when workers
  // are oversubscribed onto fewer hardware threads.
  const int l2_sharers = std::max(
      1, num_threads / std::max(cache.hardware_threads, 1));
  const double l2_share =
      static_cast<double>(cache.l2_bytes) / l2_sharers;

  // Fitting partitions into L2 needs P_l2 = table_bytes / L2 partitions, and
  // each partition needs one cache-line SWWCB; check whether those buffers
  // still fit the per-thread LLC share.
  const double partitions_for_l2 = table_bytes / l2_share;
  const double swwcb_bytes = partitions_for_l2 * kCacheLineSize;

  double partitions = 0;
  if (swwcb_bytes < llc_per_thread) {
    partitions = partitions_for_l2;
  } else {
    partitions = table_bytes / llc_per_thread;
  }

  const double bits = std::log2(std::max(partitions, 2.0));
  const auto rounded = static_cast<uint32_t>(std::lround(bits));
  return std::clamp<uint32_t>(rounded, 1, 24);
}

namespace {

// Scratch floor: even a tiny partition costs one page-ish of table space.
constexpr uint64_t kMinScratchBytes = 4096;
// Skew headroom: the largest partition can exceed the average; plan for
// double so admitted plans survive moderate skew without re-reserving.
constexpr double kSkewHeadroom = 2.0;

uint64_t WaveProbeBytes(uint64_t probe_tuples, uint32_t waves) {
  if (waves <= 1 || probe_tuples == 0) {
    return probe_tuples * sizeof(Tuple);
  }
  return CeilDiv(probe_tuples, static_cast<uint64_t>(waves)) * sizeof(Tuple);
}

// Full working-set estimate at (bits, waves): fixed overhead + the R
// partition output + the resident slice of the S partition output + every
// worker's scratch table.
uint64_t PlannedBytes(const MemoryPlanInput& in, uint32_t bits,
                      uint32_t waves) {
  return in.fixed_overhead_bytes + in.build_tuples * sizeof(Tuple) +
         WaveProbeBytes(in.probe_tuples, waves) +
         static_cast<uint64_t>(in.num_threads) *
             BudgetScratchBytesPerWorker(in.scratch_total_bytes, bits);
}

}  // namespace

uint64_t BudgetScratchBytesPerWorker(double scratch_total_bytes,
                                     uint32_t radix_bits) {
  const double per_partition =
      scratch_total_bytes / static_cast<double>(uint64_t{1} << radix_bits);
  const double with_headroom = per_partition * kSkewHeadroom;
  if (with_headroom < static_cast<double>(kMinScratchBytes)) {
    return kMinScratchBytes;
  }
  return static_cast<uint64_t>(with_headroom);
}

MemoryPlan PlanMemoryBudget(const MemoryPlanInput& in) {
  MMJOIN_CHECK(in.num_threads >= 1);
  MMJOIN_CHECK(in.base_bits >= 1 && in.base_bits <= in.max_bits);

  MemoryPlan plan;
  plan.radix_bits = in.base_bits;
  plan.planned_bytes = PlannedBytes(in, plan.radix_bits, 1);
  if (in.budget_bytes == 0 || plan.planned_bytes <= in.budget_bytes) {
    return plan;  // unbounded, or the cache model's plan already fits
  }

  // Stage 1: escalate radix bits -- each extra bit halves the per-worker
  // scratch table. (The caller separately drops two-pass to one-pass by
  // re-planning with fixed_overhead_bytes = 0.)
  if (!in.bits_fixed) {
    // Stop as soon as an extra bit stops shrinking the plan (the scratch
    // term has hit its kMinScratchBytes floor): escalating further buys no
    // memory and only fragments the partitions.
    while (plan.radix_bits < in.max_bits &&
           PlannedBytes(in, plan.radix_bits, 1) > in.budget_bytes &&
           PlannedBytes(in, plan.radix_bits + 1, 1) <
               PlannedBytes(in, plan.radix_bits, 1)) {
      ++plan.radix_bits;
      plan.replanned = true;
    }
    plan.planned_bytes = PlannedBytes(in, plan.radix_bits, 1);
    if (plan.planned_bytes <= in.budget_bytes) return plan;
  }

  // Stage 2: spill waves. Everything but the probe-side partition output is
  // irreducibly resident; the probe side shrinks by 1/W.
  const uint64_t resident = PlannedBytes(in, plan.radix_bits, 1) -
                            WaveProbeBytes(in.probe_tuples, 1);
  if (resident >= in.budget_bytes || in.probe_tuples == 0) {
    plan.feasible = false;
    plan.planned_bytes = resident;
    return plan;
  }
  const uint64_t wave_budget = in.budget_bytes - resident;
  const uint64_t wave_tuples = wave_budget / sizeof(Tuple);
  if (wave_tuples == 0) {
    plan.feasible = false;
    plan.planned_bytes = resident + sizeof(Tuple);
    return plan;
  }
  const uint64_t waves = CeilDiv(in.probe_tuples, wave_tuples);
  if (waves > kMaxSpillWaves) {
    plan.feasible = false;
    plan.planned_bytes = resident + WaveProbeBytes(in.probe_tuples, kMaxSpillWaves);
    return plan;
  }
  plan.wave_count = static_cast<uint32_t>(waves);
  plan.planned_bytes = PlannedBytes(in, plan.radix_bits, plan.wave_count);
  MMJOIN_CHECK(plan.planned_bytes <= in.budget_bytes);
  return plan;
}

}  // namespace mmjoin::partition
