#include "partition/model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/bits.h"
#include "util/macros.h"
#include "util/types.h"

namespace mmjoin::partition {
namespace {

// Reads an integer like "256K" / "30720K" from a sysfs cache size file.
uint64_t ReadSysfsCacheBytes(const char* path) {
  std::FILE* file = std::fopen(path, "r");
  if (file == nullptr) return 0;
  char buf[64] = {0};
  const bool ok = std::fgets(buf, sizeof(buf), file) != nullptr;
  std::fclose(file);
  if (!ok) return 0;
  char* end = nullptr;
  const uint64_t value = std::strtoull(buf, &end, 10);
  if (end == nullptr || value == 0) return 0;
  switch (*end) {
    case 'K':
      return value * 1024;
    case 'M':
      return value * 1024 * 1024;
    default:
      return value;
  }
}

}  // namespace

CacheSpec DetectHostCacheSpec() {
  CacheSpec spec;  // paper defaults
  const uint64_t l1 = ReadSysfsCacheBytes(
      "/sys/devices/system/cpu/cpu0/cache/index0/size");
  const uint64_t l2 = ReadSysfsCacheBytes(
      "/sys/devices/system/cpu/cpu0/cache/index2/size");
  const uint64_t llc = ReadSysfsCacheBytes(
      "/sys/devices/system/cpu/cpu0/cache/index3/size");
  if (l1 != 0) spec.l1_bytes = l1;
  if (l2 != 0) spec.l2_bytes = l2;
  if (llc != 0) spec.llc_bytes = llc;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0) spec.hardware_threads = static_cast<int>(hw);
  return spec;
}

uint32_t PredictRadixBits(uint64_t build_tuples, TableSpaceSpec table,
                          int num_threads, const CacheSpec& cache) {
  MMJOIN_CHECK(build_tuples > 0);
  MMJOIN_CHECK(num_threads >= 1);

  // Total hash-table footprint if the whole build side were one table.
  const double table_bytes =
      static_cast<double>(build_tuples) * table.bytes_per_tuple;
  const double llc_per_thread =
      static_cast<double>(cache.llc_bytes) / num_threads;

  // Per-worker L2 share: private on real multicores, divided when workers
  // are oversubscribed onto fewer hardware threads.
  const int l2_sharers = std::max(
      1, num_threads / std::max(cache.hardware_threads, 1));
  const double l2_share =
      static_cast<double>(cache.l2_bytes) / l2_sharers;

  // Fitting partitions into L2 needs P_l2 = table_bytes / L2 partitions, and
  // each partition needs one cache-line SWWCB; check whether those buffers
  // still fit the per-thread LLC share.
  const double partitions_for_l2 = table_bytes / l2_share;
  const double swwcb_bytes = partitions_for_l2 * kCacheLineSize;

  double partitions = 0;
  if (swwcb_bytes < llc_per_thread) {
    partitions = partitions_for_l2;
  } else {
    partitions = table_bytes / llc_per_thread;
  }

  const double bits = std::log2(std::max(partitions, 2.0));
  const auto rounded = static_cast<uint32_t>(std::lround(bits));
  return std::clamp<uint32_t>(rounded, 1, 24);
}

}  // namespace mmjoin::partition
