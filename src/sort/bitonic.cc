#include "sort/bitonic.h"

#include <algorithm>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "util/macros.h"

namespace mmjoin::sort {
namespace {

constexpr uint64_t kSignBias = uint64_t{1} << 63;
constexpr std::size_t kRunSize = 64;  // insertion-sorted seed runs

#if defined(__AVX2__)

MMJOIN_ALWAYS_INLINE void MinMax(__m256i& a, __m256i& b) {
  const __m256i gt = _mm256_cmpgt_epi64(a, b);
  const __m256i mn = _mm256_blendv_epi8(a, b, gt);
  const __m256i mx = _mm256_blendv_epi8(b, a, gt);
  a = mn;
  b = mx;
}

// Cleans one bitonic 4-sequence held in a single vector into ascending
// order (two butterfly stages).
MMJOIN_ALWAYS_INLINE __m256i BitonicClean4(__m256i v) {
  // Distance 2.
  __m256i sw = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(1, 0, 3, 2));
  __m256i gt = _mm256_cmpgt_epi64(v, sw);
  __m256i mn = _mm256_blendv_epi8(v, sw, gt);
  __m256i mx = _mm256_blendv_epi8(sw, v, gt);
  v = _mm256_blend_epi32(mn, mx, 0b11110000);
  // Distance 1.
  sw = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(2, 3, 0, 1));
  gt = _mm256_cmpgt_epi64(v, sw);
  mn = _mm256_blendv_epi8(v, sw, gt);
  mx = _mm256_blendv_epi8(sw, v, gt);
  return _mm256_blend_epi32(mn, mx, 0b11001100);
}

// Merges two ascending 4-vectors into an ascending 8-sequence:
// lo = elements 0..3, hi = elements 4..7.
MMJOIN_ALWAYS_INLINE void BitonicMerge8(__m256i a, __m256i b, __m256i* lo,
                                        __m256i* hi) {
  // Reverse b to form a bitonic 8-sequence, then one cross stage + cleanup.
  b = _mm256_permute4x64_epi64(b, _MM_SHUFFLE(0, 1, 2, 3));
  MinMax(a, b);
  *lo = BitonicClean4(a);
  *hi = BitonicClean4(b);
}

// Transposes a 4x4 matrix of 64-bit lanes held in four vectors.
MMJOIN_ALWAYS_INLINE void Transpose4x4(__m256i& v0, __m256i& v1, __m256i& v2,
                                       __m256i& v3) {
  const __m256i t0 = _mm256_unpacklo_epi64(v0, v1);
  const __m256i t1 = _mm256_unpackhi_epi64(v0, v1);
  const __m256i t2 = _mm256_unpacklo_epi64(v2, v3);
  const __m256i t3 = _mm256_unpackhi_epi64(v2, v3);
  v0 = _mm256_permute2x128_si256(t0, t2, 0x20);
  v1 = _mm256_permute2x128_si256(t1, t3, 0x20);
  v2 = _mm256_permute2x128_si256(t0, t2, 0x31);
  v3 = _mm256_permute2x128_si256(t1, t3, 0x31);
}

// Reverses the 4 lanes of a vector.
MMJOIN_ALWAYS_INLINE __m256i Reverse4(__m256i v) {
  return _mm256_permute4x64_epi64(v, _MM_SHUFFLE(0, 1, 2, 3));
}

// Cleans a bitonic 8-sequence spanning (x0, x1) into ascending order.
MMJOIN_ALWAYS_INLINE void BitonicClean8(__m256i& x0, __m256i& x1) {
  MinMax(x0, x1);
  x0 = BitonicClean4(x0);
  x1 = BitonicClean4(x1);
}

void SortNetwork16Avx2(int64_t* data) {
  __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data));
  __m256i v1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + 4));
  __m256i v2 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + 8));
  __m256i v3 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + 12));

  // Stage 1: sort the 4 "columns" with a 4-element sorting network applied
  // lane-wise across the vectors.
  MinMax(v0, v1);
  MinMax(v2, v3);
  MinMax(v0, v2);
  MinMax(v1, v3);
  MinMax(v1, v2);

  // Stage 2: transpose -> each vector is a sorted 4-run.
  Transpose4x4(v0, v1, v2, v3);

  // Stage 3: merge 4+4 -> two sorted 8-sequences.
  __m256i a0, a1, b0, b1;
  BitonicMerge8(v0, v1, &a0, &a1);
  BitonicMerge8(v2, v3, &b0, &b1);

  // Stage 4: merge 8+8 -> 16. Reverse the second sequence, one cross
  // stage, then clean both bitonic halves.
  __m256i rb0 = Reverse4(b1);
  __m256i rb1 = Reverse4(b0);
  MinMax(a0, rb0);
  MinMax(a1, rb1);
  BitonicClean8(a0, a1);
  BitonicClean8(rb0, rb1);

  _mm256_storeu_si256(reinterpret_cast<__m256i*>(data), a0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(data + 4), a1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(data + 8), rb0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(data + 12), rb1);
}

void MergeSignedRunsAvx2(const int64_t* a, std::size_t na, const int64_t* b,
                         std::size_t nb, int64_t* out) {
  std::size_t ia = 0, ib = 0, io = 0;
  if (na >= 4 && nb >= 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    ia = 4;
    while (ia + 4 <= na && ib + 4 <= nb) {
      // Pull the block whose head is smaller.
      const __m256i* src;
      if (a[ia] <= b[ib]) {
        src = reinterpret_cast<const __m256i*>(a + ia);
        ia += 4;
      } else {
        src = reinterpret_cast<const __m256i*>(b + ib);
        ib += 4;
      }
      __m256i w = _mm256_loadu_si256(src);
      __m256i lo, hi;
      BitonicMerge8(v, w, &lo, &hi);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + io), lo);
      io += 4;
      v = hi;
    }
    // Flush the in-flight vector back into scalar merging: the 4 elements
    // of v are all <= the remaining stream heads' 4th elements, but may
    // interleave with remaining elements, so spill and scalar-merge.
    alignas(32) int64_t spill[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(spill), v);
    std::size_t is = 0;
    while (is < 4) {
      const bool take_a = ia < na && a[ia] < spill[is] &&
                          (ib >= nb || a[ia] <= b[ib]);
      const bool take_b = !take_a && ib < nb && b[ib] < spill[is];
      if (take_a) {
        out[io++] = a[ia++];
      } else if (take_b) {
        out[io++] = b[ib++];
      } else {
        out[io++] = spill[is++];
      }
    }
  }
  // Scalar tail.
  while (ia < na && ib < nb) {
    out[io++] = a[ia] <= b[ib] ? a[ia++] : b[ib++];
  }
  while (ia < na) out[io++] = a[ia++];
  while (ib < nb) out[io++] = b[ib++];
}

#endif  // __AVX2__

void InsertionSortSigned(int64_t* data, std::size_t n) {
  for (std::size_t i = 1; i < n; ++i) {
    const int64_t v = data[i];
    std::size_t j = i;
    while (j > 0 && data[j - 1] > v) {
      data[j] = data[j - 1];
      --j;
    }
    data[j] = v;
  }
}

}  // namespace

bool HasSimdMerge() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

void SortNetwork16Signed(int64_t* data) {
#if defined(__AVX2__)
  SortNetwork16Avx2(data);
#else
  InsertionSortSigned(data, 16);
#endif
}

void MergeSignedRuns(const int64_t* a, std::size_t na, const int64_t* b,
                     std::size_t nb, int64_t* out) {
#if defined(__AVX2__)
  MergeSignedRunsAvx2(a, na, b, nb, out);
#else
  std::merge(a, a + na, b, b + nb, out);
#endif
}

void MergeSortPacked(uint64_t* data, std::size_t n, uint64_t* scratch) {
  if (n <= 1) return;

  // Bias to signed order for the AVX2 compares.
  auto* signed_data = reinterpret_cast<int64_t*>(data);
  auto* signed_scratch = reinterpret_cast<int64_t*>(scratch);
  for (std::size_t i = 0; i < n; ++i) data[i] ^= kSignBias;

  // Seed runs: 16-element in-register sorting networks where AVX2 is
  // available (full 16-blocks only), insertion sort otherwise/on tails.
  std::size_t seed_width = kRunSize;
#if defined(__AVX2__)
  seed_width = 16;
  const std::size_t full_blocks = n / 16 * 16;
  for (std::size_t begin = 0; begin < full_blocks; begin += 16) {
    SortNetwork16Avx2(signed_data + begin);
  }
  if (full_blocks < n) {
    InsertionSortSigned(signed_data + full_blocks, n - full_blocks);
  }
#else
  for (std::size_t begin = 0; begin < n; begin += kRunSize) {
    InsertionSortSigned(signed_data + begin,
                        std::min(kRunSize, n - begin));
  }
#endif

  // Iterative bottom-up merging, ping-ponging between data and scratch.
  int64_t* src = signed_data;
  int64_t* dst = signed_scratch;
  for (std::size_t width = seed_width; width < n; width *= 2) {
    for (std::size_t begin = 0; begin < n; begin += 2 * width) {
      const std::size_t mid = std::min(begin + width, n);
      const std::size_t end = std::min(begin + 2 * width, n);
      MergeSignedRuns(src + begin, mid - begin, src + mid, end - mid,
                      dst + begin);
    }
    std::swap(src, dst);
  }
  if (src != signed_data) {
    std::memcpy(signed_data, src, n * sizeof(int64_t));
  }

  for (std::size_t i = 0; i < n; ++i) data[i] ^= kSignBias;
}

bool IsSortedPacked(const uint64_t* data, std::size_t n) {
  for (std::size_t i = 1; i < n; ++i) {
    if (data[i - 1] > data[i]) return false;
  }
  return true;
}

}  // namespace mmjoin::sort
