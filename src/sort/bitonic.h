// SIMD bitonic merge kernels for packed <key, payload> tuples.
//
// MWAY (Balkesen et al., PVLDB 2013; paper Section 3.3) sorts with merge
// networks vectorized over SIMD registers. Tuples are packed into one
// 64-bit word with the key in the upper half (PackTuple), so ordering the
// packed words orders by key. The AVX2 kernels operate on 4x64-bit vectors;
// every entry point has a scalar fallback so the library runs on any ISA.
//
// AVX2 has no unsigned 64-bit compare, so callers bias the packed words by
// XOR 2^63 (flip of the sign bit) before sorting and undo it afterwards --
// handled inside MergeSortPacked.

#ifndef MMJOIN_SORT_BITONIC_H_
#define MMJOIN_SORT_BITONIC_H_

#include <cstddef>
#include <cstdint>

namespace mmjoin::sort {

// True when the AVX2 kernels are compiled in.
bool HasSimdMerge();

// Merges two sorted (by signed int64 order) arrays into `out`
// (non-overlapping). Uses the AVX2 bitonic merge network when available.
void MergeSignedRuns(const int64_t* a, std::size_t na, const int64_t* b,
                     std::size_t nb, int64_t* out);

// Sorts 16 signed 64-bit values in-register with an AVX2 bitonic sorting
// network (4 vectors of 4 lanes); falls back to insertion sort without
// AVX2. Exposed for testing; MergeSortPacked uses it for run generation.
void SortNetwork16Signed(int64_t* data);

// Sorts `data` (packed tuples, unsigned order) using run generation +
// iterative merging through `scratch` (same size). Stable ordering of equal
// keys is NOT guaranteed (joins do not need it).
void MergeSortPacked(uint64_t* data, std::size_t n, uint64_t* scratch);

// Convenience: true if packed array is non-decreasing (unsigned order).
bool IsSortedPacked(const uint64_t* data, std::size_t n);

}  // namespace mmjoin::sort

#endif  // MMJOIN_SORT_BITONIC_H_
