#include "sort/multiway_merge.h"

#include <cstring>

#include "sort/bitonic.h"
#include "util/bits.h"
#include "util/macros.h"

namespace mmjoin::sort {
namespace {

constexpr uint64_t kSentinel = ~uint64_t{0};
constexpr uint64_t kSignBias = uint64_t{1} << 63;

// Classic loser tree over K inputs. Heads are cached in the tree so each
// Pop touches O(log K) nodes.
class LoserTree {
 public:
  explicit LoserTree(std::span<const SortedRun> runs) : runs_(runs) {
    k_ = static_cast<std::size_t>(NextPowerOfTwo(std::max<uint64_t>(
        runs.size(), 2)));
    cursor_.assign(runs.size(), 0);
    tree_.assign(k_, 0);  // loser indices
    heads_.assign(k_, kSentinel);
    for (std::size_t r = 0; r < runs.size(); ++r) {
      heads_[r] = runs[r].size > 0 ? runs[r].data[0] : kSentinel;
    }
    // Initialize by playing all leaves upward.
    std::vector<std::size_t> winners(2 * k_);
    for (std::size_t i = 0; i < k_; ++i) winners[k_ + i] = i;
    for (std::size_t node = k_ - 1; node >= 1; --node) {
      const std::size_t left = winners[2 * node];
      const std::size_t right = winners[2 * node + 1];
      if (Key(left) <= Key(right)) {
        winners[node] = left;
        tree_[node] = right;
      } else {
        winners[node] = right;
        tree_[node] = left;
      }
    }
    winner_ = winners[1];
  }

  bool Done() const { return Key(winner_) == kSentinel; }

  uint64_t Pop() {
    const uint64_t value = Key(winner_);
    Advance(winner_);
    // Replay from the winner's leaf to the root.
    std::size_t node = (k_ + winner_) / 2;
    std::size_t current = winner_;
    while (node >= 1) {
      const std::size_t opponent = tree_[node];
      if (Key(opponent) < Key(current)) {
        tree_[node] = current;
        current = opponent;
      }
      node /= 2;
    }
    winner_ = current;
    return value;
  }

 private:
  uint64_t Key(std::size_t r) const { return heads_[r]; }

  void Advance(std::size_t r) {
    if (r >= runs_.size()) return;
    ++cursor_[r];
    heads_[r] =
        cursor_[r] < runs_[r].size ? runs_[r].data[cursor_[r]] : kSentinel;
  }

  std::span<const SortedRun> runs_;
  std::size_t k_ = 0;
  std::size_t winner_ = 0;
  std::vector<std::size_t> cursor_;
  std::vector<std::size_t> tree_;
  std::vector<uint64_t> heads_;
};

}  // namespace

void MultiwayMerge(std::span<const SortedRun> runs, uint64_t* out) {
  if (runs.empty()) return;
  if (runs.size() == 1) {
    std::memcpy(out, runs[0].data, runs[0].size * sizeof(uint64_t));
    return;
  }
  if (runs.size() == 2) {
    // Use the SIMD binary kernel: bias to signed order on the fly.
    std::vector<int64_t> a(runs[0].size), b(runs[1].size);
    for (std::size_t i = 0; i < runs[0].size; ++i) {
      a[i] = static_cast<int64_t>(runs[0].data[i] ^ kSignBias);
    }
    for (std::size_t i = 0; i < runs[1].size; ++i) {
      b[i] = static_cast<int64_t>(runs[1].data[i] ^ kSignBias);
    }
    MergeSignedRuns(a.data(), a.size(), b.data(), b.size(),
                    reinterpret_cast<int64_t*>(out));
    const std::size_t total = runs[0].size + runs[1].size;
    for (std::size_t i = 0; i < total; ++i) out[i] ^= kSignBias;
    return;
  }

  LoserTree tree(runs);
  std::size_t io = 0;
  while (!tree.Done()) out[io++] = tree.Pop();
}

}  // namespace mmjoin::sort
