// Multi-way merging of sorted runs (MWAY's bandwidth-saving merge step,
// paper Section 3.3).
//
// A loser tree merges K sorted runs of packed tuples in one pass, so large
// sorts touch DRAM O(log_K) times instead of O(log_2). The tree is scalar;
// the binary SIMD kernel (bitonic.h) is used when only two runs remain.

#ifndef MMJOIN_SORT_MULTIWAY_MERGE_H_
#define MMJOIN_SORT_MULTIWAY_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mmjoin::sort {

struct SortedRun {
  const uint64_t* data;
  std::size_t size;
};

// Merges `runs` into `out` (sized to the sum of run sizes). Unsigned packed
// order. Dispatches to the SIMD binary merge for K <= 2.
void MultiwayMerge(std::span<const SortedRun> runs, uint64_t* out);

}  // namespace mmjoin::sort

#endif  // MMJOIN_SORT_MULTIWAY_MERGE_H_
