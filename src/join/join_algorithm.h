// JoinAlgorithm interface and factory.
//
// Every algorithm consumes a build relation R (the smaller side, unique or
// near-unique keys) and a probe relation S, and returns an aggregate
// JoinResult -- the micro-benchmark methodology shared by all papers this
// study reproduces (no result materialization unless a MatchSink is set).

#ifndef MMJOIN_JOIN_JOIN_ALGORITHM_H_
#define MMJOIN_JOIN_JOIN_ALGORITHM_H_

#include <memory>

#include "join/join_defs.h"
#include "numa/system.h"
#include "util/status.h"
#include "util/types.h"
#include "workload/relation.h"

namespace mmjoin::join {

class JoinAlgorithm {
 public:
  virtual ~JoinAlgorithm() = default;

  virtual Algorithm id() const = 0;

  // Executes the join. `key_domain` is the exclusive upper bound of the
  // build key domain (required by the array joins; pass 0 when unknown --
  // algorithms that need it will scan for the maximum).
  //
  // Recoverable failures -- allocation failure (real or via the alloc.*
  // failpoints), invalid configuration, a poisoned executor -- come back as
  // a non-OK Status with all phase buffers released; invariant violations
  // still abort. A non-OK return leaves `system` without leaked regions.
  virtual StatusOr<JoinResult> Run(numa::NumaSystem* system,
                                   const JoinConfig& config,
                                   ConstTupleSpan build, ConstTupleSpan probe,
                                   uint64_t key_domain) = 0;
};

std::unique_ptr<JoinAlgorithm> CreateJoin(Algorithm algorithm);

// Convenience wrapper over CreateJoin + Run for Relation inputs. Validates
// `config` against the relation sizes first.
StatusOr<JoinResult> RunJoin(Algorithm algorithm, numa::NumaSystem* system,
                             const JoinConfig& config,
                             const workload::Relation& build,
                             const workload::Relation& probe);

// For benches and examples that have no recovery path: prints the status to
// stderr and aborts on failure.
JoinResult RunJoinOrDie(Algorithm algorithm, numa::NumaSystem* system,
                        const JoinConfig& config,
                        const workload::Relation& build,
                        const workload::Relation& probe);

}  // namespace mmjoin::join

#endif  // MMJOIN_JOIN_JOIN_ALGORITHM_H_
