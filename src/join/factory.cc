#include "join/internal.h"
#include "join/join_algorithm.h"

namespace mmjoin::join {

std::unique_ptr<JoinAlgorithm> CreateJoin(Algorithm algorithm) {
  using internal::MakeChtJoin;
  using internal::MakeCprJoin;
  using internal::MakeMwayJoin;
  using internal::MakeNopJoin;
  using internal::MakePrJoin;
  switch (algorithm) {
    case Algorithm::kNOP:
      return MakeNopJoin(/*array_table=*/false);
    case Algorithm::kNOPA:
      return MakeNopJoin(/*array_table=*/true);
    case Algorithm::kCHTJ:
      return MakeChtJoin();
    case Algorithm::kMWAY:
      return MakeMwayJoin();
    case Algorithm::kPRB:
    case Algorithm::kPRO:
    case Algorithm::kPRL:
    case Algorithm::kPRA:
    case Algorithm::kPROiS:
    case Algorithm::kPRLiS:
    case Algorithm::kPRAiS:
      return MakePrJoin(algorithm);
    case Algorithm::kCPRL:
    case Algorithm::kCPRA:
      return MakeCprJoin(algorithm);
  }
  MMJOIN_CHECK(false && "unknown algorithm");
  return nullptr;
}

namespace internal {

uint64_t InferKeyDomain(ConstTupleSpan build, uint64_t provided) {
  if (provided != 0) return provided;
  uint64_t max_key = 0;
  for (const Tuple& t : build) {
    if (t.key > max_key) max_key = t.key;
  }
  return max_key + 1;
}

}  // namespace internal
}  // namespace mmjoin::join
