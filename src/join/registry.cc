#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "join/join_algorithm.h"
#include "join/join_defs.h"
#include "mem/budget.h"
#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/log.h"
#include "util/macros.h"
#include "util/status.h"

namespace mmjoin::join {
namespace {

constexpr AlgorithmInfo kInfos[] = {
    {Algorithm::kPRB, "PRB", JoinClass::kPartitionBased,
     "two-pass parallel radix join, no SWWCB/non-temporal streaming", false},
    {Algorithm::kNOP, "NOP", JoinClass::kNoPartitioning,
     "no-partitioning join, lock-free linear probing (CAS)", false},
    {Algorithm::kCHTJ, "CHTJ", JoinClass::kNoPartitioning,
     "concise hash table join", false},
    {Algorithm::kMWAY, "MWAY", JoinClass::kSortMerge,
     "multi-way sort-merge join, SIMD merge kernels", false},
    {Algorithm::kNOPA, "NOPA", JoinClass::kNoPartitioning,
     "NOP with a plain array as the hash table", true},
    {Algorithm::kPRO, "PRO", JoinClass::kPartitionBased,
     "one-pass parallel radix join + SWWCB + NT streaming, chained table",
     false},
    {Algorithm::kPRL, "PRL", JoinClass::kPartitionBased,
     "PRO with a linear probing table", false},
    {Algorithm::kPRA, "PRA", JoinClass::kPartitionBased,
     "PRO with array tables", true},
    {Algorithm::kCPRL, "CPRL", JoinClass::kPartitionBased,
     "chunked parallel radix join, linear probing", false},
    {Algorithm::kCPRA, "CPRA", JoinClass::kPartitionBased,
     "chunked parallel radix join, array tables", true},
    {Algorithm::kPROiS, "PROiS", JoinClass::kPartitionBased,
     "PRO with NUMA round-robin join-task scheduling", false},
    {Algorithm::kPRLiS, "PRLiS", JoinClass::kPartitionBased,
     "PRL with improved scheduling", false},
    {Algorithm::kPRAiS, "PRAiS", JoinClass::kPartitionBased,
     "PRA with improved scheduling", true},
};

}  // namespace

const AlgorithmInfo& InfoOf(Algorithm algorithm) {
  for (const AlgorithmInfo& info : kInfos) {
    if (info.algorithm == algorithm) return info;
  }
  MMJOIN_CHECK(false && "unknown algorithm");
  return kInfos[0];
}

const char* NameOf(Algorithm algorithm) { return InfoOf(algorithm).name; }

std::optional<Algorithm> AlgorithmFromName(std::string_view name) {
  for (const AlgorithmInfo& info : kInfos) {
    if (name == info.name) return info.algorithm;
  }
  return std::nullopt;
}

const std::vector<Algorithm>& AllAlgorithms() {
  static const std::vector<Algorithm>* const kAll = [] {
    auto* all = new std::vector<Algorithm>;
    for (const AlgorithmInfo& info : kInfos) all->push_back(info.algorithm);
    return all;
  }();
  return *kAll;
}

Status JoinConfig::Validate(uint64_t build_size, uint64_t probe_size) const {
  if (num_threads < 1 || num_threads > kMaxThreads) {
    return InvalidArgumentError("num_threads=" + std::to_string(num_threads) +
                                " outside [1, " +
                                std::to_string(kMaxThreads) + "]");
  }
  if (radix_bits > kMaxRadixBits) {
    return InvalidArgumentError(
        "radix_bits=" + std::to_string(radix_bits) + " exceeds " +
        std::to_string(kMaxRadixBits));
  }
  if (num_passes > 2) {
    return InvalidArgumentError("num_passes=" + std::to_string(num_passes) +
                                " (the radix joins support at most 2)");
  }
  // Partition buffers are sized as tuples * fan-out with size_t arithmetic;
  // bound the inputs so that cannot overflow (and keys stay addressable).
  if (build_size > kMaxRelationSize || probe_size > kMaxRelationSize) {
    return InvalidArgumentError(
        "relation sizes (" + std::to_string(build_size) + ", " +
        std::to_string(probe_size) + ") exceed the supported maximum 2^40");
  }
  if (mem_budget_bytes.has_value()) {
    if (*mem_budget_bytes == 0) {
      return InvalidArgumentError(
          "mem_budget_bytes=0: a zero memory budget cannot admit any "
          "allocation (omit the budget for unbounded)");
    }
    if (*mem_budget_bytes < kMinMemBudgetBytes) {
      return InvalidArgumentError(
          "mem_budget_bytes=" + std::to_string(*mem_budget_bytes) +
          " is below the minimum " + std::to_string(kMinMemBudgetBytes) +
          " (one mmap-class partition buffer)");
    }
  }
  return OkStatus();
}

StatusOr<JoinResult> RunJoin(Algorithm algorithm, numa::NumaSystem* system,
                             const JoinConfig& config,
                             const workload::Relation& build,
                             const workload::Relation& probe) {
  MMJOIN_RETURN_IF_ERROR(config.Validate(build.size(), probe.size()));
  obs::MetricsRegistry::Get().AddCounter("join.runs", 1);
  if (config.sink != nullptr && MMJOIN_FAILPOINT("alloc.materialize")) {
    return ResourceExhaustedError(
        "injected allocation failure in materialize phase "
        "(failpoint alloc.materialize)");
  }
  const std::unique_ptr<JoinAlgorithm> join = CreateJoin(algorithm);
  StatusOr<JoinResult> result = [&]() -> StatusOr<JoinResult> {
    if (config.budget == nullptr && config.mem_budget_bytes.has_value()) {
      // Run-local budget: lives exactly as long as this join's buffers.
      mem::BudgetTracker tracker(*config.mem_budget_bytes);
      JoinConfig budgeted = config;
      budgeted.budget = &tracker;
      return join->Run(system, budgeted, build.cspan(), probe.cspan(),
                       build.key_domain());
    }
    return join->Run(system, config, build.cspan(), probe.cspan(),
                     build.key_domain());
  }();
  if (result.ok()) {
    // End-to-end latency distribution; one sample per successful run, so
    // recording unconditionally costs the same as the join.runs counter.
    static obs::Histogram* const latency =
        obs::MetricsRegistry::Get().GetHistogram("join.latency_ns");
    latency->Record(static_cast<uint64_t>(result->times.total_ns));
  }
  return result;
}

JoinResult RunJoinOrDie(Algorithm algorithm, numa::NumaSystem* system,
                        const JoinConfig& config,
                        const workload::Relation& build,
                        const workload::Relation& probe) {
  StatusOr<JoinResult> result =
      RunJoin(algorithm, system, config, build, probe);
  if (!result.ok()) {
    MMJOIN_LOG(kError, "join.failed")
        .Field("algorithm", NameOf(algorithm))
        .Field("status", result.status().ToString());
    std::abort();
  }
  return *std::move(result);
}

}  // namespace mmjoin::join
