#include <memory>

#include "join/join_algorithm.h"
#include "join/join_defs.h"
#include "util/macros.h"

namespace mmjoin::join {
namespace {

constexpr AlgorithmInfo kInfos[] = {
    {Algorithm::kPRB, "PRB", JoinClass::kPartitionBased,
     "two-pass parallel radix join, no SWWCB/non-temporal streaming", false},
    {Algorithm::kNOP, "NOP", JoinClass::kNoPartitioning,
     "no-partitioning join, lock-free linear probing (CAS)", false},
    {Algorithm::kCHTJ, "CHTJ", JoinClass::kNoPartitioning,
     "concise hash table join", false},
    {Algorithm::kMWAY, "MWAY", JoinClass::kSortMerge,
     "multi-way sort-merge join, SIMD merge kernels", false},
    {Algorithm::kNOPA, "NOPA", JoinClass::kNoPartitioning,
     "NOP with a plain array as the hash table", true},
    {Algorithm::kPRO, "PRO", JoinClass::kPartitionBased,
     "one-pass parallel radix join + SWWCB + NT streaming, chained table",
     false},
    {Algorithm::kPRL, "PRL", JoinClass::kPartitionBased,
     "PRO with a linear probing table", false},
    {Algorithm::kPRA, "PRA", JoinClass::kPartitionBased,
     "PRO with array tables", true},
    {Algorithm::kCPRL, "CPRL", JoinClass::kPartitionBased,
     "chunked parallel radix join, linear probing", false},
    {Algorithm::kCPRA, "CPRA", JoinClass::kPartitionBased,
     "chunked parallel radix join, array tables", true},
    {Algorithm::kPROiS, "PROiS", JoinClass::kPartitionBased,
     "PRO with NUMA round-robin join-task scheduling", false},
    {Algorithm::kPRLiS, "PRLiS", JoinClass::kPartitionBased,
     "PRL with improved scheduling", false},
    {Algorithm::kPRAiS, "PRAiS", JoinClass::kPartitionBased,
     "PRA with improved scheduling", true},
};

}  // namespace

const AlgorithmInfo& InfoOf(Algorithm algorithm) {
  for (const AlgorithmInfo& info : kInfos) {
    if (info.algorithm == algorithm) return info;
  }
  MMJOIN_CHECK(false && "unknown algorithm");
  return kInfos[0];
}

const char* NameOf(Algorithm algorithm) { return InfoOf(algorithm).name; }

std::optional<Algorithm> AlgorithmFromName(std::string_view name) {
  for (const AlgorithmInfo& info : kInfos) {
    if (name == info.name) return info.algorithm;
  }
  return std::nullopt;
}

const std::vector<Algorithm>& AllAlgorithms() {
  static const std::vector<Algorithm>* const kAll = [] {
    auto* all = new std::vector<Algorithm>;
    for (const AlgorithmInfo& info : kInfos) all->push_back(info.algorithm);
    return all;
  }();
  return *kAll;
}

JoinResult RunJoin(Algorithm algorithm, numa::NumaSystem* system,
                   const JoinConfig& config, const workload::Relation& build,
                   const workload::Relation& probe) {
  const std::unique_ptr<JoinAlgorithm> join = CreateJoin(algorithm);
  return join->Run(system, config, build.cspan(), probe.cspan(),
                   build.key_domain());
}

}  // namespace mmjoin::join
