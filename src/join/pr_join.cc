// The parallel radix join family (paper Sections 3.1, 5, 6.2):
//
//   PRB    two-pass, no SWWCB, chained tables, sequential task order
//   PRO    one-pass, SWWCB + NT streaming, chained tables
//   PRL    = PRO with linear probing tables
//   PRA    = PRO with array tables
//   PROiS / PRLiS / PRAiS = the same with NUMA round-robin task scheduling
//
// Flow: globally radix-partition R and S (one or two passes), then join
// co-partitions pulled from a shared task stack. Each worker keeps one
// reusable scratch table sized for the largest partition. Skewed probe
// partitions are split into multiple probe-slice tasks.

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "hash/array_table.h"
#include "hash/chained_table.h"
#include "hash/linear_probing_table.h"
#include "join/internal.h"
#include "join/join_algorithm.h"
#include "numa/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/model.h"
#include "partition/radix.h"
#include "thread/task_queue.h"
#include "thread/thread_team.h"
#include "util/log.h"
#include "util/bits.h"
#include "util/timer.h"

namespace mmjoin::join::internal {
namespace {

enum class TableKind { kChained, kLinear, kArray };

struct PrVariantSpec {
  bool two_pass;
  bool use_swwcb;
  TableKind table;
  bool improved_sched;
};

PrVariantSpec SpecOf(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kPRB:
      return {true, false, TableKind::kChained, false};
    case Algorithm::kPRO:
      return {false, true, TableKind::kChained, false};
    case Algorithm::kPRL:
      return {false, true, TableKind::kLinear, false};
    case Algorithm::kPRA:
      return {false, true, TableKind::kArray, false};
    case Algorithm::kPROiS:
      return {false, true, TableKind::kChained, true};
    case Algorithm::kPRLiS:
      return {false, true, TableKind::kLinear, true};
    case Algorithm::kPRAiS:
      return {false, true, TableKind::kArray, true};
    default:
      MMJOIN_CHECK(false && "not a PR variant");
      return {};
  }
}

partition::TableSpaceSpec SpaceOf(TableKind kind) {
  switch (kind) {
    case TableKind::kChained:
      return partition::kChainedSpace;
    case TableKind::kLinear:
      return partition::kLinearSpace;
    case TableKind::kArray:
      return partition::kArraySpace;
  }
  return partition::kChainedSpace;
}

// Absolute [begin, size] for every final partition of one relation.
struct FinalLayout {
  std::vector<uint64_t> begin;
  std::vector<uint64_t> size;
  uint64_t MaxPartitionSize() const {
    uint64_t max_size = 0;
    for (uint64_t s : size) max_size = std::max(max_size, s);
    return max_size;
  }
};

FinalLayout FromSinglePass(const partition::PartitionLayout& layout) {
  FinalLayout final;
  const uint32_t P = layout.num_partitions();
  final.begin.resize(P);
  final.size.resize(P);
  for (uint32_t p = 0; p < P; ++p) {
    final.begin[p] = layout.PartitionBegin(p);
    final.size[p] = layout.PartitionSize(p);
  }
  return final;
}

// Scratch-table adapters.
struct ChainedScratch {
  using Table = hash::ChainedHashTable<hash::RadixShiftHash>;
  std::unique_ptr<Table> table;
  ChainedScratch(numa::NumaSystem* system, uint64_t max_tuples,
                 uint64_t partition_domain, uint32_t total_bits, int node)
      : table(std::make_unique<Table>(
            system, std::max<uint64_t>(max_tuples, 1),
            numa::Placement::kLocal, node,
            hash::RadixShiftHash{total_bits})) {}
  void Prepare(uint64_t build_size) { table->Reset(build_size); }
  void Insert(Tuple t) { table->InsertSerial(t); }
  template <typename Emit>
  void Probe(uint32_t key, Emit&& emit) const {
    table->Probe(key, emit);
  }
  template <typename Emit>
  void ProbeUnique(uint32_t key, Emit&& emit) const {
    table->ProbeUnique(key, emit);
  }
};

struct LinearScratch {
  using Table = hash::LinearProbingTable<hash::RadixShiftHash>;
  std::unique_ptr<Table> table;
  LinearScratch(numa::NumaSystem* system, uint64_t max_tuples,
                uint64_t partition_domain, uint32_t total_bits, int node)
      : table(std::make_unique<Table>(
            system, std::max<uint64_t>(max_tuples, 1),
            numa::Placement::kLocal, node,
            hash::RadixShiftHash{total_bits})) {}
  void Prepare(uint64_t build_size) { table->Reset(build_size); }
  void Insert(Tuple t) { table->InsertSerial(t); }
  template <typename Emit>
  void Probe(uint32_t key, Emit&& emit) const {
    table->Probe(key, emit);
  }
  template <typename Emit>
  void ProbeUnique(uint32_t key, Emit&& emit) const {
    table->ProbeUnique(key, emit);
  }
};

struct ArrayScratch {
  std::unique_ptr<hash::ArrayTable> table;
  uint64_t partition_domain;
  uint32_t total_bits;
  ArrayScratch(numa::NumaSystem* system, uint64_t max_tuples,
               uint64_t partition_domain_in, uint32_t total_bits_in, int node)
      : table(std::make_unique<hash::ArrayTable>(
            system, std::max<uint64_t>(partition_domain_in, 1), total_bits_in,
            numa::Placement::kLocal, node)),
        partition_domain(std::max<uint64_t>(partition_domain_in, 1)),
        total_bits(total_bits_in) {}
  void Prepare(uint64_t build_size) {
    table->Reset(partition_domain, total_bits);
  }
  void Insert(Tuple t) { table->InsertSerial(t); }
  template <typename Emit>
  void Probe(uint32_t key, Emit&& emit) const {
    table->Probe(key, emit);
  }
  template <typename Emit>
  void ProbeUnique(uint32_t key, Emit&& emit) const {
    table->ProbeUnique(key, emit);
  }
};

// Joins co-partitions pulled from `queue` with a per-thread scratch table.
// Runs after the last barrier of the dispatch, so a worker that hits a
// failure (or sees one via `abort`) may simply stop pulling tasks.
//
// A worker pops LIFO from its home node's shard and steals distance-ordered
// FIFO when it runs dry. Slices of one skewed partition share a single
// build table through `slots` (built by whichever slice arrives first)
// instead of each rebuilding a private copy.
template <typename Scratch>
void JoinPartitions(numa::NumaSystem* system, int tid, int node,
                    int num_threads, thread::ShardedTaskQueue* queue,
                    SkewBuildSlots* slots, const FinalLayout& r_layout,
                    const FinalLayout& s_layout, const Tuple* r_data,
                    const Tuple* s_data, uint64_t partition_domain,
                    uint32_t total_bits, bool build_unique, MatchSink* sink,
                    ThreadStats* local, JoinAbort* abort,
                    obs::JoinPhaseProfiler* profiler) {
  // The per-worker scratch table is the join phase's build-side allocation.
  if (BuildAllocFailpoint()) {
    abort->Set(InjectedAllocError("build"));
    return;
  }
  Scratch scratch(system, r_layout.MaxPartitionSize(), partition_domain,
                  total_bits, node);
  thread::JoinTask task;
  int stolen_from = -1;
  while (queue->Pop(node, &task, &stolen_from)) {
    if (abort->IsSet()) return;
    const uint32_t p = task.partition;
    const uint64_t r_size = r_layout.size[p];
    const uint64_t s_size = s_layout.size[p];
    if (r_size == 0 || s_size == 0) continue;

    const Tuple* r_part = r_data + r_layout.begin[p];
    const Scratch* build_table = &scratch;
    bool built_here = true;
    SkewBuildSlots::Slot* slot =
        task.probe_slice_count > 1 ? slots->Find(p) : nullptr;
    {
      obs::PhaseScope scope(profiler, tid, obs::JoinPhase::kBuild);
      if (slot != nullptr) {
        build_table = slots->GetOrBuild<Scratch>(
            slot,
            [&] {
              auto table = std::make_unique<Scratch>(
                  system, r_size, partition_domain, total_bits, node);
              table->Prepare(r_size);
              system->CountRead(node, r_part, r_size * sizeof(Tuple));
              for (uint64_t i = 0; i < r_size; ++i) {
                table->Insert(r_part[i]);
              }
              return table;
            },
            &built_here);
      } else {
        scratch.Prepare(r_size);
        system->CountRead(node, r_part, r_size * sizeof(Tuple));
        for (uint64_t i = 0; i < r_size; ++i) scratch.Insert(r_part[i]);
      }
    }

    if (ProbeAllocFailpoint()) {
      abort->Set(InjectedAllocError("probe"));
      return;
    }
    obs::PhaseScope scope(profiler, tid, obs::JoinPhase::kProbe);
    const uint64_t slice_begin =
        s_size * task.probe_slice / task.probe_slice_count;
    const uint64_t slice_end =
        s_size * (task.probe_slice + 1) / task.probe_slice_count;
    const Tuple* s_part = s_data + s_layout.begin[p];
    system->CountRead(node, s_part + slice_begin,
                      (slice_end - slice_begin) * sizeof(Tuple));
    if (stolen_from >= 0) {
      // The stolen task's probe slice (and build partition, if this worker
      // built it) live near the victim, not here.
      uint64_t remote_bytes = (slice_end - slice_begin) * sizeof(Tuple);
      if (built_here) remote_bytes += r_size * sizeof(Tuple);
      queue->AddStealReadBytes(remote_bytes);
    }
    ProbeRange(*build_table, s_part, slice_begin, slice_end, build_unique,
               sink, tid, local);
  }
}

class PrJoin final : public JoinAlgorithm {
 public:
  explicit PrJoin(Algorithm id) : id_(id), spec_(SpecOf(id)) {}

  Algorithm id() const override { return id_; }

  StatusOr<JoinResult> Run(numa::NumaSystem* system, const JoinConfig& config,
                           ConstTupleSpan build, ConstTupleSpan probe,
                           uint64_t key_domain) override {
    const int num_threads = config.num_threads;

    uint32_t total_bits = config.radix_bits;
    if (total_bits == 0) {
      total_bits = partition::PredictRadixBits(
          std::max<uint64_t>(build.size(), 1), SpaceOf(spec_.table),
          num_threads, partition::DetectHostCacheSpec());
    }
    // Never create more partitions than build tuples.
    total_bits = std::min<uint32_t>(
        total_bits, std::max<uint32_t>(
                        CeilLog2(std::max<uint64_t>(build.size(), 2)), 1));

    const uint64_t domain = spec_.table == TableKind::kArray
                                ? InferKeyDomain(build, key_domain)
                                : (key_domain != 0 ? key_domain : 0);

    bool two_pass = spec_.two_pass;
    if (config.num_passes == 1) two_pass = false;
    if (config.num_passes == 2) two_pass = true;

    // Budget planning (docs/ROBUSTNESS.md "Memory budgets"): decide up
    // front how this run fits its budget -- escalate radix bits, drop
    // two-pass to one-pass, split the probe side into spill waves -- and
    // reserve the planned working set for the whole run. The reservation
    // lives until Run returns, so concurrent budgeted joins on a shared
    // tracker are admitted against each other.
    uint32_t wave_count = 1;
    mem::BudgetReservation reservation;
    if (config.budget != nullptr && config.budget->bounded()) {
      partition::MemoryPlanInput plan_in;
      plan_in.build_tuples = build.size();
      plan_in.probe_tuples = probe.size();
      plan_in.num_threads = num_threads;
      plan_in.base_bits = std::max<uint32_t>(total_bits, 1);
      plan_in.max_bits = std::max(
          plan_in.base_bits,
          std::min<uint32_t>(
              24, std::max<uint32_t>(
                      CeilLog2(std::max<uint64_t>(build.size(), 2)), 1)));
      plan_in.bits_fixed = config.radix_bits != 0;
      plan_in.scratch_total_bytes =
          spec_.table == TableKind::kArray
              ? partition::kArraySpace.bytes_per_tuple *
                    static_cast<double>(std::max<uint64_t>(domain, 1))
              : SpaceOf(spec_.table).bytes_per_tuple *
                    static_cast<double>(build.size());
      plan_in.fixed_overhead_bytes =
          two_pass ? (build.size() + probe.size()) * sizeof(Tuple) : 0;
      plan_in.budget_bytes = config.budget->budget_bytes();

      partition::MemoryPlan plan = partition::PlanMemoryBudget(plan_in);
      if (two_pass && (plan.wave_count > 1 || !plan.feasible)) {
        // Stage 1 (passes): one-pass frees the pass-1 mid buffers. Spill
        // waves require the single-pass partition index layout, so this
        // always precedes stage 2.
        two_pass = false;
        plan_in.fixed_overhead_bytes = 0;
        plan = partition::PlanMemoryBudget(plan_in);
        mem::CountBudgetReplan();
        MMJOIN_LOG(kWarn, "budget.replan")
            .Field("algo", NameOf(id_))
            .Field("action", "drop_pass2")
            .Field("budget_bytes", plan_in.budget_bytes);
      }
      if (!plan.feasible) {
        return BudgetInfeasibleError(NameOf(id_), plan.planned_bytes,
                                     plan_in.budget_bytes);
      }
      if (plan.replanned) {
        mem::CountBudgetReplan();
        MMJOIN_LOG(kWarn, "budget.replan")
            .Field("algo", NameOf(id_))
            .Field("action", "radix_bits")
            .Field("bits", plan.radix_bits)
            .Field("planned_bytes", plan.planned_bytes)
            .Field("budget_bytes", plan_in.budget_bytes);
      }
      total_bits = plan.radix_bits;
      wave_count = plan.wave_count;
      MMJOIN_ASSIGN_OR_RETURN(
          reservation,
          mem::BudgetReservation::Acquire(config.budget, plan.planned_bytes,
                                          "PR join working set"));
    }

    // Failpoint: force the spill-wave path (budget or not) so tests drive
    // stage 2 deterministically.
    if (WaveBudgetFailpoint()) {
      if (two_pass) {
        two_pass = false;
        mem::CountBudgetReplan();
      }
      wave_count = std::max<uint32_t>(wave_count, 2);
    }
    if (wave_count > 1 && probe.empty()) wave_count = 1;

    if (wave_count > 1) {
      mem::CountBudgetWave();
      MMJOIN_LOG(kWarn, "budget.wave")
          .Field("algo", NameOf(id_))
          .Field("waves", wave_count)
          .Field("bits", total_bits);
      return RunOnePassWaves(system, config, build, probe, domain, total_bits,
                             wave_count);
    }
    return two_pass ? RunTwoPass(system, config, build, probe, domain,
                                 total_bits)
                    : RunOnePass(system, config, build, probe, domain,
                                 total_bits);
  }

 private:
  StatusOr<JoinResult> RunOnePass(numa::NumaSystem* system,
                                  const JoinConfig& config,
                                  ConstTupleSpan build, ConstTupleSpan probe,
                                  uint64_t domain, uint32_t total_bits) {
    const int num_threads = config.num_threads;

    if (PartitionAllocFailpoint()) return InjectedAllocError("partition");
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> r_out,
        TryBuffer<Tuple>(system, build.size(),
                         numa::Placement::kChunkedRoundRobin,
                         "PR R partition buffer"));
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> s_out,
        TryBuffer<Tuple>(system, probe.size(),
                         numa::Placement::kChunkedRoundRobin,
                         "PR S partition buffer"));

    partition::RadixOptions options;
    options.fn = partition::RadixFn{0, total_bits};
    options.use_swwcb = spec_.use_swwcb;
    options.num_threads = num_threads;
    partition::GlobalRadixPartitioner r_partitioner(
        system, options, build, TupleSpan(r_out.data(), r_out.size()));
    partition::GlobalRadixPartitioner s_partitioner(
        system, options, probe, TupleSpan(s_out.data(), s_out.size()));

    std::vector<ThreadStats> stats(num_threads);
    int64_t partition_end = 0;
    thread::Executor& executor = ExecutorOf(config);
    std::unique_ptr<thread::ShardedTaskQueue> fallback_queue;
    thread::ShardedTaskQueue* queue =
        SelectJoinQueue(executor, *system, &fallback_queue);
    SkewBuildSlots slots;
    FinalLayout r_layout, s_layout;
    JoinAbort abort;
    auto profiler = obs::MakeJoinProfiler(num_threads);
    // Partition buffers were allocated + prefaulted untimed (buffer-manager
    // assumption, Section 5.1).
    const int64_t start = NowNanos();

    const Status dispatch_status = executor.Dispatch(
        num_threads, [&](const thread::WorkerContext& ctx) {
      const int tid = ctx.thread_id;
      thread::Barrier& barrier = *ctx.barrier;
      const int node =
          system->topology().NodeOfThread(tid, num_threads);

      {
        obs::PhaseScope scope(profiler.get(), tid,
                              obs::JoinPhase::kPartitionPass1);
        r_partitioner.BuildHistogram(tid);
        s_partitioner.BuildHistogram(tid);
        barrier.ArriveAndWait();
        if (tid == 0) {
          r_partitioner.ComputeOffsets();
          s_partitioner.ComputeOffsets();
        }
        barrier.ArriveAndWait();
        r_partitioner.Scatter(tid, node);
        s_partitioner.Scatter(tid, node);
        barrier.ArriveAndWait();
      }

      if (tid == 0) {
        partition_end = NowNanos();
        r_layout = FromSinglePass(r_partitioner.layout());
        s_layout = FromSinglePass(s_partitioner.layout());
        const Status seed_status =
            SeedQueue(queue, &slots, system, config, s_layout, probe.size(),
                      num_threads);
        if (!seed_status.ok()) abort.Set(seed_status);
      }
      barrier.ArriveAndWait();
      if (!abort.IsSet()) {
        RunJoinPhase(system, tid, node, num_threads, queue, &slots, r_layout,
                     s_layout, r_out.data(), s_out.data(), domain, total_bits,
                     config.build_unique, config.sink, &stats[tid], &abort,
                     profiler.get());
      }
      // Flush the queue's per-run steal counters before the dispatch
      // returns: outside the dispatch the flush would race the next join
      // on this executor re-seeding the queue (BeginRun zeroes the stats).
      // The barrier guarantees every worker is done with the queue.
      barrier.ArriveAndWait();
      if (tid == 0) FlushStealMetrics(*queue);
    });
    MMJOIN_RETURN_IF_ERROR(dispatch_status);
    if (abort.IsSet()) return abort.status();

    const int64_t end = NowNanos();
    JoinResult result = ReduceStats(stats.data(), num_threads);
    result.times.partition_ns = partition_end - start;
    result.times.probe_ns = end - partition_end;
    result.times.total_ns = end - start;
    if (profiler != nullptr) result.profile = profiler->Finish();
    return result;
  }

  // Stage-2 degradation: single-pass radix join with the probe side
  // processed in `wave_count` sequential spill waves. R is partitioned once
  // and stays resident; only ceil(|S| / wave_count) probe tuples occupy
  // partition-buffer memory at any time (the wave buffer is reused). Each
  // wave radix-partitions its probe slice, re-seeds the task queue, and runs
  // the normal co-partition join phase, so per-wave match counts/checksums
  // sum to exactly the unbounded run's results (the checksum is
  // order-independent).
  StatusOr<JoinResult> RunOnePassWaves(numa::NumaSystem* system,
                                       const JoinConfig& config,
                                       ConstTupleSpan build,
                                       ConstTupleSpan probe, uint64_t domain,
                                       uint32_t total_bits,
                                       uint32_t wave_count) {
    const int num_threads = config.num_threads;
    const uint64_t wave_capacity =
        CeilDiv(probe.size(), static_cast<uint64_t>(wave_count));

    if (PartitionAllocFailpoint()) return InjectedAllocError("partition");
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> r_out,
        TryBuffer<Tuple>(system, build.size(),
                         numa::Placement::kChunkedRoundRobin,
                         "PR R partition buffer"));
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> s_wave,
        TryBuffer<Tuple>(system, wave_capacity,
                         numa::Placement::kChunkedRoundRobin,
                         "PR S wave buffer"));

    partition::RadixOptions options;
    options.fn = partition::RadixFn{0, total_bits};
    options.use_swwcb = spec_.use_swwcb;
    options.num_threads = num_threads;
    partition::GlobalRadixPartitioner r_partitioner(
        system, options, build, TupleSpan(r_out.data(), r_out.size()));
    // Rebuilt by thread 0 at each wave head for that wave's probe slice.
    std::unique_ptr<partition::GlobalRadixPartitioner> s_partitioner;

    std::vector<ThreadStats> stats(num_threads);
    int64_t partition_end = 0;
    thread::Executor& executor = ExecutorOf(config);
    std::unique_ptr<thread::ShardedTaskQueue> fallback_queue;
    thread::ShardedTaskQueue* queue =
        SelectJoinQueue(executor, *system, &fallback_queue);
    SkewBuildSlots slots;
    FinalLayout r_layout, s_layout;
    JoinAbort abort;
    auto profiler = obs::MakeJoinProfiler(num_threads);
    const int64_t start = NowNanos();

    const Status dispatch_status = executor.Dispatch(
        num_threads, [&](const thread::WorkerContext& ctx) {
      const int tid = ctx.thread_id;
      thread::Barrier& barrier = *ctx.barrier;
      const int node =
          system->topology().NodeOfThread(tid, num_threads);

      // Partition R once; it stays resident across all waves.
      {
        obs::PhaseScope scope(profiler.get(), tid,
                              obs::JoinPhase::kPartitionPass1);
        r_partitioner.BuildHistogram(tid);
        barrier.ArriveAndWait();
        if (tid == 0) r_partitioner.ComputeOffsets();
        barrier.ArriveAndWait();
        r_partitioner.Scatter(tid, node);
        barrier.ArriveAndWait();
      }
      if (tid == 0) {
        partition_end = NowNanos();
        r_layout = FromSinglePass(r_partitioner.layout());
      }
      // No barrier needed here: only thread 0 touches r_layout until the
      // first wave barrier below publishes it.

      for (uint32_t w = 0; w < wave_count; ++w) {
        obs::ObsScope wave_scope("budget.wave", obs::SpanKind::kOther);
        uint64_t wave_size = 0;
        if (tid == 0) {
          const uint64_t wave_begin = probe.size() * w / wave_count;
          wave_size = probe.size() * (w + 1) / wave_count - wave_begin;
          s_partitioner = std::make_unique<partition::GlobalRadixPartitioner>(
              system, options,
              ConstTupleSpan(probe.data() + wave_begin, wave_size),
              TupleSpan(s_wave.data(), wave_size));
          mem::CountBudgetWaveRound();
        }
        barrier.ArriveAndWait();

        {
          obs::PhaseScope scope(profiler.get(), tid,
                                obs::JoinPhase::kPartitionPass1);
          s_partitioner->BuildHistogram(tid);
          barrier.ArriveAndWait();
          if (tid == 0) s_partitioner->ComputeOffsets();
          barrier.ArriveAndWait();
          s_partitioner->Scatter(tid, node);
          barrier.ArriveAndWait();
        }

        if (tid == 0) {
          s_layout = FromSinglePass(s_partitioner->layout());
          const Status seed_status = SeedQueue(
              queue, &slots, system, config, s_layout, wave_size, num_threads);
          if (!seed_status.ok()) abort.Set(seed_status);
        }
        barrier.ArriveAndWait();

        if (!abort.IsSet()) {
          RunJoinPhase(system, tid, node, num_threads, queue, &slots,
                       r_layout, s_layout, r_out.data(), s_wave.data(),
                       domain, total_bits, config.build_unique, config.sink,
                       &stats[tid], &abort, profiler.get());
        }
        // Wave-end barrier: every worker must be done with this wave's
        // buffers and queue before thread 0 reconfigures them -- and any
        // abort (injected build/probe failure included) is published to all
        // workers so they leave the wave loop together.
        barrier.ArriveAndWait();
        if (abort.IsSet()) break;
      }
      // The wave-end barrier above already synchronized the team and no
      // worker touches the queue after it, so flush its per-run steal
      // counters (the last seeded wave's) before the dispatch returns --
      // outside the dispatch the flush would race the next join on this
      // executor re-seeding the queue.
      if (tid == 0) FlushStealMetrics(*queue);
    });
    MMJOIN_RETURN_IF_ERROR(dispatch_status);
    if (abort.IsSet()) return abort.status();

    const int64_t end = NowNanos();
    JoinResult result = ReduceStats(stats.data(), num_threads);
    result.times.partition_ns = partition_end - start;
    result.times.probe_ns = end - partition_end;
    result.times.total_ns = end - start;
    if (profiler != nullptr) result.profile = profiler->Finish();
    return result;
  }

  StatusOr<JoinResult> RunTwoPass(numa::NumaSystem* system,
                                  const JoinConfig& config,
                                  ConstTupleSpan build, ConstTupleSpan probe,
                                  uint64_t domain, uint32_t total_bits) {
    const int num_threads = config.num_threads;
    const uint32_t bits1 = (total_bits + 1) / 2;
    const uint32_t bits2 = total_bits - bits1;
    const uint32_t P1 = uint32_t{1} << bits1;
    const uint32_t P2 = uint32_t{1} << bits2;

    if (PartitionAllocFailpoint()) return InjectedAllocError("partition");
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> r_mid,
        TryBuffer<Tuple>(system, build.size(),
                         numa::Placement::kChunkedRoundRobin,
                         "PR R pass-1 buffer"));
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> s_mid,
        TryBuffer<Tuple>(system, probe.size(),
                         numa::Placement::kChunkedRoundRobin,
                         "PR S pass-1 buffer"));
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> r_out,
        TryBuffer<Tuple>(system, build.size(),
                         numa::Placement::kChunkedRoundRobin,
                         "PR R pass-2 buffer"));
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> s_out,
        TryBuffer<Tuple>(system, probe.size(),
                         numa::Placement::kChunkedRoundRobin,
                         "PR S pass-2 buffer"));

    partition::RadixOptions options;
    options.fn = partition::RadixFn{0, bits1};
    options.use_swwcb = spec_.use_swwcb;
    options.num_threads = num_threads;
    partition::GlobalRadixPartitioner r_partitioner(
        system, options, build, TupleSpan(r_mid.data(), r_mid.size()));
    partition::GlobalRadixPartitioner s_partitioner(
        system, options, probe, TupleSpan(s_mid.data(), s_mid.size()));

    std::vector<ThreadStats> stats(num_threads);
    int64_t partition_end = 0;
    thread::Executor& executor = ExecutorOf(config);
    std::unique_ptr<thread::ShardedTaskQueue> fallback_queue;
    thread::ShardedTaskQueue* queue =
        SelectJoinQueue(executor, *system, &fallback_queue);
    SkewBuildSlots slots;
    FinalLayout r_layout, s_layout;
    r_layout.begin.assign(static_cast<std::size_t>(P1) * P2, 0);
    r_layout.size.assign(static_cast<std::size_t>(P1) * P2, 0);
    s_layout.begin.assign(static_cast<std::size_t>(P1) * P2, 0);
    s_layout.size.assign(static_cast<std::size_t>(P1) * P2, 0);

    // Second-pass task counter: pass-1 partitions are tasks.
    std::atomic<uint32_t> next_sub{0};
    const partition::RadixFn fn2{bits1, bits2};
    JoinAbort abort;
    auto profiler = obs::MakeJoinProfiler(num_threads);
    const int64_t start = NowNanos();

    const Status dispatch_status = executor.Dispatch(
        num_threads, [&](const thread::WorkerContext& ctx) {
      const int tid = ctx.thread_id;
      thread::Barrier& barrier = *ctx.barrier;
      const int node =
          system->topology().NodeOfThread(tid, num_threads);

      // Pass 1.
      {
        obs::PhaseScope scope(profiler.get(), tid,
                              obs::JoinPhase::kPartitionPass1);
        r_partitioner.BuildHistogram(tid);
        s_partitioner.BuildHistogram(tid);
        barrier.ArriveAndWait();
        if (tid == 0) {
          r_partitioner.ComputeOffsets();
          s_partitioner.ComputeOffsets();
        }
        barrier.ArriveAndWait();
        r_partitioner.Scatter(tid, node);
        s_partitioner.Scatter(tid, node);
        barrier.ArriveAndWait();
      }

      // Pass 2: whole pass-1 partitions are assigned via a work counter
      // ("entire sub-partitions are assigned to worker threads by using a
      // task queue", Section 3.1).
      {
        obs::PhaseScope scope(profiler.get(), tid,
                              obs::JoinPhase::kPartitionPass2);
        const auto& r1 = r_partitioner.layout();
        const auto& s1 = s_partitioner.layout();
        // Relaxed: the counter only claims disjoint sub-partition indices;
        // the pass-1 data each claim reads was published by the barrier
        // above, so no ordering beyond atomicity is needed here.
        for (uint32_t p1 = next_sub.fetch_add(1, std::memory_order_relaxed);
             p1 < P1;
             p1 = next_sub.fetch_add(1, std::memory_order_relaxed)) {
          SubPartition(system, node, r_mid.data(), r_out.data(), r1, p1, fn2,
                       P2, &r_layout);
          SubPartition(system, node, s_mid.data(), s_out.data(), s1, p1, fn2,
                       P2, &s_layout);
        }
        barrier.ArriveAndWait();
      }

      if (tid == 0) {
        partition_end = NowNanos();
        const Status seed_status =
            SeedQueue(queue, &slots, system, config, s_layout, probe.size(),
                      num_threads);
        if (!seed_status.ok()) abort.Set(seed_status);
      }
      barrier.ArriveAndWait();
      if (!abort.IsSet()) {
        RunJoinPhase(system, tid, node, num_threads, queue, &slots, r_layout,
                     s_layout, r_out.data(), s_out.data(), domain, total_bits,
                     config.build_unique, config.sink, &stats[tid], &abort,
                     profiler.get());
      }
      // Flush the queue's per-run steal counters before the dispatch
      // returns (see RunOnePass); the barrier guarantees every worker is
      // done with the queue.
      barrier.ArriveAndWait();
      if (tid == 0) FlushStealMetrics(*queue);
    });
    MMJOIN_RETURN_IF_ERROR(dispatch_status);
    if (abort.IsSet()) return abort.status();

    const int64_t end = NowNanos();
    JoinResult result = ReduceStats(stats.data(), num_threads);
    result.times.partition_ns = partition_end - start;
    result.times.probe_ns = end - partition_end;
    result.times.total_ns = end - start;
    if (profiler != nullptr) result.profile = profiler->Finish();
    return result;
  }

  void SubPartition(numa::NumaSystem* system, int node, const Tuple* mid,
                    Tuple* out, const partition::PartitionLayout& pass1,
                    uint32_t p1, partition::RadixFn fn2, uint32_t P2,
                    FinalLayout* final_layout) const {
    const uint64_t begin = pass1.PartitionBegin(p1);
    const uint64_t size = pass1.PartitionSize(p1);
    system->CountRead(node, mid + begin, size * sizeof(Tuple));
    system->CountWrite(node, out + begin, size * sizeof(Tuple));
    const partition::PartitionLayout sub = partition::SubPartitionSerial(
        ConstTupleSpan(mid + begin, size), TupleSpan(out + begin, size),
        fn2);
    for (uint32_t p2 = 0; p2 < P2; ++p2) {
      // Final partitions ordered pass1-major so partition indices stay
      // correlated with virtual addresses (Section 6.2).
      const std::size_t fp = static_cast<std::size_t>(p1) * P2 + p2;
      final_layout->begin[fp] = begin + sub.PartitionBegin(p2);
      final_layout->size[fp] = sub.PartitionSize(p2);
    }
  }

  // Seeds the sharded queue for this run. Runs on thread 0 between barriers
  // (single-threaded). BeginRun comes first so a failed seed leaves the
  // queue empty, not stale. Each task is seeded onto the node its probe
  // slice's memory lives on (partition buffers are kChunkedRoundRobin, so
  // NodeOfOffset reproduces the placement); the consume order within each
  // shard follows the scheduling order, preserving the iS round-robin
  // interleave and -- with a single active shard -- the exact historical
  // global-LIFO order.
  Status SeedQueue(thread::ShardedTaskQueue* queue, SkewBuildSlots* slots,
                   numa::NumaSystem* system, const JoinConfig& config,
                   const FinalLayout& s_layout, uint64_t probe_size,
                   int num_threads) const {
    const numa::Topology& topology = system->topology();
    queue->BeginRun(topology.ActiveNodes(num_threads), system);
    const auto num_partitions =
        static_cast<uint32_t>(s_layout.size.size());
    const std::vector<uint32_t> order =
        spec_.improved_sched
            ? thread::RoundRobinNodeOrder(num_partitions,
                                          topology.num_nodes())
            : thread::SequentialOrder(num_partitions);
    MMJOIN_ASSIGN_OR_RETURN(
        thread::SkewTaskList tasks,
        thread::BuildSkewTasks(s_layout.size, order, config.skew_task_factor,
                               probe_size));
    slots->Configure(tasks.skewed_partitions);
    const uint64_t probe_bytes = probe_size * sizeof(Tuple);
    for (const thread::JoinTask& task : tasks.consume_order) {
      const int shard = topology.NodeOfOffset(
          numa::Placement::kChunkedRoundRobin, 0,
          s_layout.begin[task.partition] * sizeof(Tuple), probe_bytes);
      queue->SeedTask(shard, task);
    }
    // Once per join run, not per task: cheap enough to record always.
    // skew_slices counts tasks beyond one per partition, so tasks_seeded ==
    // num_partitions + skew_slices (asserted in tests/obs_test.cc).
    obs::MetricsRegistry::Get().AddCounter("join.tasks_seeded",
                                           tasks.consume_order.size());
    obs::MetricsRegistry::Get().AddCounter("join.skew_slices",
                                           tasks.skew_slices);
    obs::MetricsRegistry::Get().AddCounter("join.skew_partitions",
                                           tasks.skew_partitions);
    return OkStatus();
  }

  void RunJoinPhase(numa::NumaSystem* system, int tid, int node,
                    int num_threads, thread::ShardedTaskQueue* queue,
                    SkewBuildSlots* slots, const FinalLayout& r_layout,
                    const FinalLayout& s_layout, const Tuple* r_data,
                    const Tuple* s_data, uint64_t domain, uint32_t total_bits,
                    bool build_unique, MatchSink* sink, ThreadStats* local,
                    JoinAbort* abort,
                    obs::JoinPhaseProfiler* profiler) const {
    const uint64_t partition_domain =
        domain == 0 ? 0 : CeilDiv(domain, uint64_t{1} << total_bits);
    switch (spec_.table) {
      case TableKind::kChained:
        JoinPartitions<ChainedScratch>(system, tid, node, num_threads, queue,
                                       slots, r_layout, s_layout, r_data,
                                       s_data, partition_domain, total_bits,
                                       build_unique, sink, local, abort,
                                       profiler);
        break;
      case TableKind::kLinear:
        JoinPartitions<LinearScratch>(system, tid, node, num_threads, queue,
                                      slots, r_layout, s_layout, r_data,
                                      s_data, partition_domain, total_bits,
                                      build_unique, sink, local, abort,
                                      profiler);
        break;
      case TableKind::kArray:
        JoinPartitions<ArrayScratch>(system, tid, node, num_threads, queue,
                                     slots, r_layout, s_layout, r_data,
                                     s_data, partition_domain, total_bits,
                                     build_unique, sink, local, abort,
                                     profiler);
        break;
    }
  }

  Algorithm id_;
  PrVariantSpec spec_;
};

}  // namespace

std::unique_ptr<JoinAlgorithm> MakePrJoin(Algorithm variant) {
  return std::make_unique<PrJoin>(variant);
}

}  // namespace mmjoin::join::internal
