// Reference join used by the test suite as ground truth.

#ifndef MMJOIN_JOIN_REFERENCE_H_
#define MMJOIN_JOIN_REFERENCE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "join/join_defs.h"
#include "util/types.h"

namespace mmjoin::thread {
class Executor;
}  // namespace mmjoin::thread

namespace mmjoin::join {

// Computes (matches, checksum) with std::unordered_multimap semantics.
// Single-threaded by default; with an executor the probe phase runs as one
// ParallelFor over the persistent pool (the build stays serial), which keeps
// the oracle exact while making large differential tests affordable.
JoinResult ReferenceJoin(ConstTupleSpan build, ConstTupleSpan probe,
                         thread::Executor* executor = nullptr);

// Materializes every matched <build.payload, probe.payload> pair, sorted,
// for exact multiset comparison on small inputs.
std::vector<std::pair<uint32_t, uint32_t>> ReferenceJoinPairs(
    ConstTupleSpan build, ConstTupleSpan probe);

}  // namespace mmjoin::join

#endif  // MMJOIN_JOIN_REFERENCE_H_
