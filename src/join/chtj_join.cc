// CHTJ -- Concise Hash Table join (Barber et al., PVLDB 2014; paper
// Section 3.2).
//
// Build: the build input is radix-partitioned on the *hash-bucket prefix*
// into one partition per bitmap region, so each thread bulk-loads a disjoint
// region of the global CHT with no synchronization. Probe: exactly like
// NOP -- each thread probes its chunk of S against the read-only global CHT.
// Although the build uses partitioning, the algorithm is classified as
// no-partitioning: partitions never form independent co-group joins.

#include <algorithm>
#include <memory>
#include <vector>

#include "hash/concise_table.h"
#include "join/internal.h"
#include "join/join_algorithm.h"
#include "numa/system.h"
#include "partition/radix.h"
#include "thread/thread_team.h"
#include "util/bits.h"
#include "util/timer.h"

namespace mmjoin::join::internal {
namespace {

class ChtJoin final : public JoinAlgorithm {
 public:
  Algorithm id() const override { return Algorithm::kCHTJ; }

  StatusOr<JoinResult> Run(numa::NumaSystem* system, const JoinConfig& config,
                           ConstTupleSpan build, ConstTupleSpan probe,
                           uint64_t key_domain) override {
    const int num_threads = config.num_threads;

    if (BuildAllocFailpoint()) return InjectedAllocError("build");

    // Check-and-reject budget path: CHTJ's working set is one indivisible
    // global CHT plus build-sized side arrays -- roughly 8 B dense tuple
    // array + 8 B partition buffer + 8 B bucket_of + ~2 B bitmap per build
    // tuple. Either that fits the budget or the join rejects up front.
    MMJOIN_ASSIGN_OR_RETURN(
        mem::BudgetReservation budget_hold,
        mem::BudgetReservation::Acquire(config.budget, build.size() * 26,
                                        "CHTJ concise hash table"));

    // Allocate + prefault all working memory before timing (buffer-manager
    // assumption, Section 5.1).
    hash::ConciseHashTable table(system, build.size(),
                                 numa::Placement::kInterleavedPages);

    // One radix partition per bitmap region; regions are group-aligned (64
    // buckets), so cap the region count accordingly.
    const uint64_t num_groups = table.num_buckets() / 64;
    const uint64_t regions = std::min<uint64_t>(
        NextPowerOfTwo(static_cast<uint64_t>(num_threads)), num_groups);
    const uint32_t region_bits = FloorLog2(regions);
    const uint32_t bucket_bits = FloorLog2(table.num_buckets());
    const partition::RadixFn region_fn{
        /*shift=*/bucket_bits - region_bits, /*bits=*/region_bits};
    const uint64_t buckets_per_region = table.num_buckets() >> region_bits;

    if (PartitionAllocFailpoint()) return InjectedAllocError("partition");
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> partitioned,
        TryBuffer<Tuple>(system, build.size(),
                         numa::Placement::kInterleavedPages,
                         "CHTJ partition buffer"));
    partition::RadixOptions options;
    options.fn = region_fn;
    options.use_swwcb = true;
    options.num_threads = num_threads;
    partition::GlobalRadixPartitioner partitioner(
        system, options, build,
        TupleSpan(partitioned.data(), partitioned.size()));

    std::vector<uint64_t> bucket_of(build.size());
    std::vector<std::vector<Tuple>> overflows(num_threads);
    std::vector<ThreadStats> stats(num_threads);
    int64_t build_end = 0;
    MatchSink* sink = config.sink;
    JoinAbort abort;
    auto profiler = obs::MakeJoinProfiler(num_threads);
    const int64_t start = NowNanos();

    const Status dispatch_status = ExecutorOf(config).Dispatch(
        num_threads, [&](const thread::WorkerContext& ctx) {
      const int tid = ctx.thread_id;
      thread::Barrier& barrier = *ctx.barrier;
      const int node = system->topology().NodeOfThread(tid, num_threads);

      // --- Build: partition by hash prefix, then bulk-load regions. ---
      {
        obs::PhaseScope scope(profiler.get(), tid,
                              obs::JoinPhase::kPartitionPass1);
        partitioner.BuildHistogram(tid);
        barrier.ArriveAndWait();
        if (tid == 0) partitioner.ComputeOffsets();
        barrier.ArriveAndWait();
        partitioner.Scatter(tid, node);
        barrier.ArriveAndWait();
      }

      {
        obs::PhaseScope scope(profiler.get(), tid, obs::JoinPhase::kBuild);
        const partition::PartitionLayout& layout = partitioner.layout();
        for (uint64_t region = tid; region < regions;
             region += static_cast<uint64_t>(num_threads)) {
          const uint64_t begin = layout.PartitionBegin(
              static_cast<uint32_t>(region));
          const uint64_t size =
              layout.PartitionSize(static_cast<uint32_t>(region));
          const hash::ConciseHashTable::BuildRegion bucket_range{
              region * buckets_per_region, (region + 1) * buckets_per_region};
          table.MarkBits(
              ConstTupleSpan(partitioned.data() + begin, size), bucket_range,
              bucket_of.data() + begin, &overflows[tid]);
        }
        barrier.ArriveAndWait();

        if (tid == 0) {
          table.FinalizePrefix();
          std::vector<Tuple> merged;
          for (auto& overflow : overflows) {
            merged.insert(merged.end(), overflow.begin(), overflow.end());
          }
          table.SetOverflow(std::move(merged));
        }
        barrier.ArriveAndWait();

        for (uint64_t region = tid; region < regions;
             region += static_cast<uint64_t>(num_threads)) {
          const uint64_t begin = layout.PartitionBegin(
              static_cast<uint32_t>(region));
          const uint64_t size =
              layout.PartitionSize(static_cast<uint32_t>(region));
          table.Place(ConstTupleSpan(partitioned.data() + begin, size),
                      bucket_of.data() + begin);
        }
      }
      // Probe-phase scratch: check the failpoint before the barrier so every
      // thread still arrives, unwind after it.
      if (tid == 0 && ProbeAllocFailpoint()) {
        abort.Set(InjectedAllocError("probe"));
      }
      barrier.ArriveAndWait();
      if (abort.IsSet()) return;
      if (tid == 0) build_end = NowNanos();

      // --- Probe (NOP-style). Each CHT lookup needs two dependent random
      // accesses: bitmap group, then dense array.
      obs::PhaseScope scope(profiler.get(), tid, obs::JoinPhase::kProbe);
      const thread::Range s_range =
          thread::ChunkRange(probe.size(), num_threads, tid);
      system->CountRead(node, probe.data() + s_range.begin,
                        s_range.size() * sizeof(Tuple));
      ProbeRange(table, probe.data(), s_range.begin, s_range.end,
                 config.build_unique, sink, tid, &stats[tid]);
      system->CountRead(node, partitioned.data(),
                        s_range.size() * 2 * kCacheLineSize);
    });
    MMJOIN_RETURN_IF_ERROR(dispatch_status);
    if (abort.IsSet()) return abort.status();

    const int64_t end = NowNanos();
    JoinResult result = ReduceStats(stats.data(), num_threads);
    result.times.build_ns = build_end - start;
    result.times.probe_ns = end - build_end;
    result.times.total_ns = end - start;
    if (profiler != nullptr) result.profile = profiler->Finish();
    return result;
  }
};

}  // namespace

std::unique_ptr<JoinAlgorithm> MakeChtJoin() {
  return std::make_unique<ChtJoin>();
}

}  // namespace mmjoin::join::internal
