// Internal shared helpers for the join implementations. Not part of the
// public API.

#ifndef MMJOIN_JOIN_INTERNAL_H_
#define MMJOIN_JOIN_INTERNAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "join/join_algorithm.h"
#include "join/join_defs.h"
#include "mem/budget.h"
#include "numa/system.h"
#include "obs/metrics.h"
#include "thread/executor.h"
#include "thread/task_queue.h"
#include "util/annotations.h"
#include "util/failpoint.h"
#include "util/macros.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/types.h"

namespace mmjoin::join::internal {

// The worker pool a join's parallel phases run on: the caller's executor if
// one is configured, the process-wide pool otherwise. Never spawns per-join.
inline thread::Executor& ExecutorOf(const JoinConfig& config) {
  return config.executor != nullptr ? *config.executor
                                    : thread::GlobalExecutor();
}

// Cooperative failure flag for barrier-synchronized worker closures. A
// worker that hits a failure *before* a barrier records it here and still
// arrives at the barrier (so nobody deadlocks); every worker tests the flag
// after the barrier and unwinds. The first status wins.
class JoinAbort {
 public:
  void Set(Status status) {
    MutexLock lock(mutex_);
    if (!failed_.load(std::memory_order_relaxed)) {
      status_ = std::move(status);
      // Release pairs with the acquire in IsSet(): a worker that observes
      // failed_ == true also observes the fully-written status_ (readable
      // via status(), which additionally takes the mutex).
      failed_.store(true, std::memory_order_release);
    }
  }

  bool IsSet() const { return failed_.load(std::memory_order_acquire); }

  Status status() const {
    MutexLock lock(mutex_);
    return status_;
  }

 private:
  std::atomic<bool> failed_{false};
  mutable Mutex mutex_;
  Status status_ MMJOIN_GUARDED_BY(mutex_);
};

// Shared build tables for skewed partitions.
//
// Skew handling splits a large probe partition into several probe-slice
// tasks that may run on different threads. Historically every slice rebuilt
// a private scratch table of the *same* build partition -- O(slices) build
// cost exactly where skew already made the partition expensive. A
// SkewBuildSlots instead holds one slot per skewed partition: the first
// slice to arrive builds the table once, later slices (and concurrent ones,
// via the CondVar) share it read-only.
//
// Lifecycle: a stack object per join run. Configure() runs on the seeding
// thread between barriers (single-threaded); GetOrBuild() runs concurrently
// in the join phase. Destruction at end of run frees the tables, so the
// fault-injection live-region accounting still balances.
class SkewBuildSlots {
 public:
  struct Slot {
    Mutex mutex;
    CondVar cv;
    bool building MMJOIN_GUARDED_BY(mutex) = false;
    // Type-erased so one slot type serves every Scratch adapter; the deleter
    // captured by GetOrBuild restores the concrete type.
    std::shared_ptr<const void> table MMJOIN_GUARDED_BY(mutex);
  };

  // One slot per partition that BuildSkewTasks split. Seeding-thread only.
  void Configure(const std::vector<uint32_t>& skewed_partitions) {
    slots_.clear();
    for (const uint32_t p : skewed_partitions) {
      slots_.emplace(p, std::make_unique<Slot>());
    }
  }

  // Null for partitions that were not split (callers then use their private
  // per-worker scratch as before). The map itself is read-only during the
  // join phase, so lookups take no lock.
  Slot* Find(uint32_t partition) const {
    const auto it = slots_.find(partition);
    return it == slots_.end() ? nullptr : it->second.get();
  }

  // Returns the slot's table, building it exactly once: the first caller
  // runs `build_fn` (-> unique_ptr<Scratch>) outside the slot mutex while
  // later callers wait on the CondVar. `built` reports whether *this* call
  // did the build (the builder pays the build-side memory reads, which
  // matters for steal accounting). The returned table is valid until the
  // SkewBuildSlots is destroyed or reconfigured.
  template <typename Scratch, typename BuildFn>
  const Scratch* GetOrBuild(Slot* slot, BuildFn&& build_fn, bool* built) {
    *built = false;
    {
      MutexLock lock(slot->mutex);
      while (slot->building) slot->cv.Wait(slot->mutex);
      if (slot->table != nullptr) {
        return static_cast<const Scratch*>(slot->table.get());
      }
      slot->building = true;
    }
    // Build outside the lock: the table constructor allocates and the
    // insert loop streams the whole build partition.
    *built = true;
    std::unique_ptr<Scratch> table = build_fn();
    const Scratch* raw = table.get();
    std::shared_ptr<const void> erased(
        table.release(),
        [](const void* p) { delete static_cast<const Scratch*>(p); });
    MutexLock lock(slot->mutex);
    slot->table = std::move(erased);
    slot->building = false;
    slot->cv.NotifyAll();
    return raw;
  }

 private:
  std::unordered_map<uint32_t, std::unique_ptr<Slot>> slots_;
};

// Exports one run's work-stealing telemetry. Called once per join run after
// the dispatch returns (even for runs that stole nothing, so the counters
// are always present in exported metrics).
inline void FlushStealMetrics(const thread::ShardedTaskQueue& queue) {
  const thread::ShardedTaskQueue::RunStats stats = queue.run_stats();
  obs::MetricsRegistry::Get().AddCounter("join.tasks_stolen",
                                         stats.tasks_stolen);
  obs::MetricsRegistry::Get().AddCounter("join.steal_remote_reads",
                                         stats.steal_remote_read_bytes);
  // Distribution of steals per dispatch (one sample per run, zeros
  // included): the shape separates "rare dispatches steal everything"
  // from "every dispatch steals a little".
  static obs::Histogram* const steals =
      obs::MetricsRegistry::Get().GetHistogram("join.steals_per_dispatch");
  steals->Record(stats.tasks_stolen);
}

// The queue a join run schedules its co-partition tasks on: the executor's
// persistent sharded queue when its shard count matches the join's software
// topology, else `fallback` (a run-local queue sized to the topology).
// Mismatches only happen when a caller pairs an executor with a NumaSystem
// modeling a different node count.
inline thread::ShardedTaskQueue* SelectJoinQueue(
    thread::Executor& executor, const numa::NumaSystem& system,
    std::unique_ptr<thread::ShardedTaskQueue>* fallback) {
  const int num_nodes = system.topology().num_nodes();
  if (executor.join_queue().num_shards() == num_nodes) {
    return &executor.join_queue();
  }
  *fallback = std::make_unique<thread::ShardedTaskQueue>(num_nodes);
  return fallback->get();
}

// Canonical per-phase allocation failpoints. Inline functions (not the
// macro) so every join TU evaluates the *same* registered failpoint --
// `alloc.partition=once` must be able to fail whichever algorithm runs
// next, exactly once, regardless of which TU it lives in.
inline bool PartitionAllocFailpoint() {
  return MMJOIN_FAILPOINT("alloc.partition");
}
inline bool BuildAllocFailpoint() { return MMJOIN_FAILPOINT("alloc.build"); }
inline bool ProbeAllocFailpoint() { return MMJOIN_FAILPOINT("alloc.probe"); }

inline Status InjectedAllocError(const char* phase) {
  return ResourceExhaustedError(
      std::string("injected allocation failure in ") + phase +
      " phase (failpoint alloc." + phase + ")");
}

// Forces the radix joins onto the spill-wave degradation path regardless of
// the budget arithmetic, so tests can drive stage 2 deterministically (see
// docs/ROBUSTNESS.md). Shared across the PR*/CPR* TUs like the alloc.*
// failpoints above.
inline bool WaveBudgetFailpoint() { return MMJOIN_FAILPOINT("budget.wave"); }

// Stage-3 rejection: even maximum degradation (bit escalation, one pass,
// kMaxSpillWaves) cannot fit the budget.
inline Status BudgetInfeasibleError(const char* algorithm, uint64_t needed,
                                    uint64_t budget) {
  return ResourceExhaustedError(
      std::string(algorithm) +
      ": memory budget infeasible after all degradation stages (needs >= " +
      std::to_string(needed) + " bytes, budget " + std::to_string(budget) +
      ")");
}

// NumaBuffer::TryCreate with a phase-tagged error message.
template <typename T>
StatusOr<numa::NumaBuffer<T>> TryBuffer(numa::NumaSystem* system,
                                        std::size_t count,
                                        numa::Placement placement,
                                        const char* what, int home_node = 0) {
  auto buffer =
      numa::NumaBuffer<T>::TryCreate(system, count, placement, home_node);
  if (!buffer.ok()) {
    return ResourceExhaustedError(std::string(what) + ": " +
                                  buffer.status().message());
  }
  return buffer;
}

// Per-thread match accumulator, cache-line padded against false sharing.
// The live fields sit in a nested struct so the padding is derived from
// their actual layout instead of hand-counted member sizes (which silently
// rots when a field is added or resized).
struct ThreadStatsFields {
  uint64_t matches = 0;
  uint64_t checksum = 0;
};

struct alignas(kCacheLineSize) ThreadStats : ThreadStatsFields {
  char padding[kCacheLineSize - sizeof(ThreadStatsFields)];
};
static_assert(sizeof(ThreadStatsFields) < kCacheLineSize,
              "ThreadStats fields must leave room for padding");
static_assert(sizeof(ThreadStats) == kCacheLineSize,
              "ThreadStats must occupy exactly one cache line");

MMJOIN_ALWAYS_INLINE void AccumulateMatch(ThreadStats* stats, Tuple build,
                                          Tuple probe) {
  ++stats->matches;
  stats->checksum +=
      static_cast<uint64_t>(build.payload) + probe.payload;
}

inline JoinResult ReduceStats(const ThreadStats* stats, int num_threads) {
  JoinResult result;
  for (int t = 0; t < num_threads; ++t) {
    result.matches += stats[t].matches;
    result.checksum += stats[t].checksum;
  }
  return result;
}

// Exclusive upper bound of the build key domain: `provided` when nonzero,
// otherwise max key + 1 (scanned).
uint64_t InferKeyDomain(ConstTupleSpan build, uint64_t provided);

// Batches matches into a MatchChunk and flushes it to the sink's
// ConsumeChunk fast path -- one virtual call per up-to-1024 matches instead
// of one per match. Stack-allocated per probe task/fragment; the destructor
// flushes the remainder, so partial chunks at task boundaries are delivered
// (chunk *sizes* are therefore best-effort; consumers that care about
// density compact downstream, see exec::ChunkCompactor).
class MatchBuffer {
 public:
  MatchBuffer(MatchSink* sink, int tid) : sink_(sink), tid_(tid) {}
  ~MatchBuffer() { Flush(); }

  MatchBuffer(const MatchBuffer&) = delete;
  MatchBuffer& operator=(const MatchBuffer&) = delete;

  MMJOIN_ALWAYS_INLINE void Add(Tuple build, Tuple probe) {
    chunk_.Add(build, probe);
    if (MMJOIN_UNLIKELY(chunk_.full())) Flush();
  }

  void Flush() {
    if (chunk_.size == 0) return;
    sink_->ConsumeChunk(tid_, chunk_);
    chunk_.size = 0;
  }

 private:
  MatchSink* sink_;
  int tid_;
  MatchChunk chunk_;
};

// Probes probe[begin, end) against `table` (anything exposing Probe and
// ProbeUnique), accumulating into `local` and optionally feeding `sink`
// (chunk-batched through a MatchBuffer). The unique/sink dispatch happens
// once, outside the tight loops.
template <typename Table>
void ProbeRange(const Table& table, const Tuple* probe, uint64_t begin,
                uint64_t end, bool unique, MatchSink* sink, int tid,
                ThreadStats* local) {
  if (unique) {
    if (sink == nullptr) {
      for (uint64_t i = begin; i < end; ++i) {
        const Tuple s = probe[i];
        table.ProbeUnique(s.key,
                          [&](Tuple r) { AccumulateMatch(local, r, s); });
      }
    } else {
      MatchBuffer buffer(sink, tid);
      for (uint64_t i = begin; i < end; ++i) {
        const Tuple s = probe[i];
        table.ProbeUnique(s.key, [&](Tuple r) {
          AccumulateMatch(local, r, s);
          buffer.Add(r, s);
        });
      }
    }
  } else {
    if (sink == nullptr) {
      for (uint64_t i = begin; i < end; ++i) {
        const Tuple s = probe[i];
        table.Probe(s.key, [&](Tuple r) { AccumulateMatch(local, r, s); });
      }
    } else {
      MatchBuffer buffer(sink, tid);
      for (uint64_t i = begin; i < end; ++i) {
        const Tuple s = probe[i];
        table.Probe(s.key, [&](Tuple r) {
          AccumulateMatch(local, r, s);
          buffer.Add(r, s);
        });
      }
    }
  }
}

// Per-algorithm factories (one translation unit each).
std::unique_ptr<JoinAlgorithm> MakeNopJoin(bool array_table);
std::unique_ptr<JoinAlgorithm> MakeChtJoin();
std::unique_ptr<JoinAlgorithm> MakeMwayJoin();
std::unique_ptr<JoinAlgorithm> MakePrJoin(Algorithm variant);
std::unique_ptr<JoinAlgorithm> MakeCprJoin(Algorithm variant);

}  // namespace mmjoin::join::internal

#endif  // MMJOIN_JOIN_INTERNAL_H_
