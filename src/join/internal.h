// Internal shared helpers for the join implementations. Not part of the
// public API.

#ifndef MMJOIN_JOIN_INTERNAL_H_
#define MMJOIN_JOIN_INTERNAL_H_

#include <cstdint>
#include <memory>

#include "join/join_algorithm.h"
#include "join/join_defs.h"
#include "thread/executor.h"
#include "util/macros.h"
#include "util/types.h"

namespace mmjoin::join::internal {

// The worker pool a join's parallel phases run on: the caller's executor if
// one is configured, the process-wide pool otherwise. Never spawns per-join.
inline thread::Executor& ExecutorOf(const JoinConfig& config) {
  return config.executor != nullptr ? *config.executor
                                    : thread::GlobalExecutor();
}

// Per-thread match accumulator, cache-line padded against false sharing.
struct alignas(kCacheLineSize) ThreadStats {
  uint64_t matches = 0;
  uint64_t checksum = 0;
  char padding[kCacheLineSize - 2 * sizeof(uint64_t)];
};

MMJOIN_ALWAYS_INLINE void AccumulateMatch(ThreadStats* stats, Tuple build,
                                          Tuple probe) {
  ++stats->matches;
  stats->checksum +=
      static_cast<uint64_t>(build.payload) + probe.payload;
}

inline JoinResult ReduceStats(const ThreadStats* stats, int num_threads) {
  JoinResult result;
  for (int t = 0; t < num_threads; ++t) {
    result.matches += stats[t].matches;
    result.checksum += stats[t].checksum;
  }
  return result;
}

// Exclusive upper bound of the build key domain: `provided` when nonzero,
// otherwise max key + 1 (scanned).
uint64_t InferKeyDomain(ConstTupleSpan build, uint64_t provided);

// Probes probe[begin, end) against `table` (anything exposing Probe and
// ProbeUnique), accumulating into `local` and optionally feeding `sink`.
// The unique/sink dispatch happens once, outside the tight loops.
template <typename Table>
void ProbeRange(const Table& table, const Tuple* probe, uint64_t begin,
                uint64_t end, bool unique, MatchSink* sink, int tid,
                ThreadStats* local) {
  if (unique) {
    if (sink == nullptr) {
      for (uint64_t i = begin; i < end; ++i) {
        const Tuple s = probe[i];
        table.ProbeUnique(s.key,
                          [&](Tuple r) { AccumulateMatch(local, r, s); });
      }
    } else {
      for (uint64_t i = begin; i < end; ++i) {
        const Tuple s = probe[i];
        table.ProbeUnique(s.key, [&](Tuple r) {
          AccumulateMatch(local, r, s);
          sink->Consume(tid, r, s);
        });
      }
    }
  } else {
    if (sink == nullptr) {
      for (uint64_t i = begin; i < end; ++i) {
        const Tuple s = probe[i];
        table.Probe(s.key, [&](Tuple r) { AccumulateMatch(local, r, s); });
      }
    } else {
      for (uint64_t i = begin; i < end; ++i) {
        const Tuple s = probe[i];
        table.Probe(s.key, [&](Tuple r) {
          AccumulateMatch(local, r, s);
          sink->Consume(tid, r, s);
        });
      }
    }
  }
}

// Per-algorithm factories (one translation unit each).
std::unique_ptr<JoinAlgorithm> MakeNopJoin(bool array_table);
std::unique_ptr<JoinAlgorithm> MakeChtJoin();
std::unique_ptr<JoinAlgorithm> MakeMwayJoin();
std::unique_ptr<JoinAlgorithm> MakePrJoin(Algorithm variant);
std::unique_ptr<JoinAlgorithm> MakeCprJoin(Algorithm variant);

}  // namespace mmjoin::join::internal

#endif  // MMJOIN_JOIN_INTERNAL_H_
