// Common definitions for the thirteen join algorithms (paper Table 2).

#ifndef MMJOIN_JOIN_JOIN_DEFS_H_
#define MMJOIN_JOIN_JOIN_DEFS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/phase_profile.h"
#include "util/status.h"
#include "util/types.h"

namespace mmjoin::thread {
class Executor;
}  // namespace mmjoin::thread

namespace mmjoin::mem {
class BudgetTracker;
}  // namespace mmjoin::mem

namespace mmjoin::join {

// The thirteen algorithms of the study, in the order of paper Table 2.
enum class Algorithm {
  kPRB,    // basic two-pass parallel radix join (no SWWCB)        [Balkesen]
  kNOP,    // no-partitioning, lock-free linear probing            [Lang]
  kCHTJ,   // concise hash table join                              [Barber]
  kMWAY,   // multi-way sort-merge join                            [Balkesen]
  kNOPA,   // NOP with an array table                              [this]
  kPRO,    // one-pass radix join + SWWCB + NT streaming, chained  [Balkesen]
  kPRL,    // PRO with linear probing                              [this]
  kPRA,    // PRO with array tables                                [this]
  kCPRL,   // chunked radix join, linear probing                   [this]
  kCPRA,   // chunked radix join, array tables                     [this]
  kPROiS,  // PRO + NUMA round-robin task scheduling               [this]
  kPRLiS,  // PRL + improved scheduling                            [this]
  kPRAiS,  // PRA + improved scheduling                            [this]
};

// Join classes (paper Table 1).
enum class JoinClass {
  kPartitionBased,
  kNoPartitioning,
  kSortMerge,
};

struct AlgorithmInfo {
  Algorithm algorithm;
  const char* name;
  JoinClass join_class;
  const char* description;
  bool requires_dense_keys;  // array joins need a bounded key domain
};

const AlgorithmInfo& InfoOf(Algorithm algorithm);
const char* NameOf(Algorithm algorithm);
std::optional<Algorithm> AlgorithmFromName(std::string_view name);
const std::vector<Algorithm>& AllAlgorithms();

// Per-phase wall-clock breakdown. Partition-based joins report partition +
// join (build+probe merged into `probe_ns` is *not* done -- build and probe
// are timed separately where the algorithm distinguishes them; MWAY maps
// sort to `build_ns` and merge-join to `probe_ns`).
struct PhaseTimes {
  int64_t partition_ns = 0;
  int64_t build_ns = 0;
  int64_t probe_ns = 0;
  int64_t total_ns = 0;
};

// Aggregate join output. `checksum` is the order-independent sum of
// build.payload + probe.payload over all matched pairs, so any two correct
// algorithms agree on (matches, checksum).
struct JoinResult {
  uint64_t matches = 0;
  uint64_t checksum = 0;
  PhaseTimes times;
  // Whitebox per-phase breakdown (per-thread min/max/mean wall clock plus
  // hardware-counter deltas). Populated only while observability is enabled
  // (obs::Enabled()); disabled runs pay nothing and leave this empty.
  std::optional<obs::PhaseProfile> profile;

  // The study's throughput metric: (|R| + |S|) / runtime, in million input
  // tuples per second (paper Section 1, definition from Lang et al.).
  double ThroughputMtps(uint64_t build_size, uint64_t probe_size) const {
    if (times.total_ns <= 0) return 0.0;
    return static_cast<double>(build_size + probe_size) /
           (static_cast<double>(times.total_ns) * 1e-9) / 1e6;
  }
};

// A batch of matched pairs crossing the join -> consumer boundary in one
// virtual call. Stored column-wise (struct-of-arrays) so chunk consumers --
// the vectorized pipeline in src/exec/, bulk materialization -- copy with
// three memcpys instead of a per-tuple loop. Both sides share the join key,
// so it is stored once.
struct MatchChunk {
  static constexpr uint32_t kCapacity = 1024;

  uint32_t size = 0;
  uint32_t key[kCapacity];
  uint32_t build_payload[kCapacity];
  uint32_t probe_payload[kCapacity];

  bool full() const { return size == kCapacity; }

  MMJOIN_ALWAYS_INLINE void Add(Tuple build, Tuple probe) {
    key[size] = probe.key;
    build_payload[size] = build.payload;
    probe_payload[size] = probe.payload;
    ++size;
  }
};

// Optional consumer of matched pairs (used by the TPC-H executors to build
// join indexes and by the exec:: pipeline to feed post-join operators).
// Both entry points may be called concurrently from different threads with
// distinct thread ids.
//
// ConsumeChunk is the fast path: the join kernels batch matches into
// MatchChunks (see internal::MatchBuffer) and hand over whole chunks, one
// virtual call per up-to-1024 matches. Sinks that only implement the
// tuple-at-a-time Consume get the default unbatching adapter below; chunk
// sizes are best-effort (task/fragment boundaries flush partial chunks).
class MatchSink {
 public:
  virtual ~MatchSink() = default;
  virtual void Consume(int thread_id, Tuple build, Tuple probe) = 0;

  virtual void ConsumeChunk(int thread_id, const MatchChunk& chunk) {
    for (uint32_t i = 0; i < chunk.size; ++i) {
      Consume(thread_id, Tuple{chunk.key[i], chunk.build_payload[i]},
              Tuple{chunk.key[i], chunk.probe_payload[i]});
    }
  }
};

struct JoinConfig {
  int num_threads = 4;
  // Radix bits for partition-based joins; 0 = predict via Equation (1).
  uint32_t radix_bits = 0;
  // Partitioning passes for the PR* family: 0 = algorithm default (PRB: 2,
  // everything else: 1); 1 or 2 forces the pass count (the Figure 2
  // single- vs two-pass study).
  uint32_t num_passes = 0;
  // Skew handling: probe partitions larger than `skew_factor` times the
  // average are split into that many probe slices (0 disables).
  uint32_t skew_task_factor = 8;
  // The build side is a primary key column (unique keys) -- the setting of
  // every workload in the paper. Probes then stop at the first match, which
  // keeps linear probing O(1) under the identity hash on dense domains. Set
  // false for general multiset build sides.
  bool build_unique = true;
  // Optional materialization of matched pairs.
  MatchSink* sink = nullptr;
  // Worker pool running the join's parallel phases. nullptr falls back to
  // the process-wide pool (thread::GlobalExecutor()); either way no OS
  // threads are spawned per join. core::Joiner points this at its own
  // persistent executor.
  thread::Executor* executor = nullptr;
  // Per-join memory budget in bytes. nullopt = unbounded. When set (and no
  // tracker is supplied below), RunJoin creates a run-local
  // mem::BudgetTracker for the duration of the join. The PR*/CPR* family
  // degrades gracefully under a tight budget (re-plan radix bits / passes,
  // then sequential spill waves); the other algorithms check-and-reject with
  // ResourceExhausted. See docs/ROBUSTNESS.md "Memory budgets".
  std::optional<uint64_t> mem_budget_bytes;
  // Externally owned tracker (e.g. a per-tenant budget shared by several
  // joins). Takes precedence over mem_budget_bytes. Not owned.
  mem::BudgetTracker* budget = nullptr;

  // Rejects configurations the kernels cannot execute safely: thread counts
  // outside [1, kMaxThreads], radix bits above kMaxRadixBits, more than two
  // partitioning passes, relation sizes whose partition buffers would
  // overflow size_t arithmetic, and explicit budgets below one partition
  // buffer. Checked by RunJoin before any allocation.
  Status Validate(uint64_t build_size, uint64_t probe_size) const;

  static constexpr int kMaxThreads = 1024;
  static constexpr uint32_t kMaxRadixBits = 27;
  static constexpr uint64_t kMaxRelationSize = 1ull << 40;
  // Smallest explicit budget Validate accepts: one mmap-class partition
  // buffer (mem::TryAllocateAligned's mmap threshold). Anything smaller
  // cannot hold even a single wave's scratch space.
  static constexpr uint64_t kMinMemBudgetBytes = 1ull << 20;
};

}  // namespace mmjoin::join

#endif  // MMJOIN_JOIN_JOIN_DEFS_H_
