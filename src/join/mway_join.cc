// MWAY -- multi-way sort-merge join (Balkesen et al., PVLDB 2013; paper
// Section 3.3).
//
// 1. Range-partition both inputs on the high key bits into one partition per
//    thread slot (single pass, SWWCB + non-temporal streaming), so
//    co-partitions cover disjoint key ranges.
// 2. Sort each co-partition: generate cache-sized sorted runs with the SIMD
//    bitonic merge kernels, then combine all runs in ONE multi-way merge
//    pass (saving memory round-trips vs. binary merging -- the "m-way"
//    idea).
// 3. Merge-join each sorted co-partition pair independently.

#include <algorithm>
#include <memory>
#include <vector>

#include "join/internal.h"
#include "join/join_algorithm.h"
#include "numa/system.h"
#include "partition/radix.h"
#include "sort/bitonic.h"
#include "sort/multiway_merge.h"
#include "thread/thread_team.h"
#include "util/bits.h"
#include "util/timer.h"

namespace mmjoin::join::internal {
namespace {

// Sorted runs of this many packed tuples fit the paper machine's L2.
constexpr std::size_t kSortRunSize = std::size_t{1} << 15;

// Sorts `data` in place: run generation + one multi-way merge through
// `scratch` (same size).
void SortMway(uint64_t* data, std::size_t n, uint64_t* scratch) {
  if (n <= kSortRunSize) {
    sort::MergeSortPacked(data, n, scratch);
    return;
  }
  std::vector<sort::SortedRun> runs;
  for (std::size_t begin = 0; begin < n; begin += kSortRunSize) {
    const std::size_t size = std::min(kSortRunSize, n - begin);
    sort::MergeSortPacked(data + begin, size, scratch + begin);
    runs.push_back(sort::SortedRun{data + begin, size});
  }
  sort::MultiwayMerge(runs, scratch);
  std::copy(scratch, scratch + n, data);
}

// Merge-joins two key-sorted packed arrays, handling duplicates on both
// sides.
template <typename Emit>
void MergeJoinSorted(const uint64_t* r, std::size_t nr, const uint64_t* s,
                     std::size_t ns, Emit&& emit) {
  std::size_t i = 0, j = 0;
  while (i < nr && j < ns) {
    const uint32_t rk = static_cast<uint32_t>(r[i] >> 32);
    const uint32_t sk = static_cast<uint32_t>(s[j] >> 32);
    if (rk < sk) {
      ++i;
    } else if (rk > sk) {
      ++j;
    } else {
      std::size_t i_end = i + 1;
      while (i_end < nr && static_cast<uint32_t>(r[i_end] >> 32) == rk) {
        ++i_end;
      }
      std::size_t j_end = j + 1;
      while (j_end < ns && static_cast<uint32_t>(s[j_end] >> 32) == sk) {
        ++j_end;
      }
      for (std::size_t a = i; a < i_end; ++a) {
        for (std::size_t b = j; b < j_end; ++b) {
          emit(UnpackTuple(r[a]), UnpackTuple(s[b]));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
}

class MwayJoin final : public JoinAlgorithm {
 public:
  Algorithm id() const override { return Algorithm::kMWAY; }

  StatusOr<JoinResult> Run(numa::NumaSystem* system, const JoinConfig& config,
                           ConstTupleSpan build, ConstTupleSpan probe,
                           uint64_t key_domain) override {
    const int num_threads = config.num_threads;

    const uint64_t domain = InferKeyDomain(build, key_domain);
    const uint32_t bits =
        FloorLog2(NextPowerOfTwo(static_cast<uint64_t>(num_threads)));
    const uint32_t domain_bits = CeilLog2(std::max<uint64_t>(domain, 2));
    const uint32_t shift = domain_bits > bits ? domain_bits - bits : 0;
    const partition::RadixFn fn{shift, bits};
    const uint32_t num_partitions = fn.num_partitions();

    if (PartitionAllocFailpoint()) return InjectedAllocError("partition");

    // Check-and-reject budget path: MWAY materializes both relations into
    // partition buffers (8 B/tuple) plus packed sort buffers and merge
    // scratch (8 B/tuple each) -- 24 B per input tuple total. The sort/merge
    // pipeline needs all of it live at once, so there is no graceful
    // degradation stage for MWAY.
    MMJOIN_ASSIGN_OR_RETURN(
        mem::BudgetReservation budget_hold,
        mem::BudgetReservation::Acquire(
            config.budget, (build.size() + probe.size()) * 24,
            "MWAY partition + sort buffers"));

    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> r_part,
        TryBuffer<Tuple>(system, build.size(),
                         numa::Placement::kInterleavedPages,
                         "MWAY R partition buffer"));
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> s_part,
        TryBuffer<Tuple>(system, probe.size(),
                         numa::Placement::kInterleavedPages,
                         "MWAY S partition buffer"));

    partition::RadixOptions options;
    options.fn = fn;
    options.use_swwcb = true;
    options.num_threads = num_threads;
    partition::GlobalRadixPartitioner r_partitioner(
        system, options, build, TupleSpan(r_part.data(), r_part.size()));
    partition::GlobalRadixPartitioner s_partitioner(
        system, options, probe, TupleSpan(s_part.data(), s_part.size()));

    // Packed sort buffers (key in the high 32 bits) + merge scratch. These
    // feed the sort phase (MWAY's "build"), hence the build failpoint.
    if (BuildAllocFailpoint()) return InjectedAllocError("build");
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<uint64_t> r_packed,
        TryBuffer<uint64_t>(system, build.size(),
                            numa::Placement::kInterleavedPages,
                            "MWAY R sort buffer"));
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<uint64_t> s_packed,
        TryBuffer<uint64_t>(system, probe.size(),
                            numa::Placement::kInterleavedPages,
                            "MWAY S sort buffer"));
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<uint64_t> r_scratch,
        TryBuffer<uint64_t>(system, build.size(),
                            numa::Placement::kInterleavedPages,
                            "MWAY R merge scratch"));
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<uint64_t> s_scratch,
        TryBuffer<uint64_t>(system, probe.size(),
                            numa::Placement::kInterleavedPages,
                            "MWAY S merge scratch"));

    std::vector<ThreadStats> stats(num_threads);
    int64_t partition_end = 0;
    int64_t sort_end = 0;
    MatchSink* sink = config.sink;
    JoinAbort abort;
    auto profiler = obs::MakeJoinProfiler(num_threads);
    // Buffers above are allocated + prefaulted untimed (buffer-manager
    // assumption, Section 5.1).
    const int64_t start = NowNanos();

    const Status dispatch_status = ExecutorOf(config).Dispatch(
        num_threads, [&](const thread::WorkerContext& ctx) {
      const int tid = ctx.thread_id;
      thread::Barrier& barrier = *ctx.barrier;
      const int node = system->topology().NodeOfThread(tid, num_threads);

      // --- Partition both relations. ---
      {
        obs::PhaseScope scope(profiler.get(), tid,
                              obs::JoinPhase::kPartitionPass1);
        r_partitioner.BuildHistogram(tid);
        s_partitioner.BuildHistogram(tid);
        barrier.ArriveAndWait();
        if (tid == 0) {
          r_partitioner.ComputeOffsets();
          s_partitioner.ComputeOffsets();
        }
        barrier.ArriveAndWait();
        r_partitioner.Scatter(tid, node);
        s_partitioner.Scatter(tid, node);
        barrier.ArriveAndWait();
      }
      if (tid == 0) partition_end = NowNanos();

      // --- Sort co-partitions (one partition per thread slot). ---
      const auto& r_layout = r_partitioner.layout();
      const auto& s_layout = s_partitioner.layout();
      {
        obs::PhaseScope scope(profiler.get(), tid, obs::JoinPhase::kSort);
        for (uint32_t p = static_cast<uint32_t>(tid); p < num_partitions;
             p += static_cast<uint32_t>(num_threads)) {
          SortPartition(r_part.data(), r_layout, p, r_packed.data(),
                        r_scratch.data());
          SortPartition(s_part.data(), s_layout, p, s_packed.data(),
                        s_scratch.data());
        }
      }
      // Merge-join scratch: failpoint before the barrier, unwind after.
      if (tid == 0 && ProbeAllocFailpoint()) {
        abort.Set(InjectedAllocError("probe"));
      }
      barrier.ArriveAndWait();
      if (abort.IsSet()) return;
      if (tid == 0) sort_end = NowNanos();

      // --- Merge-join co-partitions. ---
      obs::PhaseScope scope(profiler.get(), tid, obs::JoinPhase::kMerge);
      ThreadStats* local = &stats[tid];
      for (uint32_t p = static_cast<uint32_t>(tid); p < num_partitions;
           p += static_cast<uint32_t>(num_threads)) {
        const uint64_t* r_sorted = r_packed.data() + r_layout.offsets[p];
        const uint64_t* s_sorted = s_packed.data() + s_layout.offsets[p];
        system->CountRead(node, r_sorted,
                          r_layout.PartitionSize(p) * sizeof(uint64_t));
        system->CountRead(node, s_sorted,
                          s_layout.PartitionSize(p) * sizeof(uint64_t));
        if (sink == nullptr) {
          MergeJoinSorted(r_sorted, r_layout.PartitionSize(p), s_sorted,
                          s_layout.PartitionSize(p), [&](Tuple r, Tuple s) {
                            AccumulateMatch(local, r, s);
                          });
        } else {
          MatchBuffer buffer(sink, tid);
          MergeJoinSorted(r_sorted, r_layout.PartitionSize(p), s_sorted,
                          s_layout.PartitionSize(p), [&](Tuple r, Tuple s) {
                            AccumulateMatch(local, r, s);
                            buffer.Add(r, s);
                          });
        }
      }
    });
    MMJOIN_RETURN_IF_ERROR(dispatch_status);
    if (abort.IsSet()) return abort.status();

    const int64_t end = NowNanos();
    JoinResult result = ReduceStats(stats.data(), num_threads);
    result.times.partition_ns = partition_end - start;
    result.times.build_ns = sort_end - partition_end;  // sort phase
    result.times.probe_ns = end - sort_end;            // merge-join phase
    result.times.total_ns = end - start;
    if (profiler != nullptr) result.profile = profiler->Finish();
    return result;
  }

 private:
  static void SortPartition(const Tuple* partitioned,
                            const partition::PartitionLayout& layout,
                            uint32_t p, uint64_t* packed, uint64_t* scratch) {
    const uint64_t begin = layout.offsets[p];
    const uint64_t size = layout.PartitionSize(p);
    for (uint64_t i = 0; i < size; ++i) {
      packed[begin + i] = PackTuple(partitioned[begin + i]);
    }
    SortMway(packed + begin, size, scratch + begin);
  }
};

}  // namespace

std::unique_ptr<JoinAlgorithm> MakeMwayJoin() {
  return std::make_unique<MwayJoin>();
}

}  // namespace mmjoin::join::internal
