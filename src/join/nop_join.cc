// NOP and NOPA (paper Sections 3.2 and 5.2).
//
// No-partitioning joins build one global hash table concurrently (NOP: the
// lock-free CAS linear probing table of Lang et al.; NOPA: a plain array for
// dense key domains), then every thread probes its chunk of S. The table is
// interleaved page-wise over all NUMA nodes for balanced memory bandwidth.

#include <memory>
#include <vector>

#include "hash/array_table.h"
#include "hash/linear_probing_table.h"
#include "join/internal.h"
#include "join/join_algorithm.h"
#include "numa/system.h"
#include "partition/model.h"
#include "thread/thread_team.h"
#include "util/timer.h"

namespace mmjoin::join::internal {
namespace {

// TableOps adapts the two table flavours to one code path. TableBytes is
// the check-and-reject budget estimate: NOP has one indivisible global
// table, so there is no graceful degradation -- either the table fits the
// budget or the join reports ResourceExhausted up front.
struct LinearOps {
  using Table = hash::LinearProbingTable<hash::IdentityHash>;
  static std::unique_ptr<Table> Make(numa::NumaSystem* system,
                                     ConstTupleSpan build,
                                     uint64_t key_domain) {
    return std::make_unique<Table>(system, build.size(),
                                   numa::Placement::kInterleavedPages);
  }
  static uint64_t TableBytes(ConstTupleSpan build, uint64_t key_domain) {
    return static_cast<uint64_t>(
        partition::kLinearSpace.bytes_per_tuple *
        static_cast<double>(build.size()));
  }
};

struct ArrayOps {
  using Table = hash::ArrayTable;
  static std::unique_ptr<Table> Make(numa::NumaSystem* system,
                                     ConstTupleSpan build,
                                     uint64_t key_domain) {
    return std::make_unique<Table>(system,
                                   InferKeyDomain(build, key_domain),
                                   /*key_shift=*/0,
                                   numa::Placement::kInterleavedPages);
  }
  static uint64_t TableBytes(ConstTupleSpan build, uint64_t key_domain) {
    return static_cast<uint64_t>(
        partition::kArraySpace.bytes_per_tuple *
        static_cast<double>(InferKeyDomain(build, key_domain)));
  }
};

template <typename Ops>
class NopFamilyJoin final : public JoinAlgorithm {
 public:
  explicit NopFamilyJoin(Algorithm id) : id_(id) {}

  Algorithm id() const override { return id_; }

  StatusOr<JoinResult> Run(numa::NumaSystem* system, const JoinConfig& config,
                           ConstTupleSpan build, ConstTupleSpan probe,
                           uint64_t key_domain) override {
    const int num_threads = config.num_threads;

    // NOP has no partition phase; the partition failpoint covers its
    // (degenerate) working-memory setup so `alloc.partition` fails every
    // algorithm uniformly.
    if (PartitionAllocFailpoint()) return InjectedAllocError("partition");
    if (BuildAllocFailpoint()) return InjectedAllocError("build");

    // Check-and-reject budget path: reserve the global table's estimated
    // footprint for the duration of the run (released when `budget_hold`
    // leaves scope with the table).
    MMJOIN_ASSIGN_OR_RETURN(
        mem::BudgetReservation budget_hold,
        mem::BudgetReservation::Acquire(config.budget,
                                        Ops::TableBytes(build, key_domain),
                                        "NOP global hash table"));

    // Working memory is allocated and prefaulted before timing starts: the
    // paper assumes a buffer manager has faulted pages in already
    // (Section 5.1, "Memory Allocation Locality").
    auto table = Ops::Make(system, build, key_domain);
    const int64_t start = NowNanos();

    std::vector<ThreadStats> stats(num_threads);
    int64_t build_end = 0;
    MatchSink* sink = config.sink;
    JoinAbort abort;
    auto profiler = obs::MakeJoinProfiler(num_threads);

    const Status dispatch_status = ExecutorOf(config).Dispatch(
        num_threads, [&](const thread::WorkerContext& ctx) {
          const int tid = ctx.thread_id;
          thread::Barrier& barrier = *ctx.barrier;
          const int node = system->topology().NodeOfThread(tid, num_threads);

          {
            obs::PhaseScope scope(profiler.get(), tid, obs::JoinPhase::kBuild);
            // Build: insert this thread's chunk of R into the global table.
            const thread::Range r_range =
                thread::ChunkRange(build.size(), num_threads, tid);
            system->CountRead(node, build.data() + r_range.begin,
                              r_range.size() * sizeof(Tuple));
            for (std::size_t i = r_range.begin; i < r_range.end; ++i) {
              table->InsertConcurrent(build[i]);
            }
            // Random writes into the interleaved table: one line per insert.
            system->CountWrite(node, table->raw_data(),
                               r_range.size() * kCacheLineSize);
          }

          // Probe-phase scratch would be acquired here; check the failpoint
          // before the barrier (everyone must arrive), unwind after it.
          if (tid == 0 && ProbeAllocFailpoint()) {
            abort.Set(InjectedAllocError("probe"));
          }
          barrier.ArriveAndWait();
          if (abort.IsSet()) return;
          if (tid == 0) build_end = NowNanos();

          obs::PhaseScope scope(profiler.get(), tid, obs::JoinPhase::kProbe);
          // Probe this thread's chunk of S.
          const thread::Range s_range =
              thread::ChunkRange(probe.size(), num_threads, tid);
          system->CountRead(node, probe.data() + s_range.begin,
                            s_range.size() * sizeof(Tuple));
          ProbeRange(*table, probe.data(), s_range.begin, s_range.end,
                     config.build_unique, sink, tid, &stats[tid]);
          // Random reads from the interleaved table: one line per probe.
          system->CountRead(node, table->raw_data(),
                            s_range.size() * kCacheLineSize);
        });
    MMJOIN_RETURN_IF_ERROR(dispatch_status);
    if (abort.IsSet()) return abort.status();

    const int64_t end = NowNanos();
    JoinResult result = ReduceStats(stats.data(), num_threads);
    result.times.build_ns = build_end - start;
    result.times.probe_ns = end - build_end;
    result.times.total_ns = end - start;
    if (profiler != nullptr) result.profile = profiler->Finish();
    return result;
  }

 private:
  Algorithm id_;
};

}  // namespace

std::unique_ptr<JoinAlgorithm> MakeNopJoin(bool array_table) {
  if (array_table) {
    return std::make_unique<NopFamilyJoin<ArrayOps>>(Algorithm::kNOPA);
  }
  return std::make_unique<NopFamilyJoin<LinearOps>>(Algorithm::kNOP);
}

}  // namespace mmjoin::join::internal
