// CPRL and CPRA -- the chunked parallel radix joins proposed by the paper
// (Section 6.1, Figures 4(c)/4(d)).
//
// Partitioning is chunk-local (no global histogram, no remote partition
// writes). A partition therefore exists as one fragment per chunk; the join
// phase gathers the build fragments of a co-partition into a node-local
// scratch table (large sequential -- possibly remote -- reads) and probes
// the probe fragments against it. CPRL uses the linear probing table, CPRA
// arrays.

#include <algorithm>
#include <memory>
#include <vector>

#include "hash/array_table.h"
#include "hash/linear_probing_table.h"
#include "join/internal.h"
#include "join/join_algorithm.h"
#include "numa/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/chunked.h"
#include "partition/model.h"
#include "thread/task_queue.h"
#include "thread/thread_team.h"
#include "util/bits.h"
#include "util/log.h"
#include "util/timer.h"

namespace mmjoin::join::internal {
namespace {

// Runs after the last barrier of the dispatch: a worker that hits a failure
// (or sees one via `abort`) simply stops pulling tasks.
//
// Workers pop LIFO from their home node's shard, stealing distance-ordered
// FIFO when it runs dry. Slices of one skewed partition share a single
// gathered build table through `slots` (chunked partitions are gathered
// from every chunk, so the per-slice rebuild was the full gather each time).
template <typename Scratch>
void JoinChunkedPartitions(numa::NumaSystem* system, int tid, int node,
                           thread::ShardedTaskQueue* queue,
                           SkewBuildSlots* slots,
                           const partition::ChunkedLayout& r_layout,
                           const partition::ChunkedLayout& s_layout,
                           const Tuple* r_data, const Tuple* s_data,
                           uint64_t partition_domain, uint32_t bits,
                           bool build_unique, MatchSink* sink,
                           Scratch* scratch, ThreadStats* local,
                           JoinAbort* abort,
                           obs::JoinPhaseProfiler* profiler) {
  const int num_chunks = r_layout.num_chunks;
  thread::JoinTask task;
  int stolen_from = -1;
  while (queue->Pop(node, &task, &stolen_from)) {
    if (abort->IsSet()) return;
    const uint32_t p = task.partition;
    const uint64_t r_size = r_layout.PartitionSize(p);
    if (r_size == 0 || s_layout.PartitionSize(p) == 0) continue;

    const Scratch* build_table = scratch;
    bool built_here = true;
    SkewBuildSlots::Slot* slot =
        task.probe_slice_count > 1 ? slots->Find(p) : nullptr;
    const auto gather = [&](Scratch* target) {
      target->Prepare(r_size);
      for (int c = 0; c < num_chunks; ++c) {
        const Tuple* fragment = r_data + r_layout.FragmentOffset(c, p);
        const uint64_t size = r_layout.FragmentSize(c, p);
        system->CountRead(node, fragment, size * sizeof(Tuple));
        for (uint64_t i = 0; i < size; ++i) target->Insert(fragment[i]);
      }
    };
    {
      obs::PhaseScope scope(profiler, tid, obs::JoinPhase::kBuild);
      // Build: gather this partition's fragments from every chunk.
      if (slot != nullptr) {
        build_table = slots->GetOrBuild<Scratch>(
            slot,
            [&] {
              auto table = std::make_unique<Scratch>(
                  system, r_size, partition_domain, bits, node);
              gather(table.get());
              return table;
            },
            &built_here);
      } else {
        gather(scratch);
      }
    }

    if (ProbeAllocFailpoint()) {
      abort->Set(InjectedAllocError("probe"));
      return;
    }
    obs::PhaseScope scope(profiler, tid, obs::JoinPhase::kProbe);
    // Probe: skew slices partition the chunk range.
    const int chunk_begin = static_cast<int>(
        static_cast<uint64_t>(num_chunks) * task.probe_slice /
        task.probe_slice_count);
    const int chunk_end = static_cast<int>(
        static_cast<uint64_t>(num_chunks) * (task.probe_slice + 1) /
        task.probe_slice_count);
    uint64_t probe_bytes = 0;
    for (int c = chunk_begin; c < chunk_end; ++c) {
      const Tuple* fragment = s_data + s_layout.FragmentOffset(c, p);
      const uint64_t size = s_layout.FragmentSize(c, p);
      probe_bytes += size * sizeof(Tuple);
      system->CountRead(node, fragment, size * sizeof(Tuple));
      ProbeRange(*build_table, fragment, 0, size, build_unique, sink, tid,
                 local);
    }
    if (stolen_from >= 0) {
      // Chunked partitions are spread over all nodes; attribute the probe
      // fragments (and the gather, if this worker performed it) to the
      // steal, matching the PR accounting.
      uint64_t remote_bytes = probe_bytes;
      if (built_here) remote_bytes += r_size * sizeof(Tuple);
      queue->AddStealReadBytes(remote_bytes);
    }
  }
}

struct LinearChunkScratch {
  using Table = hash::LinearProbingTable<hash::RadixShiftHash>;
  std::unique_ptr<Table> table;
  LinearChunkScratch(numa::NumaSystem* system, uint64_t max_tuples,
                     uint64_t partition_domain, uint32_t bits, int node)
      : table(std::make_unique<Table>(system,
                                      std::max<uint64_t>(max_tuples, 1),
                                      numa::Placement::kLocal, node,
                                      hash::RadixShiftHash{bits})) {}
  void Prepare(uint64_t build_size) { table->Reset(build_size); }
  void Insert(Tuple t) { table->InsertSerial(t); }
  template <typename Emit>
  void Probe(uint32_t key, Emit&& emit) const {
    table->Probe(key, emit);
  }
  template <typename Emit>
  void ProbeUnique(uint32_t key, Emit&& emit) const {
    table->ProbeUnique(key, emit);
  }
};

struct ArrayChunkScratch {
  std::unique_ptr<hash::ArrayTable> table;
  uint64_t partition_domain;
  uint32_t bits;
  ArrayChunkScratch(numa::NumaSystem* system, uint64_t max_tuples,
                    uint64_t partition_domain_in, uint32_t bits_in, int node)
      : table(std::make_unique<hash::ArrayTable>(
            system, std::max<uint64_t>(partition_domain_in, 1), bits_in,
            numa::Placement::kLocal, node)),
        partition_domain(std::max<uint64_t>(partition_domain_in, 1)),
        bits(bits_in) {}
  void Prepare(uint64_t build_size) { table->Reset(partition_domain, bits); }
  void Insert(Tuple t) { table->InsertSerial(t); }
  template <typename Emit>
  void Probe(uint32_t key, Emit&& emit) const {
    table->Probe(key, emit);
  }
  template <typename Emit>
  void ProbeUnique(uint32_t key, Emit&& emit) const {
    table->ProbeUnique(key, emit);
  }
};

class CprJoin final : public JoinAlgorithm {
 public:
  explicit CprJoin(Algorithm id) : id_(id) {
    MMJOIN_CHECK(id == Algorithm::kCPRL || id == Algorithm::kCPRA);
  }

  Algorithm id() const override { return id_; }

  StatusOr<JoinResult> Run(numa::NumaSystem* system, const JoinConfig& config,
                           ConstTupleSpan build, ConstTupleSpan probe,
                           uint64_t key_domain) override {
    const int num_threads = config.num_threads;
    const bool array = id_ == Algorithm::kCPRA;

    uint32_t bits = config.radix_bits;
    if (bits == 0) {
      bits = partition::PredictRadixBits(
          std::max<uint64_t>(build.size(), 1),
          array ? partition::kArraySpace : partition::kLinearSpace,
          num_threads, partition::DetectHostCacheSpec());
    }
    bits = std::min<uint32_t>(
        bits, std::max<uint32_t>(
                  CeilLog2(std::max<uint64_t>(build.size(), 2)), 1));

    const uint64_t domain =
        array ? InferKeyDomain(build, key_domain) : key_domain;

    // Budget planning (docs/ROBUSTNESS.md "Memory budgets"): CPR has no
    // two-pass mode, so degradation is bit escalation then spill waves.
    // The reservation covers the whole run.
    uint32_t wave_count = 1;
    mem::BudgetReservation reservation;
    if (config.budget != nullptr && config.budget->bounded()) {
      partition::MemoryPlanInput plan_in;
      plan_in.build_tuples = build.size();
      plan_in.probe_tuples = probe.size();
      plan_in.num_threads = num_threads;
      plan_in.base_bits = std::max<uint32_t>(bits, 1);
      plan_in.max_bits = std::max(
          plan_in.base_bits,
          std::min<uint32_t>(
              24, std::max<uint32_t>(
                      CeilLog2(std::max<uint64_t>(build.size(), 2)), 1)));
      plan_in.bits_fixed = config.radix_bits != 0;
      plan_in.scratch_total_bytes =
          array ? partition::kArraySpace.bytes_per_tuple *
                      static_cast<double>(std::max<uint64_t>(domain, 1))
                : partition::kLinearSpace.bytes_per_tuple *
                      static_cast<double>(build.size());
      plan_in.budget_bytes = config.budget->budget_bytes();

      const partition::MemoryPlan plan = partition::PlanMemoryBudget(plan_in);
      if (!plan.feasible) {
        return BudgetInfeasibleError(NameOf(id_), plan.planned_bytes,
                                     plan_in.budget_bytes);
      }
      if (plan.replanned) {
        mem::CountBudgetReplan();
        MMJOIN_LOG(kWarn, "budget.replan")
            .Field("algo", NameOf(id_))
            .Field("action", "radix_bits")
            .Field("bits", plan.radix_bits)
            .Field("planned_bytes", plan.planned_bytes)
            .Field("budget_bytes", plan_in.budget_bytes);
      }
      bits = plan.radix_bits;
      wave_count = plan.wave_count;
      MMJOIN_ASSIGN_OR_RETURN(
          reservation,
          mem::BudgetReservation::Acquire(config.budget, plan.planned_bytes,
                                          "CPR join working set"));
    }
    if (WaveBudgetFailpoint()) wave_count = std::max<uint32_t>(wave_count, 2);
    if (wave_count > 1 && probe.empty()) wave_count = 1;

    const uint64_t partition_domain =
        domain == 0 ? 0 : CeilDiv(domain, uint64_t{1} << bits);

    if (wave_count > 1) {
      mem::CountBudgetWave();
      MMJOIN_LOG(kWarn, "budget.wave")
          .Field("algo", NameOf(id_))
          .Field("waves", wave_count)
          .Field("bits", bits);
      return RunWaves(system, config, build, probe, partition_domain, bits,
                      wave_count);
    }

    if (PartitionAllocFailpoint()) return InjectedAllocError("partition");
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> r_out,
        TryBuffer<Tuple>(system, build.size(),
                         numa::Placement::kChunkedRoundRobin,
                         "CPR R partition buffer"));
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> s_out,
        TryBuffer<Tuple>(system, probe.size(),
                         numa::Placement::kChunkedRoundRobin,
                         "CPR S partition buffer"));

    partition::RadixOptions options;
    options.fn = partition::RadixFn{0, bits};
    options.use_swwcb = true;
    options.num_threads = num_threads;
    partition::ChunkedRadixPartitioner r_partitioner(
        system, options, build, TupleSpan(r_out.data(), r_out.size()));
    partition::ChunkedRadixPartitioner s_partitioner(
        system, options, probe, TupleSpan(s_out.data(), s_out.size()));

    std::vector<ThreadStats> stats(num_threads);
    int64_t partition_end = 0;
    thread::Executor& executor = ExecutorOf(config);
    std::unique_ptr<thread::ShardedTaskQueue> fallback_queue;
    thread::ShardedTaskQueue* queue =
        SelectJoinQueue(executor, *system, &fallback_queue);
    SkewBuildSlots slots;
    uint64_t max_r_partition = 0;
    JoinAbort abort;
    auto profiler = obs::MakeJoinProfiler(num_threads);
    // Partition buffers were allocated + prefaulted untimed (buffer-manager
    // assumption, Section 5.1).
    const int64_t start = NowNanos();

    const Status dispatch_status = executor.Dispatch(
        num_threads, [&](const thread::WorkerContext& ctx) {
      const int tid = ctx.thread_id;
      thread::Barrier& barrier = *ctx.barrier;
      const int node =
          system->topology().NodeOfThread(tid, num_threads);

      {
        obs::PhaseScope scope(profiler.get(), tid,
                              obs::JoinPhase::kPartitionPass1);
        r_partitioner.PartitionChunk(tid, node);
        s_partitioner.PartitionChunk(tid, node);
        barrier.ArriveAndWait();
      }

      if (tid == 0) {
        partition_end = NowNanos();
        const Status seed_status =
            SeedQueue(queue, &slots, system, config, s_partitioner.layout(),
                      probe.size(), num_threads);
        if (!seed_status.ok()) abort.Set(seed_status);
        const auto& r_layout = r_partitioner.layout();
        for (uint32_t p = 0; p < r_layout.num_partitions; ++p) {
          max_r_partition =
              std::max(max_r_partition, r_layout.PartitionSize(p));
        }
      }
      barrier.ArriveAndWait();
      if (!abort.IsSet()) {
        // The per-worker scratch table is the join phase's build-side
        // allocation. A failed worker publishes the abort and skips the
        // join phase; the others drain or abandon the queue via the abort
        // flag, and everyone meets at the trailing barrier below.
        if (BuildAllocFailpoint()) {
          abort.Set(InjectedAllocError("build"));
        } else if (array) {
          ArrayChunkScratch scratch(system, max_r_partition, partition_domain,
                                    bits, node);
          JoinChunkedPartitions(system, tid, node, queue, &slots,
                                r_partitioner.layout(), s_partitioner.layout(),
                                r_out.data(), s_out.data(), partition_domain,
                                bits, config.build_unique, config.sink,
                                &scratch, &stats[tid], &abort, profiler.get());
        } else {
          LinearChunkScratch scratch(system, max_r_partition, partition_domain,
                                     bits, node);
          JoinChunkedPartitions(system, tid, node, queue, &slots,
                                r_partitioner.layout(), s_partitioner.layout(),
                                r_out.data(), s_out.data(), partition_domain,
                                bits, config.build_unique, config.sink,
                                &scratch, &stats[tid], &abort, profiler.get());
        }
      }
      // Flush the queue's per-run steal counters before the dispatch
      // returns: outside the dispatch the flush would race the next join
      // on this executor re-seeding the queue (BeginRun zeroes the stats).
      barrier.ArriveAndWait();
      if (tid == 0) FlushStealMetrics(*queue);
      if (abort.IsSet()) return;  // uniform: the team leaves together
    });
    MMJOIN_RETURN_IF_ERROR(dispatch_status);
    if (abort.IsSet()) return abort.status();

    const int64_t end = NowNanos();
    JoinResult result = ReduceStats(stats.data(), num_threads);
    result.times.partition_ns = partition_end - start;
    result.times.probe_ns = end - partition_end;
    result.times.total_ns = end - start;
    if (profiler != nullptr) result.profile = profiler->Finish();
    return result;
  }

 private:
  // Stage-2 degradation: the build side is chunk-partitioned once and stays
  // resident; the probe side is processed in `wave_count` sequential spill
  // waves, each chunk-partitioning ceil(|S| / wave_count) tuples into a
  // reused wave buffer, re-seeding the queue, and joining against the
  // resident R fragments. Scratch tables are constructed once and reused
  // across waves. Per-wave results sum to the unbounded run's (matches,
  // checksum) exactly -- the checksum is order-independent.
  StatusOr<JoinResult> RunWaves(numa::NumaSystem* system,
                                const JoinConfig& config, ConstTupleSpan build,
                                ConstTupleSpan probe, uint64_t partition_domain,
                                uint32_t bits, uint32_t wave_count) {
    const int num_threads = config.num_threads;
    const bool array = id_ == Algorithm::kCPRA;
    const uint64_t wave_capacity =
        CeilDiv(probe.size(), static_cast<uint64_t>(wave_count));

    if (PartitionAllocFailpoint()) return InjectedAllocError("partition");
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> r_out,
        TryBuffer<Tuple>(system, build.size(),
                         numa::Placement::kChunkedRoundRobin,
                         "CPR R partition buffer"));
    MMJOIN_ASSIGN_OR_RETURN(
        numa::NumaBuffer<Tuple> s_wave,
        TryBuffer<Tuple>(system, wave_capacity,
                         numa::Placement::kChunkedRoundRobin,
                         "CPR S wave buffer"));

    partition::RadixOptions options;
    options.fn = partition::RadixFn{0, bits};
    options.use_swwcb = true;
    options.num_threads = num_threads;
    partition::ChunkedRadixPartitioner r_partitioner(
        system, options, build, TupleSpan(r_out.data(), r_out.size()));
    // Rebuilt by thread 0 at each wave head for that wave's probe slice.
    // Both layouts share num_chunks == num_threads, which
    // JoinChunkedPartitions requires for its chunk-sliced probe walk.
    std::unique_ptr<partition::ChunkedRadixPartitioner> s_partitioner;

    std::vector<ThreadStats> stats(num_threads);
    int64_t partition_end = 0;
    thread::Executor& executor = ExecutorOf(config);
    std::unique_ptr<thread::ShardedTaskQueue> fallback_queue;
    thread::ShardedTaskQueue* queue =
        SelectJoinQueue(executor, *system, &fallback_queue);
    SkewBuildSlots slots;
    uint64_t max_r_partition = 0;
    JoinAbort abort;
    auto profiler = obs::MakeJoinProfiler(num_threads);
    const int64_t start = NowNanos();

    const Status dispatch_status = executor.Dispatch(
        num_threads, [&](const thread::WorkerContext& ctx) {
      const int tid = ctx.thread_id;
      thread::Barrier& barrier = *ctx.barrier;
      const int node =
          system->topology().NodeOfThread(tid, num_threads);

      {
        obs::PhaseScope scope(profiler.get(), tid,
                              obs::JoinPhase::kPartitionPass1);
        r_partitioner.PartitionChunk(tid, node);
        barrier.ArriveAndWait();
      }
      if (tid == 0) {
        partition_end = NowNanos();
        const auto& r_layout = r_partitioner.layout();
        for (uint32_t p = 0; p < r_layout.num_partitions; ++p) {
          max_r_partition =
              std::max(max_r_partition, r_layout.PartitionSize(p));
        }
      }
      // Unlike the single-shot path, the wave loop below has barriers, so a
      // build-allocation failure must follow the check-before-barrier
      // protocol: record it, arrive, and leave together.
      if (BuildAllocFailpoint()) abort.Set(InjectedAllocError("build"));
      barrier.ArriveAndWait();
      if (abort.IsSet()) return;

      const auto wave_loop = [&](auto& scratch) {
        for (uint32_t w = 0; w < wave_count; ++w) {
          obs::ObsScope wave_scope("budget.wave", obs::SpanKind::kOther);
          uint64_t wave_size = 0;
          if (tid == 0) {
            const uint64_t wave_begin = probe.size() * w / wave_count;
            wave_size = probe.size() * (w + 1) / wave_count - wave_begin;
            s_partitioner =
                std::make_unique<partition::ChunkedRadixPartitioner>(
                    system, options,
                    ConstTupleSpan(probe.data() + wave_begin, wave_size),
                    TupleSpan(s_wave.data(), wave_size));
            mem::CountBudgetWaveRound();
          }
          barrier.ArriveAndWait();

          {
            obs::PhaseScope scope(profiler.get(), tid,
                                  obs::JoinPhase::kPartitionPass1);
            s_partitioner->PartitionChunk(tid, node);
            barrier.ArriveAndWait();
          }

          if (tid == 0) {
            const Status seed_status =
                SeedQueue(queue, &slots, system, config,
                          s_partitioner->layout(), wave_size, num_threads);
            if (!seed_status.ok()) abort.Set(seed_status);
          }
          barrier.ArriveAndWait();

          if (!abort.IsSet()) {
            JoinChunkedPartitions(system, tid, node, queue, &slots,
                                  r_partitioner.layout(),
                                  s_partitioner->layout(), r_out.data(),
                                  s_wave.data(), partition_domain, bits,
                                  config.build_unique, config.sink, &scratch,
                                  &stats[tid], &abort, profiler.get());
          }
          // Wave-end barrier: all workers must be done with this wave's
          // buffers and queue before thread 0 reconfigures them; aborts are
          // published so everyone leaves together.
          barrier.ArriveAndWait();
          if (abort.IsSet()) return;
        }
      };
      if (array) {
        ArrayChunkScratch scratch(system, max_r_partition, partition_domain,
                                  bits, node);
        wave_loop(scratch);
      } else {
        LinearChunkScratch scratch(system, max_r_partition, partition_domain,
                                   bits, node);
        wave_loop(scratch);
      }
      // Every exit from wave_loop passes through the wave-end barrier, so
      // the team is synchronized and no worker touches the queue after it:
      // flush its per-run steal counters (the last seeded wave's) before
      // the dispatch returns -- outside the dispatch the flush would race
      // the next join on this executor re-seeding the queue.
      if (tid == 0) FlushStealMetrics(*queue);
    });
    MMJOIN_RETURN_IF_ERROR(dispatch_status);
    if (abort.IsSet()) return abort.status();

    const int64_t end = NowNanos();
    JoinResult result = ReduceStats(stats.data(), num_threads);
    result.times.partition_ns = partition_end - start;
    result.times.probe_ns = end - partition_end;
    result.times.total_ns = end - start;
    if (profiler != nullptr) result.profile = profiler->Finish();
    return result;
  }

  // Seeds the sharded queue for this run on thread 0 between barriers.
  // BeginRun comes first so a failed seed leaves the queue empty, not
  // stale. A chunked partition has no home node (its fragments are spread
  // over every chunk), so shards get contiguous *blocks* of the sequential
  // order -- each owner then walks its partitions in ascending order, the
  // same sequential sweep over the chunked layout the global queue gave
  // every worker (a round-robin deal would stride each owner by the shard
  // count and defeat prefetching within the chunk fragments).
  static Status SeedQueue(thread::ShardedTaskQueue* queue,
                          SkewBuildSlots* slots, numa::NumaSystem* system,
                          const JoinConfig& config,
                          const partition::ChunkedLayout& s_layout,
                          uint64_t probe_size, int num_threads) {
    const numa::Topology& topology = system->topology();
    queue->BeginRun(topology.ActiveNodes(num_threads), system);
    const uint32_t num_partitions = s_layout.num_partitions;
    std::vector<uint64_t> sizes(num_partitions);
    for (uint32_t p = 0; p < num_partitions; ++p) {
      sizes[p] = s_layout.PartitionSize(p);
    }
    // Slices partition the chunk range, so more slices than chunks would
    // leave empty slices: cap there.
    const uint32_t max_slices = std::min<uint32_t>(
        thread::kMaxProbeSlicesPerPartition,
        std::max<uint32_t>(static_cast<uint32_t>(s_layout.num_chunks), 1));
    MMJOIN_ASSIGN_OR_RETURN(
        thread::SkewTaskList tasks,
        thread::BuildSkewTasks(sizes,
                               thread::SequentialOrder(num_partitions),
                               config.skew_task_factor, probe_size,
                               max_slices));
    slots->Configure(tasks.skewed_partitions);
    const int num_shards = queue->num_shards();
    for (const thread::JoinTask& task : tasks.consume_order) {
      const int preferred = static_cast<int>(
          static_cast<uint64_t>(task.partition) * num_shards /
          std::max<uint32_t>(num_partitions, 1));
      queue->SeedTask(preferred, task);
    }
    // skew_slices counts tasks beyond one per partition, so tasks_seeded ==
    // num_partitions + skew_slices (asserted in tests/obs_test.cc).
    obs::MetricsRegistry::Get().AddCounter("join.tasks_seeded",
                                           tasks.consume_order.size());
    obs::MetricsRegistry::Get().AddCounter("join.skew_slices",
                                           tasks.skew_slices);
    obs::MetricsRegistry::Get().AddCounter("join.skew_partitions",
                                           tasks.skew_partitions);
    return OkStatus();
  }

  Algorithm id_;
};

}  // namespace

std::unique_ptr<JoinAlgorithm> MakeCprJoin(Algorithm variant) {
  return std::make_unique<CprJoin>(variant);
}

}  // namespace mmjoin::join::internal
