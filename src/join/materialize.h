// Join-result materialization sinks.
//
// The micro-benchmark methodology of the paper (and all prior work it
// reproduces) aggregates matches instead of materializing them; real
// queries need the pairs. These MatchSink implementations collect matched
// tuples with per-thread buffers (no synchronization on the hot path),
// following the join-index strategy of the paper's Appendix G.

#ifndef MMJOIN_JOIN_MATERIALIZE_H_
#define MMJOIN_JOIN_MATERIALIZE_H_

#include <cstdint>
#include <vector>

#include "join/join_defs.h"
#include "mem/budget.h"
#include "obs/trace.h"
#include "util/macros.h"
#include "util/status.h"
#include "util/types.h"

namespace mmjoin::join {

// One materialized match: the payloads (row ids) of both sides plus the
// join key.
struct MatchedPair {
  uint32_t key;
  uint32_t build_payload;
  uint32_t probe_payload;

  friend bool operator==(const MatchedPair&, const MatchedPair&) = default;
};

// Collects matched pairs into per-thread vectors; call Gather() (single
// threaded, after the join) to concatenate them into a join index.
class JoinIndexSink final : public MatchSink {
 public:
  // Thread ids delivered to Consume/ConsumeChunk must lie in
  // [0, num_threads). Non-positive counts are a caller bug (a sink with no
  // buffers could only crash later, in the concurrent consume path, where
  // the stack no longer names the culprit) -- fail fast here instead.
  explicit JoinIndexSink(int num_threads)
      : per_thread_(CheckedThreadCount(num_threads)) {}

  ~JoinIndexSink() override {
    if (budget_ != nullptr) budget_->Release(budget_reserved_bytes_);
  }

  // Optional: pre-reserve per-thread capacity when the match count is
  // predictable (e.g. FK joins: |S| matches).
  void Reserve(uint64_t expected_total) {
    if (per_thread_.empty()) return;  // unreachable post-ctor-check; belt
    for (auto& local : per_thread_) {
      local.reserve(expected_total / per_thread_.size() + 16);
    }
  }

  // Budgeted variant: charges the expected index bytes against `budget`
  // before reserving. The tracker must outlive the sink (the destructor
  // releases the reservation). A null or unbounded tracker degrades to the
  // plain Reserve above.
  Status Reserve(uint64_t expected_total, mem::BudgetTracker* budget) {
    if (budget != nullptr && budget->bounded()) {
      const uint64_t bytes = expected_total * sizeof(MatchedPair);
      MMJOIN_RETURN_IF_ERROR(
          budget->Reserve(bytes, "join index materialization"));
      budget_ = budget;
      budget_reserved_bytes_ += bytes;
    }
    Reserve(expected_total);
    return OkStatus();
  }

  void Consume(int tid, Tuple build, Tuple probe) override {
    MMJOIN_DCHECK(tid >= 0 &&
                  tid < static_cast<int>(per_thread_.size()));
    per_thread_[tid].push_back(
        MatchedPair{probe.key, build.payload, probe.payload});
  }

  // Chunked fast path: one bounds check + one resize per up-to-1024
  // matches, then straight columnar copies into the row-wise index.
  void ConsumeChunk(int tid, const MatchChunk& chunk) override {
    MMJOIN_DCHECK(tid >= 0 &&
                  tid < static_cast<int>(per_thread_.size()));
    std::vector<MatchedPair>& local = per_thread_[tid];
    const std::size_t base = local.size();
    local.resize(base + chunk.size);
    for (uint32_t i = 0; i < chunk.size; ++i) {
      local[base + i] = MatchedPair{chunk.key[i], chunk.build_payload[i],
                                    chunk.probe_payload[i]};
    }
  }

  // Total matches collected so far (call after the join).
  uint64_t size() const {
    uint64_t total = 0;
    for (const auto& local : per_thread_) total += local.size();
    return total;
  }

  // Concatenates all per-thread buffers (moves them out; the sink is empty
  // afterwards). Order is deterministic given a deterministic join
  // schedule but generally unspecified; sort if you need canonical order.
  std::vector<MatchedPair> Gather() {
    obs::ObsScope scope("materialize.gather", obs::SpanKind::kMaterialize);
    std::vector<MatchedPair> all;
    all.reserve(size());
    for (auto& local : per_thread_) {
      all.insert(all.end(), local.begin(), local.end());
      local.clear();
      local.shrink_to_fit();
    }
    return all;
  }

 private:
  static std::size_t CheckedThreadCount(int num_threads) {
    MMJOIN_CHECK(num_threads > 0);
    return static_cast<std::size_t>(num_threads);
  }

  std::vector<std::vector<MatchedPair>> per_thread_;
  mem::BudgetTracker* budget_ = nullptr;  // single-owner: borrowed, not owned
  uint64_t budget_reserved_bytes_ = 0;    // single-owner: set pre-join only
};

// Streams matches into a caller-provided callback under a per-thread
// wrapper -- for pipelined consumption (aggregation, filtering) without
// materialization. The callback must be thread-safe or rely only on the
// tid-partitioned state it owns.
template <typename Fn>
class CallbackSink final : public MatchSink {
 public:
  explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}
  void Consume(int tid, Tuple build, Tuple probe) override {
    fn_(tid, build, probe);
  }

 private:
  Fn fn_;
};

template <typename Fn>
CallbackSink<Fn> MakeCallbackSink(Fn fn) {
  return CallbackSink<Fn>(std::move(fn));
}

}  // namespace mmjoin::join

#endif  // MMJOIN_JOIN_MATERIALIZE_H_
