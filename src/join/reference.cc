#include "join/reference.h"

#include <algorithm>
#include <unordered_map>

namespace mmjoin::join {

JoinResult ReferenceJoin(ConstTupleSpan build, ConstTupleSpan probe) {
  std::unordered_multimap<uint32_t, uint32_t> table;
  table.reserve(build.size());
  for (const Tuple& t : build) table.emplace(t.key, t.payload);

  JoinResult result;
  for (const Tuple& s : probe) {
    auto [begin, end] = table.equal_range(s.key);
    for (auto it = begin; it != end; ++it) {
      ++result.matches;
      result.checksum += static_cast<uint64_t>(it->second) + s.payload;
    }
  }
  return result;
}

std::vector<std::pair<uint32_t, uint32_t>> ReferenceJoinPairs(
    ConstTupleSpan build, ConstTupleSpan probe) {
  std::unordered_multimap<uint32_t, uint32_t> table;
  table.reserve(build.size());
  for (const Tuple& t : build) table.emplace(t.key, t.payload);

  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (const Tuple& s : probe) {
    auto [begin, end] = table.equal_range(s.key);
    for (auto it = begin; it != end; ++it) {
      pairs.emplace_back(it->second, s.payload);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace mmjoin::join
