#include "join/reference.h"

#include <algorithm>
#include <unordered_map>

#include "thread/executor.h"
#include "util/mutex.h"

namespace mmjoin::join {

JoinResult ReferenceJoin(ConstTupleSpan build, ConstTupleSpan probe,
                         thread::Executor* executor) {
  std::unordered_multimap<uint32_t, uint32_t> table;
  table.reserve(build.size());
  for (const Tuple& t : build) table.emplace(t.key, t.payload);

  JoinResult result;
  if (executor != nullptr) {
    Mutex fold_mutex;
    const Status dispatch_status = executor->ParallelFor(
        probe.size(), [&](std::size_t begin, std::size_t end,
                          const thread::WorkerContext&) {
          uint64_t matches = 0;
          uint64_t checksum = 0;
          for (std::size_t i = begin; i < end; ++i) {
            const Tuple s = probe[i];
            auto [first, last] = table.equal_range(s.key);
            for (auto it = first; it != last; ++it) {
              ++matches;
              checksum += static_cast<uint64_t>(it->second) + s.payload;
            }
          }
          MutexLock lock(fold_mutex);
          result.matches += matches;
          result.checksum += checksum;
        });
    if (dispatch_status.ok()) return result;
    // The reference join is the differential tests' ground truth: a partial
    // parallel fold (poisoned pool, watchdog) must not leak out. Discard it
    // and recompute on the serial path below.
    result = JoinResult{};
  }
  for (const Tuple& s : probe) {
    auto [begin, end] = table.equal_range(s.key);
    for (auto it = begin; it != end; ++it) {
      ++result.matches;
      result.checksum += static_cast<uint64_t>(it->second) + s.payload;
    }
  }
  return result;
}

std::vector<std::pair<uint32_t, uint32_t>> ReferenceJoinPairs(
    ConstTupleSpan build, ConstTupleSpan probe) {
  std::unordered_multimap<uint32_t, uint32_t> table;
  table.reserve(build.size());
  for (const Tuple& t : build) table.emplace(t.key, t.payload);

  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (const Tuple& s : probe) {
    auto [begin, end] = table.equal_range(s.key);
    for (auto it = begin; it != end; ++it) {
      pairs.emplace_back(it->second, s.payload);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace mmjoin::join
