#include "tpch/generator.h"

#include <algorithm>
#include <cmath>

#include "thread/executor.h"
#include "util/macros.h"
#include "util/rng.h"
#include "util/status.h"

namespace mmjoin::tpch {
namespace {

// Generation is chunked into a fixed number of independently-seeded ranges
// so the output is deterministic in (seed, row count) regardless of the
// generating thread count.
constexpr int kGenChunks = 64;
constexpr int kGenThreads = 8;

uint64_t PartRows(const GeneratorOptions& options) {
  if (options.part_rows != 0) return options.part_rows;
  return static_cast<uint64_t>(
      std::llround(options.scale_factor * kPartPerScaleFactor));
}

uint64_t LineitemRows(const GeneratorOptions& options) {
  if (options.lineitem_rows != 0) return options.lineitem_rows;
  return static_cast<uint64_t>(
      std::llround(options.scale_factor * kLineitemPerScaleFactor));
}

uint64_t ChunkSeed(uint64_t seed, uint64_t salt, int chunk) {
  uint64_t state = seed ^ salt ^ (static_cast<uint64_t>(chunk) << 32);
  return SplitMix64(state);
}

// Runs `fill(chunk_range, rng)` over kGenChunks ranges on kGenThreads
// workers of the process-wide pool (one pool per process; repeated
// generation calls respawn nothing).
template <typename Fill>
void GenerateChunked(uint64_t rows, uint64_t seed, uint64_t salt,
                     Fill&& fill) {
  // A failed dispatch (poisoned pool) would silently leave the table
  // zero-filled; generated data feeding correctness tests must fail loudly.
  MMJOIN_CHECK_OK(thread::GlobalExecutor().Dispatch(
      kGenThreads, [&](const thread::WorkerContext& ctx) {
        for (int chunk = ctx.thread_id; chunk < kGenChunks;
             chunk += kGenThreads) {
          const thread::Range range =
              thread::ChunkRange(rows, kGenChunks, chunk);
          if (range.size() == 0) continue;
          Rng rng(ChunkSeed(seed, salt, chunk));
          fill(range, rng);
        }
      }));
}

}  // namespace

PartTable GeneratePart(numa::NumaSystem* system,
                       const GeneratorOptions& options) {
  const uint64_t rows = PartRows(options);
  PartTable table(system, rows);

  GenerateChunked(rows, options.seed, 0x9A27ull, [&](thread::Range range,
                                                     Rng& rng) {
    for (uint64_t i = range.begin; i < range.end; ++i) {
      // Dense primary key in generation order, exactly like dbgen (paper
      // Section 8: "the Part table is even generated in sorted order").
      table.p_partkey()[i] =
          Tuple{static_cast<uint32_t>(i), static_cast<uint32_t>(i)};
      table.p_brand()[i] = static_cast<uint8_t>(rng.NextBelow(kNumBrands));
      table.p_container()[i] =
          static_cast<uint8_t>(rng.NextBelow(kNumContainers));
      table.p_size()[i] = static_cast<uint32_t>(rng.NextBelow(50)) + 1;
    }
  });
  return table;
}

LineitemTable GenerateLineitem(numa::NumaSystem* system,
                               const GeneratorOptions& options) {
  const uint64_t rows = LineitemRows(options);
  const uint64_t parts = PartRows(options);
  MMJOIN_CHECK(parts >= 1);
  LineitemTable table(system, rows);

  // P(pass PreJoin) = P(shipinstruct = DELIVER IN PERSON) * P(shipmode in
  // {AIR, REG AIR}). Up to the TPC-H native 25%, shipinstruct keeps its
  // uniform 1/4 and the AIR+REG-AIR mass scales; beyond that (Appendix E
  // sweeps to 100%) the shipinstruct mass scales too.
  const double target =
      std::clamp(options.prefilter_selectivity, 0.0, 1.0);
  const double air_mass = std::min(1.0, target * kNumShipInstructs);
  const double instruct_mass = air_mass > 0 ? target / air_mass : 0.25;

  GenerateChunked(rows, options.seed, 0x11EAull, [&](thread::Range range,
                                                     Rng& rng) {
    for (uint64_t i = range.begin; i < range.end; ++i) {
      table.l_partkey()[i] =
          Tuple{static_cast<uint32_t>(rng.NextBelow(parts)),
                static_cast<uint32_t>(i)};
      table.l_quantity()[i] = static_cast<uint32_t>(rng.NextBelow(50)) + 1;
      table.l_extendedprice()[i] =
          900.0f + static_cast<float>(rng.NextDouble()) * 104100.0f;
      table.l_discount()[i] =
          static_cast<float>(rng.NextBelow(11)) * 0.01f;
      table.l_shipinstruct()[i] =
          rng.NextDouble() < instruct_mass
              ? static_cast<uint8_t>(kDeliverInPerson)
              : static_cast<uint8_t>(1 +
                                     rng.NextBelow(kNumShipInstructs - 1));

      const double mode_draw = rng.NextDouble();
      uint8_t mode;
      if (mode_draw < air_mass / 2) {
        mode = kAir;
      } else if (mode_draw < air_mass) {
        mode = kRegAir;
      } else {
        // Remaining mass spread over the five other modes.
        mode = static_cast<uint8_t>(2 + rng.NextBelow(kNumShipModes - 2));
      }
      table.l_shipmode()[i] = mode;
    }
  });
  return table;
}

}  // namespace mmjoin::tpch
