// TPC-H Q19 executors (paper Section 8, Appendices E-G).
//
// The query plan follows Figure 13: the selection on lineitem is pushed
// below the join, the join runs on <key, rowid> columns, the complex
// brand/container/quantity/size predicate is evaluated after the probe via
// positional (late-materialization) attribute accesses, and passing pairs
// are aggregated into `revenue`.
//
// RunQ19 executes the query with any of the four joins the paper evaluates
// (NOP, NOPA, CPRL, CPRA; any of the thirteen works). Both strategies are
// configurations of the vectorized exec:: pipeline (docs/PIPELINE.md): scan
// -> pre-filter -> HashJoinProbe -> post-filter -> revenue aggregate, with
// kJoinIndex splitting the plan at an index materializer and finishing with
// an index-scan pipeline. The pre-filter stage materializes the probe side
// before the join (exactly the paper's methodology for Figure 14).
//
// RunQ19Morph reproduces the Appendix G experiment: it morphs the naked
// join micro-benchmark stepwise into the full query and reports the runtime
// of each step.

#ifndef MMJOIN_TPCH_Q19_H_
#define MMJOIN_TPCH_Q19_H_

#include <cstdint>
#include <optional>

#include "join/join_defs.h"
#include "numa/system.h"
#include "thread/executor.h"
#include "tpch/tables.h"
#include "util/status.h"

namespace mmjoin::tpch {

struct Q19Result {
  double revenue = 0.0;
  uint64_t filtered_rows = 0;  // lineitem rows passing PreJoin
  uint64_t join_matches = 0;   // matched pairs before PostJoin
  uint64_t result_rows = 0;    // pairs passing PostJoin
  int64_t filter_ns = 0;       // scan + filter + materialize probe column
  int64_t join_ns = 0;         // everything after the filter stage (join,
                               // post-filter, aggregation, index passes)
  int64_t total_ns = 0;        // == filter_ns + join_ns (tests assert this)
};

// Tuple-reconstruction strategy for the post-join work (the paper's
// Section 10 names the cross product of joins x reconstruction strategies
// as future work; both endpoints are implemented here).
enum class Q19Strategy {
  // Matches stream through a MatchSink that evaluates PostJoin and
  // aggregates inline -- no join index (the paper's Figure 14 execution).
  kPipelined,
  // Matches are first materialized into a join index; post-filtering and
  // aggregation run as a separate parallel pass (Appendix G steps 3+4).
  kJoinIndex,
};

// Executes Q19 with the given join algorithm. All parallel phases --
// filter/materialize, the join itself, and the post-join pass -- run on
// `executor` (the process-wide pool when nullptr); no threads are spawned
// per query. `compaction_threshold` is the pipeline's boundary density
// threshold (exec::PipelineConfig; < 0 selects the default, 0 disables
// compaction).
Q19Result RunQ19(numa::NumaSystem* system, const LineitemTable& lineitem,
                 const PartTable& part, join::Algorithm algorithm,
                 int num_threads,
                 Q19Strategy strategy = Q19Strategy::kPipelined,
                 thread::Executor* executor = nullptr,
                 double compaction_threshold = -1.0);

// Status-propagating variant of RunQ19: pipeline failures (injected
// allocation faults, budget rejections) surface as a Status instead of
// aborting the process. RunQ19 is a CHECK-wrapper around this. The optional
// `mem_budget_bytes` is forwarded to the embedded join
// (exec::PipelineConfig::mem_budget_bytes semantics).
StatusOr<Q19Result> TryRunQ19(
    numa::NumaSystem* system, const LineitemTable& lineitem,
    const PartTable& part, join::Algorithm algorithm, int num_threads,
    Q19Strategy strategy = Q19Strategy::kPipelined,
    thread::Executor* executor = nullptr, double compaction_threshold = -1.0,
    std::optional<uint64_t> mem_budget_bytes = std::nullopt);

// Appendix G morphing steps, all with the NOP join:
//  step 1: naked join on pre-filtered, pre-materialized inputs
//  step 2: like 1, but filtering the input table dynamically during probe
//  step 3: like 2, plus materializing a join index
//  step 4: like 3, plus post-filtering and aggregating from the index
//  step 5: like 2 and 4 without a join index (the full pipelined query)
struct Q19MorphResult {
  int64_t step_ns[5] = {0, 0, 0, 0, 0};
  double revenue_step4 = 0.0;
  double revenue_step5 = 0.0;
};

Q19MorphResult RunQ19Morph(numa::NumaSystem* system,
                           const LineitemTable& lineitem,
                           const PartTable& part, int num_threads,
                           thread::Executor* executor = nullptr);

// Reference single-threaded scan-based evaluation (ground truth for tests).
double Q19Reference(const LineitemTable& lineitem, const PartTable& part);

}  // namespace mmjoin::tpch

#endif  // MMJOIN_TPCH_Q19_H_
