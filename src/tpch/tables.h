// Column-store representation of the TPC-H tables used by Q19 (paper
// Section 8, Appendix F, Listing 2).
//
// Like the paper we emulate a MonetDB-style column store: each table is a
// struct of column arrays; the implicit position is the virtual row id;
// string columns are dictionary-compressed to one-byte codes; monetary
// values are floats. Only the columns Q19 touches are materialized.

#ifndef MMJOIN_TPCH_TABLES_H_
#define MMJOIN_TPCH_TABLES_H_

#include <cstdint>

#include "numa/system.h"
#include "util/types.h"

namespace mmjoin::tpch {

// --- Dictionary codes -----------------------------------------------------

// l_shipinstruct (4 values).
enum ShipInstruct : uint8_t {
  kDeliverInPerson = 0,
  kCollectCod = 1,
  kNone = 2,
  kTakeBackReturn = 3,
};
inline constexpr int kNumShipInstructs = 4;

// l_shipmode (7 TPC-H values).
enum ShipMode : uint8_t {
  kAir = 0,
  kRegAir = 1,
  kRail = 2,
  kShip = 3,
  kTruck = 4,
  kMail = 5,
  kFob = 6,
};
inline constexpr int kNumShipModes = 7;

// p_brand: "Brand#MN" with M, N in 1..5 -> code (M-1)*5 + (N-1).
inline constexpr uint8_t BrandCode(int m, int n) {
  return static_cast<uint8_t>((m - 1) * 5 + (n - 1));
}
inline constexpr uint8_t kBrand12 = BrandCode(1, 2);
inline constexpr uint8_t kBrand23 = BrandCode(2, 3);
inline constexpr uint8_t kBrand34 = BrandCode(3, 4);
inline constexpr int kNumBrands = 25;

// p_container: 5 size words x 8 type words -> code size*8 + type.
enum ContainerSize : uint8_t { kSm = 0, kMed = 1, kLg = 2, kJumbo = 3, kWrap = 4 };
enum ContainerType : uint8_t {
  kCase = 0,
  kBox = 1,
  kBag = 2,
  kJar = 3,
  kPkg = 4,
  kPack = 5,
  kCan = 6,
  kDrum = 7,
};
inline constexpr uint8_t ContainerCode(ContainerSize size,
                                       ContainerType type) {
  return static_cast<uint8_t>(size * 8 + type);
}
inline constexpr int kNumContainers = 40;

// --- Tables (Listing 2) ---------------------------------------------------

class LineitemTable {
 public:
  LineitemTable() = default;
  LineitemTable(numa::NumaSystem* system, uint64_t num_tuples);

  uint64_t num_tuples() const { return num_tuples_; }

  float* l_extendedprice() const { return l_extendedprice_.data(); }
  float* l_discount() const { return l_discount_.data(); }
  // <partkey, rowid> pairs, ready to feed the join implementations.
  Tuple* l_partkey() const { return l_partkey_.data(); }
  uint32_t* l_quantity() const { return l_quantity_.data(); }
  uint8_t* l_shipmode() const { return l_shipmode_.data(); }
  uint8_t* l_shipinstruct() const { return l_shipinstruct_.data(); }

 private:
  uint64_t num_tuples_ = 0;
  numa::NumaBuffer<float> l_extendedprice_;
  numa::NumaBuffer<float> l_discount_;
  numa::NumaBuffer<Tuple> l_partkey_;
  numa::NumaBuffer<uint32_t> l_quantity_;
  numa::NumaBuffer<uint8_t> l_shipmode_;
  numa::NumaBuffer<uint8_t> l_shipinstruct_;
};

class PartTable {
 public:
  PartTable() = default;
  PartTable(numa::NumaSystem* system, uint64_t num_tuples);

  uint64_t num_tuples() const { return num_tuples_; }

  Tuple* p_partkey() const { return p_partkey_.data(); }
  uint8_t* p_brand() const { return p_brand_.data(); }
  uint8_t* p_container() const { return p_container_.data(); }
  uint32_t* p_size() const { return p_size_.data(); }

 private:
  uint64_t num_tuples_ = 0;
  numa::NumaBuffer<Tuple> p_partkey_;
  numa::NumaBuffer<uint8_t> p_brand_;
  numa::NumaBuffer<uint8_t> p_container_;
  numa::NumaBuffer<uint32_t> p_size_;
};

// --- Q19 predicates (Listing 3) --------------------------------------------

// Pushed-down selection on lineitem.
MMJOIN_ALWAYS_INLINE bool PreJoin(const LineitemTable& l, uint64_t row) {
  return l.l_shipinstruct()[row] == kDeliverInPerson &&
         (l.l_shipmode()[row] == kAir || l.l_shipmode()[row] == kRegAir);
}

// Residual predicate evaluated after the join.
bool PostJoin(const LineitemTable& l, const PartTable& p, uint64_t row_l,
              uint64_t row_p);

}  // namespace mmjoin::tpch

#endif  // MMJOIN_TPCH_TABLES_H_
