// TPC-H data generation for Q19 (dbgen-lite).
//
// Generates exactly the columns Q19 reads, with the TPC-H cardinalities
// (6 M lineitem rows and 200 K part rows per scale factor) and value
// distributions that matter for Q19's selectivities. p_partkey is a dense
// primary key in generation (= sorted) order, like dbgen produces; every
// l_partkey references a part row.
//
// `prefilter_selectivity` tunes the fraction of lineitem rows that pass the
// pushed-down selection (PreJoin). The paper reports 3.57% for Q19 at
// SF 100; this knob also drives the Appendix E selectivity sweep. The
// shipinstruct value DELIVER IN PERSON keeps its TPC-H probability of 1/4;
// the AIR/REG AIR shipmode mass is scaled to hit the target product.

#ifndef MMJOIN_TPCH_GENERATOR_H_
#define MMJOIN_TPCH_GENERATOR_H_

#include <cstdint>

#include "numa/system.h"
#include "tpch/tables.h"

namespace mmjoin::tpch {

inline constexpr uint64_t kLineitemPerScaleFactor = 6'000'000;
inline constexpr uint64_t kPartPerScaleFactor = 200'000;

struct GeneratorOptions {
  double scale_factor = 1.0;
  double prefilter_selectivity = 0.0357;
  uint64_t seed = 42;
  // Override row counts directly (0 = derive from scale_factor).
  uint64_t lineitem_rows = 0;
  uint64_t part_rows = 0;
};

PartTable GeneratePart(numa::NumaSystem* system,
                       const GeneratorOptions& options);
LineitemTable GenerateLineitem(numa::NumaSystem* system,
                               const GeneratorOptions& options);

}  // namespace mmjoin::tpch

#endif  // MMJOIN_TPCH_GENERATOR_H_
