#include "tpch/tables.h"

namespace mmjoin::tpch {

namespace {
constexpr auto kPlacement = numa::Placement::kChunkedRoundRobin;
}  // namespace

LineitemTable::LineitemTable(numa::NumaSystem* system, uint64_t num_tuples)
    : num_tuples_(num_tuples),
      l_extendedprice_(system, num_tuples, kPlacement),
      l_discount_(system, num_tuples, kPlacement),
      l_partkey_(system, num_tuples, kPlacement),
      l_quantity_(system, num_tuples, kPlacement),
      l_shipmode_(system, num_tuples, kPlacement),
      l_shipinstruct_(system, num_tuples, kPlacement) {}

PartTable::PartTable(numa::NumaSystem* system, uint64_t num_tuples)
    : num_tuples_(num_tuples),
      p_partkey_(system, num_tuples, kPlacement),
      p_brand_(system, num_tuples, kPlacement),
      p_container_(system, num_tuples, kPlacement),
      p_size_(system, num_tuples, kPlacement) {}

bool PostJoin(const LineitemTable& l, const PartTable& p, uint64_t row_l,
              uint64_t row_p) {
  const uint8_t brand = p.p_brand()[row_p];
  const uint8_t container = p.p_container()[row_p];
  const uint32_t quantity = l.l_quantity()[row_l];
  const uint32_t size = p.p_size()[row_p];

  return (brand == kBrand12 &&
          (container == ContainerCode(kSm, kCase) ||
           container == ContainerCode(kSm, kBox) ||
           container == ContainerCode(kSm, kPack) ||
           container == ContainerCode(kSm, kPkg)) &&
          quantity >= 1 && quantity <= 1 + 10 && 1 <= size && size <= 5) ||
         (brand == kBrand23 &&
          (container == ContainerCode(kMed, kBag) ||
           container == ContainerCode(kMed, kBox) ||
           container == ContainerCode(kMed, kPkg) ||
           container == ContainerCode(kMed, kPack)) &&
          quantity >= 10 && quantity <= 10 + 10 && 1 <= size && size <= 10) ||
         (brand == kBrand34 &&
          (container == ContainerCode(kLg, kCase) ||
           container == ContainerCode(kLg, kBox) ||
           container == ContainerCode(kLg, kPack) ||
           container == ContainerCode(kLg, kPkg)) &&
          quantity >= 20 && quantity <= 20 + 10 && 1 <= size && size <= 15);
}

}  // namespace mmjoin::tpch
