#include "tpch/q19.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "exec/operators.h"
#include "exec/pipeline.h"
#include "hash/linear_probing_table.h"
#include "join/join_algorithm.h"
#include "join/materialize.h"
#include "thread/executor.h"
#include "util/timer.h"
#include "util/types.h"

namespace mmjoin::tpch {
namespace {

// --- Q19 as exec:: pipeline operators ---------------------------------------
//
// Both strategies are configurations of the same vectorized pipeline
// (docs/PIPELINE.md):
//
//   kPipelined:  scan(l_partkey) -> pre-filter -> join -> post-filter -> agg
//   kJoinIndex:  scan(l_partkey) -> pre-filter -> join -> index materialize,
//                then  index scan -> post-filter -> agg
//
// The filters narrow selection vectors in place; sparse chunks are densified
// at compactor boundaries per PipelineConfig::compaction_threshold.

// Pushed-down selection on lineitem. Scan chunks carry
// <l_partkey, lineitem row id>; PreJoin reads by row id (late
// materialization), so the filter touches the payload column, not the key.
class Q19PreFilter final : public exec::Operator {
 public:
  explicit Q19PreFilter(const LineitemTable& lineitem)
      : lineitem_(lineitem) {}

  const char* name() const override { return "q19.pre_filter"; }
  int output_columns() const override { return 2; }
  bool is_filter() const override { return true; }

  void Apply(int tid, exec::DataChunk* chunk) override {
    (void)tid;
    const uint32_t* rowid = chunk->column(exec::kScanPayloadCol);
    exec::RefineSelection(chunk, [&](const exec::DataChunk&, uint32_t row) {
      return PreJoin(lineitem_, rowid[row]);
    });
  }

 private:
  const LineitemTable& lineitem_;
};

// Residual brand/container/quantity/size predicate over join-output chunks
// (build payload = part row id, probe payload = lineitem row id).
class Q19PostFilter final : public exec::Operator {
 public:
  Q19PostFilter(const LineitemTable& lineitem, const PartTable& part)
      : lineitem_(lineitem), part_(part) {}

  const char* name() const override { return "q19.post_filter"; }
  int output_columns() const override { return 3; }
  bool is_filter() const override { return true; }

  void Apply(int tid, exec::DataChunk* chunk) override {
    (void)tid;
    const uint32_t* row_p = chunk->column(exec::kJoinBuildPayloadCol);
    const uint32_t* row_l = chunk->column(exec::kJoinProbePayloadCol);
    exec::RefineSelection(chunk, [&](const exec::DataChunk&, uint32_t row) {
      return PostJoin(lineitem_, part_, row_l[row], row_p[row]);
    });
  }

 private:
  const LineitemTable& lineitem_;
  const PartTable& part_;
};

// SUM(l_extendedprice * (1 - l_discount)) over surviving join-output rows,
// fetching the monetary columns by lineitem row id.
class RevenueAggregate final : public exec::Sink {
 public:
  explicit RevenueAggregate(const LineitemTable& lineitem)
      : lineitem_(lineitem) {}

  const char* name() const override { return "q19.revenue_agg"; }

  void Open(int num_threads) override {
    slots_.assign(static_cast<std::size_t>(num_threads), Slot{});
  }

  void Append(int tid, const exec::DataChunk& chunk) override {
    Slot& slot = slots_[static_cast<std::size_t>(tid)];
    const uint32_t* row_l = chunk.column(exec::kJoinProbePayloadCol);
    const float* price = lineitem_.l_extendedprice();
    const float* discount = lineitem_.l_discount();
    const uint32_t active = chunk.ActiveRows();
    slot.rows += active;
    double revenue = 0.0;
    for (uint32_t i = 0; i < active; ++i) {
      const uint32_t row = row_l[chunk.RowAt(i)];
      revenue += static_cast<double>(price[row]) * (1.0 - discount[row]);
    }
    slot.revenue += revenue;
  }

  void Fold(Q19Result* result) const {
    for (const Slot& slot : slots_) {
      result->revenue += slot.revenue;
      result->result_rows += slot.rows;
    }
  }

 private:
  struct SlotFields {
    double revenue = 0.0;
    uint64_t rows = 0;
  };
  struct alignas(kCacheLineSize) Slot : SlotFields {
    char padding[kCacheLineSize - sizeof(SlotFields)];
  };
  static_assert(sizeof(Slot) == kCacheLineSize,
                "Slot must occupy exactly one cache line (false-sharing "
                "padding)");

  const LineitemTable& lineitem_;
  // per-thread slots indexed by tid; sized in Open before the dispatch
  std::vector<Slot> slots_;
};

// Parallel filter + materialization of the probe column: <l_partkey, rowid>
// for every lineitem row passing PreJoin. Two passes (count, then fill at
// precomputed offsets) so the output is dense and deterministic. Used by
// the Appendix G morphing study (RunQ19Morph); RunQ19 itself goes through
// the exec:: pipeline.
numa::NumaBuffer<Tuple> FilterProbe(numa::NumaSystem* system,
                                    const LineitemTable& lineitem,
                                    thread::Executor& executor,
                                    int num_threads, uint64_t* out_count) {
  const uint64_t rows = lineitem.num_tuples();
  std::vector<uint64_t> counts(num_threads, 0);
  MMJOIN_CHECK_OK(executor.Dispatch(num_threads, [&](const thread::WorkerContext& ctx) {
    const thread::Range range =
        thread::ChunkRange(rows, ctx.num_threads, ctx.thread_id);
    uint64_t count = 0;
    for (uint64_t i = range.begin; i < range.end; ++i) {
      count += PreJoin(lineitem, i) ? 1 : 0;
    }
    counts[ctx.thread_id] = count;
  }));

  uint64_t total = 0;
  std::vector<uint64_t> offsets(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    offsets[t] = total;
    total += counts[t];
  }
  *out_count = total;

  numa::NumaBuffer<Tuple> probe(system, std::max<uint64_t>(total, 1),
                                numa::Placement::kChunkedRoundRobin);
  MMJOIN_CHECK_OK(executor.Dispatch(num_threads, [&](const thread::WorkerContext& ctx) {
    const thread::Range range =
        thread::ChunkRange(rows, ctx.num_threads, ctx.thread_id);
    uint64_t cursor = offsets[ctx.thread_id];
    const Tuple* partkey = lineitem.l_partkey();
    for (uint64_t i = range.begin; i < range.end; ++i) {
      if (PreJoin(lineitem, i)) probe[cursor++] = partkey[i];
    }
  }));
  return probe;
}

}  // namespace

StatusOr<Q19Result> TryRunQ19(numa::NumaSystem* system,
                              const LineitemTable& lineitem,
                              const PartTable& part, join::Algorithm algorithm,
                              int num_threads, Q19Strategy strategy,
                              thread::Executor* executor,
                              double compaction_threshold,
                              std::optional<uint64_t> mem_budget_bytes) {
  Q19Result result;
  const int64_t start = NowNanos();

  exec::PipelineConfig config;
  config.num_threads = num_threads;
  config.executor = executor;
  config.compaction_threshold = compaction_threshold;
  config.mem_budget_bytes = mem_budget_bytes;

  exec::TupleScan scan(
      ConstTupleSpan(lineitem.l_partkey(), lineitem.num_tuples()));
  Q19PreFilter pre_filter(lineitem);
  exec::HashJoinProbe::Spec join_spec;
  join_spec.algorithm = algorithm;
  join_spec.build = ConstTupleSpan(part.p_partkey(), part.num_tuples());
  join_spec.key_domain = part.num_tuples();
  exec::HashJoinProbe join_probe(join_spec);
  Q19PostFilter post_filter(lineitem, part);
  RevenueAggregate aggregate(lineitem);

  if (strategy == Q19Strategy::kPipelined) {
    exec::Pipeline pipeline(&scan, {&pre_filter, &join_probe, &post_filter},
                            &aggregate);
    exec::PipelineStats stats;
    MMJOIN_ASSIGN_OR_RETURN(stats, pipeline.Run(system, config));
    aggregate.Fold(&result);
    result.filtered_rows = stats.pre_join_rows;
    result.join_matches = stats.join_matches;
    result.filter_ns = stats.pre_join_ns;
  } else {
    // Join-index strategy: the first pipeline ends in an index materializer
    // right after the probe; post-filter + aggregation run as a second
    // pipeline over the gathered index.
    exec::JoinIndexMaterialize index;
    exec::Pipeline join_pipeline(&scan, {&pre_filter, &join_probe}, &index);
    exec::PipelineStats join_stats;
    MMJOIN_ASSIGN_OR_RETURN(join_stats, join_pipeline.Run(system, config));
    result.filtered_rows = join_stats.pre_join_rows;
    result.join_matches = join_stats.join_matches;
    result.filter_ns = join_stats.pre_join_ns;

    const std::vector<join::MatchedPair> pairs = index.Gather();
    exec::JoinIndexScan index_scan(&pairs);
    exec::Pipeline post_pipeline(&index_scan, {&post_filter}, &aggregate);
    MMJOIN_RETURN_IF_ERROR(post_pipeline.Run(system, config).status());
    aggregate.Fold(&result);
  }

  // Phase accounting identity: everything after the pre-join filter stage
  // is the join phase, so filter_ns + join_ns == total_ns by construction
  // (asserted in tests/tpch_test.cc).
  result.total_ns = NowNanos() - start;
  result.join_ns = result.total_ns - result.filter_ns;
  return result;
}

Q19Result RunQ19(numa::NumaSystem* system, const LineitemTable& lineitem,
                 const PartTable& part, join::Algorithm algorithm,
                 int num_threads, Q19Strategy strategy,
                 thread::Executor* executor, double compaction_threshold) {
  StatusOr<Q19Result> result =
      TryRunQ19(system, lineitem, part, algorithm, num_threads, strategy,
                executor, compaction_threshold);
  MMJOIN_CHECK(result.ok());
  return *std::move(result);
}

Q19MorphResult RunQ19Morph(numa::NumaSystem* system,
                           const LineitemTable& lineitem,
                           const PartTable& part, int num_threads,
                           thread::Executor* executor) {
  thread::Executor& exec =
      executor != nullptr ? *executor : thread::GlobalExecutor();
  Q19MorphResult result;
  using Table = hash::LinearProbingTable<hash::IdentityHash>;
  const uint64_t l_rows = lineitem.num_tuples();
  const uint64_t p_rows = part.num_tuples();
  const Tuple* l_partkey = lineitem.l_partkey();

  uint64_t filtered = 0;
  numa::NumaBuffer<Tuple> prefiltered =
      FilterProbe(system, lineitem, exec, num_threads, &filtered);

  auto build_table = [&]() {
    auto table = std::make_unique<Table>(
        system, p_rows, numa::Placement::kInterleavedPages);
    MMJOIN_CHECK_OK(exec.ParallelFor(num_threads, p_rows, [&](std::size_t begin,
                                              std::size_t end,
                                              const thread::WorkerContext&) {
      const Tuple* keys = part.p_partkey();
      for (uint64_t i = begin; i < end; ++i) {
        table->InsertConcurrent(keys[i]);
      }
    }));
    return table;
  };

  // Step 1: naked join on pre-filtered pre-materialized input.
  {
    Stopwatch watch;
    auto table = build_table();
    std::atomic<uint64_t> matches{0};
    MMJOIN_CHECK_OK(exec.ParallelFor(num_threads, filtered, [&](std::size_t begin,
                                                std::size_t end,
                                                const thread::WorkerContext&) {
      uint64_t local = 0;
      for (uint64_t i = begin; i < end; ++i) {
        table->ProbeUnique(prefiltered[i].key, [&](Tuple) { ++local; });
      }
      matches.fetch_add(local, std::memory_order_relaxed);
    }));
    result.step_ns[0] = watch.ElapsedNanos();
  }

  // Step 2: filter the input table dynamically during the probe.
  {
    Stopwatch watch;
    auto table = build_table();
    std::atomic<uint64_t> matches{0};
    MMJOIN_CHECK_OK(exec.ParallelFor(num_threads, l_rows, [&](std::size_t begin,
                                              std::size_t end,
                                              const thread::WorkerContext&) {
      uint64_t local = 0;
      for (uint64_t i = begin; i < end; ++i) {
        if (!PreJoin(lineitem, i)) continue;
        table->ProbeUnique(l_partkey[i].key, [&](Tuple) { ++local; });
      }
      matches.fetch_add(local, std::memory_order_relaxed);
    }));
    result.step_ns[1] = watch.ElapsedNanos();
  }

  // Steps 3 and 4: dynamic filtering + join index, then post-filter +
  // aggregate from the index.
  {
    Stopwatch watch;
    auto table = build_table();
    std::vector<std::vector<Tuple>> index(num_threads);  // <rowP, rowL>
    MMJOIN_CHECK_OK(exec.ParallelFor(num_threads, l_rows, [&](std::size_t begin,
                                              std::size_t end,
                                              const thread::WorkerContext&
                                                  ctx) {
      std::vector<Tuple>& local = index[ctx.thread_id];
      for (uint64_t i = begin; i < end; ++i) {
        if (!PreJoin(lineitem, i)) continue;
        const auto row_l = static_cast<uint32_t>(i);
        table->ProbeUnique(l_partkey[i].key, [&](Tuple r) {
          local.push_back(Tuple{r.payload, row_l});
        });
      }
    }));
    result.step_ns[2] = watch.ElapsedNanos();

    std::vector<double> revenue(num_threads, 0.0);
    MMJOIN_CHECK_OK(exec.Dispatch(num_threads, [&](const thread::WorkerContext& ctx) {
      const int tid = ctx.thread_id;
      double local = 0.0;
      for (const Tuple& match : index[tid]) {
        if (PostJoin(lineitem, part, match.payload, match.key)) {
          local += static_cast<double>(
                       lineitem.l_extendedprice()[match.payload]) *
                   (1.0 - lineitem.l_discount()[match.payload]);
        }
      }
      revenue[tid] = local;
    }));
    result.step_ns[3] = watch.ElapsedNanos();
    for (double r : revenue) result.revenue_step4 += r;
  }

  // Step 5: the full pipelined query (Listing 4), no join index.
  {
    Stopwatch watch;
    auto table = build_table();
    std::vector<double> revenue(num_threads, 0.0);
    MMJOIN_CHECK_OK(exec.ParallelFor(num_threads, l_rows, [&](std::size_t begin,
                                              std::size_t end,
                                              const thread::WorkerContext&
                                                  ctx) {
      const int tid = ctx.thread_id;
      double local = 0.0;
      for (uint64_t i = begin; i < end; ++i) {
        if (!PreJoin(lineitem, i)) continue;
        table->ProbeUnique(l_partkey[i].key, [&](Tuple r) {
          if (PostJoin(lineitem, part, i, r.payload)) {
            local += static_cast<double>(lineitem.l_extendedprice()[i]) *
                     (1.0 - lineitem.l_discount()[i]);
          }
        });
      }
      revenue[tid] = local;
    }));
    result.step_ns[4] = watch.ElapsedNanos();
    for (double r : revenue) result.revenue_step5 += r;
  }

  return result;
}

double Q19Reference(const LineitemTable& lineitem, const PartTable& part) {
  double revenue = 0.0;
  for (uint64_t i = 0; i < lineitem.num_tuples(); ++i) {
    if (!PreJoin(lineitem, i)) continue;
    const uint32_t partkey = lineitem.l_partkey()[i].key;
    // p_partkey is dense and sorted: key == row id.
    const uint64_t row_p = partkey;
    if (row_p < part.num_tuples() &&
        PostJoin(lineitem, part, i, row_p)) {
      revenue += static_cast<double>(lineitem.l_extendedprice()[i]) *
                 (1.0 - lineitem.l_discount()[i]);
    }
  }
  return revenue;
}

}  // namespace mmjoin::tpch
