#include "tpch/q19.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "hash/linear_probing_table.h"
#include "join/join_algorithm.h"
#include "join/materialize.h"
#include "thread/executor.h"
#include "util/timer.h"
#include "util/types.h"

namespace mmjoin::tpch {
namespace {

struct alignas(kCacheLineSize) ThreadAgg {
  double revenue = 0.0;
  uint64_t matches = 0;
  uint64_t results = 0;
};
static_assert(sizeof(ThreadAgg) == kCacheLineSize,
              "ThreadAgg must occupy exactly one cache line (false-sharing "
              "padding)");

// MatchSink evaluating PostJoin + aggregation inline (late
// materialization: attributes are touched via the row ids in the match).
class RevenueSink final : public join::MatchSink {
 public:
  RevenueSink(const LineitemTable& lineitem, const PartTable& part,
              int num_threads)
      : lineitem_(lineitem), part_(part), aggs_(num_threads) {}

  void Consume(int tid, Tuple build, Tuple probe) override {
    ThreadAgg& agg = aggs_[tid];
    ++agg.matches;
    const uint64_t row_p = build.payload;
    const uint64_t row_l = probe.payload;
    if (PostJoin(lineitem_, part_, row_l, row_p)) {
      ++agg.results;
      agg.revenue +=
          static_cast<double>(lineitem_.l_extendedprice()[row_l]) *
          (1.0 - lineitem_.l_discount()[row_l]);
    }
  }

  void Fold(Q19Result* result) const {
    for (const ThreadAgg& agg : aggs_) {
      result->revenue += agg.revenue;
      result->join_matches += agg.matches;
      result->result_rows += agg.results;
    }
  }

 private:
  const LineitemTable& lineitem_;
  const PartTable& part_;
  std::vector<ThreadAgg> aggs_;
};

// Parallel filter + materialization of the probe column: <l_partkey, rowid>
// for every lineitem row passing PreJoin. Two passes (count, then fill at
// precomputed offsets) so the output is dense and deterministic.
numa::NumaBuffer<Tuple> FilterProbe(numa::NumaSystem* system,
                                    const LineitemTable& lineitem,
                                    thread::Executor& executor,
                                    int num_threads, uint64_t* out_count) {
  const uint64_t rows = lineitem.num_tuples();
  std::vector<uint64_t> counts(num_threads, 0);
  executor.Dispatch(num_threads, [&](const thread::WorkerContext& ctx) {
    const thread::Range range =
        thread::ChunkRange(rows, ctx.num_threads, ctx.thread_id);
    uint64_t count = 0;
    for (uint64_t i = range.begin; i < range.end; ++i) {
      count += PreJoin(lineitem, i) ? 1 : 0;
    }
    counts[ctx.thread_id] = count;
  });

  uint64_t total = 0;
  std::vector<uint64_t> offsets(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    offsets[t] = total;
    total += counts[t];
  }
  *out_count = total;

  numa::NumaBuffer<Tuple> probe(system, std::max<uint64_t>(total, 1),
                                numa::Placement::kChunkedRoundRobin);
  executor.Dispatch(num_threads, [&](const thread::WorkerContext& ctx) {
    const thread::Range range =
        thread::ChunkRange(rows, ctx.num_threads, ctx.thread_id);
    uint64_t cursor = offsets[ctx.thread_id];
    const Tuple* partkey = lineitem.l_partkey();
    for (uint64_t i = range.begin; i < range.end; ++i) {
      if (PreJoin(lineitem, i)) probe[cursor++] = partkey[i];
    }
  });
  return probe;
}

}  // namespace

Q19Result RunQ19(numa::NumaSystem* system, const LineitemTable& lineitem,
                 const PartTable& part, join::Algorithm algorithm,
                 int num_threads, Q19Strategy strategy,
                 thread::Executor* executor) {
  thread::Executor& exec =
      executor != nullptr ? *executor : thread::GlobalExecutor();
  Q19Result result;
  const int64_t start = NowNanos();

  numa::NumaBuffer<Tuple> probe = FilterProbe(system, lineitem, exec,
                                              num_threads,
                                              &result.filtered_rows);
  const int64_t filter_end = NowNanos();

  join::JoinConfig config;
  config.num_threads = num_threads;
  config.executor = &exec;
  const std::unique_ptr<join::JoinAlgorithm> join =
      join::CreateJoin(algorithm);
  const ConstTupleSpan build(part.p_partkey(), part.num_tuples());
  const ConstTupleSpan probe_span(probe.data(), result.filtered_rows);

  if (strategy == Q19Strategy::kPipelined) {
    RevenueSink sink(lineitem, part, num_threads);
    config.sink = &sink;
    join->Run(system, config, build, probe_span,
              /*key_domain=*/part.num_tuples());
    sink.Fold(&result);
  } else {
    // Join-index strategy: materialize <rowP, rowL> first, then a separate
    // parallel post-filter + aggregation pass over the index.
    join::JoinIndexSink index(num_threads);
    index.Reserve(result.filtered_rows);
    config.sink = &index;
    join->Run(system, config, build, probe_span,
              /*key_domain=*/part.num_tuples());
    const std::vector<join::MatchedPair> pairs = index.Gather();
    result.join_matches = pairs.size();

    std::vector<ThreadAgg> aggs(num_threads);
    exec.ParallelFor(num_threads, pairs.size(), [&](std::size_t begin,
                                                    std::size_t end,
                                                    const thread::WorkerContext&
                                                        ctx) {
      const thread::Range range{begin, end};
      ThreadAgg& agg = aggs[ctx.thread_id];
      for (uint64_t i = range.begin; i < range.end; ++i) {
        const uint64_t row_p = pairs[i].build_payload;
        const uint64_t row_l = pairs[i].probe_payload;
        if (PostJoin(lineitem, part, row_l, row_p)) {
          ++agg.results;
          agg.revenue +=
              static_cast<double>(lineitem.l_extendedprice()[row_l]) *
              (1.0 - lineitem.l_discount()[row_l]);
        }
      }
    });
    for (const ThreadAgg& agg : aggs) {
      result.revenue += agg.revenue;
      result.result_rows += agg.results;
    }
  }

  const int64_t end = NowNanos();
  result.filter_ns = filter_end - start;
  result.join_ns = end - filter_end;
  result.total_ns = end - start;
  return result;
}

Q19MorphResult RunQ19Morph(numa::NumaSystem* system,
                           const LineitemTable& lineitem,
                           const PartTable& part, int num_threads,
                           thread::Executor* executor) {
  thread::Executor& exec =
      executor != nullptr ? *executor : thread::GlobalExecutor();
  Q19MorphResult result;
  using Table = hash::LinearProbingTable<hash::IdentityHash>;
  const uint64_t l_rows = lineitem.num_tuples();
  const uint64_t p_rows = part.num_tuples();
  const Tuple* l_partkey = lineitem.l_partkey();

  uint64_t filtered = 0;
  numa::NumaBuffer<Tuple> prefiltered =
      FilterProbe(system, lineitem, exec, num_threads, &filtered);

  auto build_table = [&]() {
    auto table = std::make_unique<Table>(
        system, p_rows, numa::Placement::kInterleavedPages);
    exec.ParallelFor(num_threads, p_rows, [&](std::size_t begin,
                                              std::size_t end,
                                              const thread::WorkerContext&) {
      const Tuple* keys = part.p_partkey();
      for (uint64_t i = begin; i < end; ++i) {
        table->InsertConcurrent(keys[i]);
      }
    });
    return table;
  };

  // Step 1: naked join on pre-filtered pre-materialized input.
  {
    Stopwatch watch;
    auto table = build_table();
    std::atomic<uint64_t> matches{0};
    exec.ParallelFor(num_threads, filtered, [&](std::size_t begin,
                                                std::size_t end,
                                                const thread::WorkerContext&) {
      uint64_t local = 0;
      for (uint64_t i = begin; i < end; ++i) {
        table->ProbeUnique(prefiltered[i].key, [&](Tuple) { ++local; });
      }
      matches.fetch_add(local, std::memory_order_relaxed);
    });
    result.step_ns[0] = watch.ElapsedNanos();
  }

  // Step 2: filter the input table dynamically during the probe.
  {
    Stopwatch watch;
    auto table = build_table();
    std::atomic<uint64_t> matches{0};
    exec.ParallelFor(num_threads, l_rows, [&](std::size_t begin,
                                              std::size_t end,
                                              const thread::WorkerContext&) {
      uint64_t local = 0;
      for (uint64_t i = begin; i < end; ++i) {
        if (!PreJoin(lineitem, i)) continue;
        table->ProbeUnique(l_partkey[i].key, [&](Tuple) { ++local; });
      }
      matches.fetch_add(local, std::memory_order_relaxed);
    });
    result.step_ns[1] = watch.ElapsedNanos();
  }

  // Steps 3 and 4: dynamic filtering + join index, then post-filter +
  // aggregate from the index.
  {
    Stopwatch watch;
    auto table = build_table();
    std::vector<std::vector<Tuple>> index(num_threads);  // <rowP, rowL>
    exec.ParallelFor(num_threads, l_rows, [&](std::size_t begin,
                                              std::size_t end,
                                              const thread::WorkerContext&
                                                  ctx) {
      std::vector<Tuple>& local = index[ctx.thread_id];
      for (uint64_t i = begin; i < end; ++i) {
        if (!PreJoin(lineitem, i)) continue;
        const auto row_l = static_cast<uint32_t>(i);
        table->ProbeUnique(l_partkey[i].key, [&](Tuple r) {
          local.push_back(Tuple{r.payload, row_l});
        });
      }
    });
    result.step_ns[2] = watch.ElapsedNanos();

    std::vector<double> revenue(num_threads, 0.0);
    exec.Dispatch(num_threads, [&](const thread::WorkerContext& ctx) {
      const int tid = ctx.thread_id;
      double local = 0.0;
      for (const Tuple& match : index[tid]) {
        if (PostJoin(lineitem, part, match.payload, match.key)) {
          local += static_cast<double>(
                       lineitem.l_extendedprice()[match.payload]) *
                   (1.0 - lineitem.l_discount()[match.payload]);
        }
      }
      revenue[tid] = local;
    });
    result.step_ns[3] = watch.ElapsedNanos();
    for (double r : revenue) result.revenue_step4 += r;
  }

  // Step 5: the full pipelined query (Listing 4), no join index.
  {
    Stopwatch watch;
    auto table = build_table();
    std::vector<double> revenue(num_threads, 0.0);
    exec.ParallelFor(num_threads, l_rows, [&](std::size_t begin,
                                              std::size_t end,
                                              const thread::WorkerContext&
                                                  ctx) {
      const int tid = ctx.thread_id;
      double local = 0.0;
      for (uint64_t i = begin; i < end; ++i) {
        if (!PreJoin(lineitem, i)) continue;
        table->ProbeUnique(l_partkey[i].key, [&](Tuple r) {
          if (PostJoin(lineitem, part, i, r.payload)) {
            local += static_cast<double>(lineitem.l_extendedprice()[i]) *
                     (1.0 - lineitem.l_discount()[i]);
          }
        });
      }
      revenue[tid] = local;
    });
    result.step_ns[4] = watch.ElapsedNanos();
    for (double r : revenue) result.revenue_step5 += r;
  }

  return result;
}

double Q19Reference(const LineitemTable& lineitem, const PartTable& part) {
  double revenue = 0.0;
  for (uint64_t i = 0; i < lineitem.num_tuples(); ++i) {
    if (!PreJoin(lineitem, i)) continue;
    const uint32_t partkey = lineitem.l_partkey()[i].key;
    // p_partkey is dense and sorted: key == row id.
    const uint64_t row_p = partkey;
    if (row_p < part.num_tuples() &&
        PostJoin(lineitem, part, i, row_p)) {
      revenue += static_cast<double>(lineitem.l_extendedprice()[i]) *
                 (1.0 - lineitem.l_discount()[i]);
    }
  }
  return revenue;
}

}  // namespace mmjoin::tpch
