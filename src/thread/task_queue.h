// Join-task queues and NUMA-aware scheduling orders.
//
// After partitioning, every PR*/CPR* algorithm joins co-partitions that are
// pulled from a shared task queue (paper Section 6.2). The original code
// inserts partition indices in ascending order into a LIFO queue; because
// partition indices correlate with virtual addresses, the first ~p/nodes
// tasks all read from the same NUMA region and saturate one memory
// controller. The improved-scheduling (iS) variants instead enqueue
// round-robin across NUMA nodes so all memory controllers are busy at once.
// Skew handling pushes extra sub-tasks onto the queue at runtime.

#ifndef MMJOIN_THREAD_TASK_QUEUE_H_
#define MMJOIN_THREAD_TASK_QUEUE_H_

#include <cstdint>
#include <vector>

#include "util/annotations.h"
#include "util/macros.h"
#include "util/mutex.h"

namespace mmjoin::thread {

// A join task: a co-partition, optionally restricted to a slice of the probe
// side (skew handling splits large probe partitions into slices).
struct JoinTask {
  uint32_t partition;
  uint32_t probe_slice = 0;
  uint32_t probe_slice_count = 1;
};

// Thread-safe LIFO task stack (matches the paper: "a LIFO-task queue (which
// is actually a stack)").
class TaskQueue {
 public:
  TaskQueue() = default;
  explicit TaskQueue(std::vector<JoinTask> initial)
      : tasks_(std::move(initial)) {}

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  void Push(JoinTask task) {
    MutexLock lock(mutex_);
    tasks_.push_back(task);
  }

  // Pops the most recently pushed task; returns false when empty.
  bool Pop(JoinTask* task) {
    MutexLock lock(mutex_);
    if (tasks_.empty()) return false;
    *task = tasks_.back();
    tasks_.pop_back();
    return true;
  }

  std::size_t SizeForTest() const {
    MutexLock lock(mutex_);
    return tasks_.size();
  }

 private:
  mutable Mutex mutex_;
  std::vector<JoinTask> tasks_ MMJOIN_GUARDED_BY(mutex_);
};

// Scheduling orders. Both return the sequence in which partition indices are
// *consumed*; the queue is seeded so pops yield this order.
//
// Sequential: 0, 1, 2, ... (the original PR* behaviour -- consecutive
// partitions live on the same node).
std::vector<uint32_t> SequentialOrder(uint32_t num_partitions);

// Round-robin over nodes: one partition from node 0's block, then one from
// node 1's block, etc. (the iS variants). Partition p lives in block
// floor(p / ceil(P/nodes)) because partitioned output memory is
// chunked-round-robin over nodes.
std::vector<uint32_t> RoundRobinNodeOrder(uint32_t num_partitions,
                                          int num_nodes);

// Builds a queue whose Pop() sequence equals `consume_order`.
std::vector<JoinTask> TasksFromOrder(const std::vector<uint32_t>& consume_order);

}  // namespace mmjoin::thread

#endif  // MMJOIN_THREAD_TASK_QUEUE_H_
