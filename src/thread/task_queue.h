// Join-task queues and NUMA-aware scheduling orders.
//
// After partitioning, every PR*/CPR* algorithm joins co-partitions that are
// pulled from a shared task queue (paper Section 6.2). The original code
// inserts partition indices in ascending order into a LIFO queue; because
// partition indices correlate with virtual addresses, the first ~p/nodes
// tasks all read from the same NUMA region and saturate one memory
// controller. The improved-scheduling (iS) variants instead enqueue
// round-robin across NUMA nodes so all memory controllers are busy at once.
// Skew handling pushes extra sub-tasks onto the queue at runtime.
//
// Two queue types live here:
//   TaskQueue         the paper-literal single global LIFO stack (kept for
//                     the scheduling ablation bench and micro-tests)
//   ShardedTaskQueue  per-NUMA-node deques with distance-ordered FIFO
//                     stealing -- what the join phase actually runs on

#ifndef MMJOIN_THREAD_TASK_QUEUE_H_
#define MMJOIN_THREAD_TASK_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "util/annotations.h"
#include "util/macros.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/types.h"

namespace mmjoin::numa {
class NumaSystem;
}  // namespace mmjoin::numa

namespace mmjoin::thread {

// A join task: a co-partition, optionally restricted to a slice of the probe
// side (skew handling splits large probe partitions into slices).
struct JoinTask {
  uint32_t partition;
  uint32_t probe_slice = 0;
  uint32_t probe_slice_count = 1;
};

// Thread-safe LIFO task stack (matches the paper: "a LIFO-task queue (which
// is actually a stack)").
class TaskQueue {
 public:
  TaskQueue() = default;
  explicit TaskQueue(std::vector<JoinTask> initial)
      : tasks_(std::move(initial)) {}

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  void Push(JoinTask task) {
    MutexLock lock(mutex_);
    tasks_.push_back(task);
  }

  // Pops the most recently pushed task; returns false when empty.
  bool Pop(JoinTask* task) {
    MutexLock lock(mutex_);
    if (tasks_.empty()) return false;
    *task = tasks_.back();
    tasks_.pop_back();
    return true;
  }

  std::size_t SizeForTest() const {
    MutexLock lock(mutex_);
    return tasks_.size();
  }

 private:
  mutable Mutex mutex_;
  std::vector<JoinTask> tasks_ MMJOIN_GUARDED_BY(mutex_);
};

// Per-NUMA-node sharded work-stealing queue for the join phase.
//
// Semantics (docs/EXECUTION.md "Sharded join scheduler"):
//  - Seeding (single-threaded, between barriers): tasks arrive in global
//    consume order tagged with a preferred shard (the node their probe data
//    lives on). Within a shard, pops yield the seeded order -- so with one
//    active shard the consume order is bit-identical to the old global
//    TaskQueue, and the iS round-robin order survives per shard.
//  - Runtime: a worker pops LIFO from its home shard (the paper's stack
//    semantics, newest == cache-warm). When the home shard is dry it steals
//    FIFO -- the task its victim would have run *last* -- walking remote
//    shards in Topology::NodesByDistance order. Steals are counted in the
//    run stats and, when a NumaSystem was attached, in its thief x victim
//    steal matrix.
//  - BeginRun rearms the queue for a join run: clears every shard (a prior
//    aborted run may have left tasks behind) and zeroes the run stats. It
//    must be the *first* seeding step so a failed seed leaves an empty
//    queue, never a stale one.
//
// Seeding/BeginRun are phase-serial (one thread, before the barrier that
// releases the workers); Push/Pop are fully concurrent.
class ShardedTaskQueue {
 public:
  explicit ShardedTaskQueue(int num_shards);

  ShardedTaskQueue(const ShardedTaskQueue&) = delete;
  ShardedTaskQueue& operator=(const ShardedTaskQueue&) = delete;

  // Per-run scheduling telemetry; reset by BeginRun.
  struct RunStats {
    uint64_t local_pops = 0;
    uint64_t tasks_stolen = 0;
    uint64_t steal_remote_read_bytes = 0;
  };

  // Rearms the queue for one join run. `active_shards` (ascending, from
  // Topology::ActiveNodes) are the shards some worker polls locally; seeds
  // preferring an inactive shard are remapped onto an active one so no task
  // waits for a steal that may never come. `system` (optional) receives
  // CountTaskSteal events; it must outlive the run.
  void BeginRun(std::vector<int> active_shards, numa::NumaSystem* system);

  // Seeds one task in global consume order onto `preferred_shard`.
  void SeedTask(int preferred_shard, JoinTask task);

  // Runtime push (skew sub-tasks split mid-run): LIFO like the old queue --
  // the pushing shard pops it next.
  void Push(int shard, JoinTask task);

  // Pops the newest local task, or -- when `shard` is dry -- steals the
  // oldest task of the nearest non-empty shard. Returns false only when
  // every shard is empty. `stolen_from` (optional) is set to the victim
  // shard, -1 for a local pop.
  bool Pop(int shard, JoinTask* task, int* stolen_from = nullptr);

  // Attributes remote bytes a worker read *because* a task was stolen
  // (probe slice + any build fragments it gathered for it).
  void AddStealReadBytes(uint64_t bytes) {
    steal_remote_read_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  RunStats run_stats() const {
    RunStats stats;
    stats.local_pops = local_pops_.load(std::memory_order_relaxed);
    stats.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
    stats.steal_remote_read_bytes =
        steal_remote_read_bytes_.load(std::memory_order_relaxed);
    return stats;
  }

  int num_shards() const { return num_shards_; }
  std::size_t SizeForTest() const;

 private:
  // One deque per NUMA node, each on its own cache line so a worker hammering
  // its home shard's mutex does not false-share with its neighbours'.
  struct alignas(kCacheLineSize) Shard {
    Mutex mutex;
    std::deque<JoinTask> tasks MMJOIN_GUARDED_BY(mutex);
  };
  static_assert(alignof(Shard) == kCacheLineSize,
                "Shard must be cache-line aligned against false sharing");

  int MapShard(int preferred_shard) const;

  const int num_shards_;
  // unique_ptr<Shard[]>: Mutex is immovable, so a vector cannot hold Shards.
  std::unique_ptr<Shard[]> shards_;
  // steal_order_[s]: the other shards in Topology::NodesByDistance(s) order.
  std::vector<std::vector<int>> steal_order_;

  // Written by BeginRun/SeedTask on the seeding thread before the barrier
  // that releases the workers (which orders them); read-only during the run.
  std::vector<int> active_shards_;
  numa::NumaSystem* system_ = nullptr;

  std::atomic<uint64_t> local_pops_{0};
  std::atomic<uint64_t> tasks_stolen_{0};
  std::atomic<uint64_t> steal_remote_read_bytes_{0};
};

// Skew-task construction shared by the PR* and CPR* seeders.
//
// A probe partition larger than avg * skew_factor is split into
// ceil(size / (avg * skew_factor)) probe-slice tasks ("assigning multiple
// threads to an individual partition", Section 6.2), capped at
// kMaxProbeSlicesPerPartition: a slice count that large only happens under
// pathological skew where more slices stopped adding parallelism long ago,
// and the cap is what keeps the count representable -- the historical
// unchecked uint32_t cast could truncate (even to zero, corrupting the
// slice arithmetic downstream).
inline constexpr uint32_t kMaxProbeSlicesPerPartition = uint32_t{1} << 16;

// Slice count for one partition. Errors (InvalidArgument) when
// avg * skew_factor overflows uint64 -- no sane configuration reaches that,
// so it is reported, not clamped. `max_slices` lets CPR cap at its chunk
// count (slices partition the chunk range there).
StatusOr<uint32_t> ProbeSliceCount(uint64_t partition_size, uint64_t avg,
                                   uint32_t skew_factor, uint32_t max_slices);

// The task list for one join run, in consume order, plus the skew telemetry
// the counters export (docs/OBSERVABILITY.md):
//   skew_slices      tasks beyond one per partition, i.e.
//                    consume_order.size() == num_partitions + skew_slices
//   skew_partitions  partitions split into more than one slice
struct SkewTaskList {
  std::vector<JoinTask> consume_order;
  uint64_t skew_slices = 0;
  uint64_t skew_partitions = 0;
  std::vector<uint32_t> skewed_partitions;  // ascending partition order
};

StatusOr<SkewTaskList> BuildSkewTasks(
    const std::vector<uint64_t>& probe_partition_sizes,
    const std::vector<uint32_t>& order, uint32_t skew_factor,
    uint64_t probe_size,
    uint32_t max_slices = kMaxProbeSlicesPerPartition);

// Scheduling orders. Both return the sequence in which partition indices are
// *consumed*; the queue is seeded so pops yield this order.
//
// Sequential: 0, 1, 2, ... (the original PR* behaviour -- consecutive
// partitions live on the same node).
std::vector<uint32_t> SequentialOrder(uint32_t num_partitions);

// Round-robin over nodes: one partition from node 0's block, then one from
// node 1's block, etc. (the iS variants). Partition p lives in block
// floor(p / ceil(P/nodes)) because partitioned output memory is
// chunked-round-robin over nodes.
std::vector<uint32_t> RoundRobinNodeOrder(uint32_t num_partitions,
                                          int num_nodes);

// Builds a queue whose Pop() sequence equals `consume_order`.
std::vector<JoinTask> TasksFromOrder(const std::vector<uint32_t>& consume_order);

}  // namespace mmjoin::thread

#endif  // MMJOIN_THREAD_TASK_QUEUE_H_
