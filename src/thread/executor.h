// Persistent NUMA-aware executor.
//
// The paper's methodology (Sections 5/6, Appendix B) assumes a fixed team of
// worker threads pinned evenly across NUMA regions for the whole experiment;
// every join is a sequence of parallel phases separated by barriers running
// on that team. An Executor is that substrate: workers are OS threads
// created once and reused across dispatches (epochs), each with a stable
// thread-id and a NUMA node assigned via Topology::NodeOfThread. A dispatch
// runs one closure on every member of a team and blocks the caller until the
// whole team finished; the team barrier separates phases *inside* a
// dispatch (histogram -> scatter -> build -> probe).
//
// Teams may be smaller than the pool (extra workers sit out the epoch) and
// larger (the pool grows, once, and keeps the new workers). Stats record how
// many threads were ever spawned and how many dispatches ran, so benches and
// tests can assert that running N joins creates workers exactly once.

#ifndef MMJOIN_THREAD_EXECUTOR_H_
#define MMJOIN_THREAD_EXECUTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "numa/topology.h"
#include "thread/task_queue.h"
#include "thread/thread_team.h"
#include "util/annotations.h"
#include "util/macros.h"
#include "util/mutex.h"
#include "util/status.h"

namespace mmjoin::thread {

class Executor;

// Everything a worker closure needs: its identity within the team, the
// team's size, the NUMA node the thread is placed on (stable for a given
// team size, via Topology::NodeOfThread), and the team barrier separating
// phases of this dispatch.
struct WorkerContext {
  int thread_id = 0;
  int num_threads = 1;
  int node = 0;
  Barrier* barrier = nullptr;
  Executor* executor = nullptr;
};

// Pool-reuse accounting. `threads_spawned` only grows when the pool does;
// a steady-state process shows threads_spawned == num_threads while
// `dispatches` keeps counting. `barrier_wait_ns` (time blocked in the team
// barrier inside dispatches) and `idle_ns` (time workers slept between
// epochs) are accumulated only while observability (obs::Enabled()) is on,
// so the hot path stays untimed by default; see docs/EXECUTION.md.
struct ExecutorStats {
  uint64_t threads_spawned = 0;
  uint64_t dispatches = 0;
  uint64_t max_team_size = 0;
  uint64_t barrier_wait_ns = 0;
  uint64_t idle_ns = 0;
};

class Executor {
 public:
  // Spawns `num_threads` workers immediately; `num_nodes` fixes the software
  // NUMA topology used for the thread -> node placement.
  explicit Executor(int num_threads, int num_nodes = 4);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Runs `fn(ctx)` on a team of `team_size` workers (thread ids
  // [0, team_size)) and blocks until all of them finished. Grows the pool if
  // the team is larger than it; never shrinks. Dispatching from inside a
  // worker closure is not supported (it would deadlock the pool).
  //
  // With a watchdog timeout armed (set_watchdog_timeout or env var
  // MMJOIN_DISPATCH_TIMEOUT_MS), a dispatch whose team does not finish in
  // time dumps diagnostics to stderr, poisons the executor, and returns
  // DeadlineExceeded; every later dispatch returns FailedPrecondition. The
  // stuck workers keep a shared copy of the task closure, so a timed-out
  // return does not invalidate what they are still running.
  Status Dispatch(int team_size,
                  const std::function<void(const WorkerContext&)>& fn)
      MMJOIN_EXCLUDES(dispatch_mutex_, mutex_);

  // Dispatch on the default team (the constructor's num_threads).
  Status Dispatch(const std::function<void(const WorkerContext&)>& fn) {
    return Dispatch(default_team_, fn);
  }

  // Splits [0, total) into team-sized chunks via ChunkRange and runs
  // `fn(begin, end, ctx)` on each non-empty chunk. total == 0 dispatches
  // nothing; total < team leaves the surplus workers with empty chunks.
  Status ParallelFor(int team_size, std::size_t total,
                     const std::function<void(std::size_t, std::size_t,
                                              const WorkerContext&)>& fn);
  Status ParallelFor(std::size_t total,
                     const std::function<void(std::size_t, std::size_t,
                                              const WorkerContext&)>& fn) {
    return ParallelFor(default_team_, total, fn);
  }

  // Watchdog deadline per dispatch in milliseconds; 0 disables (default).
  // Initialized from MMJOIN_DISPATCH_TIMEOUT_MS when set.
  void set_watchdog_timeout(int64_t timeout_ms) {
    watchdog_timeout_ms_.store(timeout_ms, std::memory_order_relaxed);
  }
  int64_t watchdog_timeout_ms() const {
    return watchdog_timeout_ms_.load(std::memory_order_relaxed);
  }

  // True once a dispatch timed out; the executor refuses further work.
  bool poisoned() const {
    return poisoned_.load(std::memory_order_relaxed);
  }

  // True when no dispatched work is outstanding (test/teardown aid: after a
  // timed-out dispatch, wait for stragglers before destroying the executor).
  bool IsIdle() const;

  // The default team size (constructor argument).
  int num_threads() const { return default_team_; }
  // Current pool size (>= num_threads(); grows with oversized teams).
  int pool_size() const;

  ExecutorStats stats() const;

  const numa::Topology& topology() const { return topology_; }

  // The sharded join-task queue dispatched joins run on. Created once, sized
  // to this executor's topology (never resized -- workers of a running
  // dispatch hold references into it). A join whose NumaSystem models a
  // different node count than this executor falls back to a run-local queue.
  // Dispatches are serialized (dispatch_mutex_), so at most one join run
  // uses the queue at a time.
  ShardedTaskQueue& join_queue() { return *join_queue_; }

 private:
  void WorkerLoop(int thread_id, uint64_t spawn_epoch);
  // Grows the pool to `count` workers.
  void EnsureWorkersLocked(int count) MMJOIN_REQUIRES(mutex_);

  const int default_team_;
  const numa::Topology topology_;
  const std::unique_ptr<ShardedTaskQueue> join_queue_;

  // One dispatch at a time; callers queue here, not on the epoch state.
  Mutex dispatch_mutex_;

  // mutex_ guards the epoch-dispatch protocol: Dispatch publishes
  // {task_, team_size_, remaining_, epoch_} under it, workers observe the
  // epoch bump under it, and remaining_ counts workers back in under it.
  mutable Mutex mutex_;
  CondVar work_cv_;
  CondVar done_cv_;
  std::vector<std::thread> workers_ MMJOIN_GUARDED_BY(mutex_);
  uint64_t epoch_ MMJOIN_GUARDED_BY(mutex_) = 0;
  int team_size_ MMJOIN_GUARDED_BY(mutex_) = 0;
  int remaining_ MMJOIN_GUARDED_BY(mutex_) = 0;
  // Shared so workers still hold a valid closure if Dispatch returns early
  // on watchdog timeout while they are stuck mid-task.
  std::shared_ptr<const std::function<void(const WorkerContext&)>> task_
      MMJOIN_GUARDED_BY(mutex_);
  std::unique_ptr<Barrier> barrier_ MMJOIN_GUARDED_BY(mutex_);
  int barrier_parties_ MMJOIN_GUARDED_BY(mutex_) = 0;
  bool stop_ MMJOIN_GUARDED_BY(mutex_) = false;

  std::atomic<int64_t> watchdog_timeout_ms_{0};
  std::atomic<bool> poisoned_{false};

  uint64_t threads_spawned_ MMJOIN_GUARDED_BY(mutex_) = 0;
  uint64_t dispatches_ MMJOIN_GUARDED_BY(mutex_) = 0;
  uint64_t max_team_size_ MMJOIN_GUARDED_BY(mutex_) = 0;
  // Written by workers outside mutex_ (relaxed adds); populated only while
  // observability is enabled.
  std::atomic<uint64_t> barrier_wait_ns_{0};
  std::atomic<uint64_t> idle_ns_{0};
};

// The process-wide pool behind the RunTeam compatibility shim and every
// caller that does not own an Executor (benches, the TPC-H generator). Lazily
// created on first use, grows to the largest team ever requested, and lives
// until process exit.
Executor& GlobalExecutor();

}  // namespace mmjoin::thread

#endif  // MMJOIN_THREAD_EXECUTOR_H_
