#include "thread/thread_team.h"

#include <thread>
#include <vector>

namespace mmjoin::thread {

void RunTeam(int num_threads, const std::function<void(int)>& fn) {
  MMJOIN_CHECK(num_threads >= 1);
  if (num_threads == 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (int tid = 0; tid < num_threads; ++tid) {
    workers.emplace_back([&fn, tid] { fn(tid); });
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace mmjoin::thread
