#include "thread/thread_team.h"

#include "thread/executor.h"

namespace mmjoin::thread {

std::atomic<uint64_t>& ProcessBarrierWaitNs() {
  // Leaked so barriers inside static-destruction-time teams stay safe.
  static std::atomic<uint64_t>* wait_ns = new std::atomic<uint64_t>(0);
  return *wait_ns;
}

void RunTeam(int num_threads, const std::function<void(int)>& fn) {
  MMJOIN_CHECK(num_threads >= 1);
  const Status status = GlobalExecutor().Dispatch(
      num_threads, [&fn](const WorkerContext& ctx) { fn(ctx.thread_id); });
  // The shim predates the Status plumbing; a watchdog timeout here is fatal.
  MMJOIN_CHECK(status.ok());
}

}  // namespace mmjoin::thread
