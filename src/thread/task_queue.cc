#include "thread/task_queue.h"

#include <algorithm>

namespace mmjoin::thread {

std::vector<uint32_t> SequentialOrder(uint32_t num_partitions) {
  std::vector<uint32_t> order(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) order[p] = p;
  return order;
}

std::vector<uint32_t> RoundRobinNodeOrder(uint32_t num_partitions,
                                          int num_nodes) {
  MMJOIN_CHECK(num_nodes >= 1);
  const uint32_t nodes = static_cast<uint32_t>(num_nodes);
  const uint32_t block = (num_partitions + nodes - 1) / nodes;

  std::vector<uint32_t> order;
  order.reserve(num_partitions);
  for (uint32_t offset = 0; offset < block; ++offset) {
    for (uint32_t node = 0; node < nodes; ++node) {
      const uint32_t partition = node * block + offset;
      if (partition < num_partitions) order.push_back(partition);
    }
  }
  MMJOIN_CHECK(order.size() == num_partitions);
  return order;
}

std::vector<JoinTask> TasksFromOrder(
    const std::vector<uint32_t>& consume_order) {
  // The queue is a stack, so seed it in reverse consumption order.
  std::vector<JoinTask> tasks;
  tasks.reserve(consume_order.size());
  for (auto it = consume_order.rbegin(); it != consume_order.rend(); ++it) {
    tasks.push_back(JoinTask{*it});
  }
  return tasks;
}

}  // namespace mmjoin::thread
