#include "thread/task_queue.h"

#include <algorithm>
#include <string>

#include "numa/system.h"

namespace mmjoin::thread {

ShardedTaskQueue::ShardedTaskQueue(int num_shards)
    : num_shards_(num_shards),
      shards_(std::make_unique<Shard[]>(num_shards)),
      steal_order_(num_shards) {
  MMJOIN_CHECK(num_shards >= 1);
  const numa::Topology topology(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    steal_order_[s] = topology.NodesByDistance(s);
  }
}

void ShardedTaskQueue::BeginRun(std::vector<int> active_shards,
                                numa::NumaSystem* system) {
  MMJOIN_CHECK(!active_shards.empty());
  for (int s = 0; s < num_shards_; ++s) {
    MutexLock lock(shards_[s].mutex);
    shards_[s].tasks.clear();
  }
  active_shards_ = std::move(active_shards);
  system_ = system;
  local_pops_.store(0, std::memory_order_relaxed);
  tasks_stolen_.store(0, std::memory_order_relaxed);
  steal_remote_read_bytes_.store(0, std::memory_order_relaxed);
}

int ShardedTaskQueue::MapShard(int preferred_shard) const {
  MMJOIN_DCHECK(preferred_shard >= 0 && preferred_shard < num_shards_);
  if (active_shards_.empty()) return preferred_shard;
  if (std::binary_search(active_shards_.begin(), active_shards_.end(),
                         preferred_shard)) {
    return preferred_shard;
  }
  // No worker polls this shard locally; spread orphaned seeds over the
  // active shards instead of waiting for a steal that may never come.
  return active_shards_[static_cast<std::size_t>(preferred_shard) %
                        active_shards_.size()];
}

void ShardedTaskQueue::SeedTask(int preferred_shard, JoinTask task) {
  Shard& shard = shards_[MapShard(preferred_shard)];
  MutexLock lock(shard.mutex);
  // Seeds arrive in consume order; push_front makes pop_back (the local
  // LIFO end) return them in exactly that order, and leaves the *latest*
  // consume-order task at the front where thieves take it first.
  shard.tasks.push_front(task);
}

void ShardedTaskQueue::Push(int shard_index, JoinTask task) {
  MMJOIN_DCHECK(shard_index >= 0 && shard_index < num_shards_);
  Shard& shard = shards_[shard_index];
  MutexLock lock(shard.mutex);
  shard.tasks.push_back(task);
}

bool ShardedTaskQueue::Pop(int shard_index, JoinTask* task,
                           int* stolen_from) {
  MMJOIN_DCHECK(shard_index >= 0 && shard_index < num_shards_);
  if (stolen_from != nullptr) *stolen_from = -1;
  {
    Shard& home = shards_[shard_index];
    MutexLock lock(home.mutex);
    if (!home.tasks.empty()) {
      *task = home.tasks.back();
      home.tasks.pop_back();
      local_pops_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (const int victim : steal_order_[shard_index]) {
    Shard& remote = shards_[victim];
    MutexLock lock(remote.mutex);
    if (remote.tasks.empty()) continue;
    *task = remote.tasks.front();
    remote.tasks.pop_front();
    tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
    if (system_ != nullptr) system_->CountTaskSteal(shard_index, victim);
    if (stolen_from != nullptr) *stolen_from = victim;
    return true;
  }
  return false;
}

std::size_t ShardedTaskQueue::SizeForTest() const {
  std::size_t total = 0;
  for (int s = 0; s < num_shards_; ++s) {
    MutexLock lock(shards_[s].mutex);
    total += shards_[s].tasks.size();
  }
  return total;
}

StatusOr<uint32_t> ProbeSliceCount(uint64_t partition_size, uint64_t avg,
                                   uint32_t skew_factor,
                                   uint32_t max_slices) {
  if (skew_factor == 0) return uint32_t{1};
  MMJOIN_CHECK(avg >= 1);
  MMJOIN_CHECK(max_slices >= 1);
  if (avg > UINT64_MAX / skew_factor) {
    return InvalidArgumentError(
        "skew threshold overflows uint64: avg partition size " +
        std::to_string(avg) + " * skew_task_factor " +
        std::to_string(skew_factor));
  }
  const uint64_t threshold = avg * skew_factor;
  if (partition_size <= threshold) return uint32_t{1};
  // CeilDiv cannot overflow (partition_size > threshold >= 1), but the
  // result may exceed what a JoinTask can carry -- clamp to the explicit
  // cap instead of the historical silent uint32_t truncation.
  const uint64_t slices = (partition_size + threshold - 1) / threshold;
  return static_cast<uint32_t>(
      std::min<uint64_t>(slices, std::min<uint64_t>(max_slices,
                                                    partition_size)));
}

StatusOr<SkewTaskList> BuildSkewTasks(
    const std::vector<uint64_t>& probe_partition_sizes,
    const std::vector<uint32_t>& order, uint32_t skew_factor,
    uint64_t probe_size, uint32_t max_slices) {
  const uint64_t num_partitions = probe_partition_sizes.size();
  MMJOIN_CHECK(order.size() == num_partitions);
  const uint64_t avg =
      std::max<uint64_t>(probe_size / std::max<uint64_t>(num_partitions, 1),
                         1);
  SkewTaskList list;
  list.consume_order.reserve(order.size());
  for (const uint32_t p : order) {
    MMJOIN_ASSIGN_OR_RETURN(
        const uint32_t slices,
        ProbeSliceCount(probe_partition_sizes[p], avg, skew_factor,
                        max_slices));
    if (slices > 1) {
      list.skew_slices += slices - 1;
      ++list.skew_partitions;
      list.skewed_partitions.push_back(p);
    }
    for (uint32_t s = 0; s < slices; ++s) {
      list.consume_order.push_back(JoinTask{p, s, slices});
    }
  }
  std::sort(list.skewed_partitions.begin(), list.skewed_partitions.end());
  return list;
}

std::vector<uint32_t> SequentialOrder(uint32_t num_partitions) {
  std::vector<uint32_t> order(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) order[p] = p;
  return order;
}

std::vector<uint32_t> RoundRobinNodeOrder(uint32_t num_partitions,
                                          int num_nodes) {
  MMJOIN_CHECK(num_nodes >= 1);
  const uint32_t nodes = static_cast<uint32_t>(num_nodes);
  const uint32_t block = (num_partitions + nodes - 1) / nodes;

  std::vector<uint32_t> order;
  order.reserve(num_partitions);
  for (uint32_t offset = 0; offset < block; ++offset) {
    for (uint32_t node = 0; node < nodes; ++node) {
      const uint32_t partition = node * block + offset;
      if (partition < num_partitions) order.push_back(partition);
    }
  }
  MMJOIN_CHECK(order.size() == num_partitions);
  return order;
}

std::vector<JoinTask> TasksFromOrder(
    const std::vector<uint32_t>& consume_order) {
  // The queue is a stack, so seed it in reverse consumption order.
  std::vector<JoinTask> tasks;
  tasks.reserve(consume_order.size());
  for (auto it = consume_order.rbegin(); it != consume_order.rend(); ++it) {
    tasks.push_back(JoinTask{*it});
  }
  return tasks;
}

}  // namespace mmjoin::thread
