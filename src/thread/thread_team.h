// Synchronization barrier, chunk partitioning, and the legacy fork/join
// RunTeam entry point.
//
// Every join algorithm in the paper is a sequence of parallel phases
// separated by barriers (histogram -> scatter -> build -> probe). Parallel
// phases run on a persistent worker pool (thread/executor.h); RunTeam
// remains as a thin compatibility shim that dispatches on the process-wide
// pool, so out-of-tree callers keep working without per-call thread spawns.

#ifndef MMJOIN_THREAD_THREAD_TEAM_H_
#define MMJOIN_THREAD_THREAD_TEAM_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "obs/trace.h"
#include "util/annotations.h"
#include "util/macros.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace mmjoin::thread {

// Summed nanoseconds every Barrier in the process spent blocking threads
// (populated only while observability is enabled). Feeds the `executor.*`
// metrics provider; covers executor team barriers and standalone barriers
// alike.
std::atomic<uint64_t>& ProcessBarrierWaitNs();

// Reusable cyclic barrier (std::barrier-equivalent; kept self-contained so
// the whole library builds with partial C++20 standard libraries).
//
// When observability is on, each arrival's blocked time is emitted as a
// `barrier.wait` trace span and accumulated into the optional wait
// accumulator (the executor points it at its barrier_wait_ns stat); when
// off, the only extra cost is one predicted branch per arrival.
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties) {
    MMJOIN_CHECK(parties >= 1);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  // Process-lifetime accumulator receiving the summed nanoseconds threads
  // spent blocked in ArriveAndWait. May be null (no accounting).
  void set_wait_accumulator(std::atomic<uint64_t>* accumulator) {
    wait_ns_ = accumulator;
  }

  void ArriveAndWait() {
    if (MMJOIN_UNLIKELY(obs::Enabled())) {
      const int64_t start = NowNanos();
      ArriveAndWaitImpl();
      const int64_t end = NowNanos();
      const auto waited = static_cast<uint64_t>(end - start);
      if (wait_ns_ != nullptr) {
        wait_ns_->fetch_add(waited, std::memory_order_relaxed);
      }
      ProcessBarrierWaitNs().fetch_add(waited, std::memory_order_relaxed);
      obs::TraceRecorder::Get().Record("barrier.wait", obs::SpanKind::kBarrier,
                                       start, end);
      return;
    }
    ArriveAndWaitImpl();
  }

 private:
  void ArriveAndWaitImpl() {
    MutexLock lock(mutex_);
    const uint64_t generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.NotifyAll();
      return;
    }
    while (generation_ == generation) cv_.Wait(mutex_);
  }

  const int parties_;
  Mutex mutex_;
  CondVar cv_;
  int arrived_ MMJOIN_GUARDED_BY(mutex_) = 0;
  uint64_t generation_ MMJOIN_GUARDED_BY(mutex_) = 0;
  std::atomic<uint64_t>* wait_ns_ = nullptr;
};

// Compatibility shim: runs `fn(thread_id)` on `num_threads` workers of the
// process-wide persistent pool (thread::GlobalExecutor()) and blocks until
// every worker finished. No OS threads are spawned per call; prefer
// Executor::Dispatch for new code (it also hands out the team barrier and
// the thread's NUMA node).
void RunTeam(int num_threads, const std::function<void(int)>& fn);

// Splits [0, total) into `num_threads` near-equal contiguous chunks and
// returns [begin, end) for `thread_id`. All algorithms use this for the
// "assign equal-sized regions (chunks) to each thread" step.
struct Range {
  std::size_t begin;
  std::size_t end;
  std::size_t size() const { return end - begin; }
};

inline Range ChunkRange(std::size_t total, int num_threads, int thread_id) {
  const std::size_t base = total / num_threads;
  const std::size_t extra = total % num_threads;
  const auto tid = static_cast<std::size_t>(thread_id);
  const std::size_t begin = tid * base + std::min<std::size_t>(tid, extra);
  const std::size_t size = base + (tid < extra ? 1 : 0);
  return Range{begin, begin + size};
}

}  // namespace mmjoin::thread

#endif  // MMJOIN_THREAD_THREAD_TEAM_H_
