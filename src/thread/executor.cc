#include "thread/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/timer.h"

namespace mmjoin::thread {

namespace {

// Process-wide aggregates over every Executor (the global pool plus any
// core::Joiner-owned pools), so one metrics provider covers them all
// without forcing the global executor into existence.
struct ProcessPoolStats {
  std::atomic<uint64_t> threads_spawned{0};
  std::atomic<uint64_t> dispatches{0};
  std::atomic<uint64_t> idle_ns{0};
};

ProcessPoolStats& GlobalPoolStats() {
  static ProcessPoolStats* stats = new ProcessPoolStats();
  return *stats;
}

const obs::MetricsProviderRegistration kExecutorProvider(
    "executor", [](std::vector<obs::Metric>* metrics) {
      const ProcessPoolStats& stats = GlobalPoolStats();
      metrics->push_back(obs::Metric{
          "executor.threads_spawned",
          stats.threads_spawned.load(std::memory_order_relaxed)});
      metrics->push_back(obs::Metric{
          "executor.dispatches",
          stats.dispatches.load(std::memory_order_relaxed)});
      metrics->push_back(obs::Metric{
          "executor.barrier_wait_ns",
          ProcessBarrierWaitNs().load(std::memory_order_relaxed)});
      metrics->push_back(obs::Metric{
          "executor.idle_ns", stats.idle_ns.load(std::memory_order_relaxed)});
    });

}  // namespace

Executor::Executor(int num_threads, int num_nodes)
    : default_team_(num_threads),
      topology_(num_nodes),
      join_queue_(std::make_unique<ShardedTaskQueue>(num_nodes)) {
  MMJOIN_CHECK(num_threads >= 1);
  if (const char* env = std::getenv("MMJOIN_DISPATCH_TIMEOUT_MS")) {
    char* end = nullptr;
    const long long ms = std::strtoll(env, &end, 10);
    if (end != nullptr && *end == '\0' && ms >= 0) {
      watchdog_timeout_ms_.store(ms, std::memory_order_relaxed);
    }
  }
  MutexLock lock(mutex_);
  EnsureWorkersLocked(num_threads);
}

Executor::~Executor() {
  // Move the threads out under the lock, then join unlocked (joining under
  // mutex_ would deadlock: workers take it to observe stop_ and exit).
  std::vector<std::thread> workers;
  {
    MutexLock lock(mutex_);
    stop_ = true;
    workers.swap(workers_);
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers) worker.join();
}

void Executor::EnsureWorkersLocked(int count) {
  const int have = static_cast<int>(workers_.size());
  for (int tid = have; tid < count; ++tid) {
    // New workers start at the current epoch so they sleep until the next
    // dispatch instead of re-running the previous one.
    workers_.emplace_back(&Executor::WorkerLoop, this, tid, epoch_);
    ++threads_spawned_;
    GlobalPoolStats().threads_spawned.fetch_add(1, std::memory_order_relaxed);
  }
}

void Executor::WorkerLoop(int thread_id, uint64_t spawn_epoch) {
  // Trace spans this thread emits (phase scopes inside join closures, idle
  // and task spans here) attribute to the stable pool thread id.
  obs::SetCurrentThreadId(thread_id);
  uint64_t seen = spawn_epoch;
  for (;;) {
    mutex_.Lock();
    // Idle accounting: timed only while observability is on, so the default
    // path costs one predicted branch per epoch.
    if (MMJOIN_UNLIKELY(obs::Enabled())) {
      const int64_t idle_start = NowNanos();
      while (!stop_ && epoch_ == seen) work_cv_.Wait(mutex_);
      const int64_t idle_end = NowNanos();
      idle_ns_.fetch_add(static_cast<uint64_t>(idle_end - idle_start),
                         std::memory_order_relaxed);
      GlobalPoolStats().idle_ns.fetch_add(
          static_cast<uint64_t>(idle_end - idle_start),
          std::memory_order_relaxed);
      obs::TraceRecorder::Get().Record("executor.idle", obs::SpanKind::kIdle,
                                       idle_start, idle_end);
    } else {
      while (!stop_ && epoch_ == seen) work_cv_.Wait(mutex_);
    }
    if (stop_) {
      mutex_.Unlock();
      return;
    }
    seen = epoch_;
    if (thread_id >= team_size_) {  // sitting this epoch out
      mutex_.Unlock();
      continue;
    }

    // Own a reference: a watchdog-timed-out Dispatch may return (and its
    // caller destroy the original closure) while this worker still runs.
    const auto task = task_;
    WorkerContext ctx;
    ctx.thread_id = thread_id;
    ctx.num_threads = team_size_;
    ctx.node = topology_.NodeOfThread(thread_id, team_size_);
    ctx.barrier = barrier_.get();
    ctx.executor = this;
    mutex_.Unlock();

    {
      obs::ObsScope task_scope("executor.task", obs::SpanKind::kDispatch);
      (*task)(ctx);
    }

    mutex_.Lock();
    if (--remaining_ == 0) done_cv_.NotifyAll();
    mutex_.Unlock();
  }
}

Status Executor::Dispatch(
    int team_size, const std::function<void(const WorkerContext&)>& fn) {
  MMJOIN_CHECK(team_size >= 1);
  MutexLock dispatch_lock(dispatch_mutex_);
  if (poisoned_.load(std::memory_order_relaxed)) {
    return FailedPreconditionError(
        "executor poisoned by an earlier dispatch timeout; refusing work");
  }
  MutexLock lock(mutex_);
  EnsureWorkersLocked(team_size);
  if (barrier_parties_ != team_size) {
    barrier_ = std::make_unique<Barrier>(team_size);
    barrier_->set_wait_accumulator(&barrier_wait_ns_);
    barrier_parties_ = team_size;
  }
  task_ = std::make_shared<const std::function<void(const WorkerContext&)>>(fn);
  team_size_ = team_size;
  remaining_ = team_size;
  const uint64_t this_epoch = ++epoch_;
  ++dispatches_;
  GlobalPoolStats().dispatches.fetch_add(1, std::memory_order_relaxed);
  max_team_size_ = std::max<uint64_t>(max_team_size_, team_size);
  work_cv_.NotifyAll();

  const int64_t timeout_ms =
      watchdog_timeout_ms_.load(std::memory_order_relaxed);
  if (timeout_ms <= 0) {
    while (remaining_ != 0) done_cv_.Wait(mutex_);
    task_.reset();
    return OkStatus();
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (remaining_ != 0) {
    if (!done_cv_.WaitUntil(mutex_, deadline)) break;
  }
  if (remaining_ == 0) {
    task_.reset();
    return OkStatus();
  }

  // Watchdog fired: a worker is stuck (most likely a barrier some thread
  // never reached). Dump what we know, poison the executor so no later
  // dispatch corrupts remaining_, and surface the failure to the caller.
  // The stuck workers keep their shared_ptr copy of the task.
  MMJOIN_LOG(kError, "executor.watchdog")
      .Field("epoch", static_cast<uint64_t>(this_epoch))
      .Field("timeout_ms", static_cast<int64_t>(timeout_ms))
      .Field("team_size", team_size_)
      .Field("remaining", remaining_)
      .Field("pool", static_cast<uint64_t>(workers_.size()))
      .Field("action", "executor poisoned");
  poisoned_.store(true, std::memory_order_relaxed);
  return DeadlineExceededError(
      "executor dispatch did not finish within " +
      std::to_string(timeout_ms) + " ms (" + std::to_string(remaining_) +
      " of " + std::to_string(team_size_) + " workers still running)");
}

Status Executor::ParallelFor(
    int team_size, std::size_t total,
    const std::function<void(std::size_t, std::size_t, const WorkerContext&)>&
        fn) {
  if (total == 0) return OkStatus();
  return Dispatch(team_size, [total, &fn](const WorkerContext& ctx) {
    const Range range = ChunkRange(total, ctx.num_threads, ctx.thread_id);
    if (range.begin < range.end) fn(range.begin, range.end, ctx);
  });
}

bool Executor::IsIdle() const {
  MutexLock lock(mutex_);
  return remaining_ == 0;
}

int Executor::pool_size() const {
  MutexLock lock(mutex_);
  return static_cast<int>(workers_.size());
}

ExecutorStats Executor::stats() const {
  MutexLock lock(mutex_);
  ExecutorStats stats;
  stats.threads_spawned = threads_spawned_;
  stats.dispatches = dispatches_;
  stats.max_team_size = max_team_size_;
  stats.barrier_wait_ns = barrier_wait_ns_.load(std::memory_order_relaxed);
  stats.idle_ns = idle_ns_.load(std::memory_order_relaxed);
  return stats;
}

Executor& GlobalExecutor() {
  // Intentionally leaked: workers must outlive every static that might run a
  // team during its destructor, and the OS reclaims them at process exit.
  static Executor* global = new Executor(/*num_threads=*/1);
  return *global;
}

}  // namespace mmjoin::thread
