// Array join table (paper Section 5.2).
//
// For dense, unique key domains (auto-increment primary keys) the hash table
// degenerates to a plain array: the key is the index, the cell stores the
// payload. A validity bitmap distinguishes empty cells (payloads may take
// any value, and the domain may contain holes -- Appendix C). Used by NOPA
// (global array, concurrent build) and PRA/CPRA (per-partition arrays,
// serial build, keys shifted right by the radix bits).

#ifndef MMJOIN_HASH_ARRAY_TABLE_H_
#define MMJOIN_HASH_ARRAY_TABLE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "numa/system.h"
#include "util/bits.h"
#include "util/macros.h"
#include "util/types.h"

namespace mmjoin::hash {

class ArrayTable {
 public:
  // Holds keys whose value right-shifted by `key_shift` falls in
  // [0, domain_size). For the global NOPA table key_shift is 0 and
  // domain_size covers the whole key domain; for a radix partition p with B
  // radix bits, key_shift = B and domain_size = ceil(domain / 2^B).
  ArrayTable(numa::NumaSystem* system, uint64_t domain_size,
             uint32_t key_shift, numa::Placement placement, int home_node = 0)
      : key_shift_(key_shift),
        domain_size_(std::max<uint64_t>(domain_size, 1)),
        payloads_(system, domain_size_, placement, home_node),
        valid_(system, CeilDiv(domain_size_, 64), placement, home_node) {
    Clear();
  }

  ArrayTable(const ArrayTable&) = delete;
  ArrayTable& operator=(const ArrayTable&) = delete;

  void Clear() {
    for (uint64_t i = 0; i < valid_.size(); ++i) {
      valid_[i].store(0, std::memory_order_relaxed);
    }
  }

  // Shrinks the active domain for scratch reuse across join tasks.
  void Reset(uint64_t domain_size, uint32_t key_shift) {
    MMJOIN_CHECK(domain_size <= payloads_.size());
    domain_size_ = std::max<uint64_t>(domain_size, 1);
    key_shift_ = key_shift;
    const uint64_t words = CeilDiv(domain_size_, 64);
    for (uint64_t i = 0; i < words; ++i) {
      valid_[i].store(0, std::memory_order_relaxed);
    }
  }

  MMJOIN_ALWAYS_INLINE uint64_t IndexOf(uint32_t key) const {
    const uint64_t index = key >> key_shift_;
    MMJOIN_DCHECK(index < domain_size_);
    return index;
  }

  // Serial insert (per-partition arrays).
  MMJOIN_ALWAYS_INLINE void InsertSerial(Tuple t) {
    const uint64_t index = IndexOf(t.key);
    payloads_[index] = t.payload;
    valid_[index >> 6].store(
        valid_[index >> 6].load(std::memory_order_relaxed) |
            (uint64_t{1} << (index & 63)),
        std::memory_order_relaxed);
  }

  // Concurrent insert: distinct keys write distinct cells; only the bitmap
  // words are shared and use an atomic OR.
  MMJOIN_ALWAYS_INLINE void InsertConcurrent(Tuple t) {
    const uint64_t index = IndexOf(t.key);
    payloads_[index] = t.payload;
    valid_[index >> 6].fetch_or(uint64_t{1} << (index & 63),
                                std::memory_order_release);
  }

  template <typename Emit>
  MMJOIN_ALWAYS_INLINE uint64_t Probe(uint32_t key, Emit&& emit) const {
    const uint64_t index = key >> key_shift_;
    // Bounds check: probe keys outside the build domain are legitimate
    // (general foreign inputs) and simply miss.
    if (MMJOIN_UNLIKELY(index >= domain_size_)) return 0;
    if ((valid_[index >> 6].load(std::memory_order_acquire) &
         (uint64_t{1} << (index & 63))) == 0) {
      return 0;
    }
    emit(Tuple{key, payloads_[index]});
    return 1;
  }

  // Array cells hold at most one entry, so the unique probe is identical.
  template <typename Emit>
  MMJOIN_ALWAYS_INLINE uint64_t ProbeUnique(uint32_t key, Emit&& emit) const {
    return Probe(key, emit);
  }

  uint64_t domain_size() const { return domain_size_; }
  // Base address of the payload array (for NUMA traffic attribution).
  const void* raw_data() const { return payloads_.data(); }
  uint64_t memory_bytes() const {
    return payloads_.size() * sizeof(uint32_t) +
           valid_.size() * sizeof(uint64_t);
  }

 private:
  uint32_t key_shift_;
  uint64_t domain_size_;
  numa::NumaBuffer<uint32_t> payloads_;
  numa::NumaBuffer<std::atomic<uint64_t>> valid_;
};

}  // namespace mmjoin::hash

#endif  // MMJOIN_HASH_ARRAY_TABLE_H_
