// Lock-free linear probing hash table (the NOP table of Lang et al.,
// IMDM 2013, paper Section 3.2).
//
// Slots are single 64-bit words packing <key, payload>; concurrent inserts
// claim an empty slot with one compare-and-swap of the whole word (Lang CAS
// the key and then wrote the payload separately; a whole-slot CAS is the
// same protocol with the two steps fused, since slots are never overwritten
// or removed). Build keys need not be unique: duplicates occupy separate
// slots and probes scan to the first empty slot.

#ifndef MMJOIN_HASH_LINEAR_PROBING_TABLE_H_
#define MMJOIN_HASH_LINEAR_PROBING_TABLE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "hash/hash_functions.h"
#include "mem/aligned_alloc.h"
#include "numa/system.h"
#include "util/bits.h"
#include "util/macros.h"
#include "util/types.h"

namespace mmjoin::hash {

inline constexpr uint64_t kEmptySlot = PackTuple(Tuple{kEmptyKey, 0});

template <typename Hash = IdentityHash>
class LinearProbingTable {
 public:
  // Table for up to `expected_tuples` entries at load factor <= 0.5 (the
  // standard choice for linear probing; Lang et al. size the global NOP
  // table the same way). Memory comes from `system` with `placement` --
  // interleaved across all nodes for the global NOP table, node-local for
  // per-partition tables.
  LinearProbingTable(numa::NumaSystem* system, uint64_t expected_tuples,
                     numa::Placement placement, int home_node = 0,
                     Hash hasher = Hash{})
      : hasher_(hasher),
        capacity_(NextPowerOfTwo(std::max<uint64_t>(expected_tuples * 2, 16))),
        mask_(capacity_ - 1),
        slots_(system, capacity_, placement, home_node) {
    Clear();
  }

  // Non-copyable (owns NUMA memory).
  LinearProbingTable(const LinearProbingTable&) = delete;
  LinearProbingTable& operator=(const LinearProbingTable&) = delete;

  void Clear() {
    for (uint64_t i = 0; i < capacity_; ++i) {
      slots_[i].store(kEmptySlot, std::memory_order_relaxed);
    }
  }

  // Shrinks the active table to fit `expected_tuples` (load factor <= 0.5)
  // and clears it. Lets per-thread scratch tables be reused across join
  // tasks without reallocating: partition joins size the scratch for the
  // largest partition and Reset() per co-partition.
  void Reset(uint64_t expected_tuples) {
    const uint64_t wanted =
        NextPowerOfTwo(std::max<uint64_t>(expected_tuples * 2, 16));
    MMJOIN_CHECK(wanted <= slots_.size());
    capacity_ = wanted;
    mask_ = capacity_ - 1;
    Clear();
  }

  // Thread-safe insert (lock-free, CAS loop over probe sequence).
  MMJOIN_ALWAYS_INLINE void InsertConcurrent(Tuple t) {
    MMJOIN_DCHECK(t.key != kEmptyKey);
    const uint64_t packed = PackTuple(t);
    uint64_t slot = hasher_(t.key) & mask_;
    while (true) {
      uint64_t expected = kEmptySlot;
      if (slots_[slot].load(std::memory_order_relaxed) == kEmptySlot &&
          slots_[slot].compare_exchange_strong(expected, packed,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {
        return;
      }
      slot = (slot + 1) & mask_;
    }
  }

  // Single-threaded insert (per-partition builds in PRL/CPRL).
  MMJOIN_ALWAYS_INLINE void InsertSerial(Tuple t) {
    MMJOIN_DCHECK(t.key != kEmptyKey);
    uint64_t slot = hasher_(t.key) & mask_;
    while (slots_[slot].load(std::memory_order_relaxed) != kEmptySlot) {
      slot = (slot + 1) & mask_;
    }
    slots_[slot].store(PackTuple(t), std::memory_order_relaxed);
  }

  // Calls `emit(build_tuple)` for every entry whose key equals `key`.
  // Returns the number of matches. Scans to the first empty slot, the
  // correct semantics when build keys may repeat.
  template <typename Emit>
  MMJOIN_ALWAYS_INLINE uint64_t Probe(uint32_t key, Emit&& emit) const {
    uint64_t matches = 0;
    uint64_t slot = hasher_(key) & mask_;
    while (true) {
      const uint64_t packed = slots_[slot].load(std::memory_order_acquire);
      if (packed == kEmptySlot) return matches;
      const Tuple t = UnpackTuple(packed);
      if (t.key == key) {
        emit(t);
        ++matches;
      }
      slot = (slot + 1) & mask_;
    }
  }

  // Probe for unique (primary-key) build sides: stops at the first match.
  // This is the variant the NOP literature uses -- with the identity hash on
  // a dense key domain the table is one contiguous occupied cluster, so
  // scanning to the next empty slot would degenerate to O(n) per probe.
  template <typename Emit>
  MMJOIN_ALWAYS_INLINE uint64_t ProbeUnique(uint32_t key, Emit&& emit) const {
    uint64_t slot = hasher_(key) & mask_;
    while (true) {
      const uint64_t packed = slots_[slot].load(std::memory_order_acquire);
      if (packed == kEmptySlot) return 0;
      const Tuple t = UnpackTuple(packed);
      if (t.key == key) {
        emit(t);
        return 1;
      }
      slot = (slot + 1) & mask_;
    }
  }

  uint64_t capacity() const { return capacity_; }
  uint64_t memory_bytes() const { return capacity_ * sizeof(uint64_t); }
  // Base address of the slot array (for NUMA traffic attribution).
  const void* raw_data() const { return slots_.data(); }

 private:
  Hash hasher_;
  uint64_t capacity_;
  uint64_t mask_;
  numa::NumaBuffer<std::atomic<uint64_t>> slots_;
};

}  // namespace mmjoin::hash

#endif  // MMJOIN_HASH_LINEAR_PROBING_TABLE_H_
