#include "hash/concise_table.h"

#include <algorithm>

namespace mmjoin::hash {

ConciseHashTable::ConciseHashTable(numa::NumaSystem* system,
                                   uint64_t num_tuples,
                                   numa::Placement placement, int home_node,
                                   IdentityHash hasher)
    : hasher_(hasher),
      num_tuples_(num_tuples),
      num_buckets_(NextPowerOfTwo(std::max<uint64_t>(num_tuples * 8, 64))),
      bucket_mask_(num_buckets_ - 1),
      groups_(system, num_buckets_ / 64, placement, home_node),
      array_(system, std::max<uint64_t>(num_tuples, 1), placement,
             home_node) {
  for (auto& group : groups_) {
    group.bits = 0;
    group.prefix = 0;
  }
}

ConciseHashTable::BuildRegion ConciseHashTable::RegionForThread(
    int tid, int num_threads) const {
  const uint64_t num_groups = num_buckets_ / 64;
  const uint64_t per_thread = CeilDiv(num_groups, num_threads);
  const uint64_t begin_group =
      std::min<uint64_t>(per_thread * tid, num_groups);
  const uint64_t end_group =
      std::min<uint64_t>(begin_group + per_thread, num_groups);
  return BuildRegion{begin_group * 64, end_group * 64};
}

void ConciseHashTable::MarkBits(ConstTupleSpan tuples, BuildRegion region,
                                uint64_t* bucket_of,
                                std::vector<Tuple>* overflow) {
  const bool full_range =
      region.begin_bucket == 0 && region.end_bucket == num_buckets_;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    const Tuple t = tuples[i];
    const uint64_t h = hasher_(t.key) & bucket_mask_;
    MMJOIN_DCHECK(h >= region.begin_bucket && h < region.end_bucket);
    bucket_of[i] = kOverflowBucket;
    for (int j = 0; j < kProbeThreshold; ++j) {
      uint64_t bucket = h + j;
      if (full_range) {
        bucket &= bucket_mask_;
      } else if (bucket >= region.end_bucket) {
        // The probe chain would cross into another thread's region; spill.
        break;
      }
      uint64_t& bits = groups_[bucket >> 6].bits;
      const uint64_t bit = uint64_t{1} << (bucket & 63);
      if ((bits & bit) == 0) {
        bits |= bit;
        bucket_of[i] = bucket;
        break;
      }
    }
    if (bucket_of[i] == kOverflowBucket) overflow->push_back(t);
  }
}

void ConciseHashTable::FinalizePrefix() {
  uint64_t running = 0;
  for (auto& group : groups_) {
    MMJOIN_CHECK(running <= 0xFFFFFFFFull);
    group.prefix = static_cast<uint32_t>(running);
    running += static_cast<uint64_t>(std::popcount(group.bits));
  }
  MMJOIN_CHECK(running <= num_tuples_);
}

void ConciseHashTable::SetOverflow(std::vector<Tuple> overflow) {
  overflow_.clear();
  overflow_.reserve(overflow.size());
  for (const Tuple t : overflow) overflow_.push_back(PackTuple(t));
  std::sort(overflow_.begin(), overflow_.end());
}

void ConciseHashTable::Place(ConstTupleSpan tuples,
                             const uint64_t* bucket_of) {
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    const uint64_t bucket = bucket_of[i];
    if (bucket == kOverflowBucket) continue;
    const Group& group = groups_[bucket >> 6];
    const uint64_t rank =
        group.prefix +
        PopcountBelow(group.bits, static_cast<uint32_t>(bucket & 63));
    MMJOIN_DCHECK(rank < array_.size());
    array_[rank] = tuples[i];
  }
}

void ConciseHashTable::BuildSerial(ConstTupleSpan tuples) {
  MMJOIN_CHECK(tuples.size() == num_tuples_);
  std::vector<uint64_t> bucket_of(tuples.size());
  std::vector<Tuple> overflow;
  MarkBits(tuples, BuildRegion{0, num_buckets_}, bucket_of.data(), &overflow);
  FinalizePrefix();
  SetOverflow(std::move(overflow));
  Place(tuples, bucket_of.data());
}

}  // namespace mmjoin::hash
