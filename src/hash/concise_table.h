// Concise Hash Table (CHT) of Barber et al., PVLDB 2014 (paper Section 3.2).
//
// A CHT is a bulk-loaded, read-only linear probing table that stores the n
// build tuples in a dense array (zero empty slots) and replaces the sparse
// slot directory with a bitmap of 8*n buckets plus interleaved prefix
// population counts. A lookup tests the bucket bit and, when set, computes
// the tuple's dense array position as the bitmap rank of the bucket.
// Insertions probe at most kProbeThreshold buckets before spilling to a
// small overflow table.
//
// The build is a three-phase protocol so CHTJ can load the table in parallel
// from hash-partitioned inputs, each thread owning a disjoint bucket region
// (no synchronization, paper Section 3.2):
//   1. MarkBits   (parallel over disjoint regions)
//   2. FinalizePrefix + SetOverflow (single-threaded, O(n/8))
//   3. Place      (parallel)

#ifndef MMJOIN_HASH_CONCISE_TABLE_H_
#define MMJOIN_HASH_CONCISE_TABLE_H_

#include <cstdint>
#include <vector>

#include "hash/hash_functions.h"
#include "numa/system.h"
#include "util/bits.h"
#include "util/macros.h"
#include "util/types.h"

namespace mmjoin::hash {

class ConciseHashTable {
 public:
  static constexpr int kProbeThreshold = 2;
  static constexpr uint64_t kOverflowBucket = ~uint64_t{0};

  // 64 bitmap bits + their prefix rank, physically interleaved like the
  // paper's CHT.
  struct Group {
    uint64_t bits;
    uint32_t prefix;  // number of set bits in all preceding groups
    uint32_t unused;
  };
  static_assert(sizeof(Group) == 16);

  struct BuildRegion {
    uint64_t begin_bucket;  // multiples of 64 (group-aligned)
    uint64_t end_bucket;
  };

  // Table for exactly `num_tuples` build tuples; bucket count is the next
  // power of two of 8 * num_tuples.
  ConciseHashTable(numa::NumaSystem* system, uint64_t num_tuples,
                   numa::Placement placement, int home_node = 0,
                   IdentityHash hasher = IdentityHash{});

  ConciseHashTable(const ConciseHashTable&) = delete;
  ConciseHashTable& operator=(const ConciseHashTable&) = delete;

  uint64_t num_buckets() const { return num_buckets_; }
  uint64_t num_tuples() const { return num_tuples_; }

  // Group-aligned bucket region for thread `tid` of `num_threads`.
  BuildRegion RegionForThread(int tid, int num_threads) const;

  // Phase 1. Marks bitmap bits for `tuples`, all of which must hash into
  // `region` (CHTJ pre-partitions by hash prefix to guarantee this). Writes
  // the chosen bucket of tuple i into bucket_of[i] (kOverflowBucket when the
  // probe chain left the region or exceeded the threshold; those tuples are
  // appended to `overflow`). Thread-safe across disjoint regions.
  void MarkBits(ConstTupleSpan tuples, BuildRegion region,
                uint64_t* bucket_of, std::vector<Tuple>* overflow);

  // Phase 2a. Computes prefix ranks; single-threaded.
  void FinalizePrefix();

  // Phase 2b. Installs the merged overflow tuples (sorted internally).
  void SetOverflow(std::vector<Tuple> overflow);

  // Phase 3. Writes each tuple to its dense-array position. Thread-safe:
  // ranks are unique per bucket.
  void Place(ConstTupleSpan tuples, const uint64_t* bucket_of);

  // Convenience single-threaded build over the full bucket range.
  void BuildSerial(ConstTupleSpan tuples);

  // Calls `emit(build_tuple)` for each match; returns the match count.
  template <typename Emit>
  MMJOIN_ALWAYS_INLINE uint64_t Probe(uint32_t key, Emit&& emit) const {
    uint64_t matches = 0;
    const uint64_t h = hasher_(key) & bucket_mask_;
    for (int j = 0; j < kProbeThreshold; ++j) {
      const uint64_t bucket = (h + j) & bucket_mask_;
      const Group& group = groups_[bucket >> 6];
      const uint32_t offset = static_cast<uint32_t>(bucket & 63);
      if ((group.bits & (uint64_t{1} << offset)) == 0) {
        // Empty bucket terminates the probe chain: any tuple placed later in
        // the chain would have found this bucket free at insert time.
        break;
      }
      const uint64_t rank = group.prefix + PopcountBelow(group.bits, offset);
      const Tuple t = array_[rank];
      if (t.key == key) {
        emit(t);
        ++matches;
      }
    }
    if (MMJOIN_UNLIKELY(!overflow_.empty())) {
      matches += ProbeOverflow(key, emit);
    }
    return matches;
  }

  // Probe for unique build sides: stops at the first match; the overflow
  // table is consulted only when the bitmap chain had none.
  template <typename Emit>
  MMJOIN_ALWAYS_INLINE uint64_t ProbeUnique(uint32_t key, Emit&& emit) const {
    const uint64_t h = hasher_(key) & bucket_mask_;
    for (int j = 0; j < kProbeThreshold; ++j) {
      const uint64_t bucket = (h + j) & bucket_mask_;
      const Group& group = groups_[bucket >> 6];
      const uint32_t offset = static_cast<uint32_t>(bucket & 63);
      if ((group.bits & (uint64_t{1} << offset)) == 0) break;
      const uint64_t rank = group.prefix + PopcountBelow(group.bits, offset);
      const Tuple t = array_[rank];
      if (t.key == key) {
        emit(t);
        return 1;
      }
    }
    if (MMJOIN_UNLIKELY(!overflow_.empty())) {
      uint64_t found = 0;
      ProbeOverflow(key, [&](Tuple t) {
        if (found == 0) emit(t);
        ++found;
      });
      return found != 0 ? 1 : 0;
    }
    return 0;
  }

  uint64_t overflow_size() const { return overflow_.size(); }
  uint64_t memory_bytes() const {
    return groups_.size() * sizeof(Group) + array_.size() * sizeof(Tuple) +
           overflow_.size() * sizeof(uint64_t);
  }

 private:
  template <typename Emit>
  uint64_t ProbeOverflow(uint32_t key, Emit&& emit) const {
    // `overflow_` holds PackTuple values sorted by key (key in high bits):
    // binary search the first candidate, then scan.
    uint64_t matches = 0;
    const uint64_t lo = PackTuple(Tuple{key, 0});
    std::size_t left = 0, right = overflow_.size();
    while (left < right) {
      const std::size_t mid = (left + right) / 2;
      if (overflow_[mid] < lo) {
        left = mid + 1;
      } else {
        right = mid;
      }
    }
    for (std::size_t i = left; i < overflow_.size(); ++i) {
      const Tuple t = UnpackTuple(overflow_[i]);
      if (t.key != key) break;
      emit(t);
      ++matches;
    }
    return matches;
  }

  IdentityHash hasher_;
  uint64_t num_tuples_;
  uint64_t num_buckets_;
  uint64_t bucket_mask_;
  numa::NumaBuffer<Group> groups_;
  numa::NumaBuffer<Tuple> array_;
  std::vector<uint64_t> overflow_;  // packed tuples, sorted by key
};

}  // namespace mmjoin::hash

#endif  // MMJOIN_HASH_CONCISE_TABLE_H_
