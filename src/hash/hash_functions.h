// Hash functions for the join hash tables.
//
// Following the paper (Section 7.1), the default throughout the study is the
// identity function modulo table size: build keys are dense primary keys, so
// identity is both collision-free and free to compute. The partition-based
// joins hash *within* a radix partition, where all keys share their low
// radix bits -- there the bucket index must drop those bits first
// (RadixShiftHash), exactly as in Balkesen et al.'s radix join code.
// Murmur/CRC/Fibonacci variants are provided for the micro-benchmarks and
// for non-dense domains.

#ifndef MMJOIN_HASH_HASH_FUNCTIONS_H_
#define MMJOIN_HASH_HASH_FUNCTIONS_H_

#include <cstdint>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

#include "util/macros.h"

namespace mmjoin::hash {

// key -> bucket source bits; the table masks the result by its (power of
// two) size.
struct IdentityHash {
  MMJOIN_ALWAYS_INLINE uint32_t operator()(uint32_t key) const { return key; }
};

// Drops the low `shift` bits (the radix partition number) before hashing by
// identity. With dense keys, keys inside partition p are {k : k mod P == p},
// so k >> log2(P) is again dense.
struct RadixShiftHash {
  uint32_t shift = 0;
  MMJOIN_ALWAYS_INLINE uint32_t operator()(uint32_t key) const {
    return key >> shift;
  }
};

// Murmur3 32-bit finalizer: full avalanche, used for skewed/sparse domains.
struct MurmurHash {
  MMJOIN_ALWAYS_INLINE uint32_t operator()(uint32_t key) const {
    uint32_t h = key;
    h ^= h >> 16;
    h *= 0x85EBCA6Bu;
    h ^= h >> 13;
    h *= 0xC2B2AE35u;
    h ^= h >> 16;
    return h;
  }
};

// Fibonacci (multiplicative) hashing.
struct FibonacciHash {
  MMJOIN_ALWAYS_INLINE uint32_t operator()(uint32_t key) const {
    return static_cast<uint32_t>((key * 11400714819323198485ull) >> 32);
  }
};

// Hardware CRC32C when available, Murmur fallback otherwise.
struct Crc32Hash {
  MMJOIN_ALWAYS_INLINE uint32_t operator()(uint32_t key) const {
#if defined(__SSE4_2__)
    return _mm_crc32_u32(0xDEADBEEFu, key);
#else
    return MurmurHash{}(key);
#endif
  }
};

}  // namespace mmjoin::hash

#endif  // MMJOIN_HASH_HASH_FUNCTIONS_H_
