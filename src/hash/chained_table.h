// Cache-conscious bucket-chained hash table (the PRB/PRO table of Balkesen
// et al., ICDE 2013, paper Section 3.1).
//
// Buckets are 32-byte records holding up to two tuples inline, a chain
// pointer, and an in-bucket latch byte -- the "single array for both locks
// and tuples, no head pointers" layout that made Balkesen's reimplementation
// of Blanas' NOP cache-efficient. Overflow buckets come from a bump
// allocator so chains stay pointer-stable. Per-partition builds are
// single-threaded (InsertSerial); the latch path supports concurrent builds
// for completeness and tests.

#ifndef MMJOIN_HASH_CHAINED_TABLE_H_
#define MMJOIN_HASH_CHAINED_TABLE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "hash/hash_functions.h"
#include "numa/system.h"
#include "util/bits.h"
#include "util/macros.h"
#include "util/types.h"

namespace mmjoin::hash {

template <typename Hash = IdentityHash>
class ChainedHashTable {
 public:
  struct Bucket {
    std::atomic<uint8_t> latch;
    uint8_t count;
    uint8_t padding[6];
    Tuple tuples[2];
    Bucket* next;
  };
  static_assert(sizeof(Bucket) == 32, "two buckets per cache line");

  // Sized for `expected_tuples` at ~2 tuples per bucket (Balkesen's
  // default). Overflow pool worst-cases at expected_tuples/2 extra buckets.
  ChainedHashTable(numa::NumaSystem* system, uint64_t expected_tuples,
                   numa::Placement placement, int home_node = 0,
                   Hash hasher = Hash{})
      : hasher_(hasher),
        num_buckets_(
            NextPowerOfTwo(std::max<uint64_t>(CeilDiv(expected_tuples, 2), 8))),
        mask_(num_buckets_ - 1),
        buckets_(system, num_buckets_, placement, home_node),
        overflow_(system, CeilDiv(expected_tuples, 2) + 1, placement,
                  home_node) {
    Clear();
  }

  ChainedHashTable(const ChainedHashTable&) = delete;
  ChainedHashTable& operator=(const ChainedHashTable&) = delete;

  void Clear() {
    for (uint64_t i = 0; i < num_buckets_; ++i) {
      buckets_[i].latch.store(0, std::memory_order_relaxed);
      buckets_[i].count = 0;
      buckets_[i].next = nullptr;
    }
    overflow_used_.store(0, std::memory_order_relaxed);
  }

  // Shrinks the active directory to fit `expected_tuples` and clears it
  // (scratch-table reuse across join tasks).
  void Reset(uint64_t expected_tuples) {
    const uint64_t wanted =
        NextPowerOfTwo(std::max<uint64_t>(CeilDiv(expected_tuples, 2), 8));
    MMJOIN_CHECK(wanted <= buckets_.size());
    MMJOIN_CHECK(CeilDiv(expected_tuples, 2) + 1 <= overflow_.size());
    num_buckets_ = wanted;
    mask_ = num_buckets_ - 1;
    Clear();
  }

  // Single-threaded insert.
  MMJOIN_ALWAYS_INLINE void InsertSerial(Tuple t) {
    Bucket* bucket = &buckets_[hasher_(t.key) & mask_];
    while (bucket->count == 2) {
      if (bucket->next == nullptr) {
        bucket->next = AllocateOverflow();
      }
      bucket = bucket->next;
    }
    bucket->tuples[bucket->count++] = t;
  }

  // Thread-safe insert: spin on the head bucket's latch byte.
  void InsertConcurrent(Tuple t) {
    Bucket* head = &buckets_[hasher_(t.key) & mask_];
    Lock(head);
    Bucket* bucket = head;
    while (bucket->count == 2) {
      if (bucket->next == nullptr) bucket->next = AllocateOverflow();
      bucket = bucket->next;
    }
    bucket->tuples[bucket->count] = t;
    // Publish the tuple before the count so concurrent probes never read a
    // half-written slot.
    std::atomic_thread_fence(std::memory_order_release);
    bucket->count++;
    Unlock(head);
  }

  template <typename Emit>
  MMJOIN_ALWAYS_INLINE uint64_t Probe(uint32_t key, Emit&& emit) const {
    uint64_t matches = 0;
    const Bucket* bucket = &buckets_[hasher_(key) & mask_];
    do {
      const int count = bucket->count;
      for (int i = 0; i < count; ++i) {
        if (bucket->tuples[i].key == key) {
          emit(bucket->tuples[i]);
          ++matches;
        }
      }
      bucket = bucket->next;
    } while (bucket != nullptr);
    return matches;
  }

  // Probe for unique (primary-key) build sides: stops at the first match.
  template <typename Emit>
  MMJOIN_ALWAYS_INLINE uint64_t ProbeUnique(uint32_t key, Emit&& emit) const {
    const Bucket* bucket = &buckets_[hasher_(key) & mask_];
    do {
      const int count = bucket->count;
      for (int i = 0; i < count; ++i) {
        if (bucket->tuples[i].key == key) {
          emit(bucket->tuples[i]);
          return 1;
        }
      }
      bucket = bucket->next;
    } while (bucket != nullptr);
    return 0;
  }

  uint64_t num_buckets() const { return num_buckets_; }
  // Base address of the bucket array (for NUMA traffic attribution).
  const void* raw_data() const { return buckets_.data(); }
  uint64_t overflow_buckets_used() const {
    return overflow_used_.load(std::memory_order_relaxed);
  }
  uint64_t memory_bytes() const {
    return (num_buckets_ + overflow_.size()) * sizeof(Bucket);
  }

 private:
  Bucket* AllocateOverflow() {
    const uint64_t index =
        overflow_used_.fetch_add(1, std::memory_order_relaxed);
    MMJOIN_CHECK(index < overflow_.size());
    Bucket* bucket = &overflow_[index];
    bucket->count = 0;
    bucket->next = nullptr;
    return bucket;
  }

  static void Lock(Bucket* bucket) {
    uint8_t expected = 0;
    while (!bucket->latch.compare_exchange_weak(expected, 1,
                                                std::memory_order_acquire,
                                                std::memory_order_relaxed)) {
      expected = 0;
    }
  }
  static void Unlock(Bucket* bucket) {
    bucket->latch.store(0, std::memory_order_release);
  }

  Hash hasher_;
  uint64_t num_buckets_;
  uint64_t mask_;
  numa::NumaBuffer<Bucket> buckets_;
  numa::NumaBuffer<Bucket> overflow_;
  std::atomic<uint64_t> overflow_used_{0};
};

}  // namespace mmjoin::hash

#endif  // MMJOIN_HASH_CHAINED_TABLE_H_
