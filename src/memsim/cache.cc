#include "memsim/cache.h"

#include "util/types.h"

namespace mmjoin::memsim {

SetAssociativeCache::SetAssociativeCache(uint64_t size_bytes, uint32_t ways,
                                         uint32_t line_bytes)
    : size_bytes_(size_bytes), ways_(ways), line_bytes_(line_bytes) {
  MMJOIN_CHECK(ways >= 1);
  MMJOIN_CHECK(IsPowerOfTwo(line_bytes));
  num_sets_ = size_bytes / (static_cast<uint64_t>(ways) * line_bytes);
  if (num_sets_ == 0) num_sets_ = 1;
  // Round sets down to a power of two for cheap indexing (matches real
  // hardware organizations for all configs we use).
  num_sets_ = uint64_t{1} << FloorLog2(num_sets_);
  set_shift_ = FloorLog2(num_sets_);
  entries_.assign(num_sets_ * ways_, Way{});
}

void SetAssociativeCache::Install(uint64_t addr) {
  const uint64_t line = addr / line_bytes_;
  const uint64_t set = line & (num_sets_ - 1);
  const uint64_t tag = line >> set_shift_;
  Way* set_ways = &entries_[set * ways_];
  ++tick_;
  uint32_t victim = 0;
  uint64_t oldest = ~uint64_t{0};
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set_ways[w].tag == tag) {
      set_ways[w].last_use = tick_;
      return;
    }
    if (set_ways[w].last_use < oldest) {
      oldest = set_ways[w].last_use;
      victim = w;
    }
  }
  set_ways[victim].tag = tag;
  set_ways[victim].last_use = tick_;
}

bool SetAssociativeCache::Access(uint64_t addr) {
  const uint64_t line = addr / line_bytes_;
  const uint64_t set = line & (num_sets_ - 1);
  const uint64_t tag = line >> set_shift_;
  Way* set_ways = &entries_[set * ways_];
  ++tick_;

  uint32_t victim = 0;
  uint64_t oldest = ~uint64_t{0};
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set_ways[w].tag == tag) {
      set_ways[w].last_use = tick_;
      ++stats_.hits;
      return true;
    }
    if (set_ways[w].last_use < oldest) {
      oldest = set_ways[w].last_use;
      victim = w;
    }
  }
  set_ways[victim].tag = tag;
  set_ways[victim].last_use = tick_;
  ++stats_.misses;
  return false;
}

void SetAssociativeCache::Reset() {
  entries_.assign(entries_.size(), Way{});
  stats_ = AccessStats{};
  tick_ = 0;
}

Tlb::Tlb(uint32_t entries, uint64_t page_bytes)
    : num_entries_(entries), page_bytes_(page_bytes) {
  MMJOIN_CHECK(entries >= 1);
  entries_.assign(entries, Entry{});
}

bool Tlb::Access(uint64_t addr) {
  const uint64_t page = addr / page_bytes_;
  ++tick_;
  // MRU shortcut: sequential streams hit the same page repeatedly.
  if (entries_[mru_].page == page) {
    entries_[mru_].last_use = tick_;
    ++stats_.hits;
    return true;
  }
  uint32_t victim = 0;
  uint64_t oldest = ~uint64_t{0};
  for (uint32_t e = 0; e < num_entries_; ++e) {
    if (entries_[e].page == page) {
      entries_[e].last_use = tick_;
      mru_ = e;
      ++stats_.hits;
      return true;
    }
    if (entries_[e].last_use < oldest) {
      oldest = entries_[e].last_use;
      victim = e;
    }
  }
  entries_[victim].page = page;
  entries_[victim].last_use = tick_;
  mru_ = victim;
  ++stats_.misses;
  return false;
}

void Tlb::Reset() {
  entries_.assign(entries_.size(), Entry{});
  stats_ = AccessStats{};
  tick_ = 0;
  mru_ = 0;
}

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config)
    : config_(config),
      l1_(config.l1_bytes, config.l1_ways),
      l2_(config.l2_bytes, config.l2_ways),
      llc_(config.llc_bytes, config.llc_ways),
      tlb_(config.tlb_entries, config.page_bytes),
      stream_last_line_(config.prefetch_streams, ~uint64_t{0}) {}

void MemoryHierarchy::MaybePrefetch(uint64_t line) {
  if (config_.prefetch_streams == 0) return;
  // MRU tracker shortcut (dominant case: one hot sequential stream).
  {
    const uint64_t last = stream_last_line_[stream_mru_];
    if (line > last && line - last <= 2) {
      stream_last_line_[stream_mru_] = line;
      for (uint32_t d = 1; d <= config_.prefetch_degree; ++d) {
        const uint64_t ahead = (line + d) * kCacheLineSize;
        l1_.Install(ahead);
        l2_.Install(ahead);
        llc_.Install(ahead);
      }
      return;
    }
  }
  // Ascending-stream detection: a hit on tracker t (line follows the
  // tracked stream) advances the stream and pulls lines ahead into the
  // whole hierarchy; otherwise the access starts a new stream, evicting
  // trackers round-robin.
  for (uint32_t t = 0; t < config_.prefetch_streams; ++t) {
    const uint64_t last = stream_last_line_[t];
    if (line > last && line - last <= 2) {
      stream_last_line_[t] = line;
      stream_mru_ = t;
      for (uint32_t d = 1; d <= config_.prefetch_degree; ++d) {
        const uint64_t ahead = (line + d) * kCacheLineSize;
        l1_.Install(ahead);
        l2_.Install(ahead);
        llc_.Install(ahead);
      }
      return;
    }
  }
  stream_last_line_[stream_cursor_] = line;
  stream_cursor_ = (stream_cursor_ + 1) % config_.prefetch_streams;
}

void MemoryHierarchy::Access(uint64_t addr) {
  tlb_.Access(addr);
  MaybePrefetch(addr / kCacheLineSize);
  if (l1_.Access(addr)) return;
  if (l2_.Access(addr)) return;
  llc_.Access(addr);
}

void MemoryHierarchy::AccessNonTemporal(uint64_t addr) { tlb_.Access(addr); }

}  // namespace mmjoin::memsim
