#include "memsim/replay.h"

#include <algorithm>
#include <vector>

#include "util/bits.h"
#include "util/rng.h"
#include "util/types.h"

namespace mmjoin::memsim {
namespace {

// Disjoint synthetic address regions.
constexpr uint64_t kInputBase = uint64_t{1} << 40;
constexpr uint64_t kOutputBase = uint64_t{2} << 40;
constexpr uint64_t kTableBase = uint64_t{3} << 40;
constexpr uint64_t kBitmapBase = uint64_t{4} << 40;
constexpr uint64_t kBufferBase = uint64_t{5} << 40;
constexpr uint64_t kScratchBase = uint64_t{6} << 40;

constexpr uint64_t kTupleBytes = 8;

PhaseReport Snapshot(const MemoryHierarchy& hierarchy) {
  PhaseReport report;
  report.l1 = hierarchy.l1();
  report.l2 = hierarchy.l2();
  report.llc = hierarchy.llc();
  report.tlb = hierarchy.tlb();
  report.ops = hierarchy.tlb().total();  // every replayed op consults the TLB
  return report;
}

// Bytes one table entry occupies, for sizing the random-access region.
uint64_t TableBytesPerTuple(TableLayout layout) {
  switch (layout) {
    case TableLayout::kChained:
      return 16;  // 32 B bucket / 2 tuples
    case TableLayout::kLinear:
      return 16;  // 8 B slot at load factor 0.5
    case TableLayout::kArray:
      return 4;
    case TableLayout::kCht:
      return 8;  // dense tuple array; bitmap modelled separately
  }
  return 16;
}

// One table operation (insert or lookup) at a random position.
void TableOp(MemoryHierarchy* hierarchy, Rng* rng, TableLayout layout,
             uint64_t table_base, uint64_t table_entries) {
  const uint64_t index = rng->NextBelow(table_entries);
  switch (layout) {
    case TableLayout::kChained:
    case TableLayout::kLinear:
      hierarchy->Access(table_base + index * TableBytesPerTuple(layout));
      break;
    case TableLayout::kArray:
      hierarchy->Access(table_base + index * 4);
      // Validity bitmap: 1 bit per entry.
      hierarchy->Access(kBitmapBase + index / 8);
      break;
    case TableLayout::kCht:
      // Bitmap+prefix groups: 16 B per 64 buckets at 8 buckets/tuple = 2 B
      // per tuple; then the dependent dense-array access.
      hierarchy->Access(kBitmapBase + index * 2);
      hierarchy->Access(table_base + index * 8);
      break;
  }
}

}  // namespace

PhaseReport& PhaseReport::operator+=(const PhaseReport& other) {
  ops += other.ops;
  l1.hits += other.l1.hits;
  l1.misses += other.l1.misses;
  l2.hits += other.l2.hits;
  l2.misses += other.l2.misses;
  llc.hits += other.llc.hits;
  llc.misses += other.llc.misses;
  tlb.hits += other.tlb.hits;
  tlb.misses += other.tlb.misses;
  return *this;
}

PhaseReport ReplaySequentialScan(const HierarchyConfig& config,
                                 uint64_t tuples) {
  MemoryHierarchy hierarchy(config);
  for (uint64_t i = 0; i < tuples; ++i) {
    hierarchy.Access(kInputBase + i * kTupleBytes);
  }
  return Snapshot(hierarchy);
}

PhaseReport ReplayScatter(const HierarchyConfig& config, uint64_t tuples,
                          uint32_t partitions, bool swwcb, uint64_t seed) {
  MemoryHierarchy hierarchy(config);
  Rng rng(seed);
  const uint64_t partition_bytes =
      CeilDiv(tuples, partitions) * kTupleBytes;
  std::vector<uint64_t> cursor(partitions, 0);

  // Histogram pass: sequential read of the input.
  for (uint64_t i = 0; i < tuples; ++i) {
    hierarchy.Access(kInputBase + i * kTupleBytes);
  }
  // Scatter pass: sequential re-read + partition writes.
  for (uint64_t i = 0; i < tuples; ++i) {
    hierarchy.Access(kInputBase + i * kTupleBytes);
    const uint64_t p = rng.NextBelow(partitions);
    const uint64_t dst =
        kOutputBase + p * partition_bytes + cursor[p] * kTupleBytes;
    ++cursor[p];
    if (!swwcb) {
      hierarchy.Access(dst);
    } else {
      // Staged write into the per-partition cache-line buffer; every 8th
      // tuple streams the full line out, bypassing the caches.
      hierarchy.Access(kBufferBase + p * kCacheLineSize);
      if (cursor[p] % kTuplesPerCacheLine == 0) {
        hierarchy.AccessNonTemporal(dst);
      }
    }
  }
  return Snapshot(hierarchy);
}

PhaseReport ReplayGlobalBuild(const HierarchyConfig& config,
                              uint64_t build_tuples, TableLayout layout,
                              uint64_t seed) {
  MemoryHierarchy hierarchy(config);
  Rng rng(seed);
  for (uint64_t i = 0; i < build_tuples; ++i) {
    hierarchy.Access(kInputBase + i * kTupleBytes);  // read R sequentially
    TableOp(&hierarchy, &rng, layout, kTableBase, build_tuples);
  }
  return Snapshot(hierarchy);
}

PhaseReport ReplayGlobalProbe(const HierarchyConfig& config,
                              uint64_t probe_tuples, uint64_t build_tuples,
                              TableLayout layout, uint64_t seed) {
  MemoryHierarchy hierarchy(config);
  Rng rng(seed);
  for (uint64_t i = 0; i < probe_tuples; ++i) {
    hierarchy.Access(kInputBase + i * kTupleBytes);  // read S sequentially
    TableOp(&hierarchy, &rng, layout, kTableBase, build_tuples);
  }
  return Snapshot(hierarchy);
}

PhaseReport ReplayPartitionedJoin(const HierarchyConfig& config,
                                  uint64_t build_tuples,
                                  uint64_t probe_tuples, uint32_t partitions,
                                  TableLayout layout, uint64_t seed) {
  MemoryHierarchy hierarchy(config);
  Rng rng(seed);
  const uint64_t build_per_part =
      std::max<uint64_t>(build_tuples / partitions, 1);
  const uint64_t probe_per_part =
      std::max<uint64_t>(probe_tuples / partitions, 1);
  const uint64_t r_part_bytes = build_per_part * kTupleBytes;
  const uint64_t s_part_bytes = probe_per_part * kTupleBytes;

  for (uint32_t p = 0; p < partitions; ++p) {
    // Build a fresh (scratch, reused address range) per-partition table.
    for (uint64_t i = 0; i < build_per_part; ++i) {
      hierarchy.Access(kOutputBase + p * r_part_bytes + i * kTupleBytes);
      TableOp(&hierarchy, &rng, layout, kTableBase, build_per_part);
    }
    // Probe this co-partition.
    for (uint64_t i = 0; i < probe_per_part; ++i) {
      hierarchy.Access(kScratchBase + p * s_part_bytes + i * kTupleBytes);
      TableOp(&hierarchy, &rng, layout, kTableBase, build_per_part);
    }
  }
  return Snapshot(hierarchy);
}

PhaseReport ReplaySortPhase(const HierarchyConfig& config, uint64_t tuples,
                            uint64_t run_tuples) {
  MemoryHierarchy hierarchy(config);
  // Run generation: log2(run) passes over each run-sized block (modelled as
  // read+write sweeps that stay run-local).
  const uint32_t passes = CeilLog2(std::max<uint64_t>(run_tuples, 2));
  for (uint64_t run_begin = 0; run_begin < tuples; run_begin += run_tuples) {
    const uint64_t run_end = std::min(run_begin + run_tuples, tuples);
    for (uint32_t pass = 0; pass < passes; ++pass) {
      for (uint64_t i = run_begin; i < run_end; ++i) {
        hierarchy.Access(kInputBase + i * kTupleBytes);
        hierarchy.Access(kScratchBase + i * kTupleBytes);
      }
    }
  }
  // One multiway merge pass over everything.
  for (uint64_t i = 0; i < tuples; ++i) {
    hierarchy.Access(kInputBase + i * kTupleBytes);
    hierarchy.Access(kOutputBase + i * kTupleBytes);
  }
  return Snapshot(hierarchy);
}

}  // namespace mmjoin::memsim
