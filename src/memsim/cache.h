// Software cache and TLB models.
//
// The paper measures cache misses and TLB behaviour with hardware counters
// (Table 4) and explains the page-size results (Section 7.2) through TLB
// reach. This host exposes no such counters, so we model them: set-
// associative LRU caches and a fully-associative LRU TLB with configurable
// page size, replaying the memory access streams of each join phase
// (see replay.h). Capacities default to the paper's machine.

#ifndef MMJOIN_MEMSIM_CACHE_H_
#define MMJOIN_MEMSIM_CACHE_H_

#include <cstdint>
#include <vector>

#include "util/bits.h"
#include "util/macros.h"

namespace mmjoin::memsim {

struct AccessStats {
  uint64_t hits = 0;
  uint64_t misses = 0;

  uint64_t total() const { return hits + misses; }
  double hit_rate() const {
    return total() == 0 ? 0.0 : static_cast<double>(hits) / total();
  }
  double miss_rate() const { return total() == 0 ? 0.0 : 1.0 - hit_rate(); }
};

// Set-associative cache with true-LRU replacement.
class SetAssociativeCache {
 public:
  SetAssociativeCache(uint64_t size_bytes, uint32_t ways,
                      uint32_t line_bytes = 64);

  // Touches the line containing `addr`; returns true on hit. On miss the
  // line is installed (allocate-on-miss for reads and writes alike).
  bool Access(uint64_t addr);

  // Installs the line without counting a demand hit/miss (prefetches).
  void Install(uint64_t addr);

  // Invalidate-free "bypass": non-temporal stores do not allocate.
  void Reset();

  const AccessStats& stats() const { return stats_; }
  uint64_t size_bytes() const { return size_bytes_; }

 private:
  struct Way {
    uint64_t tag = ~uint64_t{0};
    uint64_t last_use = 0;
  };

  uint64_t size_bytes_;
  uint32_t ways_;
  uint32_t line_bytes_;
  uint64_t num_sets_;
  uint32_t set_shift_ = 0;
  uint64_t tick_ = 0;
  std::vector<Way> entries_;  // num_sets_ * ways_
  AccessStats stats_;
};

// Fully-associative LRU TLB.
class Tlb {
 public:
  Tlb(uint32_t entries, uint64_t page_bytes);

  bool Access(uint64_t addr);
  void Reset();

  const AccessStats& stats() const { return stats_; }
  uint64_t page_bytes() const { return page_bytes_; }
  uint32_t entries() const { return num_entries_; }

 private:
  struct Entry {
    uint64_t page = ~uint64_t{0};
    uint64_t last_use = 0;
  };

  uint32_t num_entries_;
  uint64_t page_bytes_;
  uint64_t tick_ = 0;
  uint32_t mru_ = 0;
  std::vector<Entry> entries_;
  AccessStats stats_;
};

// Three-level hierarchy + TLB, modelled after the paper machine: 32 KB/8-way
// L1D, 256 KB/8-way L2, 30 MB/20-way shared LLC; 256 TLB entries with 4 KB
// pages, 32 with 2 MB pages (Section 7.1).
struct HierarchyConfig {
  uint64_t l1_bytes = 32 * 1024;
  uint32_t l1_ways = 8;
  uint64_t l2_bytes = 256 * 1024;
  uint32_t l2_ways = 8;
  uint64_t llc_bytes = 30ull * 1024 * 1024;
  uint32_t llc_ways = 20;
  uint64_t page_bytes = 2 * 1024 * 1024;
  uint32_t tlb_entries = 32;  // 256 for 4 KB pages, 32 for 2 MB pages
  // Hardware stream prefetcher: sequential streams are detected and the
  // next `prefetch_degree` lines installed ahead, so streaming scans cause
  // few demand misses (as on real CPUs). 0 disables.
  uint32_t prefetch_streams = 16;
  uint32_t prefetch_degree = 8;

  static HierarchyConfig SmallPages() {
    HierarchyConfig config;
    config.page_bytes = 4 * 1024;
    config.tlb_entries = 256;
    return config;
  }
  static HierarchyConfig HugePages() { return HierarchyConfig{}; }
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& config);

  // Regular load/store of the line containing addr.
  void Access(uint64_t addr);
  // Non-temporal store: consults the TLB but bypasses all cache levels.
  void AccessNonTemporal(uint64_t addr);

  const AccessStats& l1() const { return l1_.stats(); }
  const AccessStats& l2() const { return l2_.stats(); }
  const AccessStats& llc() const { return llc_.stats(); }
  const AccessStats& tlb() const { return tlb_.stats(); }
  const HierarchyConfig& config() const { return config_; }

 private:
  void MaybePrefetch(uint64_t line);

  HierarchyConfig config_;
  SetAssociativeCache l1_;
  SetAssociativeCache l2_;
  SetAssociativeCache llc_;
  Tlb tlb_;
  std::vector<uint64_t> stream_last_line_;
  uint32_t stream_cursor_ = 0;
  uint32_t stream_mru_ = 0;
};

}  // namespace mmjoin::memsim

#endif  // MMJOIN_MEMSIM_CACHE_H_
