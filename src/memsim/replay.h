// Join-phase access-stream replayers.
//
// Each function replays the memory access pattern of one join phase through
// a fresh MemoryHierarchy and returns its hit/miss profile. The benchmark
// harness composes them per algorithm to reproduce the paper's
// micro-architectural analysis (Table 4) and the page-size study (Figure 8)
// without hardware counters: miss *ratios* depend only on the access
// pattern, which these streams model faithfully (sequential scans,
// SWWCB-buffered vs. direct scatter, global vs. cache-sized hash tables,
// CHT's two dependent lookups, array tables' single lookup).

#ifndef MMJOIN_MEMSIM_REPLAY_H_
#define MMJOIN_MEMSIM_REPLAY_H_

#include <cstdint>

#include "memsim/cache.h"

namespace mmjoin::memsim {

struct PhaseReport {
  AccessStats l1;
  AccessStats l2;
  AccessStats llc;
  AccessStats tlb;
  // Logical memory operations replayed -- the analogue of Table 4's
  // "instructions retired" column (partition-based joins execute more
  // operations but hit caches; the ratio ops/misses drives their higher
  // IPC).
  uint64_t ops = 0;

  PhaseReport& operator+=(const PhaseReport& other);
};

// Table flavours, with their per-entry footprint in the replayed streams.
enum class TableLayout {
  kChained,  // 32 B buckets, ~2 tuples/bucket: 1 random line per operation
  kLinear,   // 8 B slots at load 0.5: 1 random line per operation
  kArray,    // 4 B payload + bitmap: 1 random line (+1 bitmap line) per op
  kCht,      // bitmap group + dense array: 2 dependent random lines per op
};

// Sequential read of `tuples` 8-byte tuples (histogram pass, chunk scan).
PhaseReport ReplaySequentialScan(const HierarchyConfig& config,
                                 uint64_t tuples);

// Radix scatter of `tuples` into `partitions` output partitions.
// swwcb=false: every tuple writes directly to a random partition cursor
// (PRB). swwcb=true: tuples write to per-partition cache-line buffers and
// full lines stream out with non-temporal stores (PRO and later).
PhaseReport ReplayScatter(const HierarchyConfig& config, uint64_t tuples,
                          uint32_t partitions, bool swwcb, uint64_t seed);

// Concurrent build of one global table of `build_tuples` (NOP/NOPA/CHTJ).
PhaseReport ReplayGlobalBuild(const HierarchyConfig& config,
                              uint64_t build_tuples, TableLayout layout,
                              uint64_t seed);

// Probe of `probe_tuples` random keys against the global table.
PhaseReport ReplayGlobalProbe(const HierarchyConfig& config,
                              uint64_t probe_tuples, uint64_t build_tuples,
                              TableLayout layout, uint64_t seed);

// Join phase of a partition-based join: for each of `partitions`
// co-partitions, build a small table (build_tuples/partitions entries) and
// probe it with probe_tuples/partitions random keys. The table region is
// reused per partition, so whether it fits L2 emerges from the config.
PhaseReport ReplayPartitionedJoin(const HierarchyConfig& config,
                                  uint64_t build_tuples,
                                  uint64_t probe_tuples, uint32_t partitions,
                                  TableLayout layout, uint64_t seed);

// Sort phase of MWAY: run generation (sequential read/write per pass over
// run-sized blocks) + one multiway merge pass.
PhaseReport ReplaySortPhase(const HierarchyConfig& config, uint64_t tuples,
                            uint64_t run_tuples);

}  // namespace mmjoin::memsim

#endif  // MMJOIN_MEMSIM_REPLAY_H_
