// Deterministic pseudo-random number generation.
//
// All workload generators are seeded so every experiment is reproducible
// bit-for-bit. We use splitmix64 for seeding and xoshiro256** for the bulk
// stream; both are tiny, fast, and of well-understood quality.

#ifndef MMJOIN_UTIL_RNG_H_
#define MMJOIN_UTIL_RNG_H_

#include <cstdint>

#include "util/macros.h"

namespace mmjoin {

// splitmix64: used to expand a single 64-bit seed into generator state.
MMJOIN_ALWAYS_INLINE uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna (public domain).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Unbiased-enough uniform integer in [0, bound) via 128-bit multiply
  // (Lemire's method without the rejection step; bias < 2^-32 for the bounds
  // used in this project).
  uint64_t NextBelow(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static MMJOIN_ALWAYS_INLINE uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace mmjoin

#endif  // MMJOIN_UTIL_RNG_H_
