// Clang thread-safety (capability) annotation macros.
//
// Under Clang with -Wthread-safety these expand to the capability attributes
// documented at https://clang.llvm.org/docs/ThreadSafetyAnalysis.html, so
// lock-protected state is checked at compile time: a member declared
// MMJOIN_GUARDED_BY(mutex_) can only be touched while mutex_ is held, and a
// function declared MMJOIN_REQUIRES(mutex_) can only be called with it held.
// Under every other compiler (GCC builds the tree day to day) the macros
// expand to nothing and the annotations are pure documentation.
//
// The annotated lock types the analysis keys on live in util/mutex.h; the CI
// `static-analysis` job builds the tree with Clang and
// -Werror=thread-safety, so annotation violations fail the build. See
// docs/STATIC_ANALYSIS.md.

#ifndef MMJOIN_UTIL_ANNOTATIONS_H_
#define MMJOIN_UTIL_ANNOTATIONS_H_

#if defined(__clang__)
#define MMJOIN_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define MMJOIN_THREAD_ANNOTATION__(x)
#endif

// On a class: instances of this type are capabilities (lockable).
#define MMJOIN_CAPABILITY(x) MMJOIN_THREAD_ANNOTATION__(capability(x))

// On a class: RAII object that acquires a capability in its constructor and
// releases it in its destructor.
#define MMJOIN_SCOPED_CAPABILITY MMJOIN_THREAD_ANNOTATION__(scoped_lockable)

// On a data member: may only be read or written while the capability is held.
#define MMJOIN_GUARDED_BY(x) MMJOIN_THREAD_ANNOTATION__(guarded_by(x))

// On a pointer member: the pointee (not the pointer) is protected.
#define MMJOIN_PT_GUARDED_BY(x) MMJOIN_THREAD_ANNOTATION__(pt_guarded_by(x))

// On a function: callers must hold the capability (exclusively / shared).
#define MMJOIN_REQUIRES(...) \
  MMJOIN_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define MMJOIN_REQUIRES_SHARED(...) \
  MMJOIN_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

// On a function: acquires the capability (must not already be held).
#define MMJOIN_ACQUIRE(...) \
  MMJOIN_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define MMJOIN_ACQUIRE_SHARED(...) \
  MMJOIN_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

// On a function: releases the capability (must be held on entry).
#define MMJOIN_RELEASE(...) \
  MMJOIN_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define MMJOIN_RELEASE_SHARED(...) \
  MMJOIN_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

// On a function returning bool: acquires the capability when the return
// value equals the annotation's first argument.
#define MMJOIN_TRY_ACQUIRE(...) \
  MMJOIN_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

// On a function: the capability must NOT be held by the caller (deadlock
// documentation for non-reentrant locks).
#define MMJOIN_EXCLUDES(...) MMJOIN_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// On a function: asserts (at analysis level) that the capability is held.
#define MMJOIN_ASSERT_CAPABILITY(x) \
  MMJOIN_THREAD_ANNOTATION__(assert_capability(x))

// On a function returning a reference to a capability.
#define MMJOIN_RETURN_CAPABILITY(x) MMJOIN_THREAD_ANNOTATION__(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use must carry
// a comment explaining why the invariant cannot be expressed (the lint and
// reviewers treat bare uses as errors).
#define MMJOIN_NO_THREAD_SAFETY_ANALYSIS \
  MMJOIN_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // MMJOIN_UTIL_ANNOTATIONS_H_
