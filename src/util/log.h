// Structured, leveled event log for operational telemetry.
//
// Degradation events -- budget re-plans and spill waves, huge-page
// fallbacks, watchdog poisonings, failpoint fires -- used to go to stderr as
// ad-hoc fprintf lines. This logger gives them one shape: a level, a stable
// event name, and typed key=value fields, rendered either as a terse text
// line on stderr (the default, matching the old `[mmjoin] ...` style) or as
// JSON Lines when the MMJOIN_LOG_JSON environment variable names a sink
// ("-" or "stderr" for stderr, anything else a file path, opened append).
//
// Emission is two-stage: the event is formatted into a per-thread scratch
// buffer (no allocation after a thread's first event) and then written to
// the process sink as one line under a mutex. Log sites are degradation
// paths, not per-tuple paths, so a mutex at emission is deliberate -- the
// cheap part is the *disabled* check: MMJOIN_LOG expands to one relaxed
// atomic threshold load and a predicted branch when the level is filtered.
//
// Level threshold comes from MMJOIN_LOG_LEVEL (debug|info|warn|error|off,
// default info) and can be overridden programmatically. Suppressed and
// emitted events are counted; obs/metrics.cc exports them as the `log.*`
// counter family.
//
// Timestamps (`ts_ns` in the JSON form) are monotonic NowNanos() -- the same
// timebase as obs:: trace spans, so log events can be aligned with span
// timelines. They are not wall-clock epochs.

#ifndef MMJOIN_UTIL_LOG_H_
#define MMJOIN_UTIL_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace mmjoin::logging {

enum class LogLevel : uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  // threshold-only: no event carries this level
};
inline constexpr int kNumLogLevels = 4;

const char* LogLevelName(LogLevel level);  // "debug", "info", ...

// One relaxed atomic load + comparison; the MMJOIN_LOG fast path.
bool LogEnabled(LogLevel level);

void SetLogLevel(LogLevel level);
LogLevel GetLogLevelSetting();

struct LogStats {
  uint64_t emitted[kNumLogLevels] = {};  // indexed by LogLevel
  uint64_t suppressed = 0;               // filtered by the threshold

  uint64_t TotalEmitted() const {
    uint64_t total = 0;
    for (const uint64_t count : emitted) total += count;
    return total;
  }
};
LogStats GetLogStats();

// Builder for one event. Construct via MMJOIN_LOG (which applies the level
// filter first); fields append in call order; the destructor emits the
// completed line. One event per full-expression -- the builder borrows the
// calling thread's scratch buffer, so do not hold one across statements.
class LogEvent {
 public:
  LogEvent(LogLevel level, const char* event);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& Field(const char* key, std::string_view value);
  LogEvent& Field(const char* key, const char* value);
  LogEvent& Field(const char* key, const std::string& value);
  LogEvent& Field(const char* key, uint64_t value);
  LogEvent& Field(const char* key, int64_t value);
  LogEvent& Field(const char* key, uint32_t value);
  LogEvent& Field(const char* key, int value);
  LogEvent& Field(const char* key, double value);
  LogEvent& Field(const char* key, bool value);

 private:
  void BeginField(const char* key);

  LogLevel level_;
  std::string* buf_;  // thread-local scratch, cleared by the constructor
  bool json_;
};

// Appends `value` to `out` with JSON string escaping (quotes, backslash,
// control characters). Exposed for tests and for other JSON writers.
void AppendJsonEscaped(std::string* out, std::string_view value);

// --- Test hooks ----------------------------------------------------------
// Redirect emitted lines into `capture` (nullptr restores the real sink) and
// force the JSON/text format regardless of MMJOIN_LOG_JSON (kDefault reads
// the environment again). Tests must restore defaults before returning.
enum class LogFormat : uint8_t { kDefault, kText, kJson };
void SetLogCaptureForTest(std::string* capture);
void SetLogFormatForTest(LogFormat format);
void ResetLogStatsForTest();

}  // namespace mmjoin::logging

// Usage:
//   MMJOIN_LOG(kWarn, "budget.replan").Field("algo", name).Field("bits", b);
// When the level is filtered this is one relaxed load and a branch; the
// builder (and all field formatting) only exists on the emitting path.
#define MMJOIN_LOG(LEVEL, EVENT)                                            \
  if (!::mmjoin::logging::LogEnabled(::mmjoin::logging::LogLevel::LEVEL)) { \
  } else                                                                    \
    ::mmjoin::logging::LogEvent(::mmjoin::logging::LogLevel::LEVEL, EVENT)

#endif  // MMJOIN_UTIL_LOG_H_
