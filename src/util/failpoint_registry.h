// The single machine-readable registry of canonical failpoint names.
//
// Every MMJOIN_FAILPOINT("...") literal in src/ must name an entry here, and
// every entry must be documented in the failpoint table of
// docs/ROBUSTNESS.md -- the `registry-drift` rule of scripts/mmjoin_lint
// parses this X-macro and cross-checks all three sets on every CI run, so a
// failpoint cannot be added, renamed, or removed in one place only.
//
// Names with the `test.` prefix are reserved for ad-hoc failpoints created
// by tests; they are exempt from registration (both here and at runtime).
//
// Format rule for the lint parser: one `X("name")` per line, nothing else on
// the line except an optional trailing comment and the macro continuation.

#ifndef MMJOIN_UTIL_FAILPOINT_REGISTRY_H_
#define MMJOIN_UTIL_FAILPOINT_REGISTRY_H_

#include <string_view>

#define MMJOIN_FAILPOINT_REGISTRY(X) \
  X("alloc.partition")               \
  X("alloc.build")                   \
  X("alloc.probe")                   \
  X("alloc.materialize")             \
  X("alloc.mmap")                    \
  X("alloc.madvise_huge")            \
  X("budget.reserve")                \
  X("budget.wave")                   \
  X("obs.perf_open")

namespace mmjoin::failpoint {

inline constexpr std::string_view kRegisteredNames[] = {
#define MMJOIN_FAILPOINT_REGISTRY_ENTRY(name) name,
    MMJOIN_FAILPOINT_REGISTRY(MMJOIN_FAILPOINT_REGISTRY_ENTRY)
#undef MMJOIN_FAILPOINT_REGISTRY_ENTRY
};

// Reserved prefix for ad-hoc failpoints in tests; never registered.
inline constexpr std::string_view kTestNamePrefix = "test.";

// True when `name` is a canonical (registered) failpoint name.
constexpr bool IsCanonicalName(std::string_view name) {
  for (const std::string_view registered : kRegisteredNames) {
    if (registered == name) return true;
  }
  return false;
}

}  // namespace mmjoin::failpoint

#endif  // MMJOIN_UTIL_FAILPOINT_REGISTRY_H_
