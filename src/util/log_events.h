// The single machine-readable registry of structured-log event names.
//
// Every MMJOIN_LOG(LEVEL, "...") literal in src/ must name an entry here,
// and every entry must appear in the event table of docs/OBSERVABILITY.md --
// the `registry-drift` rule of scripts/mmjoin_lint parses this X-macro and
// cross-checks all three sets on every CI run. Event names are stable
// identifiers: dashboards and log pipelines key on them, so renaming one is
// a breaking change that must show up in review as a registry + doc edit.
//
// Format rule for the lint parser: one `X("name")` per line, nothing else on
// the line except an optional trailing comment and the macro continuation.

#ifndef MMJOIN_UTIL_LOG_EVENTS_H_
#define MMJOIN_UTIL_LOG_EVENTS_H_

#include <string_view>

#define MMJOIN_LOG_EVENT_REGISTRY(X)  \
  X("budget.replan")                  \
  X("budget.wave")                    \
  X("budget.reject")                  \
  X("mem.huge_fallback")              \
  X("numa.home_clamp")                \
  X("executor.watchdog")              \
  X("failpoint.hit")                  \
  X("failpoint.bad_spec")             \
  X("failpoint.unknown_name")         \
  X("joiner.invalid_options")         \
  X("join.failed")                    \
  X("stats_server.start")             \
  X("stats_server.stop")              \
  X("metrics.sigusr1_dump")           \
  X("metrics.sigusr1_dump_failed")    \
  X("metrics.sigusr1_dump_armed")     \
  X("service.admit")                  \
  X("service.reject")                 \
  X("service.complete")

namespace mmjoin::logging {

inline constexpr std::string_view kRegisteredEventNames[] = {
#define MMJOIN_LOG_EVENT_REGISTRY_ENTRY(name) name,
    MMJOIN_LOG_EVENT_REGISTRY(MMJOIN_LOG_EVENT_REGISTRY_ENTRY)
#undef MMJOIN_LOG_EVENT_REGISTRY_ENTRY
};

constexpr bool IsRegisteredEventName(std::string_view name) {
  for (const std::string_view registered : kRegisteredEventNames) {
    if (registered == name) return true;
  }
  return false;
}

}  // namespace mmjoin::logging

#endif  // MMJOIN_UTIL_LOG_EVENTS_H_
