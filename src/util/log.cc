#include "util/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "util/timer.h"

namespace mmjoin::logging {
namespace {

// Sink + format state. Written rarely (startup / test hooks), read under the
// mutex at emission; the hot-path threshold lives in its own atomic below.
struct LogSink {
  std::mutex mutex;
  FILE* file = nullptr;         // MMJOIN_GUARDED_BY(mutex); lazily resolved
  bool file_resolved = false;   // MMJOIN_GUARDED_BY(mutex)
  bool json = false;            // MMJOIN_GUARDED_BY(mutex)
  std::string json_path;        // MMJOIN_GUARDED_BY(mutex); from MMJOIN_LOG_JSON
  std::string* capture = nullptr;  // MMJOIN_GUARDED_BY(mutex); test override
  LogFormat format_override = LogFormat::kDefault;  // MMJOIN_GUARDED_BY(mutex)
};

LogSink& Sink() {
  static LogSink* sink = new LogSink;  // leaked: log sites run at exit
  return *sink;
}

LogLevel ParseLevel(const char* text, LogLevel fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  if (std::strcmp(text, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(text, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(text, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(text, "error") == 0) return LogLevel::kError;
  if (std::strcmp(text, "off") == 0) return LogLevel::kOff;
  return fallback;
}

uint8_t InitialLevel() {
  return static_cast<uint8_t>(
      ParseLevel(std::getenv("MMJOIN_LOG_LEVEL"), LogLevel::kInfo));
}

// The only state touched on the disabled path.
std::atomic<uint8_t>& Threshold() {
  static std::atomic<uint8_t> threshold{InitialLevel()};
  return threshold;
}

struct Counters {
  std::atomic<uint64_t> emitted[kNumLogLevels] = {};
  std::atomic<uint64_t> suppressed{0};
};

Counters& GetCounters() {
  static Counters* counters = new Counters;  // leaked
  return *counters;
}

// Scratch buffer reused by every event this thread emits.
std::string& ThreadScratch() {
  thread_local std::string scratch;
  return scratch;
}

// Resolves whether this process writes JSON lines and to where. Called and
// cached under the sink mutex.
void ResolveSinkLocked(LogSink& sink) {
  if (sink.file_resolved) return;
  sink.file_resolved = true;
  sink.file = stderr;
  const char* env = std::getenv("MMJOIN_LOG_JSON");
  if (env != nullptr && *env != '\0') {
    sink.json = true;
    if (std::strcmp(env, "-") != 0 && std::strcmp(env, "stderr") != 0) {
      sink.json_path = env;
      FILE* f = std::fopen(env, "a");
      if (f != nullptr) {
        sink.file = f;
      } else {
        std::fprintf(stderr, "[mmjoin] log: cannot open MMJOIN_LOG_JSON=%s; using stderr\n",
                     env);
      }
    }
  }
}

bool JsonFormatLocked(LogSink& sink) {
  switch (sink.format_override) {
    case LogFormat::kText:
      return false;
    case LogFormat::kJson:
      return true;
    case LogFormat::kDefault:
      break;
  }
  ResolveSinkLocked(sink);
  return sink.json;
}

void AppendU64(std::string* out, uint64_t value) {
  char digits[24];
  const int n = std::snprintf(digits, sizeof(digits), "%llu",
                              static_cast<unsigned long long>(value));
  out->append(digits, static_cast<size_t>(n));
}

void AppendI64(std::string* out, int64_t value) {
  char digits[24];
  const int n = std::snprintf(digits, sizeof(digits), "%lld",
                              static_cast<long long>(value));
  out->append(digits, static_cast<size_t>(n));
}

void AppendF64(std::string* out, double value) {
  char digits[48];
  const int n = std::snprintf(digits, sizeof(digits), "%.6g", value);
  out->append(digits, static_cast<size_t>(n));
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

bool LogEnabled(LogLevel level) {
  const uint8_t threshold = Threshold().load(std::memory_order_relaxed);
  if (static_cast<uint8_t>(level) >= threshold) return true;
  GetCounters().suppressed.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void SetLogLevel(LogLevel level) {
  Threshold().store(static_cast<uint8_t>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevelSetting() {
  return static_cast<LogLevel>(Threshold().load(std::memory_order_relaxed));
}

LogStats GetLogStats() {
  Counters& counters = GetCounters();
  LogStats stats;
  for (int i = 0; i < kNumLogLevels; ++i) {
    stats.emitted[i] = counters.emitted[i].load(std::memory_order_relaxed);
  }
  stats.suppressed = counters.suppressed.load(std::memory_order_relaxed);
  return stats;
}

void AppendJsonEscaped(std::string* out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(hex);
        } else {
          out->push_back(c);
        }
    }
  }
}

LogEvent::LogEvent(LogLevel level, const char* event) : level_(level) {
  buf_ = &ThreadScratch();
  buf_->clear();
  {
    LogSink& sink = Sink();
    std::lock_guard<std::mutex> lock(sink.mutex);
    json_ = JsonFormatLocked(sink);
  }
  if (json_) {
    buf_->append("{\"ts_ns\":");
    AppendU64(buf_, static_cast<uint64_t>(NowNanos()));
    buf_->append(",\"level\":\"");
    buf_->append(LogLevelName(level_));
    buf_->append("\",\"event\":\"");
    AppendJsonEscaped(buf_, event);
    buf_->push_back('"');
  } else {
    buf_->append("[mmjoin] ");
    // Single-letter level tag keeps the text lines greppable and narrow.
    buf_->push_back(
        static_cast<char>(std::toupper(LogLevelName(level_)[0])));
    buf_->push_back(' ');
    buf_->append(event);
  }
}

void LogEvent::BeginField(const char* key) {
  if (json_) {
    buf_->append(",\"");
    AppendJsonEscaped(buf_, key);
    buf_->append("\":");
  } else {
    buf_->push_back(' ');
    buf_->append(key);
    buf_->push_back('=');
  }
}

LogEvent& LogEvent::Field(const char* key, std::string_view value) {
  BeginField(key);
  if (json_) {
    buf_->push_back('"');
    AppendJsonEscaped(buf_, value);
    buf_->push_back('"');
  } else {
    buf_->append(value);
  }
  return *this;
}

LogEvent& LogEvent::Field(const char* key, const char* value) {
  return Field(key, std::string_view(value));
}

LogEvent& LogEvent::Field(const char* key, const std::string& value) {
  return Field(key, std::string_view(value));
}

LogEvent& LogEvent::Field(const char* key, uint64_t value) {
  BeginField(key);
  AppendU64(buf_, value);
  return *this;
}

LogEvent& LogEvent::Field(const char* key, int64_t value) {
  BeginField(key);
  AppendI64(buf_, value);
  return *this;
}

LogEvent& LogEvent::Field(const char* key, uint32_t value) {
  return Field(key, static_cast<uint64_t>(value));
}

LogEvent& LogEvent::Field(const char* key, int value) {
  return Field(key, static_cast<int64_t>(value));
}

LogEvent& LogEvent::Field(const char* key, double value) {
  BeginField(key);
  AppendF64(buf_, value);
  return *this;
}

LogEvent& LogEvent::Field(const char* key, bool value) {
  BeginField(key);
  buf_->append(value ? "true" : "false");
  return *this;
}

LogEvent::~LogEvent() {
  if (json_) buf_->push_back('}');
  buf_->push_back('\n');
  GetCounters()
      .emitted[static_cast<int>(level_)]
      .fetch_add(1, std::memory_order_relaxed);
  LogSink& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  if (sink.capture != nullptr) {
    sink.capture->append(*buf_);
    return;
  }
  ResolveSinkLocked(sink);
  std::fwrite(buf_->data(), 1, buf_->size(), sink.file);
  std::fflush(sink.file);
}

void SetLogCaptureForTest(std::string* capture) {
  LogSink& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  sink.capture = capture;
}

void SetLogFormatForTest(LogFormat format) {
  LogSink& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  sink.format_override = format;
}

void ResetLogStatsForTest() {
  Counters& counters = GetCounters();
  for (int i = 0; i < kNumLogLevels; ++i) {
    counters.emitted[i].store(0, std::memory_order_relaxed);
  }
  counters.suppressed.store(0, std::memory_order_relaxed);
}

}  // namespace mmjoin::logging
