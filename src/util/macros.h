// Fatal-check macros used throughout mmjoin.
//
// The library follows the convention of database kernels (and the Google C++
// style guide): no exceptions on hot paths. Invariant violations are
// programming errors and abort with a message; recoverable conditions are
// expressed through return values.

#ifndef MMJOIN_UTIL_MACROS_H_
#define MMJOIN_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

namespace mmjoin {

[[noreturn]] inline void FatalError(const char* file, int line,
                                    const char* condition) {
  std::fprintf(stderr, "[mmjoin] FATAL %s:%d: check failed: %s\n", file, line,
               condition);
  std::abort();
}

}  // namespace mmjoin

// Always-on invariant check (also in release builds); joins silently
// producing wrong results are worse than aborting.
#define MMJOIN_CHECK(cond)                             \
  do {                                                 \
    if (!(cond)) {                                     \
      ::mmjoin::FatalError(__FILE__, __LINE__, #cond); \
    }                                                  \
  } while (0)

// Debug-only check for per-tuple hot paths.
#ifdef NDEBUG
#define MMJOIN_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define MMJOIN_DCHECK(cond) MMJOIN_CHECK(cond)
#endif

#if defined(__GNUC__) || defined(__clang__)
#define MMJOIN_LIKELY(x) __builtin_expect(!!(x), 1)
#define MMJOIN_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define MMJOIN_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define MMJOIN_LIKELY(x) (x)
#define MMJOIN_UNLIKELY(x) (x)
#define MMJOIN_ALWAYS_INLINE inline
#endif

#endif  // MMJOIN_UTIL_MACROS_H_
