#include "util/cli.h"

#include <cstdlib>
#include <cstring>

#include "util/macros.h"

namespace mmjoin {

CommandLine::CommandLine(int argc, char** argv, bool lenient) {
  program_name_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    std::string body = arg + 2;
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_.push_back(Flag{body.substr(0, eq), body.substr(eq + 1)});
      continue;
    }
    // "--flag value" form: consume the next token if it is not a flag.
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags_.push_back(Flag{body, argv[i + 1]});
      ++i;
    } else {
      flags_.push_back(Flag{body, ""});
    }
  }
  (void)lenient;  // All lookups are by-name; unknown flags only matter if a
                  // binary chooses to enumerate them, which none do today.
}

const CommandLine::Flag* CommandLine::Find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

bool CommandLine::Has(const std::string& name) const {
  return Find(name) != nullptr;
}

int64_t CommandLine::GetInt(const std::string& name, int64_t def) const {
  const Flag* flag = Find(name);
  if (flag == nullptr) return def;
  char* end = nullptr;
  const int64_t value = std::strtoll(flag->value.c_str(), &end, 0);
  MMJOIN_CHECK(end != nullptr && *end == '\0' && !flag->value.empty());
  return value;
}

double CommandLine::GetDouble(const std::string& name, double def) const {
  const Flag* flag = Find(name);
  if (flag == nullptr) return def;
  char* end = nullptr;
  const double value = std::strtod(flag->value.c_str(), &end);
  MMJOIN_CHECK(end != nullptr && *end == '\0' && !flag->value.empty());
  return value;
}

bool CommandLine::GetBool(const std::string& name, bool def) const {
  const Flag* flag = Find(name);
  if (flag == nullptr) return def;
  if (flag->value.empty() || flag->value == "true" || flag->value == "1") {
    return true;
  }
  if (flag->value == "false" || flag->value == "0") return false;
  MMJOIN_CHECK(false && "boolean flag expects true/false/1/0");
  return def;
}

std::string CommandLine::GetString(const std::string& name,
                                   const std::string& def) const {
  const Flag* flag = Find(name);
  return flag == nullptr ? def : flag->value;
}

}  // namespace mmjoin
