// Core value types shared by every mmjoin subsystem.
//
// Following the experimental setup common to the join literature reproduced
// here (Schuh et al., SIGMOD 2016, Section 7.1), a tuple is a <key, payload>
// pair of two 4-byte integers. Join inputs are flat arrays of such tuples.

#ifndef MMJOIN_UTIL_TYPES_H_
#define MMJOIN_UTIL_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/macros.h"

namespace mmjoin {

// Join key / row-id payload. 8 bytes, trivially copyable, cache friendly:
// 8 tuples per 64-byte cache line.
struct Tuple {
  uint32_t key;
  uint32_t payload;

  friend bool operator==(const Tuple&, const Tuple&) = default;
};
static_assert(sizeof(Tuple) == 8, "Tuple must stay 8 bytes");

// Sentinel for "empty hash table slot". Generators never emit this key.
inline constexpr uint32_t kEmptyKey = 0xFFFFFFFFu;

// Size of a cache line on every platform we target.
inline constexpr std::size_t kCacheLineSize = 64;
inline constexpr std::size_t kTuplesPerCacheLine = kCacheLineSize / sizeof(Tuple);

// Non-owning views over relations; ownership lives in numa::Allocation /
// core::Relation.
using TupleSpan = std::span<Tuple>;
using ConstTupleSpan = std::span<const Tuple>;

// Packs a tuple into one 64-bit word with the key in the upper half so that
// integer comparison on the packed value orders by key first. Used by the
// sort-merge join kernels and by the lock-free linear probing table (which
// CASes whole slots).
MMJOIN_ALWAYS_INLINE constexpr uint64_t PackTuple(Tuple t) {
  return (static_cast<uint64_t>(t.key) << 32) | t.payload;
}

MMJOIN_ALWAYS_INLINE constexpr Tuple UnpackTuple(uint64_t packed) {
  return Tuple{static_cast<uint32_t>(packed >> 32),
               static_cast<uint32_t>(packed)};
}

}  // namespace mmjoin

#endif  // MMJOIN_UTIL_TYPES_H_
