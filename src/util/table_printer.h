// Column-aligned plain-text table output for the experiment harnesses.
//
// Every bench binary prints the rows/series of the paper figure or table it
// reproduces; this helper keeps that output consistent and also supports CSV
// for downstream plotting.

#ifndef MMJOIN_UTIL_TABLE_PRINTER_H_
#define MMJOIN_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace mmjoin {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells);

  // Convenience: builds a row from already-formatted cells.
  template <typename... Args>
  void Row(Args&&... cells) {
    AddRow(std::vector<std::string>{ToCell(std::forward<Args>(cells))...});
  }

  // Renders an aligned table to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;
  // Renders comma-separated values (headers + rows).
  void PrintCsv(std::FILE* out = stdout) const;

  static std::string FormatDouble(double value, int precision = 2);

 private:
  static std::string ToCell(const std::string& s) { return s; }
  static std::string ToCell(const char* s) { return s; }
  static std::string ToCell(double v) { return FormatDouble(v); }
  static std::string ToCell(int v) { return std::to_string(v); }
  static std::string ToCell(long v) { return std::to_string(v); }
  static std::string ToCell(long long v) { return std::to_string(v); }
  static std::string ToCell(unsigned v) { return std::to_string(v); }
  static std::string ToCell(unsigned long v) { return std::to_string(v); }
  static std::string ToCell(unsigned long long v) { return std::to_string(v); }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mmjoin

#endif  // MMJOIN_UTIL_TABLE_PRINTER_H_
