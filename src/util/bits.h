// Small bit-manipulation helpers used by hashing, partitioning, and the
// cache simulator.

#ifndef MMJOIN_UTIL_BITS_H_
#define MMJOIN_UTIL_BITS_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#include "util/macros.h"

namespace mmjoin {

MMJOIN_ALWAYS_INLINE constexpr bool IsPowerOfTwo(uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

// Smallest power of two >= x (x must be >= 1).
MMJOIN_ALWAYS_INLINE constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  return std::bit_ceil(x);
}

// floor(log2(x)) for x >= 1.
MMJOIN_ALWAYS_INLINE constexpr uint32_t FloorLog2(uint64_t x) {
  return 63u - static_cast<uint32_t>(std::countl_zero(x));
}

// ceil(log2(x)) for x >= 1.
MMJOIN_ALWAYS_INLINE constexpr uint32_t CeilLog2(uint64_t x) {
  return x <= 1 ? 0 : FloorLog2(x - 1) + 1;
}

MMJOIN_ALWAYS_INLINE constexpr uint64_t RoundUp(uint64_t x, uint64_t multiple) {
  return (x + multiple - 1) / multiple * multiple;
}

MMJOIN_ALWAYS_INLINE constexpr uint64_t CeilDiv(uint64_t x, uint64_t y) {
  return (x + y - 1) / y;
}

// Number of set bits in `x` strictly below bit position `pos` (pos in
// [0, 64]). The core primitive of the Concise Hash Table rank computation.
MMJOIN_ALWAYS_INLINE constexpr uint32_t PopcountBelow(uint64_t x,
                                                      uint32_t pos) {
  const uint64_t mask = pos >= 64 ? ~uint64_t{0} : ((uint64_t{1} << pos) - 1);
  return static_cast<uint32_t>(std::popcount(x & mask));
}

}  // namespace mmjoin

#endif  // MMJOIN_UTIL_BITS_H_
