// Wall-clock timing helpers for the benchmark harnesses and per-phase join
// statistics.

#ifndef MMJOIN_UTIL_TIMER_H_
#define MMJOIN_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace mmjoin {

// Monotonic nanosecond timestamp.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Scoped stopwatch: accumulates elapsed nanoseconds into a caller-owned
// counter on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t* sink) : sink_(sink), start_(NowNanos()) {}
  ~ScopedTimer() { *sink_ += NowNanos() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t* sink_;
  int64_t start_;
};

// Simple restartable stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(NowNanos()) {}

  void Restart() { start_ = NowNanos(); }
  int64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  int64_t start_;
};

}  // namespace mmjoin

#endif  // MMJOIN_UTIL_TIMER_H_
