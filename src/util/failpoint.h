// Named failpoints for fault injection.
//
// A failpoint is a named site in the code that can be armed to simulate a
// failure (most commonly an allocation failure) so that tests and CI can
// drive the recoverable-error paths deterministically. Inactive failpoints
// cost one relaxed atomic load and a predicted branch; the registry lookup
// happens once per call site (function-local static).
//
// Activation:
//  * Environment: MMJOIN_FAILPOINTS="alloc.partition=once,alloc.probe=nth:3"
//    parsed once, at the first failpoint evaluation in the process.
//  * Programmatic: failpoint::Configure("alloc.build=prob:0.5"), or
//    FailPoint::Get("name").Activate(...).
//
// Trigger modes:
//  * once     -- fires on the next evaluation, then disarms.
//  * nth:N    -- fires on the Nth evaluation after arming (N >= 1), then
//                disarms.
//  * prob:P   -- fires independently with probability P in [0, 1].
//  * always   -- fires on every evaluation until disarmed.
//  * off      -- disarmed.
//
// The canonical failpoint names threaded through the join kernels are listed
// in docs/ROBUSTNESS.md (alloc.partition, alloc.build, alloc.probe,
// alloc.materialize, alloc.mmap, alloc.madvise_huge).

#ifndef MMJOIN_UTIL_FAILPOINT_H_
#define MMJOIN_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/macros.h"
#include "util/status.h"

namespace mmjoin {

class FailPoint {
 public:
  enum class Mode : uint8_t { kOff = 0, kOnce, kNth, kProb, kAlways };

  // Returns the failpoint registered under `name`, creating it (disarmed) on
  // first use. References stay valid for the process lifetime. Reads
  // MMJOIN_FAILPOINTS on the first call in the process.
  static FailPoint& Get(std::string_view name);

  // Hot path: false with one relaxed load when disarmed.
  bool ShouldFail() {
    const auto mode =
        static_cast<Mode>(mode_.load(std::memory_order_relaxed));
    if (MMJOIN_LIKELY(mode == Mode::kOff)) return false;
    return ShouldFailSlow(mode);
  }

  // Arms the failpoint. `n` is the 1-based evaluation that fires for kNth;
  // `probability` the per-evaluation chance for kProb.
  void Activate(Mode mode, uint64_t n = 1, double probability = 0.0);
  void Deactivate();

  const std::string& name() const { return name_; }
  // Number of times ShouldFail() returned true since process start.
  uint64_t trigger_count() const {
    return triggers_.load(std::memory_order_relaxed);
  }

 private:
  explicit FailPoint(std::string name) : name_(std::move(name)) {}
  bool ShouldFailSlow(Mode mode);
  bool Fired();  // counts + logs one trigger, returns true

  const std::string name_;
  std::atomic<uint8_t> mode_{static_cast<uint8_t>(Mode::kOff)};
  std::atomic<uint64_t> evaluations_{0};  // while armed in kNth mode
  std::atomic<uint64_t> triggers_{0};
  std::atomic<uint64_t> nth_{1};
  std::atomic<uint64_t> prob_bits_{0};  // bit_cast'd double
  std::atomic<uint64_t> rng_state_{0x9E3779B97F4A7C15ull};

  friend class FailPointRegistry;
};

namespace failpoint {

// Parses and applies a spec of the MMJOIN_FAILPOINTS form:
// "name=once[,name=nth:3][,name=prob:0.25][,name=always][,name=off]".
// Unknown trigger syntax yields InvalidArgument and applies nothing.
Status Configure(std::string_view spec);

// Disarms every registered failpoint (does not unregister them).
void DeactivateAll();

// Names of currently armed failpoints (diagnostics / bench summaries).
std::vector<std::string> ActiveNames();

}  // namespace failpoint

}  // namespace mmjoin

// Evaluates the named failpoint. The registry lookup is done once per call
// site; pass a string literal.
#define MMJOIN_FAILPOINT(name)                                       \
  ([]() -> bool {                                                    \
    static ::mmjoin::FailPoint& _mmjoin_fp =                         \
        ::mmjoin::FailPoint::Get(name);                              \
    return MMJOIN_UNLIKELY(_mmjoin_fp.ShouldFail());                 \
  }())

#endif  // MMJOIN_UTIL_FAILPOINT_H_
