// Recoverable-error vocabulary: Status and StatusOr<T>.
//
// The library keeps its no-exceptions convention (util/macros.h): invariant
// violations still abort via MMJOIN_CHECK, but *recoverable* conditions --
// allocation failure, invalid configuration, resource degradation, a stuck
// worker pool -- are reported as Status values that propagate out of
// Joiner::Run instead of killing the process. See docs/ROBUSTNESS.md for the
// conventions.
//
// The OK path is cheap: an OK Status is a null pointer, copying it is a
// pointer copy, and ok() is one comparison. Error details (code + message)
// live behind a shared_ptr allocated only on the error path.

#ifndef MMJOIN_UTIL_STATUS_H_
#define MMJOIN_UTIL_STATUS_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/macros.h"

namespace mmjoin {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,     // caller passed a nonsensical config/parameter
  kResourceExhausted = 2,   // allocation failed (real or fault-injected)
  kDeadlineExceeded = 3,    // watchdog fired (stuck barrier / dispatch)
  kFailedPrecondition = 4,  // object unusable (e.g. poisoned executor)
  kInternal = 5,            // invariant that chose not to abort
  kNotFound = 6,            // lookup by name missed
  kUnavailable = 7,         // optional facility absent (perf counters, files)
};

const char* StatusCodeName(StatusCode code);

// [[nodiscard]] on the class makes every function returning a Status by
// value warn when the result is dropped -- a dropped Status is a swallowed
// error. Deliberate discards must be spelled `(void)expr;` with a comment
// saying why (lint rule `status-discard`).
class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<const Rep>(Rep{code, std::move(message)});
    }
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const {
    return rep_ == nullptr ? StatusCode::kOk : rep_->code;
  }
  const std::string& message() const {
    static const std::string* const kEmpty = new std::string;
    return rep_ == nullptr ? *kEmpty : rep_->message;
  }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeName(code());
    out += ": ";
    out += message();
    return out;
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

inline Status OkStatus() { return Status(); }

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

// Either a T or a non-OK Status. No exceptions: value() on an error aborts
// with the status message (a programming error, same contract as
// MMJOIN_CHECK), so call ok() first on any path that can fail.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit from a value (the common return path).
  StatusOr(const T& value) : value_(value) {}
  StatusOr(T&& value) : value_(std::move(value)) {}

  // Implicit from a non-OK Status (the error return path). An OK status
  // without a value is a bug and becomes an internal error.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed from an OK Status");
    }
  }

  bool ok() const { return value_.has_value(); }
  bool has_value() const { return value_.has_value(); }

  // OK when a value is present.
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void EnsureOk() const {
    if (MMJOIN_UNLIKELY(!value_.has_value())) {
      std::fprintf(stderr, "[mmjoin] StatusOr::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

namespace internal_status {
inline const Status& AsStatus(const Status& status) { return status; }
template <typename T>
const Status& AsStatus(const StatusOr<T>& status_or) {
  return status_or.status();
}
}  // namespace internal_status

}  // namespace mmjoin

// Aborts with the status printed when `expr` (a Status or StatusOr) is not
// OK. For harness and generator paths that have no recovery story: failing
// loudly beats computing with partial data (same contract as RunJoinOrDie).
#define MMJOIN_CHECK_OK(expr)                                                \
  do {                                                                       \
    if (auto&& _mmjoin_ck = (expr); MMJOIN_UNLIKELY(!_mmjoin_ck.ok())) {     \
      std::fprintf(                                                          \
          stderr, "[mmjoin] %s:%d: MMJOIN_CHECK_OK(%s) failed: %s\n",        \
          __FILE__, __LINE__, #expr,                                         \
          ::mmjoin::internal_status::AsStatus(_mmjoin_ck).ToString().c_str()); \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// Propagates a non-OK Status (or the Status of a StatusOr-returning
// subexpression evaluated for its Status) out of the enclosing function.
#define MMJOIN_RETURN_IF_ERROR(expr)              \
  do {                                            \
    if (auto _mmjoin_st = (expr); !_mmjoin_st.ok()) \
      return _mmjoin_st;                          \
  } while (0)

#define MMJOIN_STATUS_CONCAT_INNER_(a, b) a##b
#define MMJOIN_STATUS_CONCAT_(a, b) MMJOIN_STATUS_CONCAT_INNER_(a, b)

// MMJOIN_ASSIGN_OR_RETURN(auto x, Foo()): binds the value on success,
// returns the Status out of the enclosing function on failure.
#define MMJOIN_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  auto MMJOIN_STATUS_CONCAT_(_mmjoin_statusor_, __LINE__) = (rexpr);    \
  if (!MMJOIN_STATUS_CONCAT_(_mmjoin_statusor_, __LINE__).ok())         \
    return std::move(MMJOIN_STATUS_CONCAT_(_mmjoin_statusor_, __LINE__)) \
        .status();                                                      \
  lhs = std::move(MMJOIN_STATUS_CONCAT_(_mmjoin_statusor_, __LINE__)).value()

#endif  // MMJOIN_UTIL_STATUS_H_
