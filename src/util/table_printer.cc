#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "util/macros.h"

namespace mmjoin {

void TablePrinter::AddRow(std::vector<std::string> cells) {
  MMJOIN_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::fputc('\n', out);
  };

  print_row(headers_);
  std::size_t total = headers_.size() - 1;  // separators
  for (std::size_t w : widths) total += w + 1;
  for (std::size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", cells[c].c_str());
    }
    std::fputc('\n', out);
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace mmjoin
