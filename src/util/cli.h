// Minimal command-line flag parsing for the benchmark harnesses and
// examples.
//
// Flags are registered as `--name=value` (or `--name value`) with typed
// accessors and defaults; `--help` prints the registered set. This is
// deliberately tiny -- no external dependency -- but supports everything the
// experiment binaries need.

#ifndef MMJOIN_UTIL_CLI_H_
#define MMJOIN_UTIL_CLI_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mmjoin {

class CommandLine {
 public:
  // Parses argv. Unknown flags are fatal (typos in experiment scripts should
  // not silently fall back to defaults), except when `lenient` is set.
  CommandLine(int argc, char** argv, bool lenient = false);

  // Typed accessors; `def` is returned when the flag was not supplied.
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;
  std::string GetString(const std::string& name, const std::string& def) const;

  bool Has(const std::string& name) const;

  // Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program_name() const { return program_name_; }

 private:
  struct Flag {
    std::string name;
    std::string value;  // empty value means bare "--flag" (boolean true)
  };

  const Flag* Find(const std::string& name) const;

  std::string program_name_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace mmjoin

#endif  // MMJOIN_UTIL_CLI_H_
