// Annotated lock primitives: thin wrappers over std::mutex /
// std::shared_mutex / std::condition_variable carrying the Clang capability
// attributes from util/annotations.h.
//
// The standard-library types are not annotated under libstdc++, so the
// thread-safety analysis cannot see std::lock_guard acquire anything. These
// wrappers are the capability-bearing types every mutex-protected structure
// in the tree (Executor, TaskQueue, Barrier, TraceRecorder, MetricsRegistry,
// NumaSystem, JoinAbort) locks through; they compile to exactly the
// std:: primitives they wrap.
//
// CondVar pairs with Mutex the way absl::CondVar pairs with absl::Mutex:
// Wait/WaitUntil require the mutex held and release/reacquire it internally,
// invisibly to the analysis (which models "held across the call" -- sound,
// since the caller holds it again when Wait returns and may not rely on
// state being unchanged anyway: waits sit in while loops re-checking their
// predicate).

#ifndef MMJOIN_UTIL_MUTEX_H_
#define MMJOIN_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/annotations.h"

namespace mmjoin {

class MMJOIN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MMJOIN_ACQUIRE() { mutex_.lock(); }
  void Unlock() MMJOIN_RELEASE() { mutex_.unlock(); }
  bool TryLock() MMJOIN_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

// RAII exclusive lock over a Mutex.
class MMJOIN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MMJOIN_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() MMJOIN_RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

// Condition variable for use with Mutex. All waits must be wrapped in a
// while loop re-testing the predicate (spurious wakeups, stolen wakeups).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until notified. `mutex` must be held; it is released while
  // blocked and reacquired before returning.
  void Wait(Mutex& mutex) MMJOIN_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the mutex
  }

  // Like Wait but gives up at `deadline`; returns false on timeout.
  bool WaitUntil(Mutex& mutex, std::chrono::steady_clock::time_point deadline)
      MMJOIN_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// Reader/writer lock (NumaSystem's region map: every counted memory access
// resolves addresses under a shared lock; allocation is the rare writer).
class MMJOIN_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() MMJOIN_ACQUIRE() { mutex_.lock(); }
  void Unlock() MMJOIN_RELEASE() { mutex_.unlock(); }
  void LockShared() MMJOIN_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void UnlockShared() MMJOIN_RELEASE_SHARED() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

class MMJOIN_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mutex) MMJOIN_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.Lock();
  }
  ~WriterMutexLock() MMJOIN_RELEASE() { mutex_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

class MMJOIN_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mutex) MMJOIN_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.LockShared();
  }
  ~ReaderMutexLock() MMJOIN_RELEASE() { mutex_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

}  // namespace mmjoin

#endif  // MMJOIN_UTIL_MUTEX_H_
