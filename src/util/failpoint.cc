#include "util/failpoint.h"

#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "util/annotations.h"
#include "util/failpoint_registry.h"
#include "util/log.h"
#include "util/mutex.h"

namespace mmjoin {
namespace {

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

class FailPointRegistry {
 public:
  static FailPointRegistry& Instance() {
    // Leaked: failpoints may be evaluated from worker threads during static
    // destruction.
    static auto* registry = new FailPointRegistry;
    return *registry;
  }

  FailPoint& Get(std::string_view name) {
    std::call_once(env_once_, [this] {
      const char* env = std::getenv("MMJOIN_FAILPOINTS");
      if (env != nullptr && env[0] != '\0') {
        const Status status = ConfigureLocked(env);
        if (!status.ok()) {
          MMJOIN_LOG(kWarn, "failpoint.bad_spec")
              .Field("env", env)
              .Field("status", status.ToString());
        }
      }
    });
    MutexLock lock(mutex_);
    return GetLocked(name);
  }

  Status Configure(std::string_view spec) {
    // Make sure env arming (if any) happens before explicit configuration,
    // so programmatic Configure/Deactivate wins.
    Get("");
    return ConfigureLocked(spec);
  }

  void DeactivateAll() {
    MutexLock lock(mutex_);
    for (auto& [name, fp] : points_) fp->Deactivate();
  }

  std::vector<std::string> ActiveNames() {
    MutexLock lock(mutex_);
    std::vector<std::string> names;
    for (auto& [name, fp] : points_) {
      if (static_cast<FailPoint::Mode>(
              fp->mode_.load(std::memory_order_relaxed)) !=
          FailPoint::Mode::kOff) {
        names.push_back(name);
      }
    }
    return names;
  }

 private:
  FailPoint& GetLocked(std::string_view name) MMJOIN_REQUIRES(mutex_) {
    auto it = points_.find(name);
    if (it == points_.end()) {
      it = points_
               .emplace(std::string(name),
                        std::unique_ptr<FailPoint>(
                            new FailPoint(std::string(name))))
               .first;
    }
    return *it->second;
  }

  // Parses the full spec into (name, mode, n, p) tuples first so a malformed
  // entry applies nothing.
  Status ConfigureLocked(std::string_view spec) {
    struct Entry {
      std::string name;
      FailPoint::Mode mode;
      uint64_t n = 1;
      double p = 0.0;
    };
    std::vector<Entry> entries;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      const std::string_view item = spec.substr(
          pos, comma == std::string_view::npos ? spec.size() - pos
                                               : comma - pos);
      pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
      if (item.empty()) continue;
      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        return InvalidArgumentError("failpoint spec item '" +
                                    std::string(item) +
                                    "' is not of the form name=trigger");
      }
      Entry entry;
      entry.name = std::string(item.substr(0, eq));
      const std::string trigger(item.substr(eq + 1));
      if (trigger == "once") {
        entry.mode = FailPoint::Mode::kOnce;
      } else if (trigger == "always") {
        entry.mode = FailPoint::Mode::kAlways;
      } else if (trigger == "off") {
        entry.mode = FailPoint::Mode::kOff;
      } else if (trigger.rfind("nth:", 0) == 0) {
        entry.mode = FailPoint::Mode::kNth;
        char* end = nullptr;
        entry.n = std::strtoull(trigger.c_str() + 4, &end, 10);
        if (end == nullptr || *end != '\0' || entry.n < 1) {
          return InvalidArgumentError("failpoint '" + entry.name +
                                      "': nth wants a positive integer, got '" +
                                      trigger + "'");
        }
      } else if (trigger.rfind("prob:", 0) == 0) {
        entry.mode = FailPoint::Mode::kProb;
        char* end = nullptr;
        entry.p = std::strtod(trigger.c_str() + 5, &end);
        if (end == nullptr || *end != '\0' || entry.p < 0.0 ||
            entry.p > 1.0) {
          return InvalidArgumentError(
              "failpoint '" + entry.name +
              "': prob wants a probability in [0,1], got '" + trigger + "'");
        }
      } else {
        return InvalidArgumentError("failpoint '" + entry.name +
                                    "': unknown trigger '" + trigger + "'");
      }
      entries.push_back(std::move(entry));
    }

    // A spec naming a point nobody evaluates arms silently and the intended
    // fault never fires -- the classic typo failure mode for MMJOIN_FAILPOINTS
    // runs. Warn (but still arm: the spec is well-formed) for any name that
    // is neither canonical nor in the test-reserved namespace.
    for (const Entry& entry : entries) {
      if (!failpoint::IsCanonicalName(entry.name) &&
          entry.name.rfind(failpoint::kTestNamePrefix, 0) != 0) {
        MMJOIN_LOG(kWarn, "failpoint.unknown_name").Field("name", entry.name);
      }
    }

    MutexLock lock(mutex_);
    for (const Entry& entry : entries) {
      FailPoint& fp = GetLocked(entry.name);
      if (entry.mode == FailPoint::Mode::kOff) {
        fp.Deactivate();
      } else {
        fp.Activate(entry.mode, entry.n, entry.p);
      }
    }
    return OkStatus();
  }

  std::once_flag env_once_;  // <mutex> stays included for this
  Mutex mutex_;
  // Transparent comparator lets find() take string_view without a copy.
  std::map<std::string, std::unique_ptr<FailPoint>, std::less<>> points_
      MMJOIN_GUARDED_BY(mutex_);
};

FailPoint& FailPoint::Get(std::string_view name) {
  return FailPointRegistry::Instance().Get(name);
}

void FailPoint::Activate(Mode mode, uint64_t n, double probability) {
  MMJOIN_CHECK(n >= 1);
  MMJOIN_CHECK(probability >= 0.0 && probability <= 1.0);
  nth_.store(n, std::memory_order_relaxed);
  prob_bits_.store(DoubleToBits(probability), std::memory_order_relaxed);
  evaluations_.store(0, std::memory_order_relaxed);
  mode_.store(static_cast<uint8_t>(mode), std::memory_order_release);
}

void FailPoint::Deactivate() {
  mode_.store(static_cast<uint8_t>(Mode::kOff), std::memory_order_release);
}

bool FailPoint::Fired() {
  triggers_.fetch_add(1, std::memory_order_relaxed);
  // Every injected fault is a structured event (debug level: fault-matrix
  // tests fire thousands; the log.* counters still see them all).
  MMJOIN_LOG(kDebug, "failpoint.hit").Field("name", name_);
  return true;
}

bool FailPoint::ShouldFailSlow(Mode mode) {
  switch (mode) {
    case Mode::kOff:
      return false;
    case Mode::kAlways:
      return Fired();
    case Mode::kOnce: {
      // First evaluator wins the race and disarms.
      uint8_t expected = static_cast<uint8_t>(Mode::kOnce);
      if (mode_.compare_exchange_strong(
              expected, static_cast<uint8_t>(Mode::kOff),
              std::memory_order_acq_rel)) {
        return Fired();
      }
      return false;
    }
    case Mode::kNth: {
      const uint64_t eval =
          evaluations_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (eval == nth_.load(std::memory_order_relaxed)) {
        Deactivate();
        return Fired();
      }
      return false;
    }
    case Mode::kProb: {
      const double p =
          BitsToDouble(prob_bits_.load(std::memory_order_relaxed));
      if (p <= 0.0) return false;
      if (p >= 1.0) {
        return Fired();
      }
      // splitmix64 over a shared atomic state; contention is irrelevant at
      // fault-injection frequencies.
      uint64_t z =
          rng_state_.fetch_add(0x9E3779B97F4A7C15ull,
                               std::memory_order_relaxed) +
          0x9E3779B97F4A7C15ull;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      z ^= z >> 31;
      const double u =
          static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
      if (u < p) {
        return Fired();
      }
      return false;
    }
  }
  return false;
}

namespace failpoint {

Status Configure(std::string_view spec) {
  return FailPointRegistry::Instance().Configure(spec);
}

void DeactivateAll() { FailPointRegistry::Instance().DeactivateAll(); }

std::vector<std::string> ActiveNames() {
  return FailPointRegistry::Instance().ActiveNames();
}

}  // namespace failpoint
}  // namespace mmjoin
