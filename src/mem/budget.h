// Per-join memory budgets: reservation-based admission control.
//
// A BudgetTracker holds a byte budget for one join run (or one tenant, once
// the multi-tenant service lands). Callers *reserve* the bytes their plan
// says they will allocate before touching TryAllocateAligned, and release
// the reservation when the buffers die. The tracker is deliberately a
// planning-level gate, not a malloc shim: the radix-join planner and the
// join kernels charge the same deterministic table-space estimate
// (src/partition/model.h), so a plan that was admitted never fails half-way
// through the join on a budget check -- degradation decisions (re-plan radix
// bits, drop to one pass, spill-wave the probe side) all happen up front in
// PlanMemoryBudget. Actual resident bytes are tracked independently by
// AllocStats (mem.current_bytes / mem.peak_bytes).
//
// The `budget.reserve` failpoint injects a reservation failure at the top of
// Reserve() so every rejection edge is drivable deterministically; the
// companion `budget.wave` failpoint (evaluated by the PR*/CPR* kernels, see
// join/internal.h) forces the spill-wave path without constructing a
// borderline budget.

#ifndef MMJOIN_MEM_BUDGET_H_
#define MMJOIN_MEM_BUDGET_H_

#include <atomic>
#include <cstdint>

#include "util/status.h"

namespace mmjoin::mem {

// Process-wide budget event counters, exported as mem.budget_* by the
// metrics registry (see docs/OBSERVABILITY.md).
struct BudgetStats {
  uint64_t reservations = 0;  // successful Reserve() calls
  uint64_t rejections = 0;    // Reserve() denials (real or injected)
  uint64_t replans = 0;       // stage-1 degradations (bits/passes re-planned)
  uint64_t waves = 0;         // joins that entered spill-wave mode
  uint64_t wave_rounds = 0;   // total wave iterations across all joins
};

BudgetStats GetBudgetStats();
// Single-run harnesses only: the counters are process-global, so a reset
// while another join runs (service lanes) clobbers that join's window --
// concurrent measurement uses monotonic deltas (core::BuildExplainReport),
// never resets.
void ResetBudgetStats();

// Degradation-stage accounting, called by the join kernels when a stage
// fires so tests and operators can see *which* edge a run took.
void CountBudgetReplan();
void CountBudgetWave();
void CountBudgetWaveRound();

// Reserve/release accounting against a fixed byte budget. Thread-safe: all
// counters are atomics; Reserve admits with a CAS loop so concurrent
// reservations never overshoot the budget.
class BudgetTracker {
 public:
  // budget_bytes == 0 means unbounded: Reserve always succeeds (but still
  // accounts, so peak_reserved_bytes() reports the plan-level working set).
  explicit BudgetTracker(uint64_t budget_bytes = 0)
      : budget_bytes_(budget_bytes) {}

  BudgetTracker(const BudgetTracker&) = delete;
  BudgetTracker& operator=(const BudgetTracker&) = delete;

  bool bounded() const { return budget_bytes_ != 0; }
  uint64_t budget_bytes() const { return budget_bytes_; }

  // Admits `bytes` against the budget, or returns ResourceExhausted naming
  // `what`, the request, and the budget state. The `budget.reserve`
  // failpoint forces the rejection path.
  Status Reserve(uint64_t bytes, const char* what);

  // Returns `bytes` previously admitted by Reserve.
  void Release(uint64_t bytes);

  uint64_t reserved_bytes() const {
    return reserved_.load(std::memory_order_relaxed);
  }
  uint64_t peak_reserved_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  // Bytes still admissible (max uint64 when unbounded).
  uint64_t available_bytes() const;

 private:
  void UpdatePeak(uint64_t now);

  const uint64_t budget_bytes_;
  std::atomic<uint64_t> reserved_{0};
  std::atomic<uint64_t> peak_{0};
};

// RAII reservation: acquires bytes from a tracker and releases them on
// destruction. Move-only. Acquire on a null or unbounded-and-absent tracker
// returns an empty reservation whose destructor is a no-op, so call sites
// stay branch-free.
class BudgetReservation {
 public:
  BudgetReservation() = default;

  // tracker == nullptr => empty reservation, always OK, no charge.
  static StatusOr<BudgetReservation> Acquire(BudgetTracker* tracker,
                                             uint64_t bytes, const char* what);

  ~BudgetReservation() { Release(); }

  BudgetReservation(BudgetReservation&& other) noexcept {
    *this = static_cast<BudgetReservation&&>(other);
  }
  BudgetReservation& operator=(BudgetReservation&& other) noexcept {
    if (this != &other) {
      Release();
      tracker_ = other.tracker_;
      bytes_ = other.bytes_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  BudgetReservation(const BudgetReservation&) = delete;
  BudgetReservation& operator=(const BudgetReservation&) = delete;

  // Returns the reserved bytes to the tracker early (idempotent).
  void Release() {
    if (tracker_ != nullptr && bytes_ != 0) tracker_->Release(bytes_);
    tracker_ = nullptr;
    bytes_ = 0;
  }

  uint64_t bytes() const { return bytes_; }
  bool empty() const { return tracker_ == nullptr; }

 private:
  BudgetReservation(BudgetTracker* tracker, uint64_t bytes)
      : tracker_(tracker), bytes_(bytes) {}

  BudgetTracker* tracker_ = nullptr;  // single-owner: borrowed, not owned
  uint64_t bytes_ = 0;                // single-owner: mutated only via moves
};

}  // namespace mmjoin::mem

#endif  // MMJOIN_MEM_BUDGET_H_
