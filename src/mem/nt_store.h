// Non-temporal (streaming) stores.
//
// Radix partitioning with software write-combine buffers flushes whole cache
// lines to the output partitions with streaming stores that bypass the cache
// hierarchy (paper Section 5.1, following Schuhknecht et al., PVLDB 2015).
// On x86-64 with SSE2 this maps to MOVNTDQ; elsewhere it degrades to memcpy.

#ifndef MMJOIN_MEM_NT_STORE_H_
#define MMJOIN_MEM_NT_STORE_H_

#include <cstdint>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "util/macros.h"
#include "util/types.h"

namespace mmjoin::mem {

// True when this build has real streaming-store support.
constexpr bool HasStreamingStores() {
#if defined(__SSE2__)
  return true;
#else
  return false;
#endif
}

// Copies one 64-byte cache line from `src` (cacheline-aligned) to `dst`.
// Uses non-temporal stores when `dst` is 16-byte aligned; falls back to a
// regular copy otherwise (partition bases are tuple-aligned, i.e. 8 bytes,
// so odd global offsets take the fallback).
MMJOIN_ALWAYS_INLINE void StoreCacheLineNonTemporal(void* dst,
                                                    const void* src) {
#if defined(__SSE2__)
  if (MMJOIN_LIKELY((reinterpret_cast<std::uintptr_t>(dst) & 15) == 0)) {
    const __m128i* s = static_cast<const __m128i*>(src);
    __m128i* d = static_cast<__m128i*>(dst);
    _mm_stream_si128(d + 0, _mm_load_si128(s + 0));
    _mm_stream_si128(d + 1, _mm_load_si128(s + 1));
    _mm_stream_si128(d + 2, _mm_load_si128(s + 2));
    _mm_stream_si128(d + 3, _mm_load_si128(s + 3));
    return;
  }
#endif
  std::memcpy(dst, src, kCacheLineSize);
}

// Copies `count` tuples without the non-temporal hint (plain scalar path,
// used when SWWCBs are disabled or for partial trailing buffers).
MMJOIN_ALWAYS_INLINE void StoreTuples(Tuple* dst, const Tuple* src,
                                      std::size_t count) {
  std::memcpy(dst, src, count * sizeof(Tuple));
}

// Orders all pending streaming stores before subsequent loads. Call once at
// the end of a partitioning phase (before another thread reads the output).
MMJOIN_ALWAYS_INLINE void StreamFence() {
#if defined(__SSE2__)
  _mm_sfence();
#endif
}

}  // namespace mmjoin::mem

#endif  // MMJOIN_MEM_NT_STORE_H_
