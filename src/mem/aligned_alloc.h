// Page-size-aware aligned memory allocation.
//
// The paper (Section 7.2) shows that virtual-memory page size (4 KB vs 2 MB
// transparent huge pages) changes the relative performance of every join.
// This allocator lets callers request a page-size policy per allocation:
// `kSmall` advises the kernel against huge pages, `kHuge` advises for them,
// `kDefault` leaves the system policy alone. On platforms without madvise the
// request degrades to plain aligned allocation.

#ifndef MMJOIN_MEM_ALIGNED_ALLOC_H_
#define MMJOIN_MEM_ALIGNED_ALLOC_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "util/status.h"

namespace mmjoin::mem {

enum class PagePolicy {
  kDefault,  // whatever the OS does (usually transparent huge pages = madvise)
  kSmall,    // 4 KB pages (MADV_NOHUGEPAGE)
  kHuge,     // 2 MB pages requested (MADV_HUGEPAGE)
};

inline constexpr std::size_t kSmallPageSize = 4096;
inline constexpr std::size_t kHugePageSize = 2 * 1024 * 1024;

// Process-wide allocation counters. Degradations (huge-page request that
// fell back to default pages, clamped NUMA placement) are recoverable events
// the bench harness surfaces in its `[alloc]` summary line.
struct AllocStats {
  uint64_t total_allocations = 0;
  uint64_t mmap_allocations = 0;
  uint64_t huge_page_requests = 0;
  uint64_t huge_page_fallbacks = 0;  // MADV_HUGEPAGE refused/unavailable
  uint64_t mmap_failures = 0;        // real mmap/posix_memalign failures
  uint64_t injected_failures = 0;    // failpoint-triggered failures
  uint64_t numa_degradations = 0;    // NUMA placement unavailable -> local
  uint64_t current_bytes = 0;        // bytes allocated and not yet freed
  uint64_t peak_bytes = 0;           // high-water mark of current_bytes
};

AllocStats GetAllocStats();
void ResetAllocStats();

// Resets the resident high-water mark to the current resident level (keeps
// current_bytes intact). Callers measuring one join's peak bracket the run
// with ResetPeakResident() + GetAllocStats().peak_bytes.
//
// Single-run harnesses only: the counters are process-global, so a reset
// while another join runs (service lanes, a multi-threaded Joiner) clobbers
// that join's measurement window. Never reset from concurrent contexts.
//
// Accounting caveat: a zero-byte allocation is normalized to `alignment`
// bytes internally, but FreeAligned only sees the caller's original size, so
// zero-byte alloc/free pairs drift current_bytes up by the alignment. Peak
// measurements of real joins (which never allocate zero bytes) are exact.
void ResetPeakResident();

// Bumps the NUMA-degradation counter (called by numa::NumaSystem when a
// requested placement cannot be honored and is downgraded to local).
void CountNumaDegradation();

// Allocates `bytes` aligned to `alignment` (power of two, >= 64). Memory is
// zero-initialized lazily by the OS (mmap-backed for large requests).
// Reports out-of-memory (real, or injected via the `alloc.mmap` failpoint)
// as ResourceExhausted. A huge-page request whose madvise fails degrades to
// default pages (counted in AllocStats) -- that path still succeeds.
StatusOr<void*> TryAllocateAligned(std::size_t bytes, std::size_t alignment,
                                   PagePolicy policy);

// Legacy wrapper: returns nullptr where TryAllocateAligned reports an error.
void* AllocateAligned(std::size_t bytes, std::size_t alignment,
                      PagePolicy policy);

// Frees memory obtained from AllocateAligned. `bytes` must match the
// original request.
void FreeAligned(void* ptr, std::size_t bytes);

// Touches every page of [ptr, ptr+bytes) so that physical pages are mapped
// before timed runs begin -- the paper's "memory allocation locality"
// assumption (Section 5.1): a DBMS buffer manager would have faulted the
// pages in already.
void PrefaultPages(void* ptr, std::size_t bytes);

// RAII owner for a typed aligned buffer.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  AlignedBuffer(std::size_t count, PagePolicy policy,
                std::size_t alignment = 64)
      : size_(count),
        bytes_(count * sizeof(T)),
        data_(static_cast<T*>(AllocateAligned(bytes_, alignment, policy))) {}

  ~AlignedBuffer() { reset(); }

  AlignedBuffer(AlignedBuffer&& other) noexcept { *this = std::move(other); }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = other.data_;
      size_ = other.size_;
      bytes_ = other.bytes_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.bytes_ = 0;
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  void reset() {
    if (data_ != nullptr) FreeAligned(data_, bytes_);
    data_ = nullptr;
    size_ = 0;
    bytes_ = 0;
  }

  T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) const { return data_[i]; }
  T* begin() const { return data_; }
  T* end() const { return data_ + size_; }

 private:
  std::size_t size_ = 0;
  std::size_t bytes_ = 0;
  T* data_ = nullptr;
};

}  // namespace mmjoin::mem

#endif  // MMJOIN_MEM_ALIGNED_ALLOC_H_
