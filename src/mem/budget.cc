#include "mem/budget.h"

#include <limits>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/log.h"

namespace mmjoin::mem {
namespace {

struct AtomicBudgetStats {
  std::atomic<uint64_t> reservations{0};
  std::atomic<uint64_t> rejections{0};
  std::atomic<uint64_t> replans{0};
  std::atomic<uint64_t> waves{0};
  std::atomic<uint64_t> wave_rounds{0};
};

AtomicBudgetStats g_budget_stats;

void Bump(std::atomic<uint64_t>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
}

const obs::MetricsProviderRegistration kBudgetProvider(
    "budget", [](std::vector<obs::Metric>* metrics) {
      const BudgetStats stats = GetBudgetStats();
      metrics->push_back(
          obs::Metric{"mem.budget_reservations", stats.reservations});
      metrics->push_back(
          obs::Metric{"mem.budget_rejections", stats.rejections});
      metrics->push_back(obs::Metric{"mem.budget_replans", stats.replans});
      metrics->push_back(obs::Metric{"mem.budget_waves", stats.waves});
      metrics->push_back(
          obs::Metric{"mem.budget_wave_rounds", stats.wave_rounds});
    });

}  // namespace

BudgetStats GetBudgetStats() {
  BudgetStats out;
  out.reservations = g_budget_stats.reservations.load(std::memory_order_relaxed);
  out.rejections = g_budget_stats.rejections.load(std::memory_order_relaxed);
  out.replans = g_budget_stats.replans.load(std::memory_order_relaxed);
  out.waves = g_budget_stats.waves.load(std::memory_order_relaxed);
  out.wave_rounds = g_budget_stats.wave_rounds.load(std::memory_order_relaxed);
  return out;
}

void ResetBudgetStats() {
  g_budget_stats.reservations.store(0, std::memory_order_relaxed);
  g_budget_stats.rejections.store(0, std::memory_order_relaxed);
  g_budget_stats.replans.store(0, std::memory_order_relaxed);
  g_budget_stats.waves.store(0, std::memory_order_relaxed);
  g_budget_stats.wave_rounds.store(0, std::memory_order_relaxed);
}

void CountBudgetReplan() { Bump(g_budget_stats.replans); }
void CountBudgetWave() { Bump(g_budget_stats.waves); }
void CountBudgetWaveRound() { Bump(g_budget_stats.wave_rounds); }

Status BudgetTracker::Reserve(uint64_t bytes, const char* what) {
  if (MMJOIN_FAILPOINT("budget.reserve")) {
    Bump(g_budget_stats.rejections);
    MMJOIN_LOG(kWarn, "budget.reject")
        .Field("what", what)
        .Field("bytes", bytes)
        .Field("injected", true);
    return ResourceExhaustedError(
        "injected budget reservation failure (failpoint budget.reserve, " +
        std::string(what) + ", " + std::to_string(bytes) + " bytes)");
  }

  if (!bounded()) {
    const uint64_t now =
        reserved_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    UpdatePeak(now);
    Bump(g_budget_stats.reservations);
    return OkStatus();
  }

  // CAS admission: concurrent reservations may interleave, but the sum of
  // admitted bytes never exceeds the budget.
  uint64_t current = reserved_.load(std::memory_order_relaxed);
  for (;;) {
    if (bytes > budget_bytes_ || current > budget_bytes_ - bytes) {
      Bump(g_budget_stats.rejections);
      MMJOIN_LOG(kWarn, "budget.reject")
          .Field("what", what)
          .Field("bytes", bytes)
          .Field("reserved", current)
          .Field("budget_bytes", budget_bytes_);
      return ResourceExhaustedError(
          "memory budget exceeded reserving " + std::string(what) + ": need " +
          std::to_string(bytes) + " bytes, " + std::to_string(current) +
          " of " + std::to_string(budget_bytes_) + " already reserved");
    }
    if (reserved_.compare_exchange_weak(current, current + bytes,
                                        std::memory_order_relaxed)) {
      UpdatePeak(current + bytes);
      Bump(g_budget_stats.reservations);
      return OkStatus();
    }
  }
}

void BudgetTracker::Release(uint64_t bytes) {
  reserved_.fetch_sub(bytes, std::memory_order_relaxed);
}

uint64_t BudgetTracker::available_bytes() const {
  if (!bounded()) return std::numeric_limits<uint64_t>::max();
  const uint64_t now = reserved_.load(std::memory_order_relaxed);
  return now >= budget_bytes_ ? 0 : budget_bytes_ - now;
}

void BudgetTracker::UpdatePeak(uint64_t now) {
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak && !peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

StatusOr<BudgetReservation> BudgetReservation::Acquire(BudgetTracker* tracker,
                                                       uint64_t bytes,
                                                       const char* what) {
  if (tracker == nullptr) return BudgetReservation();
  MMJOIN_RETURN_IF_ERROR(tracker->Reserve(bytes, what));
  return BudgetReservation(tracker, bytes);
}

}  // namespace mmjoin::mem
