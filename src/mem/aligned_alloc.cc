#include "mem/aligned_alloc.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "obs/metrics.h"
#include "util/bits.h"
#include "util/failpoint.h"
#include "util/log.h"
#include "util/macros.h"

namespace mmjoin::mem {
namespace {

// Allocations at or above this size go through mmap so we can madvise page
// policy; smaller ones use the C library.
constexpr std::size_t kMmapThreshold = 1 << 20;

struct MmapTag {
  // We over-allocate by one small page to stash this header, so Free can
  // reconstruct the mapping base and length.
  void* base;
  std::size_t length;
};

struct AtomicAllocStats {
  std::atomic<uint64_t> total_allocations{0};
  std::atomic<uint64_t> mmap_allocations{0};
  std::atomic<uint64_t> huge_page_requests{0};
  std::atomic<uint64_t> huge_page_fallbacks{0};
  std::atomic<uint64_t> mmap_failures{0};
  std::atomic<uint64_t> injected_failures{0};
  std::atomic<uint64_t> numa_degradations{0};
  std::atomic<uint64_t> current_bytes{0};
  std::atomic<uint64_t> peak_bytes{0};
};

AtomicAllocStats g_alloc_stats;

void Bump(std::atomic<uint64_t>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
}

// Resident-byte accounting: fetch_add then CAS-raise the high-water mark.
// Relaxed orders -- these are statistics, not synchronization.
void AddResident(std::size_t bytes) {
  const uint64_t now =
      g_alloc_stats.current_bytes.fetch_add(bytes, std::memory_order_relaxed) +
      bytes;
  uint64_t peak = g_alloc_stats.peak_bytes.load(std::memory_order_relaxed);
  while (now > peak && !g_alloc_stats.peak_bytes.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void SubResident(std::size_t bytes) {
  g_alloc_stats.current_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

const obs::MetricsProviderRegistration kAllocProvider(
    "alloc", [](std::vector<obs::Metric>* metrics) {
      const AllocStats stats = GetAllocStats();
      metrics->push_back(
          obs::Metric{"alloc.total_allocations", stats.total_allocations});
      metrics->push_back(
          obs::Metric{"alloc.mmap_allocations", stats.mmap_allocations});
      metrics->push_back(
          obs::Metric{"alloc.huge_page_requests", stats.huge_page_requests});
      metrics->push_back(
          obs::Metric{"alloc.huge_page_fallbacks", stats.huge_page_fallbacks});
      metrics->push_back(
          obs::Metric{"alloc.mmap_failures", stats.mmap_failures});
      metrics->push_back(
          obs::Metric{"alloc.injected_failures", stats.injected_failures});
      metrics->push_back(
          obs::Metric{"alloc.numa_degradations", stats.numa_degradations});
      metrics->push_back(obs::Metric{"mem.current_bytes", stats.current_bytes});
      metrics->push_back(obs::Metric{"mem.peak_bytes", stats.peak_bytes});
    });

}  // namespace

AllocStats GetAllocStats() {
  AllocStats out;
  out.total_allocations =
      g_alloc_stats.total_allocations.load(std::memory_order_relaxed);
  out.mmap_allocations =
      g_alloc_stats.mmap_allocations.load(std::memory_order_relaxed);
  out.huge_page_requests =
      g_alloc_stats.huge_page_requests.load(std::memory_order_relaxed);
  out.huge_page_fallbacks =
      g_alloc_stats.huge_page_fallbacks.load(std::memory_order_relaxed);
  out.mmap_failures =
      g_alloc_stats.mmap_failures.load(std::memory_order_relaxed);
  out.injected_failures =
      g_alloc_stats.injected_failures.load(std::memory_order_relaxed);
  out.numa_degradations =
      g_alloc_stats.numa_degradations.load(std::memory_order_relaxed);
  out.current_bytes =
      g_alloc_stats.current_bytes.load(std::memory_order_relaxed);
  out.peak_bytes = g_alloc_stats.peak_bytes.load(std::memory_order_relaxed);
  return out;
}

void ResetAllocStats() {
  g_alloc_stats.total_allocations.store(0, std::memory_order_relaxed);
  g_alloc_stats.mmap_allocations.store(0, std::memory_order_relaxed);
  g_alloc_stats.huge_page_requests.store(0, std::memory_order_relaxed);
  g_alloc_stats.huge_page_fallbacks.store(0, std::memory_order_relaxed);
  g_alloc_stats.mmap_failures.store(0, std::memory_order_relaxed);
  g_alloc_stats.injected_failures.store(0, std::memory_order_relaxed);
  g_alloc_stats.numa_degradations.store(0, std::memory_order_relaxed);
  g_alloc_stats.current_bytes.store(0, std::memory_order_relaxed);
  g_alloc_stats.peak_bytes.store(0, std::memory_order_relaxed);
}

void ResetPeakResident() {
  g_alloc_stats.peak_bytes.store(
      g_alloc_stats.current_bytes.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

void CountNumaDegradation() { Bump(g_alloc_stats.numa_degradations); }

StatusOr<void*> TryAllocateAligned(std::size_t bytes, std::size_t alignment,
                                   PagePolicy policy) {
  MMJOIN_CHECK(IsPowerOfTwo(alignment) && alignment >= 64);
  if (bytes == 0) bytes = alignment;

  Bump(g_alloc_stats.total_allocations);
  if (policy == PagePolicy::kHuge) Bump(g_alloc_stats.huge_page_requests);

  if (MMJOIN_FAILPOINT("alloc.mmap")) {
    Bump(g_alloc_stats.injected_failures);
    return ResourceExhaustedError(
        "injected allocation failure (failpoint alloc.mmap, " +
        std::to_string(bytes) + " bytes)");
  }

#if defined(__linux__)
  if (bytes >= kMmapThreshold) {
    Bump(g_alloc_stats.mmap_allocations);
    const std::size_t align = policy == PagePolicy::kSmall
                                  ? std::max(alignment, kSmallPageSize)
                                  : std::max(alignment, kHugePageSize);
    // Reserve enough to carve out an aligned region plus a header page.
    const std::size_t length =
        RoundUp(bytes, kSmallPageSize) + align + kSmallPageSize;
    void* raw = ::mmap(nullptr, length, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw == MAP_FAILED) {
      Bump(g_alloc_stats.mmap_failures);
      return ResourceExhaustedError("mmap of " + std::to_string(length) +
                                    " bytes failed");
    }

    const auto raw_addr = reinterpret_cast<std::uintptr_t>(raw);
    std::uintptr_t user_addr =
        RoundUp(raw_addr + kSmallPageSize, align);
    void* user = reinterpret_cast<void*>(user_addr);

    if (policy == PagePolicy::kHuge) {
      bool advised = false;
#if defined(MADV_HUGEPAGE)
      if (!MMJOIN_FAILPOINT("alloc.madvise_huge")) {
        advised =
            ::madvise(user, RoundUp(bytes, kHugePageSize), MADV_HUGEPAGE) == 0;
      }
#endif
      // Degrade gracefully: the mapping stays valid on default pages. A
      // host without THP degrades every large allocation, so only the
      // first fallback warns; the rest log at debug (all are counted).
      if (!advised) {
        Bump(g_alloc_stats.huge_page_fallbacks);
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true, std::memory_order_relaxed)) {
          MMJOIN_LOG(kWarn, "mem.huge_fallback")
              .Field("bytes", static_cast<uint64_t>(bytes))
              .Field("note", "madvise(MADV_HUGEPAGE) failed; "
                             "further fallbacks log at debug");
        } else {
          MMJOIN_LOG(kDebug, "mem.huge_fallback")
              .Field("bytes", static_cast<uint64_t>(bytes));
        }
      }
    } else if (policy == PagePolicy::kSmall) {
#if defined(MADV_NOHUGEPAGE)
      // Best effort: failure just means the system default page policy.
      (void)::madvise(raw, length, MADV_NOHUGEPAGE);
#endif
    }

    auto* tag = reinterpret_cast<MmapTag*>(user_addr - sizeof(MmapTag));
    tag->base = raw;
    tag->length = length;
    AddResident(bytes);
    return user;
  }
#endif  // __linux__

  // No madvise control below the mmap threshold: a huge-page request
  // degrades to whatever the C library hands back.
  if (policy == PagePolicy::kHuge) Bump(g_alloc_stats.huge_page_fallbacks);
  void* ptr = nullptr;
  if (::posix_memalign(&ptr, alignment, RoundUp(bytes, alignment)) != 0) {
    Bump(g_alloc_stats.mmap_failures);
    return ResourceExhaustedError("posix_memalign of " +
                                  std::to_string(bytes) + " bytes failed");
  }
  std::memset(ptr, 0, bytes);
  AddResident(bytes);
  return ptr;
}

void* AllocateAligned(std::size_t bytes, std::size_t alignment,
                      PagePolicy policy) {
  StatusOr<void*> result = TryAllocateAligned(bytes, alignment, policy);
  return result.ok() ? *result : nullptr;
}

void FreeAligned(void* ptr, std::size_t bytes) {
  if (ptr == nullptr) return;
  SubResident(bytes);
#if defined(__linux__)
  if (bytes >= kMmapThreshold) {
    auto* tag = reinterpret_cast<MmapTag*>(
        reinterpret_cast<std::uintptr_t>(ptr) - sizeof(MmapTag));
    ::munmap(tag->base, tag->length);
    return;
  }
#endif
  (void)bytes;
  std::free(ptr);
}

void PrefaultPages(void* ptr, std::size_t bytes) {
  auto* bytes_ptr = static_cast<volatile char*>(ptr);
  for (std::size_t off = 0; off < bytes; off += kSmallPageSize) {
    bytes_ptr[off] = bytes_ptr[off];
  }
  if (bytes > 0) bytes_ptr[bytes - 1] = bytes_ptr[bytes - 1];
}

}  // namespace mmjoin::mem
