#include "mem/aligned_alloc.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "util/bits.h"
#include "util/macros.h"

namespace mmjoin::mem {
namespace {

// Allocations at or above this size go through mmap so we can madvise page
// policy; smaller ones use the C library.
constexpr std::size_t kMmapThreshold = 1 << 20;

struct MmapTag {
  // We over-allocate by one small page to stash this header, so Free can
  // reconstruct the mapping base and length.
  void* base;
  std::size_t length;
};

}  // namespace

void* AllocateAligned(std::size_t bytes, std::size_t alignment,
                      PagePolicy policy) {
  MMJOIN_CHECK(IsPowerOfTwo(alignment) && alignment >= 64);
  if (bytes == 0) bytes = alignment;

#if defined(__linux__)
  if (bytes >= kMmapThreshold) {
    const std::size_t align = policy == PagePolicy::kSmall
                                  ? std::max(alignment, kSmallPageSize)
                                  : std::max(alignment, kHugePageSize);
    // Reserve enough to carve out an aligned region plus a header page.
    const std::size_t length =
        RoundUp(bytes, kSmallPageSize) + align + kSmallPageSize;
    void* raw = ::mmap(nullptr, length, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw == MAP_FAILED) return nullptr;

    const auto raw_addr = reinterpret_cast<std::uintptr_t>(raw);
    std::uintptr_t user_addr =
        RoundUp(raw_addr + kSmallPageSize, align);
    void* user = reinterpret_cast<void*>(user_addr);

#if defined(MADV_HUGEPAGE)
    if (policy == PagePolicy::kHuge) {
      ::madvise(user, RoundUp(bytes, kHugePageSize), MADV_HUGEPAGE);
    } else if (policy == PagePolicy::kSmall) {
      ::madvise(raw, length, MADV_NOHUGEPAGE);
    }
#endif

    auto* tag = reinterpret_cast<MmapTag*>(user_addr - sizeof(MmapTag));
    tag->base = raw;
    tag->length = length;
    return user;
  }
#endif  // __linux__

  (void)policy;
  void* ptr = nullptr;
  if (::posix_memalign(&ptr, alignment, RoundUp(bytes, alignment)) != 0) {
    return nullptr;
  }
  std::memset(ptr, 0, bytes);
  return ptr;
}

void FreeAligned(void* ptr, std::size_t bytes) {
  if (ptr == nullptr) return;
#if defined(__linux__)
  if (bytes >= kMmapThreshold) {
    auto* tag = reinterpret_cast<MmapTag*>(
        reinterpret_cast<std::uintptr_t>(ptr) - sizeof(MmapTag));
    ::munmap(tag->base, tag->length);
    return;
  }
#endif
  (void)bytes;
  std::free(ptr);
}

void PrefaultPages(void* ptr, std::size_t bytes) {
  auto* bytes_ptr = static_cast<volatile char*>(ptr);
  for (std::size_t off = 0; off < bytes; off += kSmallPageSize) {
    bytes_ptr[off] = bytes_ptr[off];
  }
  if (bytes > 0) bytes_ptr[bytes - 1] = bytes_ptr[bytes - 1];
}

}  // namespace mmjoin::mem
