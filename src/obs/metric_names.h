// The single machine-readable registry of metric names: every counter a
// provider or AddCounter call can emit, and every histogram the process can
// create.
//
// The `registry-drift` rule of scripts/mmjoin_lint parses these X-macros and
// cross-checks them against (a) every counter/histogram name literal in
// src/ -- `AddCounter("...")`, `Metric{"..."}`, `GetHistogram("...")` -- and
// (b) the counter and histogram tables in docs/OBSERVABILITY.md. A name
// used but not registered, registered but never emitted, or registered but
// undocumented fails CI, so the exported `mmjoin.metrics.v1` vocabulary
// cannot drift from its documentation.
//
// Format rule for the lint parser: one `X("name")` per line, nothing else on
// the line except an optional trailing comment and the macro continuation.

#ifndef MMJOIN_OBS_METRIC_NAMES_H_
#define MMJOIN_OBS_METRIC_NAMES_H_

#include <string_view>

#define MMJOIN_COUNTER_REGISTRY(X)  \
  X("alloc.total_allocations")      \
  X("alloc.mmap_allocations")       \
  X("alloc.huge_page_requests")     \
  X("alloc.huge_page_fallbacks")    \
  X("alloc.mmap_failures")          \
  X("alloc.injected_failures")      \
  X("alloc.numa_degradations")      \
  X("mem.current_bytes")            \
  X("mem.peak_bytes")               \
  X("mem.budget_reservations")      \
  X("mem.budget_rejections")        \
  X("mem.budget_replans")           \
  X("mem.budget_waves")             \
  X("mem.budget_wave_rounds")       \
  X("executor.threads_spawned")     \
  X("executor.dispatches")          \
  X("executor.barrier_wait_ns")     \
  X("executor.idle_ns")             \
  X("numa.local_read_bytes")        \
  X("numa.remote_read_bytes")       \
  X("numa.local_write_bytes")       \
  X("numa.remote_write_bytes")      \
  X("join.runs")                    \
  X("join.tasks_seeded")            \
  X("join.skew_slices")             \
  X("join.skew_partitions")         \
  X("join.tasks_stolen")            \
  X("join.steal_remote_reads")     \
  X("trace.spans_recorded")         \
  X("trace.spans_dropped")          \
  X("obs.trace_dropped_spans")      \
  X("log.events_debug")             \
  X("log.events_info")              \
  X("log.events_warn")              \
  X("log.events_error")             \
  X("log.events_suppressed")        \
  X("exec.pipelines")               \
  X("exec.boundary_chunks_in")      \
  X("exec.boundary_rows_in")        \
  X("exec.chunks_emitted")          \
  X("exec.rows_compacted")          \
  X("exec.compaction_flushes")      \
  X("service.jobs_submitted")       \
  X("service.jobs_rejected")        \
  X("service.jobs_completed")       \
  X("service.jobs_failed")

#define MMJOIN_HISTOGRAM_REGISTRY(X)    \
  X("join.latency_ns")                  \
  X("join.phase_ns.partition.pass1")    \
  X("join.phase_ns.partition.pass2")    \
  X("join.phase_ns.build")              \
  X("join.phase_ns.probe")              \
  X("join.phase_ns.sort")               \
  X("join.phase_ns.merge")              \
  X("join.phase_ns.materialize")        \
  X("join.steals_per_dispatch")         \
  X("exec.chunk_fill_pct")              \
  X("service.queue_wait_ns")            \
  X("service.job_latency_ns")

namespace mmjoin::obs {

inline constexpr std::string_view kRegisteredCounterNames[] = {
#define MMJOIN_METRIC_NAMES_ENTRY(name) name,
    MMJOIN_COUNTER_REGISTRY(MMJOIN_METRIC_NAMES_ENTRY)
#undef MMJOIN_METRIC_NAMES_ENTRY
};

inline constexpr std::string_view kRegisteredHistogramNames[] = {
#define MMJOIN_METRIC_NAMES_ENTRY(name) name,
    MMJOIN_HISTOGRAM_REGISTRY(MMJOIN_METRIC_NAMES_ENTRY)
#undef MMJOIN_METRIC_NAMES_ENTRY
};

constexpr bool IsRegisteredCounterName(std::string_view name) {
  for (const std::string_view registered : kRegisteredCounterNames) {
    if (registered == name) return true;
  }
  return false;
}

constexpr bool IsRegisteredHistogramName(std::string_view name) {
  for (const std::string_view registered : kRegisteredHistogramNames) {
    if (registered == name) return true;
  }
  return false;
}

}  // namespace mmjoin::obs

#endif  // MMJOIN_OBS_METRIC_NAMES_H_
