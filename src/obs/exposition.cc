#include "obs/exposition.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"

namespace mmjoin::obs {
namespace {

void AppendU64(std::string* out, uint64_t value) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%llu",
                              static_cast<unsigned long long>(value));
  out->append(buf, static_cast<size_t>(n));
}

bool PrometheusNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  std::string out = "mmjoin_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    out.push_back(PrometheusNameChar(c) ? c : '_');
  }
  return out;
}

std::string WriteExposition() {
  const MetricsRegistry& registry = MetricsRegistry::Get();
  std::string out;
  out.reserve(4096);

  for (const Metric& metric : registry.Snapshot()) {
    const std::string name = SanitizeMetricName(metric.name);
    out += "# TYPE ";
    out += name;
    out += " counter\n";
    out += name;
    out += "_total ";
    AppendU64(&out, metric.value);
    out += '\n';
  }

  for (const NamedHistogram& h : registry.SnapshotHistograms()) {
    const std::string name = SanitizeMetricName(h.name);
    out += "# TYPE ";
    out += name;
    out += " histogram\n";
    uint64_t cumulative = 0;
    for (uint32_t b = 0; b < h.snapshot.buckets.size(); ++b) {
      if (h.snapshot.buckets[b] == 0) continue;
      cumulative += h.snapshot.buckets[b];
      out += name;
      out += "_bucket{le=\"";
      AppendU64(&out, Histogram::BucketUpperBound(b));
      out += "\"} ";
      AppendU64(&out, cumulative);
      out += '\n';
    }
    out += name;
    out += "_bucket{le=\"+Inf\"} ";
    AppendU64(&out, h.snapshot.count);
    out += '\n';
    out += name;
    out += "_sum ";
    AppendU64(&out, h.snapshot.sum);
    out += '\n';
    out += name;
    out += "_count ";
    AppendU64(&out, h.snapshot.count);
    out += '\n';
  }

  out += "# EOF\n";
  return out;
}

Status WriteExpositionFile(const std::string& path) {
  const std::string text = WriteExposition();
  if (path.empty() || path == "-" || path == "stderr") {
    std::fwrite(text.data(), 1, text.size(), stderr);
    std::fflush(stderr);
    return OkStatus();
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError("cannot open exposition file '" + path +
                            "' for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const int close_rc = std::fclose(file);
  if (written != text.size() || close_rc != 0) {
    return UnavailableError("short write to exposition file '" + path + "'");
  }
  return OkStatus();
}

}  // namespace mmjoin::obs
