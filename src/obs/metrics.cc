#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"
#include "util/log.h"

namespace mmjoin::obs {

MetricsRegistry& MetricsRegistry::Get() {
  // Leaked like the trace recorder: providers registered from static
  // initializers must stay callable during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::RegisterProvider(const std::string& key,
                                       Provider provider) {
  MutexLock lock(mutex_);
  providers_[key] = std::move(provider);
}

void MetricsRegistry::AddCounter(const std::string& name, uint64_t delta) {
  MutexLock lock(mutex_);
  counters_[name] += delta;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<Metric> MetricsRegistry::Snapshot() const {
  std::vector<Metric> metrics;
  std::vector<Provider> providers;
  {
    MutexLock lock(mutex_);
    providers.reserve(providers_.size());
    for (const auto& [key, provider] : providers_) providers.push_back(provider);
    for (const auto& [name, value] : counters_) {
      metrics.push_back(Metric{name, value});
    }
  }
  // Providers run outside the lock: they may take subsystem locks of their
  // own (executor stats) that must not nest under ours.
  for (const Provider& provider : providers) provider(&metrics);
  std::sort(metrics.begin(), metrics.end(),
            [](const Metric& a, const Metric& b) { return a.name < b.name; });
  return metrics;
}

std::map<std::string, uint64_t> MetricsRegistry::SnapshotMap() const {
  std::map<std::string, uint64_t> map;
  for (const Metric& metric : Snapshot()) map[metric.name] = metric.value;
  return map;
}

std::vector<NamedHistogram> MetricsRegistry::SnapshotHistograms() const {
  // Collect stable pointers under the lock, merge shards outside it:
  // histograms are never removed, so the pointers outlive the lock.
  std::vector<std::pair<std::string, const Histogram*>> live;
  {
    MutexLock lock(mutex_);
    live.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      live.emplace_back(name, histogram.get());
    }
  }
  std::vector<NamedHistogram> out;
  out.reserve(live.size());
  for (const auto& [name, histogram] : live) {
    out.push_back(NamedHistogram{name, histogram->Snapshot()});
  }
  return out;
}

namespace {

void AppendCount(std::string* out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  *out += buf;
}

}  // namespace

std::string MetricsRegistry::Json() const {
  const std::vector<Metric> metrics = Snapshot();
  std::string out = "{\"schema\":\"mmjoin.metrics.v1\",\"counters\":{";
  bool first = true;
  for (const Metric& metric : metrics) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += metric.name;  // names are code-controlled identifiers, no escaping
    out += "\":";
    AppendCount(&out, metric.value);
  }
  out += '}';
  const std::vector<NamedHistogram> histograms = SnapshotHistograms();
  if (!histograms.empty()) {
    out += ",\"histograms\":{";
    first = true;
    for (const NamedHistogram& h : histograms) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += h.name;
      out += "\":{\"count\":";
      AppendCount(&out, h.snapshot.count);
      out += ",\"sum\":";
      AppendCount(&out, h.snapshot.sum);
      out += ",\"max\":";
      AppendCount(&out, h.snapshot.max);
      out += ",\"p50\":";
      AppendCount(&out, h.snapshot.P50());
      out += ",\"p95\":";
      AppendCount(&out, h.snapshot.P95());
      out += ",\"p99\":";
      AppendCount(&out, h.snapshot.P99());
      // Sparse [upper_bound, count] pairs for the non-empty buckets only;
      // counts are per-bucket, not cumulative.
      out += ",\"buckets\":[";
      bool first_bucket = true;
      for (uint32_t b = 0; b < h.snapshot.buckets.size(); ++b) {
        if (h.snapshot.buckets[b] == 0) continue;
        if (!first_bucket) out += ',';
        first_bucket = false;
        out += '[';
        AppendCount(&out, Histogram::BucketUpperBound(b));
        out += ',';
        AppendCount(&out, h.snapshot.buckets[b]);
        out += ']';
      }
      out += "]}";
    }
    out += '}';
  }
  out += '}';
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError("cannot open metrics file '" + path +
                            "' for writing");
  }
  const std::string json = Json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  const int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    return UnavailableError("short write to metrics file '" + path + "'");
  }
  return OkStatus();
}

namespace {

// The trace recorder reports on itself through the same registry.
// `obs.trace_dropped_spans` is the canonical overflow alarm
// (check_metrics.py warns when nonzero); `trace.spans_dropped` is the same
// value under the original PR 3 name, kept for compatibility.
const MetricsProviderRegistration kTraceProvider(
    "trace", [](std::vector<Metric>* metrics) {
      TraceRecorder& recorder = TraceRecorder::Get();
      metrics->push_back(Metric{"trace.spans_recorded",
                                recorder.recorded_spans()});
      metrics->push_back(Metric{"trace.spans_dropped",
                                recorder.dropped_spans()});
      metrics->push_back(Metric{"obs.trace_dropped_spans",
                                recorder.dropped_spans()});
    });

// The structured event log (util/log.h) sits below obs in the build graph,
// so its registry hookup lives here rather than in util/.
const MetricsProviderRegistration kLogProvider(
    "log", [](std::vector<Metric>* metrics) {
      const logging::LogStats stats = logging::GetLogStats();
      metrics->push_back(Metric{
          "log.events_debug",
          stats.emitted[static_cast<int>(logging::LogLevel::kDebug)]});
      metrics->push_back(Metric{
          "log.events_info",
          stats.emitted[static_cast<int>(logging::LogLevel::kInfo)]});
      metrics->push_back(Metric{
          "log.events_warn",
          stats.emitted[static_cast<int>(logging::LogLevel::kWarn)]});
      metrics->push_back(Metric{
          "log.events_error",
          stats.emitted[static_cast<int>(logging::LogLevel::kError)]});
      metrics->push_back(Metric{"log.events_suppressed", stats.suppressed});
    });

}  // namespace

}  // namespace mmjoin::obs
