#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"

namespace mmjoin::obs {

MetricsRegistry& MetricsRegistry::Get() {
  // Leaked like the trace recorder: providers registered from static
  // initializers must stay callable during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::RegisterProvider(const std::string& key,
                                       Provider provider) {
  MutexLock lock(mutex_);
  providers_[key] = std::move(provider);
}

void MetricsRegistry::AddCounter(const std::string& name, uint64_t delta) {
  MutexLock lock(mutex_);
  counters_[name] += delta;
}

std::vector<Metric> MetricsRegistry::Snapshot() const {
  std::vector<Metric> metrics;
  std::vector<Provider> providers;
  {
    MutexLock lock(mutex_);
    providers.reserve(providers_.size());
    for (const auto& [key, provider] : providers_) providers.push_back(provider);
    for (const auto& [name, value] : counters_) {
      metrics.push_back(Metric{name, value});
    }
  }
  // Providers run outside the lock: they may take subsystem locks of their
  // own (executor stats) that must not nest under ours.
  for (const Provider& provider : providers) provider(&metrics);
  std::sort(metrics.begin(), metrics.end(),
            [](const Metric& a, const Metric& b) { return a.name < b.name; });
  return metrics;
}

std::string MetricsRegistry::Json() const {
  const std::vector<Metric> metrics = Snapshot();
  std::string out = "{\"schema\":\"mmjoin.metrics.v1\",\"counters\":{";
  char buf[64];
  bool first = true;
  for (const Metric& metric : metrics) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += metric.name;  // names are code-controlled identifiers, no escaping
    out += "\":";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(metric.value));
    out += buf;
  }
  out += "}}";
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError("cannot open metrics file '" + path +
                            "' for writing");
  }
  const std::string json = Json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  const int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    return UnavailableError("short write to metrics file '" + path + "'");
  }
  return OkStatus();
}

namespace {

// The trace recorder reports on itself through the same registry.
const MetricsProviderRegistration kTraceProvider(
    "trace", [](std::vector<Metric>* metrics) {
      TraceRecorder& recorder = TraceRecorder::Get();
      metrics->push_back(Metric{"trace.spans_recorded",
                                recorder.recorded_spans()});
      metrics->push_back(Metric{"trace.spans_dropped",
                                recorder.dropped_spans()});
    });

}  // namespace

}  // namespace mmjoin::obs
