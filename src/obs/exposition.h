// OpenMetrics / Prometheus text exposition of the MetricsRegistry.
//
// WriteExposition() renders every registry counter as a `counter` family
// and every registered histogram as a `histogram` family with cumulative
// `_bucket{le="..."}` samples, `_sum`, and `_count`, terminated by the
// OpenMetrics `# EOF` marker. Only non-empty buckets get an explicit `le`
// boundary (plus the mandatory `+Inf`), so scrapes stay small while
// quantiles remain derivable from the cumulative counts.
//
// Metric names are sanitized to the Prometheus charset ([a-zA-Z0-9_:],
// dots become underscores) and prefixed `mmjoin_`; counter samples carry
// the OpenMetrics `_total` suffix.
//
// Consumers: `run_join --listen=PORT` (obs/stats_server.h) serves this at
// /metrics, SIGUSR1 dumps it to a file, and `scripts/check_metrics.py
// --kind=exposition` validates it.

#ifndef MMJOIN_OBS_EXPOSITION_H_
#define MMJOIN_OBS_EXPOSITION_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace mmjoin::obs {

// Full exposition of the current MetricsRegistry state.
std::string WriteExposition();

// WriteExposition() to `path` ("-" or "stderr" for stderr).
Status WriteExpositionFile(const std::string& path);

// `mmjoin_` + name with every character outside [a-zA-Z0-9_:] replaced by
// '_'. Exposed for tests.
std::string SanitizeMetricName(std::string_view name);

}  // namespace mmjoin::obs

#endif  // MMJOIN_OBS_EXPOSITION_H_
