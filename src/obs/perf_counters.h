// Hardware performance counters via perf_event_open.
//
// The paper's whitebox analysis (Section 5, Figure 3) attributes cycles,
// cache misses, and TLB misses to individual join phases. PerfCounters opens
// the four events the study uses -- cycles, instructions, LLC misses, dTLB
// read misses -- for the calling thread and reads them as point samples;
// subtracting two samples yields the per-phase delta.
//
// The syscall is frequently denied (perf_event_paranoid >= 2 without
// CAP_PERFMON, seccomp-filtered containers, non-Linux hosts) or individual
// events may be unsupported (VMs without a PMU). All of that degrades
// gracefully: status() reports Unavailable, Read() returns false, and
// callers fall back to wall-clock-only profiles. The `obs.perf_open`
// failpoint forces the denied path for tests.

#ifndef MMJOIN_OBS_PERF_COUNTERS_H_
#define MMJOIN_OBS_PERF_COUNTERS_H_

#include <cstdint>

#include "util/status.h"

namespace mmjoin::obs {

// One point sample of the hardware counters. Events that could not be
// opened read as 0.
struct CounterSample {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t dtlb_misses = 0;
};

// Difference of two samples. `valid` is false when the counters were
// unavailable (the numeric fields are then meaningless zeros).
struct CounterDelta {
  bool valid = false;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t dtlb_misses = 0;

  CounterDelta& operator+=(const CounterDelta& other) {
    valid = valid || other.valid;
    cycles += other.cycles;
    instructions += other.instructions;
    llc_misses += other.llc_misses;
    dtlb_misses += other.dtlb_misses;
    return *this;
  }
};

inline CounterDelta Subtract(const CounterSample& end,
                             const CounterSample& begin) {
  CounterDelta delta;
  delta.valid = true;
  delta.cycles = end.cycles - begin.cycles;
  delta.instructions = end.instructions - begin.instructions;
  delta.llc_misses = end.llc_misses - begin.llc_misses;
  delta.dtlb_misses = end.dtlb_misses - begin.dtlb_misses;
  return delta;
}

// Per-thread counter group. Construct on the thread that will be measured;
// the events follow that thread across CPUs.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  // OK when at least the cycles event opened; Unavailable otherwise, with a
  // message naming the errno (EACCES/EPERM for perf_event_paranoid, ENOENT
  // for missing PMU support, ENOSYS off Linux).
  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

  // Samples the counters. Returns false (sample untouched) when unavailable.
  bool Read(CounterSample* sample) const;

  // Lazily-created counters for the calling thread; never null. The instance
  // lives until thread exit, so repeated phase scopes on executor workers
  // reuse one set of fds.
  static PerfCounters* ThreadLocal();

  // True when this process can open at least the cycles event (probed once).
  static bool Available();

 private:
  static constexpr int kNumEvents = 4;
  int fds_[kNumEvents] = {-1, -1, -1, -1};
  Status status_;
};

}  // namespace mmjoin::obs

#endif  // MMJOIN_OBS_PERF_COUNTERS_H_
