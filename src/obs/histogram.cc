#include "obs/histogram.h"

#include <bit>
#include <cmath>

namespace mmjoin::obs {
namespace {

// Dense thread-slot ids so shard occupancy starts at 0 regardless of how
// many threads the process has churned through before the first Record.
uint32_t ThreadSlot() {
  static std::atomic<uint32_t> next_slot{0};
  thread_local uint32_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot % Histogram::kMaxShards;
}

}  // namespace

uint32_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<uint32_t>(value);
  const uint32_t exponent = static_cast<uint32_t>(std::bit_width(value)) - 1;
  const uint32_t sub = static_cast<uint32_t>(
      (value >> (exponent - kSubBucketBits)) & (kSubBuckets - 1));
  return (exponent - kSubBucketBits + 1) * kSubBuckets + sub;
}

uint64_t Histogram::BucketUpperBound(uint32_t index) {
  if (index < kSubBuckets) return index;
  const uint32_t exponent = index / kSubBuckets - 1 + kSubBucketBits;
  const uint32_t sub = index % kSubBuckets;
  const uint32_t shift = exponent - kSubBucketBits;
  const uint64_t lower =
      (static_cast<uint64_t>(kSubBuckets) + sub) << shift;
  return lower + ((uint64_t{1} << shift) - 1);
}

Histogram::~Histogram() {
  for (uint32_t i = 0; i < kMaxShards; ++i) {
    delete shards_[i].load(std::memory_order_acquire);
  }
}

Histogram::Shard* Histogram::InstallShard(uint32_t slot) {
  Shard* fresh = new Shard;
  Shard* expected = nullptr;
  if (shards_[slot].compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
    return fresh;
  }
  delete fresh;  // another thread on the same slot won the race
  return expected;
}

void Histogram::Record(uint64_t value) {
  const uint32_t slot = ThreadSlot();
  Shard* shard = shards_[slot].load(std::memory_order_acquire);
  if (shard == nullptr) shard = InstallShard(slot);
  shard->counts[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard->sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = shard->max.load(std::memory_order_relaxed);
  while (seen < value && !shard->max.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed,
                             std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.buckets.assign(kNumBuckets, 0);
  for (uint32_t i = 0; i < kMaxShards; ++i) {
    const Shard* shard = shards_[i].load(std::memory_order_acquire);
    if (shard == nullptr) continue;
    for (uint32_t b = 0; b < kNumBuckets; ++b) {
      const uint64_t n = shard->counts[b].load(std::memory_order_relaxed);
      snapshot.buckets[b] += n;
      snapshot.count += n;
    }
    snapshot.sum += shard->sum.load(std::memory_order_relaxed);
    const uint64_t shard_max = shard->max.load(std::memory_order_relaxed);
    if (shard_max > snapshot.max) snapshot.max = shard_max;
  }
  return snapshot;
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (uint32_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) return Histogram::BucketUpperBound(b);
  }
  return max;
}

}  // namespace mmjoin::obs
