#include "obs/stats_server.h"

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "util/log.h"

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#endif

namespace mmjoin::obs {

#ifdef __linux__

namespace {

// One full HTTP/1.0 response; `body` is copied verbatim after the headers.
std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(code);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return;  // peer went away; nothing to recover
    off += static_cast<size_t>(n);
  }
}

// First request line up to the first CR/LF; one read is enough for the
// tiny GET requests curl and Prometheus send.
std::string RequestPath(int fd) {
  char buf[2048];
  const ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  // "GET <path> HTTP/1.x"
  const char* start = std::strchr(buf, ' ');
  if (start == nullptr) return "";
  ++start;
  const char* end = start;
  while (*end != '\0' && *end != ' ' && *end != '\r' && *end != '\n') ++end;
  return std::string(start, static_cast<size_t>(end - start));
}

constexpr char kOpenMetricsContentType[] =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

}  // namespace

Status StatsServer::Start(int port) {
  if (running_.load(std::memory_order_acquire)) {
    return UnavailableError("stats server already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError("stats server: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return UnavailableError("stats server: cannot bind port " +
                            std::to_string(port));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return UnavailableError("stats server: getsockname() failed");
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(addr.sin_port));
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  MMJOIN_LOG(kInfo, "stats_server.start").Field("port", port_);
  return OkStatus();
}

void StatsServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (stop-flag check) or EINTR
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // The loop serves clients one at a time with blocking read/write, so a
    // peer that connects and goes silent (or stops draining the response)
    // must not wedge the endpoint: bound both directions with the
    // configured deadline. read()/write() then fail with EAGAIN and the
    // loop moves on to the next connection.
    if (client_io_timeout_ms_ > 0) {
      timeval tv{};
      tv.tv_sec = client_io_timeout_ms_ / 1000;
      tv.tv_usec = (client_io_timeout_ms_ % 1000) * 1000;
      ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    const std::string path = RequestPath(client);
    if (path == "/metrics" || path == "/") {
      WriteAll(client, HttpResponse(200, "OK", kOpenMetricsContentType,
                                    WriteExposition()));
    } else if (path == "/metrics.json") {
      WriteAll(client, HttpResponse(200, "OK", "application/json",
                                    MetricsRegistry::Get().Json()));
    } else {
      WriteAll(client,
               HttpResponse(404, "Not Found", "text/plain", "not found\n"));
    }
    ::close(client);
  }
}

void StatsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  MMJOIN_LOG(kInfo, "stats_server.stop").Field("port", port_);
}

StatsServer::~StatsServer() { Stop(); }

namespace {

// Set from the signal handler; only lock-free atomic stores are
// async-signal-safe, which is why the handler does nothing else.
std::atomic<uint32_t> g_sigusr1_pending{0};
static_assert(std::atomic<uint32_t>::is_always_lock_free);

void Sigusr1Handler(int) {
  g_sigusr1_pending.store(1, std::memory_order_relaxed);
}

}  // namespace

Status InstallSigusr1ExpositionDump(const std::string& path) {
  static std::atomic<bool> installed{false};
  if (installed.exchange(true, std::memory_order_acq_rel)) {
    return OkStatus();  // first installation wins
  }
  struct sigaction action {};
  action.sa_handler = Sigusr1Handler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (::sigaction(SIGUSR1, &action, nullptr) != 0) {
    return UnavailableError("cannot install SIGUSR1 handler");
  }
  // The watcher thread outlives every caller; detached by design.
  std::thread([path] {
    while (true) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (g_sigusr1_pending.exchange(0, std::memory_order_acq_rel) == 0) {
        continue;
      }
      const Status status = WriteExpositionFile(path);
      if (status.ok()) {
        MMJOIN_LOG(kInfo, "metrics.sigusr1_dump").Field("path", path);
      } else {
        MMJOIN_LOG(kWarn, "metrics.sigusr1_dump_failed")
            .Field("path", path)
            .Field("status", status.ToString());
      }
    }
  }).detach();
  MMJOIN_LOG(kInfo, "metrics.sigusr1_dump_armed").Field("path", path);
  return OkStatus();
}

#else  // !__linux__

Status StatsServer::Start(int) {
  return UnavailableError("stats server requires Linux");
}
void StatsServer::Serve() {}
void StatsServer::Stop() {}
StatsServer::~StatsServer() = default;

Status InstallSigusr1ExpositionDump(const std::string&) {
  return UnavailableError("SIGUSR1 dump requires Linux");
}

#endif  // __linux__

}  // namespace mmjoin::obs
