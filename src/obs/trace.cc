#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace mmjoin::obs {
namespace {

std::atomic<int> g_next_unlabeled_tid{kUnlabeledThreadIdBase};

thread_local int t_obs_tid = -1;

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kPartition:
      return "partition";
    case SpanKind::kBuild:
      return "build";
    case SpanKind::kProbe:
      return "probe";
    case SpanKind::kSort:
      return "sort";
    case SpanKind::kMerge:
      return "merge";
    case SpanKind::kMaterialize:
      return "materialize";
    case SpanKind::kDispatch:
      return "dispatch";
    case SpanKind::kBarrier:
      return "barrier";
    case SpanKind::kIdle:
      return "idle";
    case SpanKind::kRun:
      return "run";
    case SpanKind::kOther:
      return "other";
  }
  return "other";
}

int CurrentThreadId() {
  if (t_obs_tid < 0) {
    t_obs_tid = g_next_unlabeled_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return t_obs_tid;
}

void SetCurrentThreadId(int tid) { t_obs_tid = tid; }

TraceRecorder& TraceRecorder::Get() {
  // Intentionally leaked: executor workers may record during static
  // destruction of harness objects.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void Enable() { TraceRecorder::Get().SetEnabled(true); }
void Disable() { TraceRecorder::Get().SetEnabled(false); }

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  thread_local ThreadBuffer* t_buffer = nullptr;
  if (MMJOIN_UNLIKELY(t_buffer == nullptr)) {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->spans.resize(kSpansPerThread);
    t_buffer = buffer.get();
    MutexLock lock(registry_mutex_);
    buffers_.push_back(std::move(buffer));
  }
  return t_buffer;
}

void TraceRecorder::Record(const char* name, SpanKind kind, int64_t start_ns,
                           int64_t end_ns) {
  ThreadBuffer* buffer = BufferForThisThread();
  const std::size_t index = buffer->count.load(std::memory_order_relaxed);
  if (MMJOIN_UNLIKELY(index >= kSpansPerThread)) {
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->spans[index] =
      Span{name, kind, CurrentThreadId(), start_ns, end_ns};
  // Release-publish the slot so a concurrent Snapshot never reads a
  // half-written span.
  buffer->count.store(index + 1, std::memory_order_release);
}

std::vector<Span> TraceRecorder::Snapshot() const {
  std::vector<Span> all;
  {
    MutexLock lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      const std::size_t count = buffer->count.load(std::memory_order_acquire);
      all.insert(all.end(), buffer->spans.begin(),
                 buffer->spans.begin() + static_cast<std::ptrdiff_t>(count));
    }
  }
  std::sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.start_ns < b.start_ns;
  });
  return all;
}

void TraceRecorder::Clear() {
  MutexLock lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    buffer->count.store(0, std::memory_order_release);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
}

uint64_t TraceRecorder::recorded_spans() const {
  MutexLock lock(registry_mutex_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->count.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t TraceRecorder::dropped_spans() const {
  MutexLock lock(registry_mutex_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::string TraceRecorder::ChromeTraceJson() const {
  const std::vector<Span> spans = Snapshot();
  std::string out;
  out.reserve(spans.size() * 96 + 64);
  char buf[256];
  // Extra top-level keys are legal in the trace-event format; `metadata`
  // lets check_metrics.py --kind=trace warn on ring-buffer overflow instead
  // of silently trusting a truncated timeline.
  std::snprintf(buf, sizeof(buf),
                "{\"displayTimeUnit\":\"ms\",\"metadata\":{"
                "\"recorded_spans\":%llu,\"dropped_spans\":%llu},"
                "\"traceEvents\":[",
                static_cast<unsigned long long>(recorded_spans()),
                static_cast<unsigned long long>(dropped_spans()));
  out += buf;
  bool first = true;
  for (const Span& span : spans) {
    if (!first) out += ',';
    first = false;
    // Timestamps/durations in microseconds, as the trace-event format
    // specifies. %.3f keeps nanosecond resolution.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}",
                  span.name, SpanKindName(span.kind),
                  static_cast<double>(span.start_ns) / 1e3,
                  static_cast<double>(span.end_ns - span.start_ns) / 1e3,
                  span.tid);
    out += buf;
  }
  out += "]}";
  return out;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError("cannot open trace file '" + path +
                            "' for writing");
  }
  const std::string json = ChromeTraceJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    return UnavailableError("short write to trace file '" + path + "'");
  }
  return OkStatus();
}

}  // namespace mmjoin::obs
