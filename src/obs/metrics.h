// MetricsRegistry: one machine-readable snapshot of every subsystem's
// counters.
//
// Subsystems that own counters (mem's AllocStats, thread's ExecutorStats,
// numa's traffic aggregates, join's task accounting, the trace recorder
// itself) register a *provider* -- a callback that appends current values --
// so the registry never depends on the modules above it in the build graph.
// Snapshot() runs all providers plus the registry's own counters and returns
// a flat, sorted name -> value list; Json() serializes it under the
// `mmjoin.metrics.v1` schema documented in docs/OBSERVABILITY.md.
//
// Providers run only when a snapshot is taken; registering costs one mutex
// acquisition at process startup. AddCounter is a mutex-guarded map update
// intended for per-run (not per-tuple) events such as skew-task counts.

#ifndef MMJOIN_OBS_METRICS_H_
#define MMJOIN_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/status.h"

namespace mmjoin::obs {

struct Metric {
  std::string name;
  uint64_t value;
};

struct NamedHistogram {
  std::string name;
  HistogramSnapshot snapshot;
};

class MetricsRegistry {
 public:
  using Provider = std::function<void(std::vector<Metric>*)>;

  static MetricsRegistry& Get();

  // Registers (or replaces -- registration is idempotent for tests) the
  // provider stored under `key`. Providers must be callable for the process
  // lifetime and thread-safe.
  void RegisterProvider(const std::string& key, Provider provider);

  // Bumps a registry-owned counter (created at 0 on first use).
  void AddCounter(const std::string& name, uint64_t delta);

  // Returns the process-wide histogram registered under `name`, creating it
  // empty on first use. The pointer is stable for the process lifetime; hot
  // sites must cache it (lookup takes the registry mutex, Record does not).
  Histogram* GetHistogram(const std::string& name);

  // Providers' metrics + registry counters, sorted by name.
  std::vector<Metric> Snapshot() const;

  // Snapshot() as a name -> value map; convenient for before/after deltas
  // (EXPLAIN reports) and provider-inclusive lookups in tests.
  std::map<std::string, uint64_t> SnapshotMap() const;

  // All registered histograms, merged across shards, sorted by name.
  std::vector<NamedHistogram> SnapshotHistograms() const;

  // {"schema":"mmjoin.metrics.v1","counters":{...},"histograms":{...}}
  // (the `histograms` key appears only when at least one histogram exists).
  std::string Json() const;
  Status WriteJson(const std::string& path) const;

 private:
  MetricsRegistry() = default;

  mutable Mutex mutex_;
  std::map<std::string, Provider> providers_ MMJOIN_GUARDED_BY(mutex_);
  std::map<std::string, uint64_t> counters_ MMJOIN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      MMJOIN_GUARDED_BY(mutex_);
};

// Helper for static registration from subsystem TUs:
//   namespace { const obs::MetricsProviderRegistration kReg("alloc", ...); }
struct MetricsProviderRegistration {
  MetricsProviderRegistration(const std::string& key,
                              MetricsRegistry::Provider provider) {
    MetricsRegistry::Get().RegisterProvider(key, std::move(provider));
  }
};

}  // namespace mmjoin::obs

#endif  // MMJOIN_OBS_METRICS_H_
