// Lock-free log-bucketed latency histogram (HdrHistogram-style layout).
//
// Values 0..15 land in exact unit buckets; every larger value lands in one
// of 16 linear sub-buckets of its power-of-two range, so the bucket upper
// bound overestimates a recorded value by at most 1/16 (6.25 %) — tight
// enough for p50/p95/p99 operational quantiles while keeping the whole
// bucket array a fixed 976 entries covering the full uint64 range.
//
// Recording is wait-free after a thread's first touch: each thread maps to
// one of kMaxShards shards (dense thread-slot ids, modulo-wrapped beyond
// kMaxShards — counts are atomic, so sharing a shard is benign) and does
// three relaxed RMWs (bucket count, sum, max). Shards are CAS-installed on
// first use and owned by the histogram. Snapshot() merges all shards into a
// plain struct; it is safe concurrently with recording and may miss
// in-flight increments, which is the usual torn-snapshot contract for
// monitoring counters.
//
// Histograms are registered by name in obs::MetricsRegistry (see
// metrics.h); hot call sites should cache the Histogram* — name lookup
// takes the registry mutex, Record() never takes any lock.

#ifndef MMJOIN_OBS_HISTOGRAM_H_
#define MMJOIN_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace mmjoin::obs {

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // per-bucket (non-cumulative) counts

  // Inclusive upper bound of the bucket holding the rank-⌈q·count⌉ value
  // (q clamped to [0,1]); 0 when the histogram is empty. The log-bucket
  // layout bounds the overestimate at 1/16 relative for values ≥ 16.
  uint64_t ValueAtQuantile(double q) const;
  uint64_t P50() const { return ValueAtQuantile(0.50); }
  uint64_t P95() const { return ValueAtQuantile(0.95); }
  uint64_t P99() const { return ValueAtQuantile(0.99); }
};

class Histogram {
 public:
  static constexpr uint32_t kSubBucketBits = 4;
  static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;  // 16
  // 16 exact unit buckets + 16 linear sub-buckets for each exponent
  // kSubBucketBits..63.
  static constexpr uint32_t kNumBuckets =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;  // 976
  static constexpr uint32_t kMaxShards = 128;

  Histogram() {
    for (uint32_t i = 0; i < kMaxShards; ++i) {
      shards_[i].store(nullptr, std::memory_order_relaxed);
    }
  }
  ~Histogram();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static uint32_t BucketIndex(uint64_t value);
  // Inclusive largest value mapping to bucket `index`.
  static uint64_t BucketUpperBound(uint32_t index);

  // Wait-free after this thread's shard exists; never blocks, never
  // allocates on the repeat path.
  void Record(uint64_t value);

  // Merged view across all shards; concurrent-safe (see header comment).
  HistogramSnapshot Snapshot() const;

 private:
  struct Shard {
    std::atomic<uint64_t> counts[kNumBuckets];
    std::atomic<uint64_t> sum;
    std::atomic<uint64_t> max;
    Shard() : sum(0), max(0) {
      for (uint32_t i = 0; i < kNumBuckets; ++i) {
        counts[i].store(0, std::memory_order_relaxed);
      }
    }
  };

  Shard* InstallShard(uint32_t slot);

  // CAS-installed per-thread-slot shards, owned (deleted in ~Histogram).
  std::atomic<Shard*> shards_[kMaxShards];
};

}  // namespace mmjoin::obs

#endif  // MMJOIN_OBS_HISTOGRAM_H_
