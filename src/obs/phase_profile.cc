#include "obs/phase_profile.h"

#include <algorithm>

#include "obs/metrics.h"

namespace mmjoin::obs {
namespace {

// Per-phase latency distributions, fed with one sample per participating
// thread per run so the spread (skew) is visible, not just the mean.
// Pointers cached once: registry lookup locks, Record does not.
Histogram* PhaseLatencyHistogram(int phase) {
  static Histogram* const histograms[kNumJoinPhases] = {
      MetricsRegistry::Get().GetHistogram("join.phase_ns.partition.pass1"),
      MetricsRegistry::Get().GetHistogram("join.phase_ns.partition.pass2"),
      MetricsRegistry::Get().GetHistogram("join.phase_ns.build"),
      MetricsRegistry::Get().GetHistogram("join.phase_ns.probe"),
      MetricsRegistry::Get().GetHistogram("join.phase_ns.sort"),
      MetricsRegistry::Get().GetHistogram("join.phase_ns.merge"),
      MetricsRegistry::Get().GetHistogram("join.phase_ns.materialize"),
  };
  return histograms[phase];
}

}  // namespace

const char* JoinPhaseName(JoinPhase phase) {
  switch (phase) {
    case JoinPhase::kPartitionPass1:
      return "partition.pass1";
    case JoinPhase::kPartitionPass2:
      return "partition.pass2";
    case JoinPhase::kBuild:
      return "build";
    case JoinPhase::kProbe:
      return "probe";
    case JoinPhase::kSort:
      return "sort";
    case JoinPhase::kMerge:
      return "merge";
    case JoinPhase::kMaterialize:
      return "materialize";
  }
  return "unknown";
}

SpanKind JoinPhaseSpanKind(JoinPhase phase) {
  switch (phase) {
    case JoinPhase::kPartitionPass1:
    case JoinPhase::kPartitionPass2:
      return SpanKind::kPartition;
    case JoinPhase::kBuild:
      return SpanKind::kBuild;
    case JoinPhase::kProbe:
      return SpanKind::kProbe;
    case JoinPhase::kSort:
      return SpanKind::kSort;
    case JoinPhase::kMerge:
      return SpanKind::kMerge;
    case JoinPhase::kMaterialize:
      return SpanKind::kMaterialize;
  }
  return SpanKind::kOther;
}

JoinPhaseProfiler::JoinPhaseProfiler(int num_threads)
    : accums_(static_cast<std::size_t>(std::max(num_threads, 1))) {}

void JoinPhaseProfiler::Accumulate(int tid, JoinPhase phase, int64_t ns,
                                   const CounterDelta& delta) {
  if (tid < 0 || tid >= static_cast<int>(accums_.size())) return;
  ThreadAccum& accum = accums_[static_cast<std::size_t>(tid)];
  accum.ns[static_cast<int>(phase)] += ns;
  accum.counters[static_cast<int>(phase)] += delta;
}

PhaseProfile JoinPhaseProfiler::Finish() const {
  PhaseProfile profile;
  for (int p = 0; p < kNumJoinPhases; ++p) {
    PhaseStat& stat = profile.phases[p];
    for (const ThreadAccum& accum : accums_) {
      const int64_t ns = accum.ns[p];
      if (ns == 0 && !accum.counters[p].valid) continue;
      if (stat.threads == 0) {
        stat.min_ns = ns;
        stat.max_ns = ns;
      } else {
        stat.min_ns = std::min(stat.min_ns, ns);
        stat.max_ns = std::max(stat.max_ns, ns);
      }
      ++stat.threads;
      stat.total_ns += ns;
      stat.counters += accum.counters[p];
      if (ns > 0) {
        PhaseLatencyHistogram(p)->Record(static_cast<uint64_t>(ns));
      }
    }
  }
  return profile;
}

void PhaseScope::Begin(int tid, JoinPhase phase) {
  tid_ = tid;
  phase_ = phase;
  have_counters_ = PerfCounters::ThreadLocal()->Read(&start_sample_);
  start_ns_ = NowNanos();
}

void PhaseScope::End() {
  const int64_t end_ns = NowNanos();
  CounterDelta delta;
  if (have_counters_) {
    CounterSample end_sample;
    if (PerfCounters::ThreadLocal()->Read(&end_sample)) {
      delta = Subtract(end_sample, start_sample_);
    }
  }
  profiler_->Accumulate(tid_, phase_, end_ns - start_ns_, delta);
  TraceRecorder::Get().Record(JoinPhaseName(phase_),
                              JoinPhaseSpanKind(phase_), start_ns_, end_ns);
}

}  // namespace mmjoin::obs
