// Minimal blocking HTTP/1.0 stats endpoint + SIGUSR1 exposition dump.
//
// StatsServer binds one listening socket and serves it from one dedicated
// thread: GET /metrics (or /) returns the OpenMetrics exposition
// (obs/exposition.h), GET /metrics.json returns the `mmjoin.metrics.v1`
// snapshot. Responses are HTTP/1.0 with Content-Length and
// `Connection: close`; there is no keep-alive, no TLS, no auth -- this is a
// scrape endpoint for trusted networks, the shape a future join service
// would put behind its own front end. The accept loop polls with a short
// timeout and checks a stop flag, so Stop() (and the destructor) join the
// thread promptly without racing a blocked accept(2).
//
// InstallSigusr1ExpositionDump() covers the no-network case: a sigaction
// handler records delivery in a lock-free atomic (the only async-signal-safe
// part) and a small watcher thread notices and writes the exposition to a
// file. `kill -USR1 <pid>` then dumps current metrics without stopping the
// process.
//
// Both entry points are Linux-only (sockets + signals); on other platforms
// they return UNAVAILABLE. Neither is touched by the observability enable
// gate -- you opted in by starting a server.

#ifndef MMJOIN_OBS_STATS_SERVER_H_
#define MMJOIN_OBS_STATS_SERVER_H_

#include <atomic>
#include <string>
#include <thread>

#include "util/status.h"

namespace mmjoin::obs {

class StatsServer {
 public:
  StatsServer() = default;
  ~StatsServer();  // Stop()s if running

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  // Binds 0.0.0.0:`port` (0 picks an ephemeral port -- see port()) and
  // starts the serving thread. Fails with UNAVAILABLE if the socket cannot
  // be bound or a server is already running.
  Status Start(int port);

  // Stops the serving thread and closes the socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // The bound port (resolved after Start, useful with port 0).
  int port() const { return port_; }

  // Per-client I/O deadline (SO_RCVTIMEO/SO_SNDTIMEO on each accepted
  // socket). The accept loop serves clients one at a time, so without it a
  // client that connects and never sends a request -- or stops reading the
  // response -- wedges the endpoint for every later scrape and makes
  // Stop() block until the peer goes away. Must be called before Start.
  void set_client_io_timeout_ms(int timeout_ms) {
    client_io_timeout_ms_ = timeout_ms;
  }

 private:
  void Serve();

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;  // owned; written by Start/Stop only (single owner)
  int port_ = 0;        // written by Start before the thread exists
  // Written before Start (like port_), read by the serving thread.
  int client_io_timeout_ms_ = 2000;
  std::thread thread_;  // the serving thread; joined by Stop
};

// Installs the process-wide SIGUSR1 dump (idempotent; the first path wins).
// Each delivery rewrites `path` ("" / "-" / "stderr" dump to stderr) with a
// fresh exposition. The watcher thread is detached and lives for the
// process.
Status InstallSigusr1ExpositionDump(const std::string& path);

}  // namespace mmjoin::obs

#endif  // MMJOIN_OBS_STATS_SERVER_H_
