#include "obs/perf_counters.h"

#include <cerrno>
#include <cstring>
#include <string>

#include "util/failpoint.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mmjoin::obs {

#if defined(__linux__)

namespace {

int PerfEventOpen(perf_event_attr* attr) {
  return static_cast<int>(syscall(SYS_perf_event_open, attr, /*pid=*/0,
                                  /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0UL));
}

perf_event_attr MakeAttr(uint32_t type, uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 0;  // count from open; deltas make the baseline irrelevant
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return attr;
}

}  // namespace

PerfCounters::PerfCounters() {
  // Tests force the denied path (EACCES et al.) with this failpoint.
  if (MMJOIN_FAILPOINT("obs.perf_open")) {
    status_ = UnavailableError(
        "perf_event_open denied (injected via failpoint obs.perf_open)");
    return;
  }

  struct EventSpec {
    uint32_t type;
    uint64_t config;
  };
  const EventSpec specs[kNumEvents] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
      {PERF_TYPE_HW_CACHE,
       PERF_COUNT_HW_CACHE_DTLB | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
           (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
  };

  for (int i = 0; i < kNumEvents; ++i) {
    perf_event_attr attr = MakeAttr(specs[i].type, specs[i].config);
    fds_[i] = PerfEventOpen(&attr);
    if (fds_[i] < 0 && i == 0) {
      // Without cycles the whole group is useless; report why. Secondary
      // events (LLC/dTLB on PMU-less VMs) may fail individually and simply
      // read as 0.
      status_ = UnavailableError(
          std::string("perf_event_open(cycles) failed: ") +
          std::strerror(errno));
      return;
    }
  }
}

PerfCounters::~PerfCounters() {
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

bool PerfCounters::Read(CounterSample* sample) const {
  if (!status_.ok()) return false;
  uint64_t values[kNumEvents] = {0, 0, 0, 0};
  for (int i = 0; i < kNumEvents; ++i) {
    if (fds_[i] < 0) continue;
    const ssize_t n = read(fds_[i], &values[i], sizeof(values[i]));
    if (n != static_cast<ssize_t>(sizeof(values[i]))) values[i] = 0;
  }
  sample->cycles = values[0];
  sample->instructions = values[1];
  sample->llc_misses = values[2];
  sample->dtlb_misses = values[3];
  return true;
}

#else  // !defined(__linux__)

PerfCounters::PerfCounters() {
  if (MMJOIN_FAILPOINT("obs.perf_open")) {
    status_ = UnavailableError(
        "perf_event_open denied (injected via failpoint obs.perf_open)");
    return;
  }
  status_ = UnavailableError("perf_event_open requires Linux");
}

PerfCounters::~PerfCounters() = default;

bool PerfCounters::Read(CounterSample* sample) const {
  (void)sample;
  return false;
}

#endif  // defined(__linux__)

PerfCounters* PerfCounters::ThreadLocal() {
  // One fd set per thread, closed by the thread_local destructor at thread
  // exit. Executor workers are persistent, so this opens once per worker.
  thread_local PerfCounters counters;
  return &counters;
}

bool PerfCounters::Available() {
  // Probe once per process (and per arming of obs.perf_open -- the probe
  // result is sticky, which tests account for by checking instances).
  static const bool available = [] { return PerfCounters().ok(); }();
  return available;
}

}  // namespace mmjoin::obs
