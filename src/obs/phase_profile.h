// Per-phase, per-thread join profiles -- the data behind the paper's
// whitebox breakdown (Section 5, Figure 3).
//
// A JoinPhaseProfiler is created per join run when observability is enabled
// (obs::Enabled()); each worker thread wraps its phase work in a PhaseScope,
// which accumulates wall-clock nanoseconds and hardware-counter deltas into
// a cache-line-padded per-thread slot and emits a trace span. Finish()
// reduces the slots into a PhaseProfile: per-phase min/max/mean thread time
// plus summed counter deltas, attached to JoinResult::profile.
//
// When observability is disabled the profiler is simply not created;
// PhaseScope on a null profiler is one predicted branch in the constructor
// and one in the destructor.

#ifndef MMJOIN_OBS_PHASE_PROFILE_H_
#define MMJOIN_OBS_PHASE_PROFILE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "util/macros.h"
#include "util/timer.h"
#include "util/types.h"

namespace mmjoin::obs {

// The join phases of the whitebox taxonomy. Algorithms use the subset that
// applies to them (NOP: build/probe; MWAY: partition/sort/merge; PR*:
// partition passes + per-task build/probe; ...).
enum class JoinPhase : uint8_t {
  kPartitionPass1 = 0,
  kPartitionPass2,
  kBuild,
  kProbe,
  kSort,
  kMerge,
  kMaterialize,
};
inline constexpr int kNumJoinPhases = 7;

const char* JoinPhaseName(JoinPhase phase);
SpanKind JoinPhaseSpanKind(JoinPhase phase);

// Reduction of one phase across the threads that executed it.
struct PhaseStat {
  int threads = 0;       // threads that spent time in this phase
  int64_t total_ns = 0;  // summed across threads
  int64_t min_ns = 0;    // fastest thread's total for this phase
  int64_t max_ns = 0;    // slowest thread's total (the skew signal)
  CounterDelta counters; // summed across threads; counters.valid when the
                         // perf events were open on at least one thread

  int64_t MeanNs() const { return threads > 0 ? total_ns / threads : 0; }
};

struct PhaseProfile {
  PhaseStat phases[kNumJoinPhases];

  const PhaseStat& Of(JoinPhase phase) const {
    return phases[static_cast<int>(phase)];
  }
  // True when any phase carries hardware-counter data.
  bool CountersValid() const {
    for (const PhaseStat& stat : phases) {
      if (stat.counters.valid) return true;
    }
    return false;
  }
  // Sum of the slowest thread's time over all phases -- the profile's
  // estimate of the critical path, comparable against PhaseTimes::total_ns.
  int64_t CriticalPathNs() const {
    int64_t total = 0;
    for (const PhaseStat& stat : phases) total += stat.max_ns;
    return total;
  }
};

class JoinPhaseProfiler {
 public:
  explicit JoinPhaseProfiler(int num_threads);

  // Adds one measured interval to (tid, phase). Threads only touch their own
  // slot; no synchronization beyond the padding.
  void Accumulate(int tid, JoinPhase phase, int64_t ns,
                  const CounterDelta& delta);

  // Reduces the per-thread slots. Call after the dispatch completed.
  PhaseProfile Finish() const;

 private:
  struct alignas(kCacheLineSize) ThreadAccum {
    int64_t ns[kNumJoinPhases] = {};
    CounterDelta counters[kNumJoinPhases] = {};
  };
  static_assert(alignof(ThreadAccum) == kCacheLineSize &&
                    sizeof(ThreadAccum) % kCacheLineSize == 0,
                "ThreadAccum slots must not share cache lines across threads");
  std::vector<ThreadAccum> accums_;
};

// RAII phase measurement: wall clock + hardware counters + trace span.
// `profiler == nullptr` (observability disabled) makes every member function
// a predicted branch.
class PhaseScope {
 public:
  PhaseScope(JoinPhaseProfiler* profiler, int tid, JoinPhase phase)
      : profiler_(profiler) {
    if (MMJOIN_UNLIKELY(profiler_ != nullptr)) Begin(tid, phase);
  }
  ~PhaseScope() {
    if (MMJOIN_UNLIKELY(profiler_ != nullptr)) End();
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  void Begin(int tid, JoinPhase phase);
  void End();

  JoinPhaseProfiler* profiler_;
  int tid_ = 0;
  JoinPhase phase_ = JoinPhase::kBuild;
  int64_t start_ns_ = 0;
  bool have_counters_ = false;
  CounterSample start_sample_;
};

// Per-run profiler factory: non-null only while observability is enabled.
inline std::unique_ptr<JoinPhaseProfiler> MakeJoinProfiler(int num_threads) {
  if (MMJOIN_LIKELY(!Enabled())) return nullptr;
  return std::make_unique<JoinPhaseProfiler>(num_threads);
}

}  // namespace mmjoin::obs

#endif  // MMJOIN_OBS_PHASE_PROFILE_H_
