// Whitebox tracing: per-thread span recording for the paper's phase-level
// analysis (Section 5, Figure 3).
//
// A span is a named [start, end) interval recorded by one thread. Spans land
// in per-thread ring buffers (no locks, no allocation on the hot path once a
// thread's buffer exists) and are exported as Chrome trace-event JSON, which
// loads directly in Perfetto / chrome://tracing.
//
// Recording is off by default. A disabled ObsScope costs one relaxed atomic
// load and a predicted branch in the constructor and one branch in the
// destructor -- the same pattern as util/failpoint.h -- so instrumentation
// can stay compiled into every phase of every join without a measurable tax
// on timed runs.

#ifndef MMJOIN_OBS_TRACE_H_
#define MMJOIN_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/macros.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/timer.h"

namespace mmjoin::obs {

// Span taxonomy. The category groups spans in trace viewers; the span *name*
// carries the fine distinction (e.g. "partition.pass1" vs "partition.pass2",
// both kPartition).
enum class SpanKind : uint8_t {
  kPartition,
  kBuild,
  kProbe,
  kSort,
  kMerge,
  kMaterialize,
  kDispatch,  // executor: a worker executing a dispatched closure
  kBarrier,   // executor: waiting on the team barrier
  kIdle,      // executor: worker parked between dispatches
  kRun,       // whole-join umbrella spans (core::Joiner)
  kOther,
};

const char* SpanKindName(SpanKind kind);

struct Span {
  const char* name;  // must point at storage with static lifetime
  SpanKind kind;
  int tid;           // logical thread id (see SetCurrentThreadId)
  int64_t start_ns;
  int64_t end_ns;
};

// Logical id of the calling thread as recorded in spans. Executor workers set
// this to their stable pool thread-id; unlabeled threads get a unique id
// >= kUnlabeledThreadIdBase on first use.
inline constexpr int kUnlabeledThreadIdBase = 1000;
int CurrentThreadId();
void SetCurrentThreadId(int tid);

class TraceRecorder {
 public:
  // Spans a single thread can hold before further records are dropped
  // (counted, never blocking).
  static constexpr std::size_t kSpansPerThread = std::size_t{1} << 15;

  static TraceRecorder& Get();

  // The master observability switch: ObsScope, the join-phase profilers, and
  // the executor's barrier/idle accounting all key off this flag.
  static bool Enabled() {
    return Get().enabled_.load(std::memory_order_relaxed);
  }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Appends a span for the calling thread. Lock-free after the thread's
  // first record (which registers its buffer under a mutex). Safe to call
  // concurrently from any number of threads.
  void Record(const char* name, SpanKind kind, int64_t start_ns,
              int64_t end_ns);

  // Stable copy of every span recorded so far, ordered by (tid, start).
  // Intended for quiescent points (after a join / at harness exit); spans
  // recorded concurrently with the snapshot may or may not be included.
  std::vector<Span> Snapshot() const;

  // Drops all recorded spans (buffers stay registered). Test/harness helper.
  void Clear();

  uint64_t recorded_spans() const;
  uint64_t dropped_spans() const;

  // Chrome trace-event JSON ("X" complete events, microsecond timestamps);
  // loads in Perfetto and chrome://tracing.
  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer {
    std::vector<Span> spans;          // preallocated to kSpansPerThread
    std::atomic<std::size_t> count{0};
    std::atomic<uint64_t> dropped{0};
  };

  TraceRecorder() = default;
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  // registry_mutex_ guards the buffer list only; the buffers themselves are
  // single-writer (their owning thread) with atomic count publication, so
  // Record() stays lock-free after a thread's first span.
  mutable Mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      MMJOIN_GUARDED_BY(registry_mutex_);
};

// Process-wide switch helpers (sugar over TraceRecorder).
inline bool Enabled() { return TraceRecorder::Enabled(); }
void Enable();
void Disable();

// RAII span. When tracing is disabled this is one relaxed load + predicted
// branch at construction and one branch at destruction; nothing is recorded
// and no memory is touched.
class ObsScope {
 public:
  ObsScope(const char* name, SpanKind kind)
      : name_(name),
        kind_(kind),
        start_ns_(MMJOIN_UNLIKELY(TraceRecorder::Enabled()) ? NowNanos() : 0) {
  }
  ~ObsScope() {
    if (MMJOIN_UNLIKELY(start_ns_ != 0)) {
      TraceRecorder::Get().Record(name_, kind_, start_ns_, NowNanos());
    }
  }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  const char* name_;
  SpanKind kind_;
  int64_t start_ns_;
};

}  // namespace mmjoin::obs

#endif  // MMJOIN_OBS_TRACE_H_
