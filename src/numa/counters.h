// NUMA traffic accounting and the remote-access cost model.
//
// VTune's per-socket bandwidth profile (paper Figure 6) and the paper's
// remote-write analysis (Figure 4) are reproduced in software: algorithms
// report coarse-grained accesses (typically one call per cache line flushed
// or per partition scanned), tagged with the node the accessing thread runs
// on and the node the memory lives on. Counting is off by default and
// enabled for dedicated instrumented runs so timed runs pay nothing.

#ifndef MMJOIN_NUMA_COUNTERS_H_
#define MMJOIN_NUMA_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "numa/topology.h"
#include "util/macros.h"

namespace mmjoin::numa {

// A [from_node][to_node] matrix of bytes read and written plus a coarse
// per-node bandwidth timeline (for the Figure 6 reproduction).
class AccessCounters {
 public:
  static constexpr int kTimelineBuckets = 512;

  AccessCounters(const Topology& topology, int64_t timeline_bucket_nanos)
      : num_nodes_(topology.num_nodes()),
        bucket_nanos_(timeline_bucket_nanos),
        read_bytes_(num_nodes_ * num_nodes_),
        write_bytes_(num_nodes_ * num_nodes_),
        timeline_(num_nodes_ * kTimelineBuckets) {
    for (auto& cell : read_bytes_) cell.store(0, std::memory_order_relaxed);
    for (auto& cell : write_bytes_) cell.store(0, std::memory_order_relaxed);
    for (auto& cell : timeline_) cell.store(0, std::memory_order_relaxed);
  }

  // Marks "now" as timeline time zero.
  void StartTimeline(int64_t now_nanos) { epoch_nanos_ = now_nanos; }

  void CountRead(int from_node, int to_node, uint64_t bytes,
                 int64_t now_nanos) {
    Cell(read_bytes_, from_node, to_node)
        .fetch_add(bytes, std::memory_order_relaxed);
    CountTimeline(to_node, bytes, now_nanos);
  }

  void CountWrite(int from_node, int to_node, uint64_t bytes,
                  int64_t now_nanos) {
    Cell(write_bytes_, from_node, to_node)
        .fetch_add(bytes, std::memory_order_relaxed);
    CountTimeline(to_node, bytes, now_nanos);
  }

  uint64_t ReadBytes(int from_node, int to_node) const {
    return Cell(read_bytes_, from_node, to_node)
        .load(std::memory_order_relaxed);
  }
  uint64_t WriteBytes(int from_node, int to_node) const {
    return Cell(write_bytes_, from_node, to_node)
        .load(std::memory_order_relaxed);
  }

  uint64_t TotalLocalReadBytes() const { return Diagonal(read_bytes_, true); }
  uint64_t TotalRemoteReadBytes() const {
    return Diagonal(read_bytes_, false);
  }
  uint64_t TotalLocalWriteBytes() const {
    return Diagonal(write_bytes_, true);
  }
  uint64_t TotalRemoteWriteBytes() const {
    return Diagonal(write_bytes_, false);
  }

  // Bytes that touched memory on `node` during timeline bucket `bucket`.
  uint64_t TimelineBytes(int node, int bucket) const {
    return timeline_[bucket * num_nodes_ + node].load(
        std::memory_order_relaxed);
  }

  int num_nodes() const { return num_nodes_; }
  int64_t bucket_nanos() const { return bucket_nanos_; }

  // Derived runtime under the NUMA cost model: local cache lines cost
  // `local_ns`, remote ones `remote_ns` (defaults approximate the ~1.7x
  // latency / ~0.6x bandwidth gap of 4-socket Ivy Bridge EX machines). This
  // is how benches expose NUMA placement quality on a UMA host.
  double ModeledCostMillis(double local_ns_per_line = 1.0,
                           double remote_ns_per_line = 2.2) const {
    const double local_lines =
        static_cast<double>(TotalLocalReadBytes() + TotalLocalWriteBytes()) /
        64.0;
    const double remote_lines =
        static_cast<double>(TotalRemoteReadBytes() +
                            TotalRemoteWriteBytes()) /
        64.0;
    return (local_lines * local_ns_per_line +
            remote_lines * remote_ns_per_line) *
           1e-6;
  }

 private:
  using Matrix = std::vector<std::atomic<uint64_t>>;

  std::atomic<uint64_t>& Cell(Matrix& m, int from, int to) {
    MMJOIN_DCHECK(from >= 0 && from < num_nodes_);
    MMJOIN_DCHECK(to >= 0 && to < num_nodes_);
    return m[from * num_nodes_ + to];
  }
  const std::atomic<uint64_t>& Cell(const Matrix& m, int from, int to) const {
    return m[from * num_nodes_ + to];
  }

  uint64_t Diagonal(const Matrix& m, bool local) const {
    uint64_t total = 0;
    for (int from = 0; from < num_nodes_; ++from) {
      for (int to = 0; to < num_nodes_; ++to) {
        if ((from == to) == local) {
          total += Cell(m, from, to).load(std::memory_order_relaxed);
        }
      }
    }
    return total;
  }

  void CountTimeline(int node, uint64_t bytes, int64_t now_nanos) {
    if (bucket_nanos_ <= 0) return;
    int64_t bucket = (now_nanos - epoch_nanos_) / bucket_nanos_;
    if (bucket < 0) bucket = 0;
    if (bucket >= kTimelineBuckets) bucket = kTimelineBuckets - 1;
    timeline_[bucket * num_nodes_ + node].fetch_add(
        bytes, std::memory_order_relaxed);
  }

  int num_nodes_;
  int64_t bucket_nanos_;
  int64_t epoch_nanos_ = 0;
  Matrix read_bytes_;
  Matrix write_bytes_;
  Matrix timeline_;
};

}  // namespace mmjoin::numa

#endif  // MMJOIN_NUMA_COUNTERS_H_
