// NumaSystem: node-tagged memory allocation + traffic accounting.
//
// All join-algorithm allocations (inputs, partition buffers, hash tables)
// flow through a NumaSystem so that (a) placement policies are explicit and
// identical to the paper's code (interleaved partition buffers via
// -basic-numa, chunked-round-robin input relations, node-local working
// memory) and (b) every address can be resolved to the node it lives on for
// accounting. On a real NUMA box the same call sites would issue
// mbind/numa_alloc_onnode; here placement is logical.

#ifndef MMJOIN_NUMA_SYSTEM_H_
#define MMJOIN_NUMA_SYSTEM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/aligned_alloc.h"
#include "numa/counters.h"
#include "numa/topology.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/timer.h"
#include "util/types.h"

namespace mmjoin::numa {

class NumaSystem {
 public:
  // `num_nodes`: nodes of the simulated topology (paper machine: 4).
  // `page_policy`: page size used for all allocations (paper Section 7.2).
  explicit NumaSystem(int num_nodes = 4,
                      mem::PagePolicy page_policy = mem::PagePolicy::kHuge)
      : topology_(num_nodes),
        page_policy_(page_policy),
        task_steals_(static_cast<std::size_t>(num_nodes) * num_nodes) {
    for (auto& cell : task_steals_) cell.store(0, std::memory_order_relaxed);
  }

  ~NumaSystem();

  NumaSystem(const NumaSystem&) = delete;
  NumaSystem& operator=(const NumaSystem&) = delete;

  const Topology& topology() const { return topology_; }
  mem::PagePolicy page_policy() const { return page_policy_; }
  // Configure-before-run: a plain (non-atomic) setter read by every
  // allocating thread. Call it only while no join runs on this system --
  // under the service, set the policy via JoinerOptions at construction
  // and never flip it live.
  void set_page_policy(mem::PagePolicy policy) { page_policy_ = policy; }

  // Allocates `bytes` with the given placement, registers the region, and
  // prefaults the pages (buffer-manager assumption, paper Section 5.1).
  // Aborts on allocation failure (legacy contract; prefer TryAllocate).
  void* Allocate(std::size_t bytes, Placement placement, int home_node = 0,
                 std::size_t alignment = kCacheLineSize);

  // Like Allocate but recoverable: returns nullptr when the underlying
  // allocation fails (real or fault-injected). An out-of-range `home_node`
  // degrades to node 0 (counted as a NUMA degradation in mem::AllocStats)
  // rather than aborting -- placement is a hint, not a correctness property.
  void* TryAllocate(std::size_t bytes, Placement placement, int home_node = 0,
                    std::size_t alignment = kCacheLineSize);

  void Free(void* ptr);

  // Node an address lives on, or -1 for memory not allocated through this
  // system (e.g. thread stacks).
  int NodeOf(const void* addr) const;

  // --- Accounting -------------------------------------------------------
  // Disabled by default; enable for instrumented runs only, and only while
  // no join is running (workers read the flag and the counters pointer
  // without the region lock; the quiescent-toggle contract is what makes
  // the relaxed load sound). Under service::JoinService the system is never
  // quiescent while lanes are up, so toggle accounting before the service
  // starts (or after Shutdown), not per job.
  void EnableAccounting(int64_t timeline_bucket_nanos = 2'000'000);
  void DisableAccounting() {
    accounting_enabled_.store(false, std::memory_order_relaxed);
  }
  bool accounting_enabled() const {
    return accounting_enabled_.load(std::memory_order_relaxed);
  }
  AccessCounters* counters() { return counters_.get(); }

  // Attributes a read/write of [addr, addr+bytes) performed by a thread on
  // `from_node`. Splits the range across nodes according to the placement of
  // the containing allocation. No-ops (after one branch) when accounting is
  // off.
  void CountRead(int from_node, const void* addr, std::size_t bytes) {
    if (MMJOIN_LIKELY(!accounting_enabled())) return;
    CountRange(from_node, addr, bytes, /*is_write=*/false);
  }
  void CountWrite(int from_node, const void* addr, std::size_t bytes) {
    if (MMJOIN_LIKELY(!accounting_enabled())) return;
    CountRange(from_node, addr, bytes, /*is_write=*/true);
  }

  // Number of currently registered (live) allocations. Fault-injection
  // tests assert a failed join unwinds back to the pre-join count (no
  // leaked regions).
  std::size_t num_live_regions() const {
    ReaderMutexLock lock(regions_mutex_);
    return regions_.size();
  }

  // --- Task-steal accounting --------------------------------------------
  // Unlike memory accounting this is always on: a steal is a scheduling
  // event, not a per-tuple access, so the cost is one relaxed increment per
  // stolen task. The matrix is indexed [thief][victim]. Intentionally
  // cumulative for the system's lifetime -- concurrent joins (service
  // lanes) all add to it; per-run attribution is a caller-side delta
  // (core::SnapshotStealMatrix before/after), never a reset here.
  void CountTaskSteal(int thief_node, int victim_node) {
    MMJOIN_DCHECK(thief_node >= 0 && thief_node < topology_.num_nodes());
    MMJOIN_DCHECK(victim_node >= 0 && victim_node < topology_.num_nodes());
    task_steals_[static_cast<std::size_t>(thief_node) *
                     topology_.num_nodes() +
                 victim_node]
        .fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t TaskSteals(int thief_node, int victim_node) const {
    return task_steals_[static_cast<std::size_t>(thief_node) *
                            topology_.num_nodes() +
                        victim_node]
        .load(std::memory_order_relaxed);
  }
  uint64_t TotalTaskSteals() const {
    uint64_t total = 0;
    for (const auto& cell : task_steals_) {
      total += cell.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct Region {
    std::uintptr_t base;
    std::size_t bytes;
    Placement placement;
    int home_node;
  };

  const Region* FindRegion(std::uintptr_t addr) const
      MMJOIN_REQUIRES_SHARED(regions_mutex_);
  void CountRange(int from_node, const void* addr, std::size_t bytes,
                  bool is_write);

  Topology topology_;
  mem::PagePolicy page_policy_;

  mutable SharedMutex regions_mutex_;
  std::vector<Region> regions_
      MMJOIN_GUARDED_BY(regions_mutex_);  // sorted by base

  std::atomic<bool> accounting_enabled_{false};
  std::unique_ptr<AccessCounters> counters_;

  // [thief * num_nodes + victim] stolen-task counts; see CountTaskSteal.
  std::vector<std::atomic<uint64_t>> task_steals_;
};

// RAII typed buffer allocated from a NumaSystem.
template <typename T>
class NumaBuffer {
 public:
  NumaBuffer() = default;
  NumaBuffer(NumaSystem* system, std::size_t count, Placement placement,
             int home_node = 0)
      : system_(system),
        size_(count),
        data_(static_cast<T*>(system->Allocate(
            count * sizeof(T) > 0 ? count * sizeof(T) : sizeof(T), placement,
            home_node))) {}

  // Recoverable construction: ResourceExhausted instead of abort when the
  // allocation fails. The join kernels allocate all phase buffers through
  // this so partition/build failures propagate out of Joiner::Run.
  static StatusOr<NumaBuffer> TryCreate(NumaSystem* system, std::size_t count,
                                        Placement placement,
                                        int home_node = 0) {
    const std::size_t bytes =
        count * sizeof(T) > 0 ? count * sizeof(T) : sizeof(T);
    void* ptr = system->TryAllocate(bytes, placement, home_node);
    if (ptr == nullptr) {
      return ResourceExhaustedError(
          "NumaBuffer allocation of " + std::to_string(bytes) +
          " bytes failed");
    }
    NumaBuffer buffer;
    buffer.system_ = system;
    buffer.size_ = count;
    buffer.data_ = static_cast<T*>(ptr);
    return buffer;
  }

  ~NumaBuffer() { reset(); }

  NumaBuffer(NumaBuffer&& other) noexcept { *this = std::move(other); }
  NumaBuffer& operator=(NumaBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      system_ = other.system_;
      size_ = other.size_;
      data_ = other.data_;
      other.system_ = nullptr;
      other.size_ = 0;
      other.data_ = nullptr;
    }
    return *this;
  }
  NumaBuffer(const NumaBuffer&) = delete;
  NumaBuffer& operator=(const NumaBuffer&) = delete;

  void reset() {
    if (data_ != nullptr) system_->Free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) const { return data_[i]; }
  T* begin() const { return data_; }
  T* end() const { return data_ + size_; }

 private:
  NumaSystem* system_ = nullptr;
  std::size_t size_ = 0;
  T* data_ = nullptr;
};

}  // namespace mmjoin::numa

#endif  // MMJOIN_NUMA_SYSTEM_H_
