// Software NUMA topology.
//
// The paper's machine is a 4-socket (4 NUMA node) Xeon E7-4870v2. This host
// has no NUMA, so we model the topology in software: a `Topology` describes N
// nodes and the thread->node placement used by all algorithms, a `NodeMap`
// resolves which node a given address "lives" on according to the placement
// policy its allocation chose, and `AccessCounters` (see counters.h) tallies
// local vs. remote traffic. Algorithms make exactly the placement and
// scheduling decisions they would make on real NUMA hardware, and the
// counters expose the consequences (the mechanism behind the paper's CPRL
// and PR*iS results).

#ifndef MMJOIN_NUMA_TOPOLOGY_H_
#define MMJOIN_NUMA_TOPOLOGY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/macros.h"

namespace mmjoin::numa {

// How an allocation is spread over the nodes of the topology.
enum class Placement {
  kLocal,              // entire allocation on one node
  kInterleavedPages,   // page-granular round-robin over all nodes (paper:
                       // NOP's hash table, -basic-numa partition buffers)
  kChunkedRoundRobin,  // contiguous 1/N-th chunks, chunk i on node i (paper:
                       // input relations, "one quarter per NUMA-region")
};

class Topology {
 public:
  // `num_nodes` must be >= 1. The paper's machine has 4.
  explicit Topology(int num_nodes) : num_nodes_(num_nodes) {
    MMJOIN_CHECK(num_nodes >= 1);
  }

  int num_nodes() const { return num_nodes_; }

  // Thread placement: threads are distributed evenly across nodes in
  // contiguous blocks ("increase the number of threads distributing threads
  // evenly across NUMA regions", Appendix B). Block assignment keeps thread
  // t's 1/T input chunk on thread t's node, because relations are placed
  // kChunkedRoundRobin -- this alignment is what makes CPRL's partition
  // writes 100% node-local (Figure 4(d)).
  int NodeOfThread(int thread_id, int num_threads) const {
    MMJOIN_DCHECK(thread_id >= 0 && thread_id < num_threads);
    if (num_threads <= num_nodes_) return thread_id % num_nodes_;
    return static_cast<int>((static_cast<long>(thread_id) * num_nodes_) /
                            num_threads);
  }

  // The distinct nodes a team of `num_threads` workers occupies under
  // NodeOfThread, ascending. A 1-thread team lives entirely on node 0 --
  // the sharded join scheduler seeds only these nodes so a small team never
  // strands tasks on a shard nobody polls locally.
  std::vector<int> ActiveNodes(int num_threads) const {
    std::vector<int> nodes;
    for (int t = 0; t < num_threads; ++t) {
      const int node = NodeOfThread(t, num_threads);
      if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
        nodes.push_back(node);
      }
    }
    std::sort(nodes.begin(), nodes.end());
    return nodes;
  }

  // Software inter-node distance: hops on a ring interconnect (the paper's
  // 4-socket box wires QPI as a mesh, but a ring is the conventional
  // software model and gives the steal order the property that matters --
  // nearer nodes are tried first, deterministically).
  int NodeDistance(int from, int to) const {
    MMJOIN_DCHECK(from >= 0 && from < num_nodes_);
    MMJOIN_DCHECK(to >= 0 && to < num_nodes_);
    const int direct = from < to ? to - from : from - to;
    return std::min(direct, num_nodes_ - direct);
  }

  // Every node other than `from`, sorted by (NodeDistance, node index):
  // the order a worker on `from` walks remote shards when stealing. Ties
  // (a ring has two neighbours at each distance) break toward the lower
  // node index so the order is deterministic.
  std::vector<int> NodesByDistance(int from) const {
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(num_nodes_) - 1);
    for (int node = 0; node < num_nodes_; ++node) {
      if (node != from) order.push_back(node);
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return NodeDistance(from, a) < NodeDistance(from, b);
    });
    return order;
  }

  // Node of byte offset `offset` within an allocation of `total_bytes` laid
  // out with `placement` starting at `home_node`.
  int NodeOfOffset(Placement placement, int home_node, std::size_t offset,
                   std::size_t total_bytes) const {
    switch (placement) {
      case Placement::kLocal:
        return home_node;
      case Placement::kInterleavedPages: {
        constexpr std::size_t kInterleaveGranule = 4096;
        return static_cast<int>((offset / kInterleaveGranule + home_node) %
                                num_nodes_);
      }
      case Placement::kChunkedRoundRobin: {
        const std::size_t chunk =
            (total_bytes + num_nodes_ - 1) / num_nodes_;
        const std::size_t index = chunk == 0 ? 0 : offset / chunk;
        return static_cast<int>((index + home_node) % num_nodes_);
      }
    }
    return home_node;
  }

 private:
  int num_nodes_;
};

}  // namespace mmjoin::numa

#endif  // MMJOIN_NUMA_TOPOLOGY_H_
