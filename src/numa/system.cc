#include "numa/system.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"
#include "util/log.h"
#include "util/macros.h"

namespace mmjoin::numa {

namespace {

// Process-wide traffic aggregates across every NumaSystem instance (a
// NumaSystem and its AccessCounters can be destroyed before a metrics
// snapshot is taken; these survive). Only accrue while per-system
// accounting is enabled, like the counters they mirror.
struct ProcessTraffic {
  std::atomic<uint64_t> local_read_bytes{0};
  std::atomic<uint64_t> remote_read_bytes{0};
  std::atomic<uint64_t> local_write_bytes{0};
  std::atomic<uint64_t> remote_write_bytes{0};
};

ProcessTraffic& GlobalTraffic() {
  static ProcessTraffic* traffic = new ProcessTraffic();
  return *traffic;
}

const obs::MetricsProviderRegistration kNumaProvider(
    "numa", [](std::vector<obs::Metric>* metrics) {
      const ProcessTraffic& traffic = GlobalTraffic();
      metrics->push_back(obs::Metric{
          "numa.local_read_bytes",
          traffic.local_read_bytes.load(std::memory_order_relaxed)});
      metrics->push_back(obs::Metric{
          "numa.remote_read_bytes",
          traffic.remote_read_bytes.load(std::memory_order_relaxed)});
      metrics->push_back(obs::Metric{
          "numa.local_write_bytes",
          traffic.local_write_bytes.load(std::memory_order_relaxed)});
      metrics->push_back(obs::Metric{
          "numa.remote_write_bytes",
          traffic.remote_write_bytes.load(std::memory_order_relaxed)});
    });

}  // namespace

NumaSystem::~NumaSystem() {
  // Free any regions the owner leaked (RAII wrappers normally free all).
  WriterMutexLock lock(regions_mutex_);
  for (const Region& region : regions_) {
    mem::FreeAligned(reinterpret_cast<void*>(region.base), region.bytes);
  }
  regions_.clear();
}

void* NumaSystem::Allocate(std::size_t bytes, Placement placement,
                           int home_node, std::size_t alignment) {
  MMJOIN_CHECK(home_node >= 0 && home_node < topology_.num_nodes());
  void* ptr = TryAllocate(bytes, placement, home_node, alignment);
  MMJOIN_CHECK(ptr != nullptr);
  return ptr;
}

void* NumaSystem::TryAllocate(std::size_t bytes, Placement placement,
                              int home_node, std::size_t alignment) {
  if (home_node < 0 || home_node >= topology_.num_nodes()) {
    // Placement is advisory: degrade to node 0 instead of aborting.
    mem::CountNumaDegradation();
    MMJOIN_LOG(kWarn, "numa.home_clamp")
        .Field("home_node", home_node)
        .Field("nodes", topology_.num_nodes());
    home_node = 0;
  }
  void* ptr = mem::AllocateAligned(bytes, alignment, page_policy_);
  if (ptr == nullptr) return nullptr;
  mem::PrefaultPages(ptr, bytes);

  Region region{reinterpret_cast<std::uintptr_t>(ptr), bytes, placement,
                home_node};
  WriterMutexLock lock(regions_mutex_);
  const auto it = std::lower_bound(
      regions_.begin(), regions_.end(), region.base,
      [](const Region& r, std::uintptr_t base) { return r.base < base; });
  regions_.insert(it, region);
  return ptr;
}

void NumaSystem::Free(void* ptr) {
  if (ptr == nullptr) return;
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  std::size_t bytes = 0;
  {
    WriterMutexLock lock(regions_mutex_);
    const auto it = std::lower_bound(
        regions_.begin(), regions_.end(), addr,
        [](const Region& r, std::uintptr_t base) { return r.base < base; });
    MMJOIN_CHECK(it != regions_.end() && it->base == addr);
    bytes = it->bytes;
    regions_.erase(it);
  }
  mem::FreeAligned(ptr, bytes);
}

const NumaSystem::Region* NumaSystem::FindRegion(std::uintptr_t addr) const {
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), addr,
      [](std::uintptr_t a, const Region& r) { return a < r.base; });
  if (it == regions_.begin()) return nullptr;
  --it;
  if (addr >= it->base && addr < it->base + it->bytes) return &*it;
  return nullptr;
}

int NumaSystem::NodeOf(const void* addr) const {
  ReaderMutexLock lock(regions_mutex_);
  const Region* region = FindRegion(reinterpret_cast<std::uintptr_t>(addr));
  if (region == nullptr) return -1;
  return topology_.NodeOfOffset(
      region->placement, region->home_node,
      reinterpret_cast<std::uintptr_t>(addr) - region->base, region->bytes);
}

void NumaSystem::EnableAccounting(int64_t timeline_bucket_nanos) {
  counters_ =
      std::make_unique<AccessCounters>(topology_, timeline_bucket_nanos);
  counters_->StartTimeline(NowNanos());
  // Relaxed is enough: the enable-while-quiescent contract (header comment)
  // means no worker races this store, and the dispatch that starts the next
  // join provides the happens-before edge that publishes counters_.
  accounting_enabled_.store(true, std::memory_order_relaxed);
}

void NumaSystem::CountRange(int from_node, const void* addr,
                            std::size_t bytes, bool is_write) {
  if (counters_ == nullptr || bytes == 0) return;
  const auto start = reinterpret_cast<std::uintptr_t>(addr);
  const int64_t now = NowNanos();

  Region r{};
  bool found = false;
  {
    ReaderMutexLock lock(regions_mutex_);
    const Region* region = FindRegion(start);
    if (region != nullptr) {
      r = *region;
      found = true;
    }
  }
  if (!found) {
    // Unknown memory (stack/temporary): treat as local to the accessor.
    if (is_write) {
      counters_->CountWrite(from_node, from_node, bytes, now);
      GlobalTraffic().local_write_bytes.fetch_add(bytes,
                                                  std::memory_order_relaxed);
    } else {
      counters_->CountRead(from_node, from_node, bytes, now);
      GlobalTraffic().local_read_bytes.fetch_add(bytes,
                                                 std::memory_order_relaxed);
    }
    return;
  }

  auto count = [&](int to_node, uint64_t n) {
    ProcessTraffic& traffic = GlobalTraffic();
    if (is_write) {
      counters_->CountWrite(from_node, to_node, n, now);
      (to_node == from_node ? traffic.local_write_bytes
                            : traffic.remote_write_bytes)
          .fetch_add(n, std::memory_order_relaxed);
    } else {
      counters_->CountRead(from_node, to_node, n, now);
      (to_node == from_node ? traffic.local_read_bytes
                            : traffic.remote_read_bytes)
          .fetch_add(n, std::memory_order_relaxed);
    }
  };

  const int nodes = topology_.num_nodes();
  switch (r.placement) {
    case Placement::kLocal:
      count(r.home_node, bytes);
      break;
    case Placement::kInterleavedPages: {
      // Interleaving granule (4 KB) is far below the granularity of the
      // ranges algorithms report, so even attribution is exact in the limit.
      const uint64_t share = bytes / nodes;
      const uint64_t rem = bytes % nodes;
      for (int node = 0; node < nodes; ++node) {
        count(node, share + (static_cast<uint64_t>(node) < rem ? 1 : 0));
      }
      break;
    }
    case Placement::kChunkedRoundRobin: {
      const std::size_t chunk = (r.bytes + nodes - 1) / nodes;
      std::size_t offset = start - r.base;
      std::size_t remaining = bytes;
      while (remaining > 0) {
        const int node = topology_.NodeOfOffset(r.placement, r.home_node,
                                                offset, r.bytes);
        const std::size_t chunk_end = (offset / chunk + 1) * chunk;
        const std::size_t take = std::min(remaining, chunk_end - offset);
        count(node, take);
        offset += take;
        remaining -= take;
      }
      break;
    }
  }
}

}  // namespace mmjoin::numa
