// JoinService: a long-lived, multi-tenant front end that runs many join
// jobs concurrently on persistent worker pools.
//
// The paper's harness (and core::Joiner) runs one join at a time:
// Executor::Dispatch is serialized per pool, so a Joiner is a single-lane
// road no matter how many clients call Run. The service turns the same
// building blocks into a concurrent operator: it owns one core::Joiner
// (NumaSystem + validated options + lane 0's pool) plus `num_lanes - 1`
// additional executors, and a scheduler thread per lane pulls admitted
// jobs off a bounded FIFO queue and drives join::RunJoin on that lane's
// pool. Two lanes dispatch independently, so two jobs genuinely overlap --
// each still runs its phases barrier-synchronized on its own team.
//
// Admission control rejects instead of queuing unboundedly:
//   * a full admission queue (ServiceOptions::max_queue_depth) and
//   * a tenant at its concurrency cap (TenantQuota::max_concurrent_jobs)
// both return ResourceExhausted with a retry-after hint derived from the
// observed job latency. Per-tenant memory quotas are a mem::BudgetTracker
// per tenant threaded into every job's JoinConfig::budget: the join
// kernels charge their plan-level working set against it and degrade or
// reject (ResourceExhausted) when the tenant is over budget, exactly as a
// single budgeted join would (docs/ROBUSTNESS.md).
//
// Fairness model: FIFO dispatch over the admission queue, bounded by the
// per-tenant caps -- a tenant can occupy at most max_concurrent_jobs of
// the queue+lanes at once, so no tenant can starve the others by
// submitting faster. docs/SERVICE.md covers the API, the admission
// policy, and the observability contract (service.* counters/histograms,
// service.admit/reject/complete log events, one trace span and one
// ExplainReport per job).

#ifndef MMJOIN_SERVICE_JOIN_SERVICE_H_
#define MMJOIN_SERVICE_JOIN_SERVICE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/explain.h"
#include "core/joiner.h"
#include "join/join_defs.h"
#include "mem/budget.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/status.h"
#include "workload/relation.h"

namespace mmjoin::service {

using JobId = uint64_t;

// Per-tenant admission limits. The default-constructed quota applies to
// tenants that were never configured explicitly.
struct TenantQuota {
  // Upper bound on a tenant's jobs that are queued or running at once;
  // submissions beyond it are rejected with ResourceExhausted.
  int max_concurrent_jobs = 4;
  // Byte budget shared by all of the tenant's concurrently running joins
  // (one mem::BudgetTracker per tenant). 0 = unbounded. Bounded quotas
  // must be >= join::JoinConfig::kMinMemBudgetBytes.
  uint64_t mem_budget_bytes = 0;
};

struct ServiceOptions {
  // NumaSystem shape and the per-lane team size (joiner.num_threads
  // threads per lane; the joiner's own pool serves lane 0).
  core::JoinerOptions joiner;
  // Scheduler lanes == jobs that can run simultaneously.
  int num_lanes = 2;
  // Bounded admission queue: jobs admitted but not yet picked up by a
  // lane. Submissions that would exceed it are rejected, never queued.
  std::size_t max_queue_depth = 64;
  // Quota for tenants without an explicit SetTenantQuota call.
  TenantQuota default_quota;

  Status Validate() const;
};

// One join request. The relations are borrowed: they must be allocated
// from this service's system() and stay alive until Wait(id) returned.
struct JobSpec {
  std::string tenant;  // "" maps to the "default" tenant
  join::Algorithm algorithm = join::Algorithm::kCPRL;
  const workload::Relation* build = nullptr;
  const workload::Relation* probe = nullptr;
  // Optional per-job knobs (radix_bits, sink, build_unique, ...).
  // num_threads, executor, and budget are always overridden by the
  // service; mem_budget_bytes only applies when the tenant is unbounded.
  join::JoinConfig config;
};

struct JobResult {
  JobId id = 0;
  std::string tenant;
  join::JoinResult join;
  // Per-job EXPLAIN: counters and the steal matrix are deltas over this
  // job's run window (see core/explain.h for the overlap semantics).
  core::ExplainReport explain;
  int64_t queue_wait_ns = 0;  // submit -> lane pickup
  int64_t run_ns = 0;         // lane pickup -> completion
  int lane = -1;
};

// Aggregate service accounting (mirrored into the service.* counters).
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  // Peak number of jobs that were *running* on lanes simultaneously --
  // the concurrency witness the service bench asserts on.
  int peak_running = 0;
  std::size_t queue_depth = 0;
};

class JoinService {
 public:
  // Validates options, builds the Joiner and the extra lane executors,
  // and starts one scheduler thread per lane.
  static StatusOr<std::unique_ptr<JoinService>> Create(
      const ServiceOptions& options);

  ~JoinService();  // Shutdown()s

  JoinService(const JoinService&) = delete;
  JoinService& operator=(const JoinService&) = delete;

  // The NumaSystem job relations must be allocated from.
  numa::NumaSystem* system() { return joiner_->system(); }
  core::Joiner* joiner() { return joiner_.get(); }
  int num_lanes() const { return static_cast<int>(lanes_.size()); }

  // Installs or replaces a tenant's quota. Fails with FailedPrecondition
  // while the tenant has queued or running jobs (the memory quota is a
  // live BudgetTracker those jobs charge against).
  Status SetTenantQuota(const std::string& tenant, const TenantQuota& quota);

  // Admission: returns the job id, or ResourceExhausted (queue full /
  // tenant over its concurrency cap; the message carries a retry-after
  // hint in milliseconds) or FailedPrecondition (shutting down).
  StatusOr<JobId> SubmitJob(const JobSpec& spec);

  // Blocks until the job finished, then returns its result (or the
  // join's error status) and forgets the id. NotFound for ids never
  // submitted or already waited on.
  StatusOr<JobResult> Wait(JobId id);

  // Stops admission, drains every queued job, and joins the lanes.
  // Idempotent; results of drained jobs stay claimable via Wait.
  void Shutdown();

  ServiceStats stats() const;

 private:
  struct Job {
    JobId id = 0;
    JobSpec spec;
    // The tenant's budget tracker (nullptr = unbounded). Stable: the
    // TenantState owning it cannot be replaced while this job is active.
    mem::BudgetTracker* tracker = nullptr;
    int64_t submit_ns = 0;
    // done/status/result are written by the running lane and read by
    // Wait(), both under mutex_ (done_cv_ signals the transition).
    bool done = false;
    Status status;
    JobResult result;
  };

  struct Lane {
    // Lane 0 borrows the Joiner's pool; other lanes own theirs.
    thread::Executor* executor = nullptr;
    std::unique_ptr<thread::Executor> owned_executor;
    std::thread thread;
  };

  struct TenantState {
    TenantQuota quota;
    // Shared by the tenant's concurrent joins; thread-safe (CAS).
    std::unique_ptr<mem::BudgetTracker> tracker;
    int active_jobs = 0;  // queued + running, guarded by mutex_
  };

  explicit JoinService(const ServiceOptions& options);

  void LaneLoop(int lane_index);
  // Runs one job on `lane_index`'s executor; fills job->status/result.
  void RunJob(int lane_index, Job* job);
  TenantState* TenantOf(const std::string& tenant) MMJOIN_REQUIRES(mutex_);
  int64_t RetryAfterMsLocked() const MMJOIN_REQUIRES(mutex_);

  const ServiceOptions options_;
  std::unique_ptr<core::Joiner> joiner_;
  std::vector<Lane> lanes_;

  mutable Mutex mutex_;
  CondVar queue_cv_;  // signals lanes: work available or shutting down
  CondVar done_cv_;   // signals Wait(): some job completed
  std::deque<Job*> queue_ MMJOIN_GUARDED_BY(mutex_);
  std::map<JobId, std::unique_ptr<Job>> jobs_ MMJOIN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<TenantState>> tenants_
      MMJOIN_GUARDED_BY(mutex_);
  JobId next_job_id_ MMJOIN_GUARDED_BY(mutex_) = 1;
  bool shutdown_ MMJOIN_GUARDED_BY(mutex_) = false;
  int running_jobs_ MMJOIN_GUARDED_BY(mutex_) = 0;
  ServiceStats stats_ MMJOIN_GUARDED_BY(mutex_);
  // Exponential moving average of recent job wall clock; seeds the
  // retry-after hint before the first completion.
  int64_t avg_job_ns_ MMJOIN_GUARDED_BY(mutex_) = 0;
};

}  // namespace mmjoin::service

#endif  // MMJOIN_SERVICE_JOIN_SERVICE_H_
