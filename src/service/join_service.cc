#include "service/join_service.h"

#include <string>
#include <utility>

#include "join/join_algorithm.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/timer.h"

namespace mmjoin::service {
namespace {

constexpr char kDefaultTenant[] = "default";

// Retry-after hint when no job has completed yet (nothing to base an
// estimate on): one scheduler quantum's worth of patience.
constexpr int64_t kDefaultRetryAfterMs = 100;

const std::string& TenantNameOf(const JobSpec& spec) {
  static const std::string kDefault(kDefaultTenant);
  return spec.tenant.empty() ? kDefault : spec.tenant;
}

Status ValidateQuota(const TenantQuota& quota) {
  if (quota.max_concurrent_jobs < 1) {
    return InvalidArgumentError("TenantQuota::max_concurrent_jobs must be >= 1");
  }
  if (quota.mem_budget_bytes != 0 &&
      quota.mem_budget_bytes < join::JoinConfig::kMinMemBudgetBytes) {
    return InvalidArgumentError(
        "TenantQuota::mem_budget_bytes below JoinConfig::kMinMemBudgetBytes "
        "(use 0 for unbounded)");
  }
  return OkStatus();
}

}  // namespace

Status ServiceOptions::Validate() const {
  Status joiner_status = joiner.Validate();
  if (!joiner_status.ok()) return joiner_status;
  if (num_lanes < 1 || num_lanes > 64) {
    return InvalidArgumentError("ServiceOptions::num_lanes must be in [1, 64]");
  }
  if (max_queue_depth < 1) {
    return InvalidArgumentError("ServiceOptions::max_queue_depth must be >= 1");
  }
  return ValidateQuota(default_quota);
}

StatusOr<std::unique_ptr<JoinService>> JoinService::Create(
    const ServiceOptions& options) {
  Status status = options.Validate();
  if (!status.ok()) return status;
  return std::unique_ptr<JoinService>(new JoinService(options));
}

JoinService::JoinService(const ServiceOptions& options)
    : options_(options), joiner_(std::make_unique<core::Joiner>(options.joiner)) {
  lanes_.resize(static_cast<size_t>(options.num_lanes));
  lanes_[0].executor = joiner_->executor();
  for (size_t i = 1; i < lanes_.size(); ++i) {
    lanes_[i].owned_executor = std::make_unique<thread::Executor>(
        options.joiner.num_threads, options.joiner.num_nodes);
    lanes_[i].executor = lanes_[i].owned_executor.get();
  }
  for (size_t i = 0; i < lanes_.size(); ++i) {
    const int index = static_cast<int>(i);
    // Scheduler lanes are control threads, not workers: each one *submits*
    // blocking Executor::Dispatch calls on behalf of a job, and dispatching
    // from inside an Executor worker closure deadlocks the pool -- so lanes
    // cannot themselves live on an Executor (raw-thread allowlisted).
    lanes_[i].thread = std::thread([this, index] { LaneLoop(index); });
  }
}

JoinService::~JoinService() { Shutdown(); }

Status JoinService::SetTenantQuota(const std::string& tenant,
                                   const TenantQuota& quota) {
  Status status = ValidateQuota(quota);
  if (!status.ok()) return status;
  const std::string name = tenant.empty() ? kDefaultTenant : tenant;
  MutexLock lock(mutex_);
  auto it = tenants_.find(name);
  if (it != tenants_.end() && it->second->active_jobs > 0) {
    return FailedPreconditionError(
        "tenant '" + name +
        "' has queued or running jobs; quotas can only change while idle");
  }
  auto state = std::make_unique<TenantState>();
  state->quota = quota;
  if (quota.mem_budget_bytes > 0) {
    state->tracker = std::make_unique<mem::BudgetTracker>(quota.mem_budget_bytes);
  }
  tenants_[name] = std::move(state);
  return OkStatus();
}

JoinService::TenantState* JoinService::TenantOf(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second.get();
  auto state = std::make_unique<TenantState>();
  state->quota = options_.default_quota;
  if (state->quota.mem_budget_bytes > 0) {
    state->tracker =
        std::make_unique<mem::BudgetTracker>(state->quota.mem_budget_bytes);
  }
  TenantState* raw = state.get();
  tenants_[tenant] = std::move(state);
  return raw;
}

int64_t JoinService::RetryAfterMsLocked() const {
  if (avg_job_ns_ <= 0) return kDefaultRetryAfterMs;
  const int64_t ms = avg_job_ns_ / 1000000;
  return ms < 1 ? 1 : ms;
}

StatusOr<JobId> JoinService::SubmitJob(const JobSpec& spec) {
  if (spec.build == nullptr || spec.probe == nullptr) {
    return InvalidArgumentError("JobSpec::build and probe must be non-null");
  }
  const std::string& tenant = TenantNameOf(spec);
  JobId id = 0;
  std::string reject_reason;
  int64_t retry_after_ms = 0;
  {
    MutexLock lock(mutex_);
    if (shutdown_) {
      return FailedPreconditionError("JoinService is shutting down");
    }
    TenantState* state = TenantOf(tenant);
    if (queue_.size() >= options_.max_queue_depth) {
      reject_reason = "admission queue full";
      retry_after_ms = RetryAfterMsLocked();
    } else if (state->active_jobs >= state->quota.max_concurrent_jobs) {
      reject_reason = "tenant over max_concurrent_jobs";
      retry_after_ms = RetryAfterMsLocked();
    } else {
      id = next_job_id_++;
      auto job = std::make_unique<Job>();
      job->id = id;
      job->spec = spec;
      job->spec.tenant = tenant;
      job->tracker = state->tracker.get();
      job->submit_ns = NowNanos();
      state->active_jobs += 1;
      queue_.push_back(job.get());
      stats_.submitted += 1;
      jobs_[id] = std::move(job);
      queue_cv_.NotifyOne();
    }
    if (id == 0) stats_.rejected += 1;
  }
  if (id == 0) {
    obs::MetricsRegistry::Get().AddCounter("service.jobs_rejected", 1);
    MMJOIN_LOG(kWarn, "service.reject")
        .Field("tenant", tenant)
        .Field("reason", reject_reason)
        .Field("retry_after_ms", retry_after_ms);
    return ResourceExhaustedError("job rejected (" + reject_reason +
                                  "); retry after " +
                                  std::to_string(retry_after_ms) + " ms");
  }
  obs::MetricsRegistry::Get().AddCounter("service.jobs_submitted", 1);
  MMJOIN_LOG(kDebug, "service.admit")
      .Field("job", id)
      .Field("tenant", tenant)
      .Field("algorithm", join::NameOf(spec.algorithm));
  return id;
}

StatusOr<JobResult> JoinService::Wait(JobId id) {
  std::unique_ptr<Job> job;
  {
    MutexLock lock(mutex_);
    for (;;) {
      auto it = jobs_.find(id);
      if (it == jobs_.end()) {
        return NotFoundError("unknown job id " + std::to_string(id) +
                             " (never submitted, or already waited on)");
      }
      if (it->second->done) {
        job = std::move(it->second);
        jobs_.erase(it);
        break;
      }
      done_cv_.Wait(mutex_);
    }
  }
  if (!job->status.ok()) return job->status;
  return std::move(job->result);
}

void JoinService::LaneLoop(int lane_index) {
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(mutex_);
      while (queue_.empty() && !shutdown_) queue_cv_.Wait(mutex_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      job = queue_.front();
      queue_.pop_front();
      running_jobs_ += 1;
      if (running_jobs_ > stats_.peak_running) {
        stats_.peak_running = running_jobs_;
      }
    }
    job->result.queue_wait_ns = NowNanos() - job->submit_ns;
    RunJob(lane_index, job);
    const int64_t latency_ns = NowNanos() - job->submit_ns;
    const bool ok = job->status.ok();
    {
      MutexLock lock(mutex_);
      running_jobs_ -= 1;
      auto it = tenants_.find(job->spec.tenant);
      if (it != tenants_.end()) it->second->active_jobs -= 1;
      if (ok) {
        stats_.completed += 1;
      } else {
        stats_.failed += 1;
      }
      // EMA over recent completions feeds the retry-after hint.
      avg_job_ns_ = avg_job_ns_ == 0
                        ? latency_ns
                        : (avg_job_ns_ * 3 + latency_ns) / 4;
      job->done = true;
      done_cv_.NotifyAll();
    }
  }
}

void JoinService::RunJob(int lane_index, Job* job) {
  // Histogram pointers are stable for the registry's lifetime; cache them
  // so the steady state skips the registry mutex.
  static obs::Histogram* const wait_hist =
      obs::MetricsRegistry::Get().GetHistogram("service.queue_wait_ns");
  static obs::Histogram* const latency_hist =
      obs::MetricsRegistry::Get().GetHistogram("service.job_latency_ns");
  wait_hist->Record(static_cast<uint64_t>(job->result.queue_wait_ns));

  join::JoinConfig config = job->spec.config;
  config.num_threads = options_.joiner.num_threads;
  config.executor = lanes_[static_cast<size_t>(lane_index)].executor;
  config.budget = job->tracker;  // nullptr for unbounded tenants
  if (config.budget == nullptr && !config.mem_budget_bytes.has_value()) {
    config.mem_budget_bytes = options_.joiner.mem_budget_bytes;
  }

  // Per-job EXPLAIN window: counter and steal-matrix snapshots bracket this
  // job only, not the process lifetime (see core/explain.h for what
  // overlapping lanes do to the deltas).
  const std::map<std::string, uint64_t> counters_before =
      obs::MetricsRegistry::Get().SnapshotMap();
  const std::vector<uint64_t> steals_before =
      core::SnapshotStealMatrix(joiner_->system());

  const int64_t run_start_ns = NowNanos();
  StatusOr<join::JoinResult> result = [&] {
    obs::ObsScope span("service.job", obs::SpanKind::kRun);
    return join::RunJoin(job->spec.algorithm, joiner_->system(), config,
                         *job->spec.build, *job->spec.probe);
  }();
  const int64_t run_ns = NowNanos() - run_start_ns;
  const int64_t latency_ns = NowNanos() - job->submit_ns;
  latency_hist->Record(static_cast<uint64_t>(latency_ns));

  if (!result.ok()) {
    job->status = result.status();
    obs::MetricsRegistry::Get().AddCounter("service.jobs_failed", 1);
    MMJOIN_LOG(kInfo, "service.complete")
        .Field("job", job->id)
        .Field("tenant", job->spec.tenant)
        .Field("lane", lane_index)
        .Field("ok", false)
        .Field("status", result.status().ToString());
    return;
  }

  job->result.id = job->id;
  job->result.tenant = job->spec.tenant;
  job->result.join = *std::move(result);
  job->result.run_ns = run_ns;
  job->result.lane = lane_index;
  job->result.explain = core::BuildExplainReport(
      join::NameOf(job->spec.algorithm), job->result.join,
      job->spec.build->size(), job->spec.probe->size(),
      options_.joiner.num_threads, joiner_->system(), counters_before,
      obs::MetricsRegistry::Get().SnapshotMap(), &steals_before);
  job->status = OkStatus();
  obs::MetricsRegistry::Get().AddCounter("service.jobs_completed", 1);
  MMJOIN_LOG(kInfo, "service.complete")
      .Field("job", job->id)
      .Field("tenant", job->spec.tenant)
      .Field("lane", lane_index)
      .Field("ok", true)
      .Field("matches", job->result.join.matches)
      .Field("run_ms", static_cast<double>(run_ns) / 1e6);
}

void JoinService::Shutdown() {
  std::vector<std::thread> to_join;
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
    queue_cv_.NotifyAll();
    // Move the threads out under the lock so concurrent Shutdown calls
    // cannot both join the same std::thread.
    for (Lane& lane : lanes_) {
      if (lane.thread.joinable()) to_join.push_back(std::move(lane.thread));
    }
  }
  for (std::thread& thread : to_join) thread.join();
}

ServiceStats JoinService::stats() const {
  MutexLock lock(mutex_);
  ServiceStats out = stats_;
  out.queue_depth = queue_.size();
  return out;
}

}  // namespace mmjoin::service
