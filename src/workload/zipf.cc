#include "workload/zipf.h"

#include <cmath>
#include <string>

#include "util/macros.h"

namespace mmjoin::workload {
namespace {

// Half-width of the window around theta = 1 treated as "harmonic". Wide
// enough that the general Zeta branch never runs with 1 - theta small
// enough to amplify cancellation, narrow enough that substituting the
// window edge for theta changes the distribution by less than the
// approximation error already present.
constexpr double kThetaOneWindow = 1e-8;

// Gray's constants divide by (1 - theta), so every theta inside the window
// collapses to the single representative 1 - kThetaOneWindow: all
// near-harmonic generators share bit-identical constants (theta = 1 and
// theta = 1 + 1e-12 draw the same sequences), and the distribution differs
// from the exact-harmonic one by only O(1e-8) per rank probability.
double GraySafeTheta(double theta) {
  if (std::abs(theta - 1.0) >= kThetaOneWindow) return theta;
  return 1.0 - kThetaOneWindow;
}

}  // namespace

double ZipfZeta(uint64_t n, double theta) {
  if (n <= 100000) {
    double sum = 0;
    for (uint64_t k = 1; k <= n; ++k) sum += std::pow(1.0 / k, theta);
    return sum;
  }
  const double nn = static_cast<double>(n);
  double sum = 0;
  for (uint64_t k = 1; k <= 10000; ++k) sum += std::pow(1.0 / k, theta);
  // Integral tail from 10000.5 to n + 0.5.
  const double a = 10000.5;
  const double b = nn + 0.5;
  if (std::abs(theta - 1.0) < kThetaOneWindow) {
    // Epsilon window, not an exact compare: theta = 1 + 1e-12 must take the
    // log tail too, instead of the general branch's near-pole cancellation.
    sum += std::log(b / a);
  } else {
    sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
           (1.0 - theta);
  }
  return sum;
}

Status ZipfGenerator::Validate(uint64_t n, double theta) {
  if (n < 1) {
    return InvalidArgumentError("ZipfGenerator: n must be >= 1");
  }
  // The negated comparison also rejects NaN.
  if (!(theta >= 0.0 && theta <= kMaxZipfTheta)) {
    return InvalidArgumentError(
        "ZipfGenerator: theta " + std::to_string(theta) + " outside [0, " +
        std::to_string(kMaxZipfTheta) + "]");
  }
  return OkStatus();
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  MMJOIN_CHECK(Validate(n, theta).ok());
  if (theta == 0.0) {
    gray_theta_ = alpha_ = zetan_ = eta_ = threshold1_ = threshold2_ = 0.0;
    return;
  }
  gray_theta_ = GraySafeTheta(theta);
  zetan_ = ZipfZeta(n, gray_theta_);
  const double zeta2 = ZipfZeta(2, gray_theta_);
  alpha_ = 1.0 / (1.0 - gray_theta_);
  eta_ = (1.0 -
          std::pow(2.0 / static_cast<double>(n), 1.0 - gray_theta_)) /
         (1.0 - zeta2 / zetan_);
  threshold1_ = 1.0 / zetan_;
  threshold2_ = (1.0 + std::pow(0.5, gray_theta_)) / zetan_;
}

uint64_t ZipfGenerator::Next() {
  if (theta_ == 0.0) return rng_.NextBelow(n_) + 1;
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 1;
  // gray_theta_, not theta_: inside the harmonic window every theta must
  // sample identically, including this branch threshold.
  if (uz < 1.0 + std::pow(0.5, gray_theta_)) return 2;
  const double rank =
      1.0 + static_cast<double>(n_) *
                std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t result = static_cast<uint64_t>(rank);
  if (result < 1) result = 1;
  if (result > n_) result = n_;
  return result;
}

}  // namespace mmjoin::workload
