#include "workload/zipf.h"

#include <cmath>
#include <string>

#include "util/macros.h"

namespace mmjoin::workload {
namespace {

// Incomplete zeta sum: sum_{k=1..n} 1/k^theta. Exact for small n, Euler-
// Maclaurin approximation for large n (error < 1e-6 relative for the theta
// range used here).
double Zeta(uint64_t n, double theta) {
  if (n <= 100000) {
    double sum = 0;
    for (uint64_t k = 1; k <= n; ++k) sum += std::pow(1.0 / k, theta);
    return sum;
  }
  const double nn = static_cast<double>(n);
  double sum = 0;
  for (uint64_t k = 1; k <= 10000; ++k) sum += std::pow(1.0 / k, theta);
  // Integral tail from 10000.5 to n + 0.5.
  const double a = 10000.5;
  const double b = nn + 0.5;
  if (theta == 1.0) {
    sum += std::log(b / a);
  } else {
    sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
           (1.0 - theta);
  }
  return sum;
}

}  // namespace

Status ZipfGenerator::Validate(uint64_t n, double theta) {
  if (n < 1) {
    return InvalidArgumentError("ZipfGenerator: n must be >= 1");
  }
  // The negated comparison also rejects NaN.
  if (!(theta >= 0.0 && theta < 1.0)) {
    return InvalidArgumentError(
        "ZipfGenerator: theta " + std::to_string(theta) +
        " outside [0, 1) -- Gray's approximation diverges");
  }
  return OkStatus();
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  MMJOIN_CHECK(Validate(n, theta).ok());
  if (theta == 0.0) {
    alpha_ = zetan_ = eta_ = threshold1_ = threshold2_ = 0.0;
    return;
  }
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
  threshold1_ = 1.0 / zetan_;
  threshold2_ = (1.0 + std::pow(0.5, theta)) / zetan_;
}

uint64_t ZipfGenerator::Next() {
  if (theta_ == 0.0) return rng_.NextBelow(n_) + 1;
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 1;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 2;
  const double rank =
      1.0 + static_cast<double>(n_) *
                std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t result = static_cast<uint64_t>(rank);
  if (result < 1) result = 1;
  if (result > n_) result = n_;
  return result;
}

}  // namespace mmjoin::workload
