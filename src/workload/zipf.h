// Zipf-distributed key generation, following Gray et al., "Quickly
// Generating Billion-Record Synthetic Databases" (SIGMOD 1994) -- the
// generator the paper uses for its skew experiments (Appendix A).
//
// The incremental per-sample method draws u ~ U(0,1) and maps it through the
// Zipf CDF approximation; we precompute the two constants of Gray's
// algorithm so each sample is O(1).

#ifndef MMJOIN_WORKLOAD_ZIPF_H_
#define MMJOIN_WORKLOAD_ZIPF_H_

#include <cstdint>

#include "util/rng.h"
#include "util/status.h"

namespace mmjoin::workload {

// Samples ranks in [1, n] with P(rank = k) proportional to 1/k^theta.
// theta = 0 degenerates to uniform; theta in (0, 1) uses Gray's O(1)
// approximation ("zipfian" in YCSB terms).
class ZipfGenerator {
 public:
  // Gray's approximation is valid for theta in [0, 1) and n >= 1 (theta = 1
  // diverges and theta outside the range, including NaN, is meaningless).
  static Status Validate(uint64_t n, double theta);

  // Aborts on parameters Validate rejects; validate first on untrusted
  // input (MakeZipfProbe does).
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  // Returns a rank in [1, n]; rank 1 is the most frequent value.
  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double threshold1_;  // probability mass of rank 1
  double threshold2_;  // probability mass of ranks 1+2
  Rng rng_;
};

}  // namespace mmjoin::workload

#endif  // MMJOIN_WORKLOAD_ZIPF_H_
