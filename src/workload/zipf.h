// Zipf-distributed key generation, following Gray et al., "Quickly
// Generating Billion-Record Synthetic Databases" (SIGMOD 1994) -- the
// generator the paper uses for its skew experiments (Appendix A).
//
// The incremental per-sample method draws u ~ U(0,1) and maps it through the
// Zipf CDF approximation; we precompute the two constants of Gray's
// algorithm so each sample is O(1).

#ifndef MMJOIN_WORKLOAD_ZIPF_H_
#define MMJOIN_WORKLOAD_ZIPF_H_

#include <cstdint>

#include "util/rng.h"
#include "util/status.h"

namespace mmjoin::workload {

// Highest skew parameter the generator accepts. Gray's formula is defined
// for any theta != 1 (theta = 1 is handled by nudging into an epsilon
// window, see GraySafeTheta in zipf.cc); beyond ~8 essentially all mass sits
// on rank 1 and the pow() terms start flirting with overflow, so larger
// values are rejected as configuration errors. The paper's Fig 15 skew
// sweep tops out at 1.5.
inline constexpr double kMaxZipfTheta = 8.0;

// Incomplete zeta sum: sum_{k=1..n} 1/k^theta. Exact for small n,
// Euler-Maclaurin approximation for large n (relative error < 1e-6 over the
// accepted theta range). theta within 1e-8 of 1 takes the exact-harmonic
// tail -- an epsilon window, not an exact float compare, so theta = 1 +
// 1e-12 gets the same precision as theta = 1 (the general branch's
// (b^(1-theta) - a^(1-theta))/(1-theta) is continuous but needlessly
// cancellation-prone that close to the pole). Exposed for continuity tests.
double ZipfZeta(uint64_t n, double theta);

// Samples ranks in [1, n] with P(rank = k) proportional to 1/k^theta.
// theta = 0 degenerates to uniform; larger theta uses Gray's O(1)
// approximation ("zipfian" in YCSB terms), which also covers theta >= 1 --
// the paper's skew experiments need theta up to 1.5 (Fig 15).
class ZipfGenerator {
 public:
  // Accepts theta in [0, kMaxZipfTheta] and n >= 1; rejects NaN and
  // anything outside the range.
  static Status Validate(uint64_t n, double theta);

  // Aborts on parameters Validate rejects; validate first on untrusted
  // input (MakeZipfProbe does).
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  // Returns a rank in [1, n]; rank 1 is the most frequent value.
  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;       // as requested (theta() reports this)
  double gray_theta_;  // theta actually sampled with; see GraySafeTheta
  double alpha_;
  double zetan_;
  double eta_;
  double threshold1_;  // probability mass of rank 1
  double threshold2_;  // probability mass of ranks 1+2
  Rng rng_;
};

}  // namespace mmjoin::workload

#endif  // MMJOIN_WORKLOAD_ZIPF_H_
