#include "workload/generator.h"

#include <string>
#include <utility>
#include <vector>

#include "util/macros.h"
#include "util/rng.h"
#include "util/types.h"
#include "workload/zipf.h"

namespace mmjoin::workload {
namespace {

// Fisher-Yates shuffle of the tuple array.
void ShuffleTuples(Relation* relation, Rng* rng) {
  Tuple* tuples = relation->data();
  for (uint64_t i = relation->size(); i > 1; --i) {
    const uint64_t j = rng->NextBelow(i);
    std::swap(tuples[i - 1], tuples[j]);
  }
}

Status ValidateCardinality(uint64_t n, const char* what) {
  if (n == 0) {
    return InvalidArgumentError(std::string(what) +
                                ": cardinality must be >= 1");
  }
  if (n >= kEmptyKey) {
    return InvalidArgumentError(
        std::string(what) + ": cardinality " + std::to_string(n) +
        " exceeds the key space (kEmptyKey is reserved)");
  }
  return OkStatus();
}

Status ValidateDomain(uint64_t build_n, const char* what) {
  if (build_n == 0 || build_n >= kEmptyKey) {
    return InvalidArgumentError(
        std::string(what) + ": referenced key domain " +
        std::to_string(build_n) + " outside [1, 2^32 - 1)");
  }
  return OkStatus();
}

}  // namespace

StatusOr<Relation> MakeDenseBuild(numa::NumaSystem* system, uint64_t n,
                                  uint64_t seed) {
  MMJOIN_RETURN_IF_ERROR(ValidateCardinality(n, "MakeDenseBuild"));
  Relation relation(system, n);
  Tuple* tuples = relation.data();
  for (uint64_t i = 0; i < n; ++i) {
    const auto key = static_cast<uint32_t>(i);
    tuples[i] = Tuple{key, key};
  }
  Rng rng(seed);
  ShuffleTuples(&relation, &rng);
  relation.set_key_domain(n);
  return relation;
}

StatusOr<Relation> MakeUniformProbe(numa::NumaSystem* system, uint64_t n,
                                    uint64_t build_n, uint64_t seed) {
  MMJOIN_RETURN_IF_ERROR(ValidateCardinality(n, "MakeUniformProbe"));
  MMJOIN_RETURN_IF_ERROR(ValidateDomain(build_n, "MakeUniformProbe"));
  Relation relation(system, n);
  Tuple* tuples = relation.data();
  Rng rng(seed);
  for (uint64_t i = 0; i < n; ++i) {
    const auto key = static_cast<uint32_t>(rng.NextBelow(build_n));
    tuples[i] = Tuple{key, static_cast<uint32_t>(i)};
  }
  relation.set_key_domain(build_n);
  return relation;
}

StatusOr<Relation> MakeZipfProbe(numa::NumaSystem* system, uint64_t n,
                                 uint64_t build_n, double theta,
                                 uint64_t seed) {
  MMJOIN_RETURN_IF_ERROR(ValidateCardinality(n, "MakeZipfProbe"));
  MMJOIN_RETURN_IF_ERROR(ValidateDomain(build_n, "MakeZipfProbe"));
  MMJOIN_RETURN_IF_ERROR(ZipfGenerator::Validate(build_n, theta));
  Relation relation(system, n);
  Tuple* tuples = relation.data();
  ZipfGenerator zipf(build_n, theta, seed);
  Rng rng(seed ^ 0x5EEDF00Dull);

  // Remap the 10 hottest ranks to random keys over the full domain
  // (Appendix A: "we map the 10 smallest keys to random keys in the full
  // domain").
  constexpr uint64_t kRemapped = 10;
  uint32_t remap[kRemapped];
  for (uint64_t r = 0; r < kRemapped && r < build_n; ++r) {
    remap[r] = static_cast<uint32_t>(rng.NextBelow(build_n));
  }

  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t rank = zipf.Next();  // 1 = hottest
    uint32_t key;
    if (rank <= kRemapped && rank <= build_n) {
      key = remap[rank - 1];
    } else {
      key = static_cast<uint32_t>(rank - 1);
    }
    tuples[i] = Tuple{key, static_cast<uint32_t>(i)};
  }
  relation.set_key_domain(build_n);
  return relation;
}

StatusOr<Relation> MakeSparseBuild(numa::NumaSystem* system, uint64_t n,
                                   uint64_t k, uint64_t seed) {
  MMJOIN_RETURN_IF_ERROR(ValidateCardinality(n, "MakeSparseBuild"));
  if (k < 1) {
    return InvalidArgumentError("MakeSparseBuild: stratum length k must be"
                                " >= 1");
  }
  // n unique keys need a domain of n * k distinct values; reject overflow
  // and domains exceeding the 32-bit key space.
  if (k > (kEmptyKey - 1) / n) {
    return InvalidArgumentError(
        "MakeSparseBuild: key domain " + std::to_string(n) + " * " +
        std::to_string(k) + " overflows the 32-bit key space -- too small to"
        " hold the requested unique keys");
  }
  Relation relation(system, n);
  Tuple* tuples = relation.data();
  Rng rng(seed);
  for (uint64_t i = 0; i < n; ++i) {
    const auto key = static_cast<uint32_t>(i * k + rng.NextBelow(k));
    tuples[i] = Tuple{key, static_cast<uint32_t>(i)};
  }
  ShuffleTuples(&relation, &rng);
  relation.set_key_domain(n * k);
  return relation;
}

StatusOr<Relation> MakeProbeFromBuild(numa::NumaSystem* system, uint64_t n,
                                      const Relation& build, uint64_t seed) {
  MMJOIN_RETURN_IF_ERROR(ValidateCardinality(n, "MakeProbeFromBuild"));
  if (build.size() < 1) {
    return InvalidArgumentError(
        "MakeProbeFromBuild: build relation is empty");
  }
  Relation relation(system, n);
  Tuple* tuples = relation.data();
  Rng rng(seed);
  const Tuple* build_tuples = build.data();
  for (uint64_t i = 0; i < n; ++i) {
    const uint32_t key = build_tuples[rng.NextBelow(build.size())].key;
    tuples[i] = Tuple{key, static_cast<uint32_t>(i)};
  }
  relation.set_key_domain(build.key_domain());
  return relation;
}

}  // namespace mmjoin::workload
