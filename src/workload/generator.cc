#include "workload/generator.h"

#include <utility>
#include <vector>

#include "util/macros.h"
#include "util/rng.h"
#include "util/types.h"
#include "workload/zipf.h"

namespace mmjoin::workload {
namespace {

// Fisher-Yates shuffle of the tuple array.
void ShuffleTuples(Relation* relation, Rng* rng) {
  Tuple* tuples = relation->data();
  for (uint64_t i = relation->size(); i > 1; --i) {
    const uint64_t j = rng->NextBelow(i);
    std::swap(tuples[i - 1], tuples[j]);
  }
}

}  // namespace

Relation MakeDenseBuild(numa::NumaSystem* system, uint64_t n, uint64_t seed) {
  MMJOIN_CHECK(n < kEmptyKey);
  Relation relation(system, n);
  Tuple* tuples = relation.data();
  for (uint64_t i = 0; i < n; ++i) {
    const auto key = static_cast<uint32_t>(i);
    tuples[i] = Tuple{key, key};
  }
  Rng rng(seed);
  ShuffleTuples(&relation, &rng);
  relation.set_key_domain(n);
  return relation;
}

Relation MakeUniformProbe(numa::NumaSystem* system, uint64_t n,
                          uint64_t build_n, uint64_t seed) {
  MMJOIN_CHECK(build_n >= 1 && build_n < kEmptyKey);
  Relation relation(system, n);
  Tuple* tuples = relation.data();
  Rng rng(seed);
  for (uint64_t i = 0; i < n; ++i) {
    const auto key = static_cast<uint32_t>(rng.NextBelow(build_n));
    tuples[i] = Tuple{key, static_cast<uint32_t>(i)};
  }
  relation.set_key_domain(build_n);
  return relation;
}

Relation MakeZipfProbe(numa::NumaSystem* system, uint64_t n, uint64_t build_n,
                       double theta, uint64_t seed) {
  MMJOIN_CHECK(build_n >= 1 && build_n < kEmptyKey);
  Relation relation(system, n);
  Tuple* tuples = relation.data();
  ZipfGenerator zipf(build_n, theta, seed);
  Rng rng(seed ^ 0x5EEDF00Dull);

  // Remap the 10 hottest ranks to random keys over the full domain
  // (Appendix A: "we map the 10 smallest keys to random keys in the full
  // domain").
  constexpr uint64_t kRemapped = 10;
  uint32_t remap[kRemapped];
  for (uint64_t r = 0; r < kRemapped && r < build_n; ++r) {
    remap[r] = static_cast<uint32_t>(rng.NextBelow(build_n));
  }

  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t rank = zipf.Next();  // 1 = hottest
    uint32_t key;
    if (rank <= kRemapped && rank <= build_n) {
      key = remap[rank - 1];
    } else {
      key = static_cast<uint32_t>(rank - 1);
    }
    tuples[i] = Tuple{key, static_cast<uint32_t>(i)};
  }
  relation.set_key_domain(build_n);
  return relation;
}

Relation MakeSparseBuild(numa::NumaSystem* system, uint64_t n, uint64_t k,
                         uint64_t seed) {
  MMJOIN_CHECK(k >= 1);
  MMJOIN_CHECK(n * k < kEmptyKey);
  Relation relation(system, n);
  Tuple* tuples = relation.data();
  Rng rng(seed);
  for (uint64_t i = 0; i < n; ++i) {
    const auto key = static_cast<uint32_t>(i * k + rng.NextBelow(k));
    tuples[i] = Tuple{key, static_cast<uint32_t>(i)};
  }
  ShuffleTuples(&relation, &rng);
  relation.set_key_domain(n * k);
  return relation;
}

Relation MakeProbeFromBuild(numa::NumaSystem* system, uint64_t n,
                            const Relation& build, uint64_t seed) {
  MMJOIN_CHECK(build.size() >= 1);
  Relation relation(system, n);
  Tuple* tuples = relation.data();
  Rng rng(seed);
  const Tuple* build_tuples = build.data();
  for (uint64_t i = 0; i < n; ++i) {
    const uint32_t key = build_tuples[rng.NextBelow(build.size())].key;
    tuples[i] = Tuple{key, static_cast<uint32_t>(i)};
  }
  relation.set_key_domain(build.key_domain());
  return relation;
}

}  // namespace mmjoin::workload
