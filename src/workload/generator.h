// Workload generators for all experiments (paper Sections 4, 7 and
// Appendices A & C).
//
// Conventions shared by the whole study:
//  * The build relation R models a primary-key column: keys are unique and
//    (by default) dense in [0, |R|), in random order; payload = row id.
//  * The probe relation S models a foreign-key column: every key references
//    an existing build key -- uniformly, Zipf-skewed, or over a sparse
//    ("holes") domain.
// All generators are deterministic in their seed.
//
// Nonsensical parameters (zero cardinality, a key domain that cannot hold
// the requested unique keys, Zipf theta outside [0, kMaxZipfTheta]) are
// rejected with InvalidArgument instead of generating garbage. Empty relations are still
// constructible directly via Relation(system, 0) where a degenerate input is
// genuinely wanted (boundary tests).

#ifndef MMJOIN_WORKLOAD_GENERATOR_H_
#define MMJOIN_WORKLOAD_GENERATOR_H_

#include <cstdint>

#include "numa/system.h"
#include "util/status.h"
#include "workload/relation.h"

namespace mmjoin::workload {

// Dense unique primary keys 0 .. n-1 in random order; payload = key's row
// position semantics (payload == key so join results are self-checking).
StatusOr<Relation> MakeDenseBuild(numa::NumaSystem* system, uint64_t n,
                                  uint64_t seed);

// Uniform foreign keys referencing a dense build domain [0, build_n).
StatusOr<Relation> MakeUniformProbe(numa::NumaSystem* system, uint64_t n,
                                    uint64_t build_n, uint64_t seed);

// Zipf-skewed foreign keys over [0, build_n) with factor theta (Appendix A).
// As in the paper, the 10 hottest ranks are remapped to random keys across
// the full domain so the hottest keys do not all land in one radix
// partition.
StatusOr<Relation> MakeZipfProbe(numa::NumaSystem* system, uint64_t n,
                                 uint64_t build_n, double theta,
                                 uint64_t seed);

// Sparse build domain for the holes experiment (Appendix C): n unique keys
// stratified over [0, k * n) (exactly one key per length-k stratum), in
// random order. key_domain() is k * n.
StatusOr<Relation> MakeSparseBuild(numa::NumaSystem* system, uint64_t n,
                                   uint64_t k, uint64_t seed);

// Probe relation referencing keys of an arbitrary build relation uniformly.
StatusOr<Relation> MakeProbeFromBuild(numa::NumaSystem* system, uint64_t n,
                                      const Relation& build, uint64_t seed);

}  // namespace mmjoin::workload

#endif  // MMJOIN_WORKLOAD_GENERATOR_H_
