// Owning join relation: a NUMA-placed array of <key, payload> tuples.

#ifndef MMJOIN_WORKLOAD_RELATION_H_
#define MMJOIN_WORKLOAD_RELATION_H_

#include <cstdint>

#include "numa/system.h"
#include "util/types.h"

namespace mmjoin::workload {

class Relation {
 public:
  Relation() = default;
  // Allocates `num_tuples` tuples. The default placement mirrors the paper:
  // input relations are spread over all NUMA regions in contiguous chunks
  // ("one quarter of each input relation is physically allocated on one of
  // the NUMA-regions", Section 6.2).
  Relation(numa::NumaSystem* system, uint64_t num_tuples,
           numa::Placement placement = numa::Placement::kChunkedRoundRobin)
      : tuples_(system, num_tuples, placement) {}

  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  uint64_t size() const { return tuples_.size(); }
  Tuple* data() { return tuples_.data(); }
  const Tuple* data() const { return tuples_.data(); }

  TupleSpan span() { return TupleSpan(tuples_.data(), tuples_.size()); }
  ConstTupleSpan cspan() const {
    return ConstTupleSpan(tuples_.data(), tuples_.size());
  }

  // Exclusive upper bound of the key domain (max key + 1); array joins size
  // their tables from this.
  uint64_t key_domain() const { return key_domain_; }
  void set_key_domain(uint64_t domain) { key_domain_ = domain; }

 private:
  numa::NumaBuffer<Tuple> tuples_;
  uint64_t key_domain_ = 0;
};

}  // namespace mmjoin::workload

#endif  // MMJOIN_WORKLOAD_RELATION_H_
