#include "core/explain.h"

#include <algorithm>
#include <cstdio>

#include "obs/phase_profile.h"

namespace mmjoin::core {
namespace {

std::string U64(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string Ms(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ns) / 1e6);
  return buf;
}

// Minimal right-aligned table: TablePrinter writes to a FILE*, and this
// report must land in a string for both the CLI and the identity test.
class Rows {
 public:
  explicit Rows(std::vector<std::string> headers) {
    Add(std::move(headers));
  }
  void Add(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }
  void Render(std::string* out) const {
    std::vector<size_t> width;
    for (const auto& row : rows_) {
      if (width.size() < row.size()) width.resize(row.size(), 0);
      for (size_t c = 0; c < row.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    for (const auto& row : rows_) {
      out->append("  ");
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out->append("  ");
        // First column left-aligned (labels), the rest right-aligned.
        const size_t pad = width[c] - row[c].size();
        if (c == 0) {
          out->append(row[c]);
          out->append(pad, ' ');
        } else {
          out->append(pad, ' ');
          out->append(row[c]);
        }
      }
      out->push_back('\n');
    }
  }

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace

std::vector<uint64_t> SnapshotStealMatrix(const numa::NumaSystem* system) {
  std::vector<uint64_t> matrix;
  if (system == nullptr) return matrix;
  const int num_nodes = system->topology().num_nodes();
  matrix.reserve(static_cast<size_t>(num_nodes) * num_nodes);
  for (int thief = 0; thief < num_nodes; ++thief) {
    for (int victim = 0; victim < num_nodes; ++victim) {
      matrix.push_back(system->TaskSteals(thief, victim));
    }
  }
  return matrix;
}

ExplainReport BuildExplainReport(
    std::string_view algorithm, const join::JoinResult& result,
    uint64_t build_size, uint64_t probe_size, int threads,
    const numa::NumaSystem* system,
    const std::map<std::string, uint64_t>& counters_before,
    const std::map<std::string, uint64_t>& counters_after,
    const std::vector<uint64_t>* steals_before) {
  ExplainReport report;
  report.algorithm = std::string(algorithm);
  report.build_size = build_size;
  report.probe_size = probe_size;
  report.threads = threads;
  report.result = result;
  if (system != nullptr) {
    report.num_nodes = system->topology().num_nodes();
    report.steal_matrix = SnapshotStealMatrix(system);
    // With a baseline, report the run's own steals; the matrix is
    // monotonic, so a mismatched or stale baseline clamps to zero rather
    // than underflowing.
    if (steals_before != nullptr &&
        steals_before->size() == report.steal_matrix.size()) {
      for (size_t i = 0; i < report.steal_matrix.size(); ++i) {
        const uint64_t before = (*steals_before)[i];
        report.steal_matrix[i] -=
            before < report.steal_matrix[i] ? before : report.steal_matrix[i];
      }
    }
    report.total_steals = 0;
    for (const uint64_t steals : report.steal_matrix) {
      report.total_steals += steals;
    }
  }
  for (const auto& [name, after] : counters_after) {
    const auto it = counters_before.find(name);
    const uint64_t before = it == counters_before.end() ? 0 : it->second;
    // Monotonic counters only move up; a counter that vanished or shrank
    // (test-only resets) contributes nothing.
    if (after > before) report.counters[name] = after - before;
  }
  return report;
}

std::string FormatExplainText(const ExplainReport& report) {
  std::string out;
  out += "== EXPLAIN ANALYZE: " + report.algorithm + " ==\n";
  out += "  inputs    : |R|=" + U64(report.build_size) +
         " |S|=" + U64(report.probe_size) +
         " threads=" + std::to_string(report.threads) + "\n";
  out += "  result    : matches=" + U64(report.result.matches) +
         " checksum=" + U64(report.result.checksum) + "\n";
  const join::PhaseTimes& times = report.result.times;
  const double mtps =
      times.total_ns > 0
          ? static_cast<double>(report.build_size + report.probe_size) * 1e3 /
                static_cast<double>(times.total_ns)
          : 0.0;
  char line[160];
  std::snprintf(line, sizeof(line),
                "  wall clock: partition=%sms build=%sms probe=%sms "
                "total=%sms (%.1f Mtps)\n",
                Ms(times.partition_ns).c_str(), Ms(times.build_ns).c_str(),
                Ms(times.probe_ns).c_str(), Ms(times.total_ns).c_str(), mtps);
  out += line;

  if (report.result.profile.has_value()) {
    const obs::PhaseProfile& profile = *report.result.profile;
    out += "\n  -- phase breakdown (per-thread wall clock) --\n";
    Rows rows({"phase", "threads", "total ms", "mean ms", "min ms", "max ms",
               "cycles", "instrs"});
    for (int p = 0; p < obs::kNumJoinPhases; ++p) {
      const obs::PhaseStat& stat = profile.phases[p];
      if (stat.threads == 0) continue;
      rows.Add({obs::JoinPhaseName(static_cast<obs::JoinPhase>(p)),
                std::to_string(stat.threads), Ms(stat.total_ns),
                Ms(stat.MeanNs()), Ms(stat.min_ns), Ms(stat.max_ns),
                stat.counters.valid ? U64(stat.counters.cycles) : "-",
                stat.counters.valid ? U64(stat.counters.instructions) : "-"});
    }
    rows.Render(&out);
    out += "  critical path " + Ms(profile.CriticalPathNs()) +
           "ms (sum of slowest thread per phase) vs wall total " +
           Ms(times.total_ns) + "ms\n";
  } else {
    out += "  (no phase profile: observability was disabled for this run)\n";
  }

  out += "\n  -- NUMA task steals: total=" + U64(report.total_steals) + " --\n";
  if (report.num_nodes > 0 && report.total_steals > 0) {
    std::vector<std::string> header{"thief\\victim"};
    for (int v = 0; v < report.num_nodes; ++v) {
      header.push_back("n" + std::to_string(v));
    }
    Rows rows(std::move(header));
    for (int t = 0; t < report.num_nodes; ++t) {
      std::vector<std::string> row{"n" + std::to_string(t)};
      for (int v = 0; v < report.num_nodes; ++v) {
        row.push_back(U64(
            report.steal_matrix[static_cast<size_t>(t) * report.num_nodes + v]));
      }
      rows.Add(std::move(row));
    }
    rows.Render(&out);
  }

  if (!report.counters.empty()) {
    out += "\n  -- counter deltas over this run --\n";
    Rows rows({"counter", "delta"});
    for (const auto& [name, delta] : report.counters) {
      rows.Add({name, U64(delta)});
    }
    rows.Render(&out);
  }
  return out;
}

std::string ExplainReportJson(const ExplainReport& report) {
  std::string out = "{\"schema\":\"mmjoin.report.v1\",\"algorithm\":\"";
  out += report.algorithm;  // registry names, no escaping needed
  out += "\",\"build\":" + U64(report.build_size);
  out += ",\"probe\":" + U64(report.probe_size);
  out += ",\"threads\":" + std::to_string(report.threads);
  out += ",\"matches\":" + U64(report.result.matches);
  out += ",\"checksum\":" + U64(report.result.checksum);
  const join::PhaseTimes& times = report.result.times;
  out += ",\"times\":{\"partition_ns\":" +
         U64(static_cast<uint64_t>(times.partition_ns)) +
         ",\"build_ns\":" + U64(static_cast<uint64_t>(times.build_ns)) +
         ",\"probe_ns\":" + U64(static_cast<uint64_t>(times.probe_ns)) +
         ",\"total_ns\":" + U64(static_cast<uint64_t>(times.total_ns)) + "}";
  if (report.result.profile.has_value()) {
    const obs::PhaseProfile& profile = *report.result.profile;
    out += ",\"phases\":{";
    bool first = true;
    for (int p = 0; p < obs::kNumJoinPhases; ++p) {
      const obs::PhaseStat& stat = profile.phases[p];
      if (stat.threads == 0) continue;
      if (!first) out += ',';
      first = false;
      out += '"';
      out += obs::JoinPhaseName(static_cast<obs::JoinPhase>(p));
      out += "\":{\"threads\":" + std::to_string(stat.threads) +
             ",\"total_ns\":" + U64(static_cast<uint64_t>(stat.total_ns)) +
             ",\"min_ns\":" + U64(static_cast<uint64_t>(stat.min_ns)) +
             ",\"max_ns\":" + U64(static_cast<uint64_t>(stat.max_ns)) + "}";
    }
    out += "},\"critical_path_ns\":" +
           U64(static_cast<uint64_t>(profile.CriticalPathNs()));
  }
  out += ",\"steals\":{\"nodes\":" + std::to_string(report.num_nodes) +
         ",\"total\":" + U64(report.total_steals) + ",\"matrix\":[";
  for (size_t i = 0; i < report.steal_matrix.size(); ++i) {
    if (i > 0) out += ',';
    out += U64(report.steal_matrix[i]);
  }
  out += "]},\"counters\":{";
  bool first = true;
  for (const auto& [name, delta] : report.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":" + U64(delta);
  }
  out += "}}";
  return out;
}

Status WriteExplainJson(const ExplainReport& report, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError("cannot open report file '" + path +
                            "' for writing");
  }
  const std::string json = ExplainReportJson(report);
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  const int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    return UnavailableError("short write to report file '" + path + "'");
  }
  return OkStatus();
}

}  // namespace mmjoin::core
