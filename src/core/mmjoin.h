// Umbrella header: the public API of the mmjoin library.
//
// Quickstart:
//
//   #include "core/mmjoin.h"
//
//   mmjoin::numa::NumaSystem system(/*num_nodes=*/4);
//   auto build = mmjoin::workload::MakeDenseBuild(&system, 1 << 20, 1);
//   auto probe = mmjoin::workload::MakeProbeFromBuild(&system, 10 << 20,
//                                                     build, 2);
//   mmjoin::join::JoinConfig config;
//   config.num_threads = 4;
//   auto result = mmjoin::join::RunJoin(mmjoin::join::Algorithm::kCPRL,
//                                       &system, config, build, probe);
//
// See README.md for the architecture overview and DESIGN.md for the mapping
// from paper experiments to modules.

#ifndef MMJOIN_CORE_MMJOIN_H_
#define MMJOIN_CORE_MMJOIN_H_

#include "core/advisor.h"             // IWYU pragma: export
#include "core/joiner.h"              // IWYU pragma: export
#include "join/join_algorithm.h"      // IWYU pragma: export
#include "join/join_defs.h"           // IWYU pragma: export
#include "join/materialize.h"         // IWYU pragma: export
#include "join/reference.h"           // IWYU pragma: export
#include "numa/system.h"              // IWYU pragma: export
#include "partition/model.h"          // IWYU pragma: export
#include "thread/executor.h"          // IWYU pragma: export
#include "util/failpoint.h"           // IWYU pragma: export
#include "util/status.h"              // IWYU pragma: export
#include "util/types.h"               // IWYU pragma: export
#include "workload/generator.h"       // IWYU pragma: export
#include "workload/relation.h"        // IWYU pragma: export

#endif  // MMJOIN_CORE_MMJOIN_H_
