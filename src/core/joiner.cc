#include "core/joiner.h"

namespace mmjoin::core {

Joiner::Joiner(const JoinerOptions& options)
    : system_(options.num_nodes, options.page_policy),
      num_threads_(options.num_threads),
      executor_(std::make_unique<thread::Executor>(options.num_threads,
                                                   options.num_nodes)) {
  MMJOIN_CHECK(options.num_threads >= 1);
}

join::JoinResult Joiner::Run(join::Algorithm algorithm,
                             const workload::Relation& build,
                             const workload::Relation& probe) {
  join::JoinConfig config;
  config.num_threads = num_threads_;
  config.executor = executor_.get();
  return join::RunJoin(algorithm, &system_, config, build, probe);
}

std::optional<join::JoinResult> Joiner::RunByName(
    std::string_view name, const workload::Relation& build,
    const workload::Relation& probe) {
  const auto algorithm = join::AlgorithmFromName(name);
  if (!algorithm.has_value()) return std::nullopt;
  return Run(*algorithm, build, probe);
}

Joiner::AutoResult Joiner::RunAuto(const workload::Relation& build,
                                   const workload::Relation& probe,
                                   double probe_skew_theta) {
  const Advice advice = AdviseJoin(
      WorkloadProfile{build.size(), probe.size(), build.key_domain(),
                      probe_skew_theta},
      num_threads_);
  AutoResult result{advice.algorithm, advice.reason, {}};
  result.result = Run(advice.algorithm, build, probe);
  return result;
}

std::vector<join::MatchedPair> Joiner::RunMaterialized(
    join::Algorithm algorithm, const workload::Relation& build,
    const workload::Relation& probe) {
  join::JoinIndexSink sink(num_threads_);
  sink.Reserve(probe.size());  // FK joins: ~one match per probe tuple
  join::JoinConfig config;
  config.num_threads = num_threads_;
  config.executor = executor_.get();
  config.sink = &sink;
  join::RunJoin(algorithm, &system_, config, build, probe);
  return sink.Gather();
}

}  // namespace mmjoin::core
