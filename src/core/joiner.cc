#include "core/joiner.h"

#include <string>

#include "mem/budget.h"
#include "obs/trace.h"
#include "util/log.h"

namespace mmjoin::core {

Status JoinerOptions::Validate() const {
  if (num_nodes < 1) {
    return InvalidArgumentError("num_nodes=" + std::to_string(num_nodes) +
                                " must be >= 1");
  }
  if (num_threads < 1 || num_threads > join::JoinConfig::kMaxThreads) {
    return InvalidArgumentError(
        "num_threads=" + std::to_string(num_threads) + " outside [1, " +
        std::to_string(join::JoinConfig::kMaxThreads) + "]");
  }
  if (mem_budget_bytes.has_value()) {
    if (*mem_budget_bytes == 0) {
      return InvalidArgumentError(
          "mem_budget_bytes=0: a zero memory budget cannot admit any "
          "allocation (omit the budget for unbounded)");
    }
    if (*mem_budget_bytes < join::JoinConfig::kMinMemBudgetBytes) {
      return InvalidArgumentError(
          "mem_budget_bytes=" + std::to_string(*mem_budget_bytes) +
          " is below the minimum " +
          std::to_string(join::JoinConfig::kMinMemBudgetBytes) +
          " (one mmap-class partition buffer)");
    }
  }
  return OkStatus();
}

Joiner::Joiner(const JoinerOptions& options)
    : system_(options.num_nodes, options.page_policy),
      num_threads_(options.num_threads),
      mem_budget_bytes_(options.mem_budget_bytes),
      executor_(std::make_unique<thread::Executor>(options.num_threads,
                                                   options.num_nodes)) {
  const Status status = options.Validate();
  if (!status.ok()) {
    MMJOIN_LOG(kError, "joiner.invalid_options")
        .Field("status", status.ToString());
  }
  MMJOIN_CHECK(status.ok());
}

StatusOr<std::unique_ptr<Joiner>> Joiner::Create(const JoinerOptions& options) {
  MMJOIN_RETURN_IF_ERROR(options.Validate());
  return std::make_unique<Joiner>(options);
}

StatusOr<join::JoinResult> Joiner::Run(join::Algorithm algorithm,
                                       const workload::Relation& build,
                                       const workload::Relation& probe) {
  return Run(algorithm, join::JoinConfig{}, build, probe);
}

StatusOr<join::JoinResult> Joiner::Run(join::Algorithm algorithm,
                                       const join::JoinConfig& base_config,
                                       const workload::Relation& build,
                                       const workload::Relation& probe) {
  join::JoinConfig config = base_config;
  config.num_threads = num_threads_;
  config.executor = executor_.get();
  // Joiner-level default budget: a config-level budget wins.
  if (!config.mem_budget_bytes.has_value() && config.budget == nullptr) {
    config.mem_budget_bytes = mem_budget_bytes_;
  }
  obs::ObsScope scope(join::NameOf(algorithm), obs::SpanKind::kRun);
  return join::RunJoin(algorithm, &system_, config, build, probe);
}

StatusOr<join::JoinResult> Joiner::RunByName(std::string_view name,
                                             const workload::Relation& build,
                                             const workload::Relation& probe) {
  const auto algorithm = join::AlgorithmFromName(name);
  if (!algorithm.has_value()) {
    return NotFoundError("unknown join algorithm '" + std::string(name) + "'");
  }
  return Run(*algorithm, build, probe);
}

StatusOr<Joiner::AutoResult> Joiner::RunAuto(const workload::Relation& build,
                                             const workload::Relation& probe,
                                             double probe_skew_theta) {
  const Advice advice = AdviseJoin(
      WorkloadProfile{build.size(), probe.size(), build.key_domain(),
                      probe_skew_theta},
      num_threads_);
  MMJOIN_ASSIGN_OR_RETURN(join::JoinResult join_result,
                          Run(advice.algorithm, build, probe));
  return AutoResult{advice.algorithm, advice.reason, join_result};
}

StatusOr<std::vector<join::MatchedPair>> Joiner::RunMaterialized(
    join::Algorithm algorithm, const workload::Relation& build,
    const workload::Relation& probe) {
  // Tracker first: the sink's destructor releases its reservation, so the
  // tracker must outlive the sink.
  mem::BudgetTracker tracker(mem_budget_bytes_.value_or(0));
  join::JoinIndexSink sink(num_threads_);
  // FK joins: ~one match per probe tuple.
  MMJOIN_RETURN_IF_ERROR(
      sink.Reserve(probe.size(), tracker.bounded() ? &tracker : nullptr));
  join::JoinConfig config;
  config.sink = &sink;
  if (tracker.bounded()) config.budget = &tracker;
  MMJOIN_RETURN_IF_ERROR(Run(algorithm, config, build, probe).status());
  return sink.Gather();
}

}  // namespace mmjoin::core
