#include "core/advisor.h"

namespace mmjoin::core {
namespace {

// Lesson 1: below ~8 M build tuples chunk-local partitioning stops paying
// off.
constexpr uint64_t kSmallBuildThreshold = 8u * 1024 * 1024;
// Lesson 3 / Appendix A: no-partitioning wins only beyond Zipf 0.9.
constexpr double kHighSkewTheta = 0.9;
// Appendix C: array joins stay effective while the key domain is at most
// ~8x the build cardinality (with partition-count adaptation).
constexpr uint64_t kArrayDomainFactor = 8;

bool ArrayViable(const WorkloadProfile& profile) {
  return profile.key_domain != 0 && profile.build_tuples != 0 &&
         profile.key_domain <=
             profile.build_tuples * kArrayDomainFactor;
}

}  // namespace

Advice AdviseJoin(const WorkloadProfile& profile, int num_threads) {
  const bool array = ArrayViable(profile);

  if (profile.probe_skew_theta > kHighSkewTheta) {
    if (array) {
      return {join::Algorithm::kNOPA,
              "highly skewed probe: unpartitioned table caches hot keys; "
              "dense domain allows the array table (lessons 3, 7)"};
    }
    return {join::Algorithm::kNOP,
            "highly skewed probe (Zipf > 0.9): partition-based joins "
            "suffer unbalanced tasks (lesson 3)"};
  }

  if (profile.build_tuples < kSmallBuildThreshold) {
    if (array) {
      return {join::Algorithm::kNOPA,
              "small build side: thread/partitioning overhead dominates; "
              "array table for the dense domain (lessons 1, 7)"};
    }
    return {join::Algorithm::kNOP,
            "small build side: no-partitioning avoids partitioning "
            "overhead and the build may fit the LLC (lesson 1)"};
  }

  if (array) {
    return {join::Algorithm::kCPRA,
            "large inputs, dense domain: chunked radix partitioning with "
            "array tables (lessons 3, 7, 8)"};
  }
  return {join::Algorithm::kCPRL,
          "large inputs: chunked radix partitioning eliminates remote "
          "writes; linear probing per partition (lessons 3, 8)"};
}

}  // namespace mmjoin::core
