// Joiner: the one-object entry point for applications.
//
// Owns a NumaSystem and a persistent thread::Executor, exposes by-name
// algorithm selection, automatic algorithm choice via the lessons-learned
// advisor, and materializing variants -- everything a downstream user needs
// without touching the individual subsystems. Worker threads are created
// once, in the constructor, with a stable thread->NUMA-node placement; every
// join the Joiner runs reuses that pool (no per-query thread churn).

#ifndef MMJOIN_CORE_JOINER_H_
#define MMJOIN_CORE_JOINER_H_

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/advisor.h"
#include "join/join_algorithm.h"
#include "join/materialize.h"
#include "numa/system.h"
#include "thread/executor.h"
#include "util/status.h"
#include "workload/relation.h"

namespace mmjoin::core {

struct JoinerOptions {
  int num_nodes = 4;
  mem::PagePolicy page_policy = mem::PagePolicy::kHuge;
  int num_threads = 4;
  // Default per-join memory budget applied to every join this Joiner runs
  // (a config that carries its own mem_budget_bytes wins). nullopt =
  // unbounded. Must be >= join::JoinConfig::kMinMemBudgetBytes; zero or
  // sub-minimum explicit budgets are rejected by Validate.
  std::optional<uint64_t> mem_budget_bytes;

  // Rejects option sets the constructor would otherwise abort on.
  Status Validate() const;
};

class Joiner {
 public:
  explicit Joiner(const JoinerOptions& options = JoinerOptions{});

  // Recoverable construction: InvalidArgument instead of abort for bad
  // options.
  static StatusOr<std::unique_ptr<Joiner>> Create(const JoinerOptions& options);

  Joiner(const Joiner&) = delete;
  Joiner& operator=(const Joiner&) = delete;

  // The NumaSystem relations for this joiner must be allocated from.
  numa::NumaSystem* system() { return &system_; }

  // The persistent worker pool every join (and any caller-side parallel
  // work, e.g. tpch::RunQ19) runs on. Its stats expose pool reuse:
  // stats().threads_spawned stays == num_threads() across any number of
  // joins.
  thread::Executor* executor() { return executor_.get(); }

  // Runs the given algorithm on this joiner's executor and NumaSystem.
  // Failures (allocation pressure, fault injection, invalid config) come
  // back as a non-OK Status instead of aborting the process.
  StatusOr<join::JoinResult> Run(join::Algorithm algorithm,
                                 const workload::Relation& build,
                                 const workload::Relation& probe);
  // Like Run, but with caller-supplied config fields (sink, build_unique,
  // radix_bits, ...). num_threads and executor are always overridden to this
  // joiner's pool.
  StatusOr<join::JoinResult> Run(join::Algorithm algorithm,
                                 const join::JoinConfig& base_config,
                                 const workload::Relation& build,
                                 const workload::Relation& probe);
  // By name ("CPRL", "NOPA", ...); NotFound for unknown names.
  StatusOr<join::JoinResult> RunByName(std::string_view name,
                                       const workload::Relation& build,
                                       const workload::Relation& probe);

  // Picks the algorithm via the paper's lessons (probe skew unknown -> 0).
  struct AutoResult {
    join::Algorithm algorithm;
    std::string reason;
    join::JoinResult result;
  };
  StatusOr<AutoResult> RunAuto(const workload::Relation& build,
                               const workload::Relation& probe,
                               double probe_skew_theta = 0.0);

  // Materializing variant: returns the joined <key, build_payload,
  // probe_payload> triples.
  StatusOr<std::vector<join::MatchedPair>> RunMaterialized(
      join::Algorithm algorithm, const workload::Relation& build,
      const workload::Relation& probe);

  int num_threads() const { return num_threads_; }

 private:
  numa::NumaSystem system_;
  int num_threads_;
  std::optional<uint64_t> mem_budget_bytes_;
  std::unique_ptr<thread::Executor> executor_;
};

}  // namespace mmjoin::core

#endif  // MMJOIN_CORE_JOINER_H_
