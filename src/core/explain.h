// EXPLAIN ANALYZE for a join run: one report joining the whitebox phase
// profile (JoinResult::profile), the NUMA task-steal matrix, and the
// metrics-counter deltas of the run (budget ladder, compaction, steals,
// allocations) into a human-readable table and a `mmjoin.report.v1` JSON
// object (validated by `scripts/check_metrics.py --kind=report`).
//
// The counter delta is computed from two MetricsRegistry::SnapshotMap()
// calls bracketing the run, so whatever family a subsystem exports shows up
// without this module knowing its name. Surfaced by `run_join --explain`
// [--explain-json=PATH].
//
// Attribution caveat for standalone use: the snapshots are process-global,
// so a report brackets a *time window*, not a single join. When only one
// join runs inside the window (run_join, the benches) the delta is exact;
// when joins overlap (service::JoinService lanes), counters incremented by
// concurrently running jobs land in every overlapping report. The service
// takes the before/after pair per job to keep each window as tight as one
// job, and SERVICE.md documents the residual overlap semantics. The NUMA
// steal matrix is cumulative for the NumaSystem's lifetime; pass a
// SnapshotStealMatrix() baseline to report per-window steal deltas instead.

#ifndef MMJOIN_CORE_EXPLAIN_H_
#define MMJOIN_CORE_EXPLAIN_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "join/join_defs.h"
#include "numa/system.h"
#include "util/status.h"

namespace mmjoin::core {

struct ExplainReport {
  std::string algorithm;
  uint64_t build_size = 0;
  uint64_t probe_size = 0;
  int threads = 0;
  join::JoinResult result;  // matches/checksum/times/profile

  // Task-steal matrix, row-major [thief_node * num_nodes + victim_node];
  // empty when no NumaSystem was supplied.
  int num_nodes = 0;
  std::vector<uint64_t> steal_matrix;
  uint64_t total_steals = 0;

  // after - before over MetricsRegistry::SnapshotMap(); zero deltas and
  // counters that only existed before are dropped.
  std::map<std::string, uint64_t> counters;
};

// Row-major [thief_node * num_nodes + victim_node] copy of the system's
// cumulative task-steal matrix (empty for nullptr). Taken before a run, it
// serves as the `steals_before` baseline below.
std::vector<uint64_t> SnapshotStealMatrix(const numa::NumaSystem* system);

// `steals_before`: optional SnapshotStealMatrix() baseline; when supplied
// (and sized num_nodes^2), the report's steal matrix is the delta across
// the run instead of the NumaSystem-lifetime cumulative counts.
ExplainReport BuildExplainReport(
    std::string_view algorithm, const join::JoinResult& result,
    uint64_t build_size, uint64_t probe_size, int threads,
    const numa::NumaSystem* system,
    const std::map<std::string, uint64_t>& counters_before,
    const std::map<std::string, uint64_t>& counters_after,
    const std::vector<uint64_t>* steals_before = nullptr);

// The human-readable table (phase breakdown, steal matrix, counter deltas).
std::string FormatExplainText(const ExplainReport& report);

// {"schema":"mmjoin.report.v1",...}; phase ns totals in the JSON are the
// PhaseProfile sums verbatim (asserted by tests/telemetry_test.cc).
std::string ExplainReportJson(const ExplainReport& report);
Status WriteExplainJson(const ExplainReport& report, const std::string& path);

}  // namespace mmjoin::core

#endif  // MMJOIN_CORE_EXPLAIN_H_
