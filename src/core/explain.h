// EXPLAIN ANALYZE for a join run: one report joining the whitebox phase
// profile (JoinResult::profile), the NUMA task-steal matrix, and the
// metrics-counter deltas of the run (budget ladder, compaction, steals,
// allocations) into a human-readable table and a `mmjoin.report.v1` JSON
// object (validated by `scripts/check_metrics.py --kind=report`).
//
// The counter delta is computed from two MetricsRegistry::SnapshotMap()
// calls bracketing the run, so whatever family a subsystem exports shows up
// without this module knowing its name. Surfaced by `run_join --explain`
// [--explain-json=PATH].

#ifndef MMJOIN_CORE_EXPLAIN_H_
#define MMJOIN_CORE_EXPLAIN_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "join/join_defs.h"
#include "numa/system.h"
#include "util/status.h"

namespace mmjoin::core {

struct ExplainReport {
  std::string algorithm;
  uint64_t build_size = 0;
  uint64_t probe_size = 0;
  int threads = 0;
  join::JoinResult result;  // matches/checksum/times/profile

  // Task-steal matrix, row-major [thief_node * num_nodes + victim_node];
  // empty when no NumaSystem was supplied.
  int num_nodes = 0;
  std::vector<uint64_t> steal_matrix;
  uint64_t total_steals = 0;

  // after - before over MetricsRegistry::SnapshotMap(); zero deltas and
  // counters that only existed before are dropped.
  std::map<std::string, uint64_t> counters;
};

ExplainReport BuildExplainReport(
    std::string_view algorithm, const join::JoinResult& result,
    uint64_t build_size, uint64_t probe_size, int threads,
    const numa::NumaSystem* system,
    const std::map<std::string, uint64_t>& counters_before,
    const std::map<std::string, uint64_t>& counters_after);

// The human-readable table (phase breakdown, steal matrix, counter deltas).
std::string FormatExplainText(const ExplainReport& report);

// {"schema":"mmjoin.report.v1",...}; phase ns totals in the JSON are the
// PhaseProfile sums verbatim (asserted by tests/telemetry_test.cc).
std::string ExplainReportJson(const ExplainReport& report);
Status WriteExplainJson(const ExplainReport& report, const std::string& path);

}  // namespace mmjoin::core

#endif  // MMJOIN_CORE_EXPLAIN_H_
