// JoinAdvisor: the paper's "lessons learned" (Section 9) as an executable
// heuristic.
//
// Given a workload profile, picks the join algorithm the study recommends:
//  * tiny inputs            -> no-partitioning (thread overhead + chunks
//                              smaller than a page hurt CPR*, lesson 1)
//  * heavily skewed probes  -> no-partitioning (lesson 3: NOP* wins only for
//                              Zipf > 0.9)
//  * dense / semi-dense PKs -> array variants (lesson 7: arrays beat hash
//                              tables by up to 44%, viable while the
//                              partition-adapted array fits caches)
//  * otherwise              -> chunked partition-based (lessons 3, 7, 8)
// All choices assume huge pages, SWWCBs, and Equation (1) bits (lessons
// 4-6), which the implementations apply by default.

#ifndef MMJOIN_CORE_ADVISOR_H_
#define MMJOIN_CORE_ADVISOR_H_

#include <cstdint>
#include <string>

#include "join/join_defs.h"

namespace mmjoin::core {

struct WorkloadProfile {
  uint64_t build_tuples = 0;
  uint64_t probe_tuples = 0;
  // Exclusive upper bound of the build key domain; 0 = unknown/unbounded.
  uint64_t key_domain = 0;
  // Zipf theta of the probe key distribution (0 = uniform).
  double probe_skew_theta = 0.0;
};

struct Advice {
  join::Algorithm algorithm;
  std::string reason;
};

Advice AdviseJoin(const WorkloadProfile& profile, int num_threads);

}  // namespace mmjoin::core

#endif  // MMJOIN_CORE_ADVISOR_H_
