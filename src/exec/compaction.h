// Dynamic chunk compaction (the CachingPhysicalOperator technique from the
// Data-Chunk-Compaction-in-DuckDB line of work, adapted to this pipeline).
//
// Post-filter and post-probe chunks are often sparse: a 3.57%-selective
// filter leaves ~37 live rows in a 1024-capacity chunk, and a low-hit-rate
// probe emits partially-filled match chunks at task boundaries. Shipping
// such chunks downstream wastes the per-chunk costs (virtual dispatch,
// selection bookkeeping, cache footprint of dead slots) that vectorization
// exists to amortize.
//
// A ChunkCompactor sits at an operator boundary (one instance per worker
// thread, per boundary) and decides per chunk:
//
//   density >= threshold  ->  pass through unchanged (zero copies)
//   density <  threshold  ->  gather the live rows into an accumulation
//                             buffer; emit the buffer when it fills
//
// threshold 0 never compacts (every chunk passes through); threshold 1
// buffers everything that is not already full. The sweet spot is workload
// dependent -- bench_exec_compaction sweeps selectivity x threshold.
//
// Single-owner: each instance belongs to one worker thread; Flush() runs on
// the owner (or single-threaded at pipeline drain).

#ifndef MMJOIN_EXEC_COMPACTION_H_
#define MMJOIN_EXEC_COMPACTION_H_

#include <cstdint>

#include "exec/data_chunk.h"

namespace mmjoin::exec {

// Default density threshold: buffer chunks running below quarter capacity.
inline constexpr double kDefaultCompactionThreshold = 0.25;

// Per-boundary, per-thread accounting, folded into PipelineStats after the
// run (exec.* counters, docs/OBSERVABILITY.md).
struct CompactionStats {
  uint64_t chunks_in = 0;        // chunks arriving at the boundary
  uint64_t rows_in = 0;          // live rows arriving
  uint64_t chunks_emitted = 0;   // chunks actually crossing the boundary
  uint64_t rows_compacted = 0;   // live rows gathered into the buffer
  uint64_t compaction_flushes = 0;  // buffer emissions (full or drain)
};

class ChunkCompactor {
 public:
  ChunkCompactor(int num_columns, double density_threshold)
      : threshold_(density_threshold), buffer_(num_columns) {}

  // Routes `chunk` toward `emit(DataChunk*)`. The emitted chunk is either
  // `chunk` itself (pass-through) or the internal buffer (on fill); the
  // callee must consume it before returning (its storage is reused).
  template <typename EmitFn>
  void Push(DataChunk* chunk, EmitFn&& emit) {
    const uint32_t active = chunk->ActiveRows();
    ++stats_.chunks_in;
    stats_.rows_in += active;
    if (active == 0) return;
    if (threshold_ <= 0.0 || chunk->Density() >= threshold_) {
      ++stats_.chunks_emitted;
      emit(chunk);
      return;
    }
    // Gather the live rows into the buffer, emitting whenever it fills.
    stats_.rows_compacted += active;
    uint32_t taken = 0;
    while (taken < active) {
      if (buffer_.Remaining() == 0) EmitBuffer(emit);
      const uint32_t n = active - taken < buffer_.Remaining()
                             ? active - taken
                             : buffer_.Remaining();
      buffer_.AppendActive(*chunk, taken, n);
      taken += n;
    }
    if (buffer_.Remaining() == 0) EmitBuffer(emit);
  }

  // Emits buffered rows (drain at end of input). Owner-thread only.
  template <typename EmitFn>
  void Flush(EmitFn&& emit) {
    if (buffer_.size() > 0) EmitBuffer(emit);
  }

  const CompactionStats& stats() const { return stats_; }
  double threshold() const { return threshold_; }

 private:
  template <typename EmitFn>
  void EmitBuffer(EmitFn&& emit) {
    ++stats_.compaction_flushes;
    ++stats_.chunks_emitted;
    emit(&buffer_);
    buffer_.Reset();
  }

  double threshold_;
  DataChunk buffer_;
  CompactionStats stats_;
};

}  // namespace mmjoin::exec

#endif  // MMJOIN_EXEC_COMPACTION_H_
