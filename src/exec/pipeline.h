// Morsel-wise pipeline driver over the exec:: operator set.
//
// A Pipeline is Source -> [Operator...] -> Sink. Run() executes it on the
// persistent thread::Executor: each worker pulls chunk-sized morsels from
// the source and pushes them through the operator chain, with a per-thread
// ChunkCompactor at every boundary into a non-filter consumer (transforms
// and the sink) deciding chunk-by-chunk whether to pass through or gather
// sparse chunks into dense ones (docs/PIPELINE.md).
//
// Plans containing a HashJoinProbe are split at the join: the upstream
// segment materializes the probe relation (the join is a pipeline breaker),
// the wrapped join algorithm runs with its own parallelism, and the
// downstream segment executes inside the join's worker threads, fed from
// the match stream via MatchSink::ConsumeChunk. At most one HashJoinProbe
// per pipeline; bushy plans chain pipelines through JoinIndexMaterialize /
// JoinIndexScan (examples/bushy_join.cc).

#ifndef MMJOIN_EXEC_PIPELINE_H_
#define MMJOIN_EXEC_PIPELINE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "exec/compaction.h"
#include "exec/operator.h"
#include "exec/operators.h"
#include "join/join_defs.h"
#include "numa/system.h"
#include "thread/executor.h"
#include "util/status.h"

namespace mmjoin::exec {

struct PipelineConfig {
  int num_threads = 4;
  // Boundary density threshold (exec::ChunkCompactor): chunks below it are
  // gathered into dense buffers. < 0 selects kDefaultCompactionThreshold;
  // 0 disables compaction; 1 buffers every non-full chunk.
  double compaction_threshold = -1.0;
  // nullptr falls back to the process-wide pool (thread::GlobalExecutor()).
  thread::Executor* executor = nullptr;
  // Placement of the materialized probe relation in front of a join.
  numa::Placement materialize_placement = numa::Placement::kChunkedRoundRobin;
  // Memory budget forwarded to the embedded join (join::JoinConfig
  // semantics: nullopt = unbounded; a HashJoinProbe::Spec-level budget
  // wins over this pipeline-level default).
  std::optional<uint64_t> mem_budget_bytes;

  double ResolvedThreshold() const {
    return compaction_threshold < 0.0 ? kDefaultCompactionThreshold
                                      : compaction_threshold;
  }
};

struct PipelineStats {
  uint64_t source_rows = 0;    // rows pulled out of the source
  uint64_t source_chunks = 0;  // morsels pulled out of the source
  uint64_t pre_join_rows = 0;  // rows materialized as the join's probe side
  uint64_t join_matches = 0;   // match rows delivered by the join
  uint64_t sink_chunks = 0;    // chunks crossing the final (sink) boundary
  uint64_t sink_rows = 0;      // live rows crossing the sink boundary
  // Compaction accounting summed over every boundary and worker
  // (exec.* counters, docs/OBSERVABILITY.md):
  uint64_t boundary_chunks_in = 0;  // chunks arriving at any boundary
  uint64_t boundary_rows_in = 0;    // live rows arriving at any boundary
  uint64_t chunks_emitted = 0;
  uint64_t rows_compacted = 0;
  uint64_t compaction_flushes = 0;
  int64_t pre_join_ns = 0;  // stage A: scan .. probe materialization
  int64_t join_ns = 0;      // stage B: join + post-join segment + drain
  int64_t total_ns = 0;     // pre_join_ns + join_ns, end to end
  bool has_join = false;
  join::JoinResult join_result;  // valid only when has_join
};

class Pipeline {
 public:
  // Non-owning: source, operators, and sink must outlive the pipeline.
  Pipeline(Source* source, std::vector<Operator*> ops, Sink* sink);

  // Executes the plan. On success the sink has been Finish()ed and holds
  // the query result; the stats describe the run.
  StatusOr<PipelineStats> Run(numa::NumaSystem* system,
                              const PipelineConfig& config);

 private:
  Source* source_;
  // read-only after construction
  std::vector<Operator*> ops_;
  Sink* sink_;
};

}  // namespace mmjoin::exec

#endif  // MMJOIN_EXEC_PIPELINE_H_
