#include "exec/operators.h"

#include <cstring>

#include "mem/budget.h"
#include "util/macros.h"

namespace mmjoin::exec {

bool TupleScan::NextChunk(int tid, DataChunk* chunk) {
  (void)tid;
  const uint64_t total = tuples_.size();
  const uint64_t begin =
      cursor_.fetch_add(kChunkCapacity, std::memory_order_relaxed);
  if (begin >= total) return false;
  const uint32_t n = static_cast<uint32_t>(
      total - begin < kChunkCapacity ? total - begin : kChunkCapacity);
  chunk->Reset();
  uint32_t* keys = chunk->column(kScanKeyCol);
  uint32_t* payloads = chunk->column(kScanPayloadCol);
  const Tuple* src = tuples_.data() + begin;
  for (uint32_t i = 0; i < n; ++i) {
    keys[i] = src[i].key;
    payloads[i] = src[i].payload;
  }
  chunk->set_size(n);
  return true;
}

bool JoinIndexScan::NextChunk(int tid, DataChunk* chunk) {
  (void)tid;
  const uint64_t total = index_->size();
  const uint64_t begin =
      cursor_.fetch_add(kChunkCapacity, std::memory_order_relaxed);
  if (begin >= total) return false;
  const uint32_t n = static_cast<uint32_t>(
      total - begin < kChunkCapacity ? total - begin : kChunkCapacity);
  chunk->Reset();
  uint32_t* keys = chunk->column(kJoinKeyCol);
  uint32_t* build = chunk->column(kJoinBuildPayloadCol);
  uint32_t* probe = chunk->column(kJoinProbePayloadCol);
  const join::MatchedPair* src = index_->data() + begin;
  for (uint32_t i = 0; i < n; ++i) {
    keys[i] = src[i].key;
    build[i] = src[i].build_payload;
    probe[i] = src[i].probe_payload;
  }
  chunk->set_size(n);
  return true;
}

StatusOr<join::JoinResult> HashJoinProbe::Execute(
    numa::NumaSystem* system, ConstTupleSpan probe, join::MatchSink* sink,
    thread::Executor* executor, int num_threads,
    std::optional<uint64_t> mem_budget_bytes) const {
  join::JoinConfig config;
  config.num_threads = num_threads;
  config.radix_bits = spec_.radix_bits;
  config.num_passes = spec_.num_passes;
  config.skew_task_factor = spec_.skew_task_factor;
  config.build_unique = spec_.build_unique;
  config.sink = sink;
  config.executor = executor;
  config.mem_budget_bytes = spec_.mem_budget_bytes.has_value()
                                ? spec_.mem_budget_bytes
                                : mem_budget_bytes;
  MMJOIN_RETURN_IF_ERROR(config.Validate(spec_.build.size(), probe.size()));
  std::unique_ptr<join::JoinAlgorithm> algorithm =
      join::CreateJoin(spec_.algorithm);
  // Run-local tracker, like join::RunJoin: the algorithm charges its planned
  // working set against it and the tracker dies with this call.
  if (config.mem_budget_bytes.has_value()) {
    mem::BudgetTracker tracker(*config.mem_budget_bytes);
    join::JoinConfig budgeted = config;
    budgeted.budget = &tracker;
    return algorithm->Run(system, budgeted, spec_.build, probe,
                          spec_.key_domain);
  }
  return algorithm->Run(system, config, spec_.build, probe, spec_.key_domain);
}

void CountAggregate::Append(int tid, const DataChunk& chunk) {
  MMJOIN_DCHECK(tid >= 0 && tid < static_cast<int>(slots_.size()));
  Slot& slot = slots_[static_cast<std::size_t>(tid)];
  const uint32_t active = chunk.ActiveRows();
  slot.rows += active;
  for (const int c : checksum_columns_) {
    const uint32_t* col = chunk.column(c);
    uint64_t sum = 0;
    if (!chunk.has_selection()) {
      for (uint32_t i = 0; i < active; ++i) sum += col[i];
    } else {
      const uint32_t* sel = chunk.selection();
      for (uint32_t i = 0; i < active; ++i) sum += col[sel[i]];
    }
    slot.checksum += sum;
  }
}

uint64_t CountAggregate::rows() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) total += slot.rows;
  return total;
}

uint64_t CountAggregate::checksum() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) total += slot.checksum;
  return total;
}

void JoinIndexMaterialize::Append(int tid, const DataChunk& chunk) {
  MMJOIN_DCHECK(tid >= 0 && tid < static_cast<int>(per_thread_.size()));
  MMJOIN_DCHECK(chunk.num_columns() >= 3);
  std::vector<join::MatchedPair>& local =
      per_thread_[static_cast<std::size_t>(tid)];
  const uint32_t active = chunk.ActiveRows();
  const uint32_t* keys = chunk.column(kJoinKeyCol);
  const uint32_t* build = chunk.column(kJoinBuildPayloadCol);
  const uint32_t* probe = chunk.column(kJoinProbePayloadCol);
  const std::size_t base = local.size();
  local.resize(base + active);
  for (uint32_t i = 0; i < active; ++i) {
    const uint32_t row = chunk.RowAt(i);
    local[base + i] = join::MatchedPair{keys[row], build[row], probe[row]};
  }
}

uint64_t JoinIndexMaterialize::size() const {
  uint64_t total = 0;
  for (const auto& local : per_thread_) total += local.size();
  return total;
}

std::vector<join::MatchedPair> JoinIndexMaterialize::Gather() {
  std::vector<join::MatchedPair> all;
  all.reserve(size());
  for (auto& local : per_thread_) {
    all.insert(all.end(), local.begin(), local.end());
    local.clear();
    local.shrink_to_fit();
  }
  return all;
}

void TupleMaterialize::Append(int tid, const DataChunk& chunk) {
  MMJOIN_DCHECK(tid >= 0 && tid < static_cast<int>(per_thread_.size()));
  MMJOIN_DCHECK(chunk.num_columns() >= 2);
  std::vector<Tuple>& local = per_thread_[static_cast<std::size_t>(tid)];
  const uint32_t active = chunk.ActiveRows();
  const uint32_t* keys = chunk.column(kScanKeyCol);
  const uint32_t* payloads = chunk.column(kScanPayloadCol);
  const std::size_t base = local.size();
  local.resize(base + active);
  for (uint32_t i = 0; i < active; ++i) {
    const uint32_t row = chunk.RowAt(i);
    local[base + i] = Tuple{keys[row], payloads[row]};
  }
}

void TupleMaterialize::Finish() {
  uint64_t total = 0;
  for (const auto& local : per_thread_) total += local.size();
  gathered_ = numa::NumaBuffer<Tuple>(system_, total, placement_);
  count_ = total;
  uint64_t offset = 0;
  for (auto& local : per_thread_) {
    if (!local.empty()) {
      std::memcpy(gathered_.data() + offset, local.data(),
                  local.size() * sizeof(Tuple));
      offset += local.size();
    }
    local.clear();
    local.shrink_to_fit();
  }
}

}  // namespace mmjoin::exec
