// Fixed-capacity column-vector chunk -- the unit of work of the vectorized
// operator pipeline (src/exec/).
//
// A DataChunk holds up to kChunkCapacity rows of `num_columns` uint32
// columns (every value flowing through our pipelines is a key, a row id, or
// a dictionary code; attribute payloads are fetched late, by row id, from
// the base tables). Filters do not move data: they narrow the chunk's
// *selection vector*, a list of physical row indices that are still alive.
// Downstream operators iterate ActiveRows()/RowAt() and never see dead
// rows. When a chunk becomes too sparse to be worth shipping, Compact()
// gathers the selected rows to the front and drops the selection vector --
// the primitive behind dynamic chunk compaction (exec::ChunkCompactor,
// docs/PIPELINE.md).
//
// DataChunks are strictly single-owner: each pipeline worker thread owns
// the chunks it fills (per-thread slots allocated before the dispatch), so
// none of the members need locking.

#ifndef MMJOIN_EXEC_DATA_CHUNK_H_
#define MMJOIN_EXEC_DATA_CHUNK_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/macros.h"

namespace mmjoin::exec {

// Rows per chunk. Large enough to amortize per-chunk virtual calls and
// selection bookkeeping, small enough that a 3-column chunk (12 KiB) stays
// cache-resident between operators -- the same reasoning as DuckDB's 2048
// and the MatchChunk capacity in join/join_defs.h.
inline constexpr uint32_t kChunkCapacity = 1024;

class DataChunk {
 public:
  static constexpr int kMaxColumns = 8;

  explicit DataChunk(int num_columns) : num_columns_(num_columns) {
    MMJOIN_CHECK(num_columns > 0 && num_columns <= kMaxColumns);
    storage_.resize(static_cast<std::size_t>(num_columns) * kChunkCapacity);
    sel_.resize(kChunkCapacity);
  }

  int num_columns() const { return num_columns_; }

  uint32_t* column(int c) {
    MMJOIN_DCHECK(c >= 0 && c < num_columns_);
    return storage_.data() + static_cast<std::size_t>(c) * kChunkCapacity;
  }
  const uint32_t* column(int c) const {
    MMJOIN_DCHECK(c >= 0 && c < num_columns_);
    return storage_.data() + static_cast<std::size_t>(c) * kChunkCapacity;
  }

  // Physical rows stored in the columns.
  uint32_t size() const { return size_; }
  void set_size(uint32_t n) {
    MMJOIN_DCHECK(n <= kChunkCapacity);
    size_ = n;
  }

  // --- Selection vector ----------------------------------------------------

  bool has_selection() const { return has_selection_; }
  const uint32_t* selection() const { return sel_.data(); }

  // Installs the first `count` entries of the internal selection buffer
  // (filled via mutable_selection()) as the active selection.
  uint32_t* mutable_selection() { return sel_.data(); }
  void SetSelectionSize(uint32_t count) {
    MMJOIN_DCHECK(count <= size_);
    has_selection_ = true;
    sel_size_ = count;
  }
  void ClearSelection() {
    has_selection_ = false;
    sel_size_ = 0;
  }

  // Logical rows: selection entries when one is active, else all physical
  // rows.
  uint32_t ActiveRows() const { return has_selection_ ? sel_size_ : size_; }

  // Physical index of the i-th logical row.
  MMJOIN_ALWAYS_INLINE uint32_t RowAt(uint32_t i) const {
    return has_selection_ ? sel_[i] : i;
  }

  // Fraction of the chunk's capacity doing useful work when it crosses an
  // operator boundary -- the signal dynamic compaction thresholds against.
  double Density() const {
    return static_cast<double>(ActiveRows()) / kChunkCapacity;
  }

  bool Empty() const { return ActiveRows() == 0; }

  void Reset() {
    size_ = 0;
    ClearSelection();
  }

  // --- Row movement --------------------------------------------------------

  // Gathers the selected rows to the front of every column and drops the
  // selection vector. No-op for chunks without a selection.
  void Compact() {
    if (!has_selection_) return;
    for (int c = 0; c < num_columns_; ++c) {
      uint32_t* col = column(c);
      for (uint32_t i = 0; i < sel_size_; ++i) col[i] = col[sel_[i]];
    }
    size_ = sel_size_;
    ClearSelection();
  }

  // Appends logical rows [begin, begin + count) of `src` (same column
  // count, selection applied) to this chunk's physical rows. The caller
  // guarantees capacity; appending to a chunk with an active selection is a
  // bug (Compact() first).
  void AppendActive(const DataChunk& src, uint32_t begin, uint32_t count) {
    MMJOIN_DCHECK(src.num_columns() == num_columns_);
    MMJOIN_DCHECK(!has_selection_);
    MMJOIN_DCHECK(begin + count <= src.ActiveRows());
    MMJOIN_DCHECK(size_ + count <= kChunkCapacity);
    if (!src.has_selection()) {
      for (int c = 0; c < num_columns_; ++c) {
        std::memcpy(column(c) + size_, src.column(c) + begin,
                    static_cast<std::size_t>(count) * sizeof(uint32_t));
      }
    } else {
      const uint32_t* sel = src.selection();
      for (int c = 0; c < num_columns_; ++c) {
        uint32_t* dst = column(c) + size_;
        const uint32_t* col = src.column(c);
        for (uint32_t i = 0; i < count; ++i) dst[i] = col[sel[begin + i]];
      }
    }
    size_ += count;
  }

  // Free physical slots left in this chunk.
  uint32_t Remaining() const { return kChunkCapacity - size_; }

 private:
  int num_columns_;
  uint32_t size_ = 0;
  bool has_selection_ = false;
  uint32_t sel_size_ = 0;
  // Column-major backing store (num_columns_ stripes of kChunkCapacity);
  // single-owner: the worker thread that fills this chunk (see file header).
  std::vector<uint32_t> storage_;
  // single-owner: same thread as storage_.
  std::vector<uint32_t> sel_;
};

}  // namespace mmjoin::exec

#endif  // MMJOIN_EXEC_DATA_CHUNK_H_
