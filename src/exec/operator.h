// Operator contract of the vectorized pipeline (docs/PIPELINE.md).
//
// A pipeline is Source -> [Operator...] -> Sink, executed morsel-wise: each
// worker thread repeatedly pulls one chunk from the source and pushes it
// through the operator chain into the sink, so a chunk stays hot in cache
// across the whole segment. Three operator shapes exist:
//
//   Source     produces chunks from a base table / index (thread-safe
//              cursor; called concurrently with distinct tids).
//   Operator   either narrows the selection vector in place (is_filter())
//              or transforms an input chunk into an output chunk, possibly
//              over several calls (OpResult::kHaveMoreOutput).
//   Sink       absorbs finished chunks into per-thread state; Finish()
//              reduces single-threaded after the run.
//
// exec::HashJoinProbe is declared with this interface but executed
// specially: the wrapped join algorithm drives probe parallelism itself, so
// the Pipeline driver splits the chain at the join and feeds the downstream
// segment from the join's MatchSink (see pipeline.h).
//
// Every per-thread mutable state lives in slots indexed by tid and sized
// in Open(num_threads) before the parallel region -- operators need no
// locks of their own.

#ifndef MMJOIN_EXEC_OPERATOR_H_
#define MMJOIN_EXEC_OPERATOR_H_

#include <cstdint>

#include "exec/data_chunk.h"

namespace mmjoin::exec {

class Source {
 public:
  virtual ~Source() = default;
  virtual const char* name() const = 0;
  virtual int output_columns() const = 0;

  // Total rows the source will scan (for stats; 0 when unknown).
  virtual uint64_t TotalRows() const { return 0; }

  // Per-run initialization (reset cursors). Single-threaded.
  virtual void Open(int num_threads) {}

  // Fills `chunk` with the next morsel; false when the source is drained.
  // Thread-safe: workers race on an internal cursor.
  virtual bool NextChunk(int tid, DataChunk* chunk) = 0;
};

enum class OpResult {
  kNeedMoreInput,   // output chunk complete for this input; pull next
  kHaveMoreOutput,  // call Process again with the same input chunk
};

class Operator {
 public:
  virtual ~Operator() = default;
  // Static-lifetime string; doubles as the obs trace span name.
  virtual const char* name() const = 0;
  virtual int output_columns() const = 0;

  // Filters narrow the selection vector in place via Apply; transforms
  // produce fresh chunks via Process.
  virtual bool is_filter() const { return false; }

  // Per-run initialization (size per-thread state). Single-threaded.
  virtual void Open(int num_threads) {}

  // Filter path: refine chunk->selection in place. Only called when
  // is_filter().
  virtual void Apply(int tid, DataChunk* chunk) {}

  // Transform path: consume `in` (selection applied), write physical rows
  // into `out` (already Reset by the driver). Return kHaveMoreOutput to be
  // re-invoked with the same input (e.g. a probe that overflowed `out`).
  virtual OpResult Process(int tid, const DataChunk& in, DataChunk* out) {
    return OpResult::kNeedMoreInput;
  }
};

class Sink {
 public:
  virtual ~Sink() = default;
  virtual const char* name() const = 0;

  // Per-run initialization (size per-thread state). Single-threaded.
  virtual void Open(int num_threads) {}

  // Absorb one chunk (selection applied). Called concurrently with
  // distinct tids; implementations key all mutable state off tid.
  virtual void Append(int tid, const DataChunk& chunk) = 0;

  // Single-threaded reduction after every worker drained.
  virtual void Finish() {}
};

// Selection-vector refinement shared by every filter implementation:
// keeps the logical rows for which `pred(chunk, physical_row)` holds.
// `pred` is inlined per filter subclass -- no per-row virtual calls.
template <typename Pred>
MMJOIN_ALWAYS_INLINE void RefineSelection(DataChunk* chunk, Pred&& pred) {
  const uint32_t active = chunk->ActiveRows();
  uint32_t* sel = chunk->mutable_selection();
  uint32_t kept = 0;
  if (chunk->has_selection()) {
    for (uint32_t i = 0; i < active; ++i) {
      const uint32_t row = sel[i];
      sel[kept] = row;
      kept += pred(*chunk, row) ? 1 : 0;
    }
  } else {
    for (uint32_t row = 0; row < active; ++row) {
      sel[kept] = row;
      kept += pred(*chunk, row) ? 1 : 0;
    }
  }
  chunk->SetSelectionSize(kept);
}

}  // namespace mmjoin::exec

#endif  // MMJOIN_EXEC_OPERATOR_H_
