// The stock operator set of the vectorized pipeline: table scan, hash-join
// probe (wrapping any of the thirteen join algorithms), aggregation, and
// join-index materialization. Query-specific filters subclass
// exec::Operator directly (see tpch/q19.cc) -- predicates inline via
// RefineSelection, so there is no per-row virtual dispatch.

#ifndef MMJOIN_EXEC_OPERATORS_H_
#define MMJOIN_EXEC_OPERATORS_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "exec/data_chunk.h"
#include "exec/operator.h"
#include "join/join_algorithm.h"
#include "join/join_defs.h"
#include "join/materialize.h"
#include "numa/system.h"
#include "util/types.h"

namespace mmjoin::exec {

// Column conventions. A scan of a <key, payload> tuple column produces
// 2-column chunks; a join probe produces 3-column chunks (both sides share
// the key; payloads are the build/probe row ids for late materialization).
inline constexpr int kScanKeyCol = 0;
inline constexpr int kScanPayloadCol = 1;
inline constexpr int kJoinKeyCol = 0;
inline constexpr int kJoinBuildPayloadCol = 1;
inline constexpr int kJoinProbePayloadCol = 2;

// --- Scan -------------------------------------------------------------------

// Morsel-wise scan over a flat <key, payload> tuple column. Workers race on
// the atomic cursor; each claim is one chunk-sized morsel, so threads that
// finish early keep pulling (the same morsel discipline as the join
// kernels' task queues).
class TupleScan final : public Source {
 public:
  explicit TupleScan(ConstTupleSpan tuples) : tuples_(tuples) {}

  const char* name() const override { return "exec.scan"; }
  int output_columns() const override { return 2; }
  uint64_t TotalRows() const override { return tuples_.size(); }

  void Open(int num_threads) override {
    cursor_.store(0, std::memory_order_relaxed);
  }

  bool NextChunk(int tid, DataChunk* chunk) override;

 private:
  ConstTupleSpan tuples_;
  std::atomic<uint64_t> cursor_{0};
};

// Morsel-wise scan over a materialized join index, producing 3-column
// join-output chunks -- the source of post-join passes (Q19's kJoinIndex
// strategy) and of the upper joins of bushy plans.
class JoinIndexScan final : public Source {
 public:
  explicit JoinIndexScan(const std::vector<join::MatchedPair>* index)
      : index_(index) {}

  const char* name() const override { return "exec.index_scan"; }
  int output_columns() const override { return 3; }
  uint64_t TotalRows() const override { return index_->size(); }

  void Open(int num_threads) override {
    cursor_.store(0, std::memory_order_relaxed);
  }

  bool NextChunk(int tid, DataChunk* chunk) override;

 private:
  // read-only: borrowed index, immutable for the lifetime of the scan
  const std::vector<join::MatchedPair>* index_;
  std::atomic<uint64_t> cursor_{0};
};

// --- Hash-join probe --------------------------------------------------------

// Wraps one of the thirteen join algorithms as a pipeline operator.
//
// Declared as an Operator so plans read scan -> filter -> join -> ... , but
// the Pipeline driver executes it specially: the wrapped algorithm owns its
// probe-side parallelism (partitioning, task scheduling, skew handling), so
// the driver materializes the upstream segment into a probe relation, runs
// the algorithm, and feeds the downstream segment from the join's
// MatchSink::ConsumeChunk stream (docs/PIPELINE.md).
class HashJoinProbe final : public Operator {
 public:
  struct Spec {
    join::Algorithm algorithm = join::Algorithm::kNOP;
    ConstTupleSpan build;
    // Exclusive key-domain bound for the array joins (0 = scan for max).
    uint64_t key_domain = 0;
    uint32_t radix_bits = 0;   // 0 = Eq (1) prediction
    uint32_t num_passes = 0;   // 0 = algorithm default
    uint32_t skew_task_factor = 8;
    bool build_unique = true;
    // Per-join memory budget (join::JoinConfig semantics: nullopt =
    // unbounded). Takes precedence over the pipeline-level budget passed
    // to Execute.
    std::optional<uint64_t> mem_budget_bytes;
  };

  explicit HashJoinProbe(const Spec& spec) : spec_(spec) {}

  const char* name() const override { return "exec.join_probe"; }
  int output_columns() const override { return 3; }
  const Spec& spec() const { return spec_; }

  // Runs the wrapped algorithm with `sink` receiving the match stream.
  // Called by the Pipeline driver; not reachable through Process.
  StatusOr<join::JoinResult> Execute(
      numa::NumaSystem* system, ConstTupleSpan probe, join::MatchSink* sink,
      thread::Executor* executor, int num_threads,
      std::optional<uint64_t> mem_budget_bytes = std::nullopt) const;

 private:
  Spec spec_;
};

// --- Sinks ------------------------------------------------------------------

// Counting/checksum aggregate: counts live rows and sums the values of the
// configured columns (e.g. build+probe payload for the JoinResult checksum
// convention). Per-thread accumulators, cache-line padded.
class CountAggregate final : public Sink {
 public:
  // `checksum_columns`: column indices summed into checksum() (empty = count
  // only).
  explicit CountAggregate(std::vector<int> checksum_columns = {})
      : checksum_columns_(std::move(checksum_columns)) {}

  const char* name() const override { return "exec.count_agg"; }
  void Open(int num_threads) override {
    slots_.assign(static_cast<std::size_t>(num_threads), Slot{});
  }
  void Append(int tid, const DataChunk& chunk) override;

  uint64_t rows() const;
  uint64_t checksum() const;

 private:
  struct SlotFields {
    uint64_t rows = 0;
    uint64_t checksum = 0;
  };
  struct alignas(kCacheLineSize) Slot : SlotFields {
    char padding[kCacheLineSize - sizeof(SlotFields)];
  };
  static_assert(sizeof(Slot) == kCacheLineSize,
                "Slot must occupy exactly one cache line (false-sharing "
                "padding)");

  // read-only after construction
  std::vector<int> checksum_columns_;
  // per-thread slots indexed by tid; sized in Open before the dispatch
  std::vector<Slot> slots_;
};

// Materializes 3-column join-output chunks into a join index
// (<key, rowBuild, rowProbe> rows), per-thread buffers, gathered
// single-threaded after the run -- the chunked counterpart of
// join::JoinIndexSink for plans that keep the index inside the pipeline.
class JoinIndexMaterialize final : public Sink {
 public:
  const char* name() const override { return "exec.index_materialize"; }
  void Open(int num_threads) override {
    per_thread_.assign(static_cast<std::size_t>(num_threads), {});
  }
  void Append(int tid, const DataChunk& chunk) override;

  uint64_t size() const;

  // Concatenates the per-thread buffers (moves them out). Single-threaded.
  std::vector<join::MatchedPair> Gather();

 private:
  // per-thread buffers indexed by tid; sized in Open before the dispatch
  std::vector<std::vector<join::MatchedPair>> per_thread_;
};

// Materializes 2-column <key, payload> chunks into a dense NUMA-placed
// tuple relation -- the pipeline breaker in front of a HashJoinProbe (the
// probe side must exist in full before the join starts).
class TupleMaterialize final : public Sink {
 public:
  TupleMaterialize(numa::NumaSystem* system, numa::Placement placement)
      : system_(system), placement_(placement) {}

  const char* name() const override { return "exec.materialize"; }
  void Open(int num_threads) override {
    per_thread_.assign(static_cast<std::size_t>(num_threads), {});
  }
  void Append(int tid, const DataChunk& chunk) override;
  void Finish() override;  // concatenates into the NUMA buffer

  uint64_t size() const { return gathered_.size(); }
  ConstTupleSpan span() const {
    return ConstTupleSpan(gathered_.data(), count_);
  }

 private:
  numa::NumaSystem* system_;
  numa::Placement placement_;
  // per-thread buffers indexed by tid; sized in Open before the dispatch
  std::vector<std::vector<Tuple>> per_thread_;
  numa::NumaBuffer<Tuple> gathered_;
  uint64_t count_ = 0;
};

}  // namespace mmjoin::exec

#endif  // MMJOIN_EXEC_OPERATORS_H_
