#include "exec/pipeline.h"

#include <cstring>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/macros.h"
#include "util/timer.h"

namespace mmjoin::exec {
namespace {

// Per-worker execution state of one pipeline segment: the output chunk and
// boundary compactor of every transform operator, plus the sink-boundary
// compactor. Strictly single-owner -- one instance per worker thread,
// allocated before the dispatch; Drain() runs on the owner (or
// single-threaded after the parallel region).
class SegmentWorker {
 public:
  SegmentWorker(std::vector<Operator*> ops, Sink* sink, int input_columns,
                double threshold)
      : ops_(std::move(ops)), sink_(sink) {
    int width = input_columns;
    out_.reserve(ops_.size());
    boundary_.reserve(ops_.size());
    for (Operator* op : ops_) {
      if (op->is_filter()) {
        out_.push_back(nullptr);
        boundary_.push_back(nullptr);
      } else {
        boundary_.push_back(std::make_unique<ChunkCompactor>(width, threshold));
        width = op->output_columns();
        out_.push_back(std::make_unique<DataChunk>(width));
      }
    }
    sink_boundary_ = std::make_unique<ChunkCompactor>(width, threshold);
  }

  void CountSource(uint32_t rows) {
    ++source_chunks_;
    source_rows_ += rows;
  }

  // Pushes one chunk through the whole segment. The chunk's storage may be
  // reused by the caller afterwards.
  void Push(int tid, DataChunk* chunk) { RunFrom(tid, chunk, 0); }

  // Flushes every compactor buffer through the remainder of the segment.
  // Boundaries drain upstream-first so freed rows can still buffer (and be
  // compacted) further down.
  void Drain(int tid) {
    for (std::size_t i = 0; i < boundary_.size(); ++i) {
      if (boundary_[i] != nullptr) {
        boundary_[i]->Flush([&](DataChunk* dense) { ApplyOp(tid, dense, i); });
      }
    }
    sink_boundary_->Flush([&](DataChunk* dense) { AppendSink(tid, dense); });
  }

  // Folds this worker's accounting into the run-level stats.
  void FoldInto(PipelineStats* stats) const {
    stats->source_rows += source_rows_;
    stats->source_chunks += source_chunks_;
    stats->sink_chunks += sink_chunks_;
    stats->sink_rows += sink_rows_;
    const auto fold = [stats](const ChunkCompactor& c) {
      stats->boundary_chunks_in += c.stats().chunks_in;
      stats->boundary_rows_in += c.stats().rows_in;
      stats->chunks_emitted += c.stats().chunks_emitted;
      stats->rows_compacted += c.stats().rows_compacted;
      stats->compaction_flushes += c.stats().compaction_flushes;
      // Chunk fill ratio at this compaction boundary, in percent of
      // kChunkCapacity; one sample per (worker, boundary) with traffic.
      if (c.stats().chunks_in > 0) {
        static obs::Histogram* const fill =
            obs::MetricsRegistry::Get().GetHistogram("exec.chunk_fill_pct");
        fill->Record(c.stats().rows_in * 100 /
                     (c.stats().chunks_in * kChunkCapacity));
      }
    };
    for (const auto& b : boundary_) {
      if (b != nullptr) fold(*b);
    }
    fold(*sink_boundary_);
  }

 private:
  void RunFrom(int tid, DataChunk* chunk, std::size_t i) {
    for (; i < ops_.size(); ++i) {
      Operator* op = ops_[i];
      if (op->is_filter()) {
        obs::ObsScope scope(op->name(), obs::SpanKind::kOther);
        op->Apply(tid, chunk);
        if (chunk->Empty()) return;
        continue;
      }
      // Transform boundary: the compactor forwards the chunk (or a gathered
      // dense buffer) into the operator; downstream continues inside the
      // emit callback, so nothing more to do at this level.
      boundary_[i]->Push(chunk,
                         [&](DataChunk* dense) { ApplyOp(tid, dense, i); });
      return;
    }
    sink_boundary_->Push(chunk,
                         [&](DataChunk* dense) { AppendSink(tid, dense); });
  }

  void ApplyOp(int tid, DataChunk* dense, std::size_t i) {
    Operator* op = ops_[i];
    DataChunk* out = out_[i].get();
    OpResult result;
    do {
      out->Reset();
      {
        obs::ObsScope scope(op->name(), obs::SpanKind::kOther);
        result = op->Process(tid, *dense, out);
      }
      if (!out->Empty()) RunFrom(tid, out, i + 1);
    } while (result == OpResult::kHaveMoreOutput);
  }

  void AppendSink(int tid, DataChunk* dense) {
    obs::ObsScope scope(sink_->name(), obs::SpanKind::kMaterialize);
    sink_->Append(tid, *dense);
    ++sink_chunks_;
    sink_rows_ += dense->ActiveRows();
  }

  // read-only segment slice (empty slots never hit)
  std::vector<Operator*> ops_;
  Sink* sink_;
  // single-owner: all of the below belongs to this worker's thread.
  std::vector<std::unique_ptr<DataChunk>> out_;
  std::vector<std::unique_ptr<ChunkCompactor>> boundary_;
  std::unique_ptr<ChunkCompactor> sink_boundary_;
  uint64_t source_rows_ = 0;
  uint64_t source_chunks_ = 0;
  uint64_t sink_chunks_ = 0;
  uint64_t sink_rows_ = 0;
};

// Bridges the join's match stream into the post-join segment: converts each
// MatchChunk into a 3-column DataChunk (three memcpys) and pushes it through
// the per-thread SegmentWorker inside the join's worker threads. The
// tuple-at-a-time Consume path batches into a pending MatchChunk first.
class SegmentMatchSink final : public join::MatchSink {
 public:
  SegmentMatchSink(std::vector<std::unique_ptr<SegmentWorker>>* workers,
                   int num_threads)
      : workers_(workers) {
    static_assert(join::MatchChunk::kCapacity == kChunkCapacity,
                  "MatchChunk -> DataChunk conversion must not overflow");
    per_thread_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      per_thread_.push_back(std::make_unique<PerThread>());
    }
  }

  void ConsumeChunk(int tid, const join::MatchChunk& chunk) override {
    MMJOIN_DCHECK(tid >= 0 && tid < static_cast<int>(per_thread_.size()));
    DataChunk& out = per_thread_[static_cast<std::size_t>(tid)]->convert;
    out.Reset();
    const std::size_t bytes =
        static_cast<std::size_t>(chunk.size) * sizeof(uint32_t);
    std::memcpy(out.column(kJoinKeyCol), chunk.key, bytes);
    std::memcpy(out.column(kJoinBuildPayloadCol), chunk.build_payload, bytes);
    std::memcpy(out.column(kJoinProbePayloadCol), chunk.probe_payload, bytes);
    out.set_size(chunk.size);
    (*workers_)[static_cast<std::size_t>(tid)]->Push(tid, &out);
  }

  void Consume(int tid, Tuple build, Tuple probe) override {
    MMJOIN_DCHECK(tid >= 0 && tid < static_cast<int>(per_thread_.size()));
    join::MatchChunk& pending =
        per_thread_[static_cast<std::size_t>(tid)]->pending;
    pending.Add(build, probe);
    if (pending.full()) FlushPending(tid);
  }

  // Hands buffered Consume tuples over to the segment. Called by workers on
  // chunk fill and (per tid, single-threaded) after the join returns.
  void FlushPending(int tid) {
    join::MatchChunk& pending =
        per_thread_[static_cast<std::size_t>(tid)]->pending;
    if (pending.size == 0) return;
    ConsumeChunk(tid, pending);
    pending.size = 0;
  }

 private:
  struct PerThread {
    // single-owner: worker `tid` only.
    DataChunk convert{3};
    join::MatchChunk pending;
  };

  // per-thread: each join worker dereferences only its own tid's slot
  std::vector<std::unique_ptr<SegmentWorker>>* workers_;
  // per-thread slots indexed by tid; sized before the join dispatch
  std::vector<std::unique_ptr<PerThread>> per_thread_;
};

std::vector<std::unique_ptr<SegmentWorker>> MakeSegmentWorkers(
    const std::vector<Operator*>& ops, std::size_t begin, std::size_t end,
    Sink* sink, int input_columns, double threshold, int num_threads) {
  std::vector<Operator*> slice(ops.begin() + static_cast<std::ptrdiff_t>(begin),
                               ops.begin() + static_cast<std::ptrdiff_t>(end));
  std::vector<std::unique_ptr<SegmentWorker>> workers;
  workers.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers.push_back(std::make_unique<SegmentWorker>(slice, sink,
                                                      input_columns,
                                                      threshold));
  }
  return workers;
}

// Runs source -> ops[begin, end) -> sink morsel-wise on the executor.
// Workers drain their own compactors before leaving the dispatch; the
// caller still owns sink->Finish().
Status RunScanSegment(Source* source, const std::vector<Operator*>& ops,
                      std::size_t begin, std::size_t end, Sink* sink,
                      thread::Executor* executor, int num_threads,
                      double threshold,
                      std::vector<std::unique_ptr<SegmentWorker>>* workers) {
  source->Open(num_threads);
  for (std::size_t i = begin; i < end; ++i) ops[i]->Open(num_threads);
  sink->Open(num_threads);
  *workers = MakeSegmentWorkers(ops, begin, end, sink,
                                source->output_columns(), threshold,
                                num_threads);
  std::vector<std::unique_ptr<DataChunk>> source_chunks;
  source_chunks.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    source_chunks.push_back(
        std::make_unique<DataChunk>(source->output_columns()));
  }
  return executor->Dispatch(
      num_threads, [&](const thread::WorkerContext& ctx) {
        const int tid = ctx.thread_id;
        SegmentWorker& worker = *(*workers)[static_cast<std::size_t>(tid)];
        DataChunk& chunk = *source_chunks[static_cast<std::size_t>(tid)];
        while (true) {
          bool got;
          {
            obs::ObsScope scope(source->name(), obs::SpanKind::kOther);
            got = source->NextChunk(tid, &chunk);
          }
          if (!got) break;
          worker.CountSource(chunk.size());
          worker.Push(tid, &chunk);
        }
        worker.Drain(tid);
      });
}

void FlushExecMetrics(const PipelineStats& stats) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  registry.AddCounter("exec.pipelines", 1);
  registry.AddCounter("exec.boundary_chunks_in", stats.boundary_chunks_in);
  registry.AddCounter("exec.boundary_rows_in", stats.boundary_rows_in);
  registry.AddCounter("exec.chunks_emitted", stats.chunks_emitted);
  registry.AddCounter("exec.rows_compacted", stats.rows_compacted);
  registry.AddCounter("exec.compaction_flushes", stats.compaction_flushes);
}

}  // namespace

Pipeline::Pipeline(Source* source, std::vector<Operator*> ops, Sink* sink)
    : source_(source), ops_(std::move(ops)), sink_(sink) {
  MMJOIN_CHECK(source_ != nullptr);
  MMJOIN_CHECK(sink_ != nullptr);
  for (Operator* op : ops_) MMJOIN_CHECK(op != nullptr);
}

StatusOr<PipelineStats> Pipeline::Run(numa::NumaSystem* system,
                                      const PipelineConfig& config) {
  if (config.num_threads < 1) {
    return InvalidArgumentError("Pipeline needs num_threads >= 1");
  }
  if (config.compaction_threshold > 1.0) {
    return InvalidArgumentError("compaction_threshold must be <= 1");
  }
  thread::Executor* executor = config.executor != nullptr
                                   ? config.executor
                                   : &thread::GlobalExecutor();
  const double threshold = config.ResolvedThreshold();
  const int num_threads = config.num_threads;

  HashJoinProbe* join_op = nullptr;
  std::size_t join_pos = ops_.size();
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (auto* probe = dynamic_cast<HashJoinProbe*>(ops_[i])) {
      if (join_op != nullptr) {
        return InvalidArgumentError(
            "at most one HashJoinProbe per pipeline; chain pipelines "
            "through a join index for bushy plans");
      }
      join_op = probe;
      join_pos = i;
    }
  }

  obs::ObsScope pipeline_scope("exec.pipeline", obs::SpanKind::kRun);
  PipelineStats stats;
  const int64_t start_ns = NowNanos();

  if (join_op == nullptr) {
    std::vector<std::unique_ptr<SegmentWorker>> workers;
    MMJOIN_RETURN_IF_ERROR(RunScanSegment(source_, ops_, 0, ops_.size(),
                                          sink_, executor, num_threads,
                                          threshold, &workers));
    sink_->Finish();
    for (const auto& worker : workers) worker->FoldInto(&stats);
    stats.total_ns = NowNanos() - start_ns;
    FlushExecMetrics(stats);
    return stats;
  }

  // Stage A: scan .. pre-join operators, materialized as the probe relation
  // (the join is a pipeline breaker -- it needs the full probe side).
  TupleMaterialize probe_mat(system, config.materialize_placement);
  std::vector<std::unique_ptr<SegmentWorker>> pre_workers;
  {
    obs::ObsScope scope("exec.stage.scan", obs::SpanKind::kOther);
    MMJOIN_RETURN_IF_ERROR(RunScanSegment(source_, ops_, 0, join_pos,
                                          &probe_mat, executor, num_threads,
                                          threshold, &pre_workers));
    probe_mat.Finish();
  }
  for (const auto& worker : pre_workers) worker->FoldInto(&stats);
  // sink_chunks/sink_rows report the *final* sink boundary only; the
  // pre-segment's sink was the probe materializer (covered by
  // pre_join_rows), so reset before the post segment folds in.
  stats.sink_chunks = 0;
  stats.sink_rows = 0;
  stats.pre_join_rows = probe_mat.size();
  const int64_t mid_ns = NowNanos();
  stats.pre_join_ns = mid_ns - start_ns;

  // Stage B: the join runs with its own parallelism; the post-join segment
  // executes inside the join's worker threads, fed via ConsumeChunk.
  for (std::size_t i = join_pos + 1; i < ops_.size(); ++i) {
    ops_[i]->Open(num_threads);
  }
  sink_->Open(num_threads);
  std::vector<std::unique_ptr<SegmentWorker>> post_workers =
      MakeSegmentWorkers(ops_, join_pos + 1, ops_.size(), sink_,
                         join_op->output_columns(), threshold, num_threads);
  SegmentMatchSink match_sink(&post_workers, num_threads);
  StatusOr<join::JoinResult> join_result = [&] {
    obs::ObsScope scope("exec.stage.join", obs::SpanKind::kOther);
    return join_op->Execute(system, probe_mat.span(), &match_sink, executor,
                            num_threads, config.mem_budget_bytes);
  }();
  if (!join_result.ok()) return join_result.status();
  {
    obs::ObsScope scope("exec.stage.drain", obs::SpanKind::kOther);
    for (int tid = 0; tid < num_threads; ++tid) {
      match_sink.FlushPending(tid);
      post_workers[static_cast<std::size_t>(tid)]->Drain(tid);
    }
    sink_->Finish();
  }
  for (const auto& worker : post_workers) worker->FoldInto(&stats);
  stats.has_join = true;
  stats.join_result = *join_result;
  stats.join_matches = join_result->matches;
  const int64_t end_ns = NowNanos();
  stats.join_ns = end_ns - mid_ns;
  stats.total_ns = end_ns - start_ns;
  FlushExecMetrics(stats);
  return stats;
}

}  // namespace mmjoin::exec
