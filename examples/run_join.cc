// run_join: run any of the thirteen join algorithms by name on a
// configurable workload -- the library's command-line playground.
//
//   ./run_join --join=CPRL --build=1000000 --probe=10000000 --threads=4
//   ./run_join --join=NOPA --zipf=0.9
//   ./run_join --join=PRAiS --holes=8 --bits=10 --numa_profile
//   ./run_join --list

#include <cstdio>

#include "core/mmjoin.h"
#include "util/cli.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);

  if (cli.Has("list")) {
    TablePrinter table({"name", "class", "description"});
    for (const join::Algorithm algorithm : join::AllAlgorithms()) {
      const join::AlgorithmInfo& info = join::InfoOf(algorithm);
      const char* join_class =
          info.join_class == join::JoinClass::kPartitionBased
              ? "partition-based"
          : info.join_class == join::JoinClass::kNoPartitioning
              ? "no-partitioning"
              : "sort-merge";
      table.Row(info.name, join_class, info.description);
    }
    table.Print();
    return 0;
  }

  const std::string name = cli.GetString("join", "CPRL");
  const auto algorithm = join::AlgorithmFromName(name);
  if (!algorithm.has_value()) {
    std::fprintf(stderr, "unknown join '%s'; try --list\n", name.c_str());
    return 1;
  }

  const uint64_t build_size = cli.GetInt("build", 1'000'000);
  const uint64_t probe_size = cli.GetInt("probe", 10'000'000);
  const int threads = static_cast<int>(cli.GetInt("threads", 4));
  const double zipf = cli.GetDouble("zipf", 0.0);
  const uint64_t holes = cli.GetInt("holes", 1);
  const uint64_t seed = cli.GetInt("seed", 42);

  numa::NumaSystem system(static_cast<int>(cli.GetInt("nodes", 4)));

  StatusOr<workload::Relation> build_or =
      holes > 1 ? workload::MakeSparseBuild(&system, build_size, holes, seed)
                : workload::MakeDenseBuild(&system, build_size, seed);
  if (!build_or.ok()) {
    std::fprintf(stderr, "invalid build workload: %s\n",
                 build_or.status().ToString().c_str());
    return 1;
  }
  workload::Relation build = std::move(build_or).value();
  StatusOr<workload::Relation> probe_or =
      zipf > 0.0
          ? workload::MakeZipfProbe(&system, probe_size, build_size, zipf,
                                    seed + 1)
          : workload::MakeProbeFromBuild(&system, probe_size, build, seed + 1);
  if (!probe_or.ok()) {
    std::fprintf(stderr, "invalid probe workload: %s\n",
                 probe_or.status().ToString().c_str());
    return 1;
  }
  workload::Relation probe = std::move(probe_or).value();

  join::JoinConfig config;
  config.num_threads = threads;
  config.radix_bits = static_cast<uint32_t>(cli.GetInt("bits", 0));

  if (cli.Has("numa_profile")) system.EnableAccounting();

  StatusOr<join::JoinResult> result_or =
      join::RunJoin(*algorithm, &system, config, build, probe);
  if (!result_or.ok()) {
    // Exit code 2 distinguishes a cleanly-reported join failure (e.g. an
    // injected allocation fault via MMJOIN_FAILPOINTS) from usage errors
    // (1) and crashes; CI's fault-injection smoke test asserts on it.
    std::fprintf(stderr, "%s join failed: %s\n", join::NameOf(*algorithm),
                 result_or.status().ToString().c_str());
    return 2;
  }
  const join::JoinResult result = std::move(result_or).value();

  std::printf("%s: |R|=%llu |S|=%llu threads=%d zipf=%.2f holes=%llu\n",
              join::NameOf(*algorithm),
              static_cast<unsigned long long>(build_size),
              static_cast<unsigned long long>(probe_size), threads, zipf,
              static_cast<unsigned long long>(holes));
  std::printf("  matches    : %llu\n",
              static_cast<unsigned long long>(result.matches));
  std::printf("  checksum   : %llu\n",
              static_cast<unsigned long long>(result.checksum));
  std::printf("  partition  : %.2f ms\n", result.times.partition_ns / 1e6);
  std::printf("  build      : %.2f ms\n", result.times.build_ns / 1e6);
  std::printf("  probe/join : %.2f ms\n", result.times.probe_ns / 1e6);
  std::printf("  total      : %.2f ms\n", result.times.total_ns / 1e6);
  std::printf("  throughput : %.1f M input tuples/s\n",
              result.ThroughputMtps(build_size, probe_size));

  if (cli.Has("numa_profile")) {
    const numa::AccessCounters* counters = system.counters();
    std::printf("  NUMA reads : %.1f MB local, %.1f MB remote\n",
                counters->TotalLocalReadBytes() / 1e6,
                counters->TotalRemoteReadBytes() / 1e6);
    std::printf("  NUMA writes: %.1f MB local, %.1f MB remote\n",
                counters->TotalLocalWriteBytes() / 1e6,
                counters->TotalRemoteWriteBytes() / 1e6);
  }
  return 0;
}
