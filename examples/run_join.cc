// run_join: run any of the thirteen join algorithms by name on a
// configurable workload -- the library's command-line playground.
//
//   ./run_join --join=CPRL --build=1000000 --probe=10000000 --threads=4
//   ./run_join --join=NOPA --zipf=0.9
//   ./run_join --join=PRAiS --holes=8 --bits=10 --numa_profile
//   ./run_join --join=PRO --profile                # per-phase breakdown
//   ./run_join --join=PRO --trace=trace.json       # Perfetto-loadable trace
//   ./run_join --join=PRO --metrics=metrics.json   # counters snapshot
//   ./run_join --join=PRO --explain                # EXPLAIN ANALYZE report
//   ./run_join --join=PRO --explain-json=report.json   # + mmjoin.report.v1
//   ./run_join --join=PRO --listen=9178            # serve /metrics scrapes
//   ./run_join --join=PRO --dump-metrics=m.prom    # exposition on SIGUSR1
//   ./run_join --list
//
// The memory budget can also come from the MMJOIN_MEM_BUDGET environment
// variable (bytes); the --mem-budget flag wins when both are set.
// --listen keeps the process alive after the join so a scraper (curl,
// Prometheus) can poll http://host:PORT/metrics; terminate with SIGINT/kill.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/explain.h"
#include "core/mmjoin.h"
#include "obs/metrics.h"
#include "obs/phase_profile.h"
#include "obs/stats_server.h"
#include "obs/trace.h"
#include "util/cli.h"
#include "util/table_printer.h"

namespace {

// --profile: per-phase per-thread breakdown to stderr, with hardware-counter
// derived rates when perf events were available.
void PrintProfile(const mmjoin::obs::PhaseProfile& profile,
                  uint64_t matches) {
  using mmjoin::obs::JoinPhase;
  using mmjoin::obs::JoinPhaseName;
  using mmjoin::obs::kNumJoinPhases;
  using mmjoin::obs::PhaseStat;

  std::fprintf(stderr, "\n[profile] phase            threads   mean ms"
                       "    min ms    max ms");
  const bool counters = profile.CountersValid();
  if (counters) {
    std::fprintf(stderr, "       cycles  instr/cycle  cyc/match");
  }
  std::fprintf(stderr, "\n");
  for (int p = 0; p < kNumJoinPhases; ++p) {
    const auto phase = static_cast<JoinPhase>(p);
    const PhaseStat& stat = profile.Of(phase);
    if (stat.threads == 0) continue;
    std::fprintf(stderr, "[profile] %-16s %7d %9.2f %9.2f %9.2f",
                 JoinPhaseName(phase), stat.threads, stat.MeanNs() / 1e6,
                 stat.min_ns / 1e6, stat.max_ns / 1e6);
    if (counters && stat.counters.valid) {
      const double cycles = static_cast<double>(stat.counters.cycles);
      const double instructions =
          static_cast<double>(stat.counters.instructions);
      std::fprintf(stderr, " %12.3e %12.2f %10.2f", cycles,
                   cycles > 0 ? instructions / cycles : 0.0,
                   matches > 0 ? cycles / static_cast<double>(matches) : 0.0);
    }
    std::fprintf(stderr, "\n");
  }
  std::fprintf(stderr, "[profile] critical path (sum of slowest threads): "
                       "%.2f ms\n",
               profile.CriticalPathNs() / 1e6);
  if (!counters) {
    std::fprintf(stderr,
                 "[profile] hardware counters unavailable (perf_event_open "
                 "denied or unsupported); wall-clock only\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);

  if (cli.Has("list")) {
    TablePrinter table({"name", "class", "description"});
    for (const join::Algorithm algorithm : join::AllAlgorithms()) {
      const join::AlgorithmInfo& info = join::InfoOf(algorithm);
      const char* join_class =
          info.join_class == join::JoinClass::kPartitionBased
              ? "partition-based"
          : info.join_class == join::JoinClass::kNoPartitioning
              ? "no-partitioning"
              : "sort-merge";
      table.Row(info.name, join_class, info.description);
    }
    table.Print();
    return 0;
  }

  const std::string name = cli.GetString("join", "CPRL");
  const auto algorithm = join::AlgorithmFromName(name);
  if (!algorithm.has_value()) {
    std::fprintf(stderr, "unknown join '%s'; try --list\n", name.c_str());
    return 1;
  }

  const uint64_t build_size = cli.GetInt("build", 1'000'000);
  const uint64_t probe_size = cli.GetInt("probe", 10'000'000);
  const int threads = static_cast<int>(cli.GetInt("threads", 4));
  const double zipf = cli.GetDouble("zipf", 0.0);
  const uint64_t holes = cli.GetInt("holes", 1);
  const uint64_t seed = cli.GetInt("seed", 42);
  const int repeat = static_cast<int>(cli.GetInt("repeat", 1));
  const std::string trace_path = cli.GetString("trace", "");
  const std::string metrics_path = cli.GetString("metrics", "");
  const bool profile = cli.Has("profile");
  const bool explain = cli.Has("explain");
  const std::string explain_json = cli.GetString("explain-json", "");
  const int listen_port = static_cast<int>(cli.GetInt("listen", -1));
  const bool listen = listen_port >= 0;
  const std::string dump_metrics = cli.GetString("dump-metrics", "");

  // Any observability output requested -> record spans and phase profiles.
  if (profile || explain || listen || !trace_path.empty() ||
      !metrics_path.empty() || !explain_json.empty()) {
    obs::Enable();
  }

  obs::StatsServer stats_server;
  if (listen) {
    const Status status = stats_server.Start(listen_port);
    if (!status.ok()) {
      std::fprintf(stderr, "stats server failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[mmjoin] serving metrics on http://0.0.0.0:%d"
                         "/metrics\n",
                 stats_server.port());
  }
  if (cli.Has("dump-metrics")) {
    const Status status = obs::InstallSigusr1ExpositionDump(dump_metrics);
    if (!status.ok()) {
      std::fprintf(stderr, "SIGUSR1 dump install failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }

  numa::NumaSystem system(static_cast<int>(cli.GetInt("nodes", 4)));

  StatusOr<workload::Relation> build_or =
      holes > 1 ? workload::MakeSparseBuild(&system, build_size, holes, seed)
                : workload::MakeDenseBuild(&system, build_size, seed);
  if (!build_or.ok()) {
    std::fprintf(stderr, "invalid build workload: %s\n",
                 build_or.status().ToString().c_str());
    return 1;
  }
  workload::Relation build = std::move(build_or).value();
  StatusOr<workload::Relation> probe_or =
      zipf > 0.0
          ? workload::MakeZipfProbe(&system, probe_size, build_size, zipf,
                                    seed + 1)
          : workload::MakeProbeFromBuild(&system, probe_size, build, seed + 1);
  if (!probe_or.ok()) {
    std::fprintf(stderr, "invalid probe workload: %s\n",
                 probe_or.status().ToString().c_str());
    return 1;
  }
  workload::Relation probe = std::move(probe_or).value();

  join::JoinConfig config;
  config.num_threads = threads;
  config.radix_bits = static_cast<uint32_t>(cli.GetInt("bits", 0));

  // Per-join memory budget: --mem-budget=<bytes> wins over the
  // MMJOIN_MEM_BUDGET environment variable; 0/absent means unbounded.
  uint64_t mem_budget = static_cast<uint64_t>(cli.GetInt("mem-budget", 0));
  if (mem_budget == 0) {
    if (const char* env = std::getenv("MMJOIN_MEM_BUDGET");
        env != nullptr && env[0] != '\0') {
      mem_budget = std::strtoull(env, nullptr, 10);
    }
  }
  if (mem_budget != 0) config.mem_budget_bytes = mem_budget;

  if (cli.Has("numa_profile")) system.EnableAccounting();

  // --repeat=N: keep the fastest run (same rule for every repeat, so the
  // printed numbers stay comparable across invocations); profiles come from
  // that run too.
  // --explain: counter deltas bracket the measurement loop, so the report
  // narrates exactly what this invocation's runs did.
  std::map<std::string, uint64_t> counters_before;
  if (explain || !explain_json.empty()) {
    counters_before = obs::MetricsRegistry::Get().SnapshotMap();
  }

  join::JoinResult result;
  for (int i = 0; i < (repeat > 0 ? repeat : 1); ++i) {
    StatusOr<join::JoinResult> result_or =
        join::RunJoin(*algorithm, &system, config, build, probe);
    if (!result_or.ok()) {
      // Exit code 2 distinguishes a cleanly-reported join failure (e.g. an
      // injected allocation fault via MMJOIN_FAILPOINTS) from usage errors
      // (1) and crashes; CI's fault-injection smoke test asserts on it.
      std::fprintf(stderr, "%s join failed: %s\n", join::NameOf(*algorithm),
                   result_or.status().ToString().c_str());
      return 2;
    }
    join::JoinResult this_run = std::move(result_or).value();
    if (i == 0 || this_run.times.total_ns < result.times.total_ns) {
      result = std::move(this_run);
    }
  }

  std::printf("%s: |R|=%llu |S|=%llu threads=%d zipf=%.2f holes=%llu\n",
              join::NameOf(*algorithm),
              static_cast<unsigned long long>(build_size),
              static_cast<unsigned long long>(probe_size), threads, zipf,
              static_cast<unsigned long long>(holes));
  std::printf("  matches    : %llu\n",
              static_cast<unsigned long long>(result.matches));
  std::printf("  checksum   : %llu\n",
              static_cast<unsigned long long>(result.checksum));
  std::printf("  partition  : %.2f ms\n", result.times.partition_ns / 1e6);
  std::printf("  build      : %.2f ms\n", result.times.build_ns / 1e6);
  std::printf("  probe/join : %.2f ms\n", result.times.probe_ns / 1e6);
  std::printf("  total      : %.2f ms\n", result.times.total_ns / 1e6);
  std::printf("  throughput : %.1f M input tuples/s\n",
              result.ThroughputMtps(build_size, probe_size));

  if (cli.Has("numa_profile")) {
    const numa::AccessCounters* counters = system.counters();
    std::printf("  NUMA reads : %.1f MB local, %.1f MB remote\n",
                counters->TotalLocalReadBytes() / 1e6,
                counters->TotalRemoteReadBytes() / 1e6);
    std::printf("  NUMA writes: %.1f MB local, %.1f MB remote\n",
                counters->TotalLocalWriteBytes() / 1e6,
                counters->TotalRemoteWriteBytes() / 1e6);
  }

  if (profile) {
    if (result.profile.has_value()) {
      PrintProfile(*result.profile, result.matches);
    } else {
      std::fprintf(stderr, "[profile] no phase profile recorded\n");
    }
  }
  if (explain || !explain_json.empty()) {
    const core::ExplainReport report = core::BuildExplainReport(
        join::NameOf(*algorithm), result, build_size, probe_size, threads,
        &system, counters_before, obs::MetricsRegistry::Get().SnapshotMap());
    if (explain) {
      std::printf("\n%s", core::FormatExplainText(report).c_str());
    }
    if (!explain_json.empty()) {
      const Status status = core::WriteExplainJson(report, explain_json);
      if (!status.ok()) {
        std::fprintf(stderr, "report write failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("  report     : %s\n", explain_json.c_str());
    }
  }
  if (!metrics_path.empty()) {
    const Status status =
        obs::MetricsRegistry::Get().WriteJson(metrics_path);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("  metrics    : %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    const Status status =
        obs::TraceRecorder::Get().WriteChromeTrace(trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("  trace      : %s (load in Perfetto)\n", trace_path.c_str());
  }
  if (listen || cli.Has("dump-metrics")) {
    // Stay alive for scrapes / SIGUSR1 dumps until killed.
    std::fflush(stdout);
    std::fprintf(stderr, "[mmjoin] join done; process stays up for metrics"
                         " (kill to exit)\n");
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  return 0;
}
