// tpch_q19: end-to-end TPC-H Q19 on the bundled column-store emulation --
// generate lineitem/part, pick a join, run the query, verify the revenue.
//
//   ./tpch_q19 [--sf=0.25] [--join=NOPA] [--threads=4] [--selectivity=0.0357]

#include <cmath>
#include <cstdio>

#include "core/mmjoin.h"
#include "tpch/generator.h"
#include "tpch/q19.h"
#include "util/cli.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const double sf = cli.GetDouble("sf", 0.25);
  const int threads = static_cast<int>(cli.GetInt("threads", 4));
  const std::string name = cli.GetString("join", "NOPA");

  const auto algorithm = join::AlgorithmFromName(name);
  if (!algorithm.has_value()) {
    std::fprintf(stderr, "unknown join '%s'\n", name.c_str());
    return 1;
  }

  numa::NumaSystem system(4);
  tpch::GeneratorOptions options;
  options.scale_factor = sf;
  options.prefilter_selectivity = cli.GetDouble("selectivity", 0.0357);

  std::printf("generating TPC-H data, scale factor %.2f ...\n", sf);
  tpch::LineitemTable lineitem = tpch::GenerateLineitem(&system, options);
  tpch::PartTable part = tpch::GeneratePart(&system, options);
  std::printf("  lineitem: %llu rows, part: %llu rows\n",
              static_cast<unsigned long long>(lineitem.num_tuples()),
              static_cast<unsigned long long>(part.num_tuples()));

  const tpch::Q19Result result =
      tpch::RunQ19(&system, lineitem, part, *algorithm, threads);

  std::printf("\nQ19 with %s on %d threads:\n", join::NameOf(*algorithm),
              threads);
  TablePrinter table({"metric", "value"});
  table.Row("revenue", TablePrinter::FormatDouble(result.revenue, 2));
  table.Row("filtered probe rows", result.filtered_rows);
  table.Row("join matches", result.join_matches);
  table.Row("rows passing post-join predicate", result.result_rows);
  table.Row("filter+materialize [ms]",
            TablePrinter::FormatDouble(result.filter_ns / 1e6));
  table.Row("join (incl. post+agg) [ms]",
            TablePrinter::FormatDouble(result.join_ns / 1e6));
  table.Row("total [ms]", TablePrinter::FormatDouble(result.total_ns / 1e6));
  table.Row("join share [%]",
            TablePrinter::FormatDouble(100.0 * result.join_ns /
                                       result.total_ns, 1));
  table.Print();

  const double reference = tpch::Q19Reference(lineitem, part);
  const bool ok = std::abs(result.revenue - reference) <
                  std::abs(reference) * 1e-9 + 1e-6;
  std::printf("\nscan-based reference revenue: %.2f -> %s\n", reference,
              ok ? "MATCH" : "MISMATCH");
  return ok ? 0 : 1;
}
