// Bushy two-join plan on the vectorized exec:: pipeline (docs/PIPELINE.md).
//
// Builds the plan
//
//        Agg
//         |
//        |><|   (top join, non-unique build side)
//       .    .
//    |><|    |><|        J1 = A |><| B,  J2 = C |><| D
//    .   .   .   .
//   A    B  C    D
//
// as three pipelines: the two lower joins each run scan -> HashJoinProbe ->
// JoinIndexMaterialize; their indexes are re-keyed into <key, position>
// columns; the top pipeline scans one index, filters it, probes a hash
// table built over the other, and counts the surviving pairs. A scalar
// histogram reference verifies the match count.
//
//   ./bushy_join [--dim=4096] [--fact1=200000] [--fact2=150000] [--threads=4]
//                [--threshold=0.25]

#include <cstdio>
#include <vector>

#include "core/mmjoin.h"
#include "exec/operators.h"
#include "exec/pipeline.h"
#include "util/cli.h"

namespace {

using namespace mmjoin;

// Keeps keys in [0, bound) -- makes the top pipeline's chunks sparse so the
// compactor has work to do.
class KeyRangeFilter final : public exec::Operator {
 public:
  explicit KeyRangeFilter(uint32_t bound) : bound_(bound) {}
  const char* name() const override { return "bushy.key_filter"; }
  int output_columns() const override { return 2; }
  bool is_filter() const override { return true; }
  void Apply(int tid, exec::DataChunk* chunk) override {
    (void)tid;
    const uint32_t* keys = chunk->column(exec::kScanKeyCol);
    exec::RefineSelection(chunk, [&](const exec::DataChunk&, uint32_t row) {
      return keys[row] < bound_;
    });
  }

 private:
  uint32_t bound_;
};

// Runs scan(probe) -> HashJoinProbe(build) -> JoinIndexMaterialize and
// returns the gathered join index.
std::vector<join::MatchedPair> JoinToIndex(numa::NumaSystem* system,
                                           const exec::PipelineConfig& config,
                                           ConstTupleSpan build,
                                           uint64_t key_domain,
                                           ConstTupleSpan probe,
                                           const char* label) {
  exec::TupleScan scan(probe);
  exec::HashJoinProbe::Spec spec;
  spec.algorithm = join::Algorithm::kCPRL;
  spec.build = build;
  spec.key_domain = key_domain;
  exec::HashJoinProbe join_probe(spec);
  exec::JoinIndexMaterialize index;
  exec::Pipeline pipeline(&scan, {&join_probe}, &index);
  const exec::PipelineStats stats = pipeline.Run(system, config).value();
  std::printf("%s: %llu probe rows -> %llu matches in %.2f ms\n", label,
              static_cast<unsigned long long>(stats.pre_join_rows),
              static_cast<unsigned long long>(stats.join_matches),
              stats.total_ns / 1e6);
  return index.Gather();
}

// <key, position-in-index> column over a join index, feeding the top join.
std::vector<Tuple> Rekey(const std::vector<join::MatchedPair>& index) {
  std::vector<Tuple> tuples(index.size());
  for (std::size_t i = 0; i < index.size(); ++i) {
    tuples[i] = Tuple{index[i].key, static_cast<uint32_t>(i)};
  }
  return tuples;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const uint64_t dim = cli.GetInt("dim", 4096);
  const uint64_t fact1 = cli.GetInt("fact1", 200'000);
  const uint64_t fact2 = cli.GetInt("fact2", 150'000);
  const int threads = static_cast<int>(cli.GetInt("threads", 4));
  const double threshold = cli.GetDouble("threshold", 0.25);

  numa::NumaSystem system(/*num_nodes=*/4);
  workload::Relation a = workload::MakeDenseBuild(&system, dim, 1).value();
  workload::Relation b =
      workload::MakeUniformProbe(&system, fact1, dim, 2).value();
  workload::Relation c = workload::MakeDenseBuild(&system, dim, 3).value();
  workload::Relation d =
      workload::MakeUniformProbe(&system, fact2, dim, 4).value();

  exec::PipelineConfig config;
  config.num_threads = threads;
  config.compaction_threshold = threshold;

  // Lower joins (independent subtrees of the bushy plan).
  const std::vector<join::MatchedPair> j1 =
      JoinToIndex(&system, config, a.cspan(), dim, b.cspan(), "J1 = A |><| B");
  const std::vector<join::MatchedPair> j2 =
      JoinToIndex(&system, config, c.cspan(), dim, d.cspan(), "J2 = C |><| D");

  // Top join: J1 (non-unique keys!) as build, J2 as the scanned probe side.
  const std::vector<Tuple> j1_tuples = Rekey(j1);
  const std::vector<Tuple> j2_tuples = Rekey(j2);
  const uint32_t key_bound = static_cast<uint32_t>(dim / 8);

  exec::TupleScan scan(ConstTupleSpan(j2_tuples.data(), j2_tuples.size()));
  KeyRangeFilter filter(key_bound);
  exec::HashJoinProbe::Spec top_spec;
  top_spec.algorithm = join::Algorithm::kNOP;
  top_spec.build = ConstTupleSpan(j1_tuples.data(), j1_tuples.size());
  top_spec.key_domain = dim;
  top_spec.build_unique = false;
  exec::HashJoinProbe top_join(top_spec);
  exec::CountAggregate agg;
  exec::Pipeline top(&scan, {&filter, &top_join}, &agg);
  const exec::PipelineStats stats = top.Run(&system, config).value();

  std::printf(
      "top join: %llu filtered probe rows -> %llu pairs "
      "(compaction: %llu rows gathered, %llu flushes, %llu chunks emitted)\n",
      static_cast<unsigned long long>(stats.pre_join_rows),
      static_cast<unsigned long long>(agg.rows()),
      static_cast<unsigned long long>(stats.rows_compacted),
      static_cast<unsigned long long>(stats.compaction_flushes),
      static_cast<unsigned long long>(stats.chunks_emitted));

  // Scalar reference: per-key histogram product under the key filter.
  std::vector<uint64_t> hist_b(dim, 0), hist_d(dim, 0);
  for (const join::MatchedPair& m : j1) ++hist_b[m.key];
  for (const join::MatchedPair& m : j2) ++hist_d[m.key];
  uint64_t expected = 0;
  for (uint32_t k = 0; k < key_bound; ++k) expected += hist_b[k] * hist_d[k];

  const bool match = expected == agg.rows();
  std::printf("reference count: %llu -> %s\n",
              static_cast<unsigned long long>(expected),
              match ? "MATCH" : "MISMATCH");
  return match ? 0 : 1;
}
