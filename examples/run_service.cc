// run_service: stand up a JoinService and drive it with concurrent jobs
// from several tenants -- the multi-tenant counterpart of run_join.
//
//   ./run_service --tenants=3 --jobs=4 --lanes=2 --threads=4
//   ./run_service --build=1000000 --probe=4000000 --zipf=0.9
//   ./run_service --listen=9178          # serve /metrics while jobs run
//
// Each tenant submits `--jobs` joins (algorithms round-robined across the
// partition-based and no-partitioning families) from its own client thread,
// so admission control, lane multiplexing, and the per-job EXPLAIN windows
// are all exercised the way a real embedding would. With --listen the
// process stays alive after the drain so a scraper can poll
// http://host:PORT/metrics for the service.* counters; terminate with kill.

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/mmjoin.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "service/join_service.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);

  const int num_tenants = static_cast<int>(cli.GetInt("tenants", 3));
  const int jobs_per_tenant = static_cast<int>(cli.GetInt("jobs", 4));
  const uint64_t build_size = cli.GetInt("build", 200'000);
  const uint64_t probe_size = cli.GetInt("probe", 800'000);
  const double zipf = cli.GetDouble("zipf", 0.0);
  const uint64_t seed = cli.GetInt("seed", 42);
  const int listen_port = static_cast<int>(cli.GetInt("listen", -1));
  const bool listen = listen_port >= 0;

  obs::Enable();

  obs::StatsServer stats_server;
  if (listen) {
    const Status status = stats_server.Start(listen_port);
    if (!status.ok()) {
      std::fprintf(stderr, "stats server failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[mmjoin] serving metrics on http://0.0.0.0:%d"
                         "/metrics\n",
                 stats_server.port());
  }

  service::ServiceOptions options;
  options.joiner.num_nodes = static_cast<int>(cli.GetInt("nodes", 4));
  options.joiner.num_threads = static_cast<int>(cli.GetInt("threads", 4));
  options.num_lanes = static_cast<int>(cli.GetInt("lanes", 2));
  options.default_quota.max_concurrent_jobs =
      static_cast<int>(cli.GetInt("tenant-jobs", 8));
  auto service_or = service::JoinService::Create(options);
  if (!service_or.ok()) {
    std::fprintf(stderr, "service start failed: %s\n",
                 service_or.status().ToString().c_str());
    return 1;
  }
  service::JoinService& service = *service_or.value();

  StatusOr<workload::Relation> build_or =
      workload::MakeDenseBuild(service.system(), build_size, seed);
  if (!build_or.ok()) {
    std::fprintf(stderr, "invalid build workload: %s\n",
                 build_or.status().ToString().c_str());
    return 1;
  }
  workload::Relation build = std::move(build_or).value();
  StatusOr<workload::Relation> probe_or =
      zipf > 0.0
          ? workload::MakeZipfProbe(service.system(), probe_size, build_size,
                                    zipf, seed + 1)
          : workload::MakeProbeFromBuild(service.system(), probe_size, build,
                                         seed + 1);
  if (!probe_or.ok()) {
    std::fprintf(stderr, "invalid probe workload: %s\n",
                 probe_or.status().ToString().c_str());
    return 1;
  }
  workload::Relation probe = std::move(probe_or).value();

  const join::Algorithm algorithms[] = {
      join::Algorithm::kCPRL, join::Algorithm::kPRO, join::Algorithm::kNOP,
      join::Algorithm::kNOPA, join::Algorithm::kCPRA};
  constexpr int kNumAlgorithms = 5;

  std::printf("join service: tenants=%d jobs/tenant=%d lanes=%d "
              "|R|=%llu |S|=%llu zipf=%.2f\n",
              num_tenants, jobs_per_tenant, service.num_lanes(),
              static_cast<unsigned long long>(build_size),
              static_cast<unsigned long long>(probe_size), zipf);

  // One client thread per tenant: submit, wait, report. A rejection
  // (queue full / over quota) is normal backpressure here -- the client
  // honors the retry-after hint and resubmits.
  std::mutex print_mutex;
  int failures = 0;
  std::vector<std::thread> clients;
  clients.reserve(num_tenants);
  for (int t = 0; t < num_tenants; ++t) {
    clients.emplace_back([&, t] {
      const std::string tenant = "tenant" + std::to_string(t);
      for (int i = 0; i < jobs_per_tenant; ++i) {
        service::JobSpec spec;
        spec.tenant = tenant;
        spec.algorithm = algorithms[(t + i) % kNumAlgorithms];
        spec.build = &build;
        spec.probe = &probe;
        StatusOr<service::JobId> id = service.SubmitJob(spec);
        while (!id.ok() &&
               id.status().code() == StatusCode::kResourceExhausted) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          id = service.SubmitJob(spec);
        }
        if (!id.ok()) {
          std::lock_guard<std::mutex> lock(print_mutex);
          std::fprintf(stderr, "%s submit failed: %s\n", tenant.c_str(),
                       id.status().ToString().c_str());
          ++failures;
          continue;
        }
        const StatusOr<service::JobResult> result = service.Wait(*id);
        std::lock_guard<std::mutex> lock(print_mutex);
        if (!result.ok()) {
          std::fprintf(stderr, "%s job %llu failed: %s\n", tenant.c_str(),
                       static_cast<unsigned long long>(*id),
                       result.status().ToString().c_str());
          ++failures;
          continue;
        }
        std::printf("  %-8s job=%-3llu %-5s lane=%d matches=%llu "
                    "wait=%.2fms run=%.2fms\n",
                    tenant.c_str(), static_cast<unsigned long long>(*id),
                    join::NameOf(spec.algorithm), result->lane,
                    static_cast<unsigned long long>(result->join.matches),
                    result->queue_wait_ns / 1e6, result->run_ns / 1e6);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  service.Shutdown();

  const service::ServiceStats stats = service.stats();
  std::printf("service stats: submitted=%llu completed=%llu failed=%llu "
              "rejected=%llu peak_running=%d\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.rejected),
              stats.peak_running);

  if (failures > 0) {
    // Exit code 2: jobs failed cleanly (reported Status, no crash) -- same
    // convention as run_join so CI can tell failure modes apart.
    return 2;
  }
  if (listen) {
    std::fflush(stdout);
    std::fprintf(stderr, "[mmjoin] jobs done; process stays up for metrics"
                         " (kill to exit)\n");
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  return 0;
}
