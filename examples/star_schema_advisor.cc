// star_schema_advisor: the paper's "lessons learned" in action on a
// star-schema scenario (the OLAP motivation from Section 7.3: small
// dimension tables with dense auto-increment keys joined against a large
// fact table).
//
// For each of several dimension-table shapes the advisor picks an
// algorithm and we race its pick against one representative of each
// family. The advisor encodes the PAPER MACHINE's lessons (4-socket NUMA,
// 60 cores); on small or single-socket hosts the race may crown a
// different winner -- which is itself lesson 2: know your hardware.
//
//   ./star_schema_advisor [--fact=8000000] [--threads=4]

#include <algorithm>
#include <cstdio>

#include "core/mmjoin.h"
#include "util/cli.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const uint64_t fact_rows = cli.GetInt("fact", 8'000'000);
  const int threads = static_cast<int>(cli.GetInt("threads", 4));
  const uint64_t seed = cli.GetInt("seed", 42);

  numa::NumaSystem system(4);

  struct Scenario {
    const char* name;
    uint64_t dimension_rows;
    uint64_t domain_factor;  // key domain = factor * rows (holes)
    double zipf;
  };
  const Scenario scenarios[] = {
      {"small dimension (date dim), dense keys", 4096, 1, 0.0},
      {"large dimension (customer), dense keys", 2'000'000, 1, 0.0},
      {"large dimension, sparse keys (after deletes)", 2'000'000, 16, 0.0},
      {"large dimension, heavily skewed fact FK", 2'000'000, 1, 0.95},
  };

  for (const Scenario& scenario : scenarios) {
    std::printf("=== %s ===\n", scenario.name);
    workload::Relation dimension =
        scenario.domain_factor > 1
            ? workload::MakeSparseBuild(&system, scenario.dimension_rows,
                                        scenario.domain_factor, seed).value()
            : workload::MakeDenseBuild(&system, scenario.dimension_rows,
                                       seed).value();
    workload::Relation fact =
        scenario.zipf > 0.0
            ? workload::MakeZipfProbe(&system, fact_rows,
                                      scenario.dimension_rows, scenario.zipf,
                                      seed + 1).value()
            : workload::MakeProbeFromBuild(&system, fact_rows, dimension,
                                           seed + 1).value();

    const core::Advice advice = core::AdviseJoin(
        core::WorkloadProfile{scenario.dimension_rows, fact_rows,
                              dimension.key_domain(), scenario.zipf},
        threads);
    std::printf("advisor picks %s: %s\n", join::NameOf(advice.algorithm),
                advice.reason.c_str());

    join::JoinConfig config;
    config.num_threads = threads;
    TablePrinter table({"join", "total_ms", "throughput_Mtps", "pick"});
    // Race the pick against one representative of each family.
    std::vector<join::Algorithm> contenders = {
        join::Algorithm::kNOP, join::Algorithm::kCPRL,
        join::Algorithm::kPROiS};
    if (std::find(contenders.begin(), contenders.end(), advice.algorithm) ==
        contenders.end()) {
      contenders.insert(contenders.begin(), advice.algorithm);
    }
    for (const join::Algorithm algorithm : contenders) {
      const join::JoinResult result =
          join::RunJoin(algorithm, &system, config, dimension, fact).value();
      table.Row(join::NameOf(algorithm), result.times.total_ns / 1e6,
                result.ThroughputMtps(scenario.dimension_rows, fact_rows),
                algorithm == advice.algorithm ? "<== advisor" : "");
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
