// Quickstart: generate a primary-key / foreign-key workload and run the
// paper's best general-purpose join (CPRL), comparing it with the simple
// no-partitioning baseline.
//
//   ./quickstart [--build=1000000] [--probe=10000000] [--threads=4]

#include <cstdio>

#include "core/mmjoin.h"
#include "util/cli.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const uint64_t build_size = cli.GetInt("build", 1'000'000);
  const uint64_t probe_size = cli.GetInt("probe", 10'000'000);
  const int threads = static_cast<int>(cli.GetInt("threads", 4));

  // A NumaSystem models the paper's 4-socket machine: allocations carry
  // placement policies and threads are assigned to nodes.
  numa::NumaSystem system(/*num_nodes=*/4);

  std::printf("Generating |R| = %llu, |S| = %llu (dense PK / uniform FK)\n",
              static_cast<unsigned long long>(build_size),
              static_cast<unsigned long long>(probe_size));
  workload::Relation build =
      workload::MakeDenseBuild(&system, build_size, /*seed=*/1).value();
  workload::Relation probe =
      workload::MakeUniformProbe(&system, probe_size, build_size, /*seed=*/2).value();

  join::JoinConfig config;
  config.num_threads = threads;

  TablePrinter table({"join", "matches", "partition_ms", "join_ms",
                      "total_ms", "throughput_Mtps"});
  for (const join::Algorithm algorithm :
       {join::Algorithm::kNOP, join::Algorithm::kCPRL,
        join::Algorithm::kCPRA}) {
    const join::JoinResult result =
        join::RunJoin(algorithm, &system, config, build, probe).value();
    table.Row(join::NameOf(algorithm), result.matches,
              result.times.partition_ns / 1e6,
              (result.times.build_ns + result.times.probe_ns) / 1e6,
              result.times.total_ns / 1e6,
              result.ThroughputMtps(build_size, probe_size));
  }
  table.Print();

  // What would the paper recommend for this workload?
  const core::Advice advice = core::AdviseJoin(
      core::WorkloadProfile{build_size, probe_size, build.key_domain(), 0.0},
      threads);
  std::printf("\nAdvisor picks %s: %s\n", join::NameOf(advice.algorithm),
              advice.reason.c_str());
  return 0;
}
