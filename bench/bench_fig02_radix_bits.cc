// Figure 2: throughput of PRO for a varying number of radix bits, single-
// vs two-pass partitioning (the two-pass variant splits the bits evenly).
//
// Paper result: single-pass partitioning with ~14 bits peaks; two-pass is
// uniformly slower once SWWCBs make single-pass TLB-safe.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env =
      bench::BenchEnv::FromCli(cli, 1u << 20, 10u << 20);
  const uint32_t min_bits =
      static_cast<uint32_t>(cli.GetInt("min_bits", 6));
  const uint32_t max_bits =
      static_cast<uint32_t>(cli.GetInt("max_bits", 14));

  bench::PrintBanner(
      "Figure 2 (PRO: radix bits x passes)",
      "Total-join throughput of PRO when sweeping the number of radix bits, "
      "for single-pass and two-pass partitioning.",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  workload::Relation build =
      workload::MakeDenseBuild(&system, env.build_size, env.seed).value();
  workload::Relation probe = workload::MakeUniformProbe(
      &system, env.probe_size, env.build_size, env.seed + 1).value();

  TablePrinter table(
      {"bits", "passes=1_Mtps", "passes=2_Mtps", "best"});
  double best_throughput = 0;
  uint32_t best_bits = 0;
  for (uint32_t bits = min_bits; bits <= max_bits; ++bits) {
    double mtps[2] = {0, 0};
    for (const uint32_t passes : {1u, 2u}) {
      join::JoinConfig config;
      config.num_threads = env.threads;
      config.radix_bits = bits;
      config.num_passes = passes;
      const join::JoinResult result = bench::RunMedian(
          join::Algorithm::kPRO, &system, config, build, probe, env.repeat);
      mtps[passes - 1] =
          result.ThroughputMtps(env.build_size, env.probe_size);
    }
    if (mtps[0] > best_throughput) {
      best_throughput = mtps[0];
      best_bits = bits;
    }
    table.Row(static_cast<int>(bits), mtps[0], mtps[1],
              mtps[0] >= mtps[1] ? "1-pass" : "2-pass");
  }
  table.Print();
  std::printf(
      "\nsingle-pass peak at %u bits (paper: 14 bits at |R|=128M; the "
      "optimum shifts with |R| per Equation (1))\n",
      best_bits);
  bench::PrintExecutorStats();
  return 0;
}
