// Figure 8: all thirteen joins with small (4 KB) vs huge (2 MB) pages.
//
// Two reproductions:
//  (1) wall clock with real madvise page policies (effects depend on the
//      host's THP configuration and may be small in a VM);
//  (2) the TLB mechanism, via the cache/TLB simulator with the paper
//      machine's TLB (256 entries @ 4 KB vs 32 @ 2 MB), replaying each
//      algorithm's partition-phase write pattern.
// Paper result: huge pages help every algorithm EXCEPT PRB, whose direct
// scatter to 128 partitions fits 256 small-page TLB entries but thrashes
// the 32 huge-page entries; SWWCB (PRO and later) removes that hazard.

#include "bench_common.h"
#include "memsim/replay.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env =
      bench::BenchEnv::FromCli(cli, 1u << 20, 10u << 20);

  bench::PrintBanner(
      "Figure 8 (page sizes)",
      "Throughput with 4 KB vs 2 MB pages (wall clock + simulated TLB "
      "behaviour of the partition/build phase).",
      env);

  // --- (1) Wall clock with real page policies. ---
  TablePrinter wall({"join", "4KB_Mtps", "2MB_Mtps", "speedup_2MB"});
  std::vector<std::pair<double, double>> mtps(13);
  for (const auto policy :
       {mem::PagePolicy::kSmall, mem::PagePolicy::kHuge}) {
    numa::NumaSystem system(env.nodes, policy);
    workload::Relation build =
        workload::MakeDenseBuild(&system, env.build_size, env.seed).value();
    workload::Relation probe = workload::MakeUniformProbe(
        &system, env.probe_size, env.build_size, env.seed + 1).value();
    join::JoinConfig config;
    config.num_threads = env.threads;
    int index = 0;
    for (const join::Algorithm algorithm : join::AllAlgorithms()) {
      const join::JoinResult result = bench::RunMedian(
          algorithm, &system, config, build, probe, env.repeat);
      const double value =
          result.ThroughputMtps(env.build_size, env.probe_size);
      if (policy == mem::PagePolicy::kSmall) {
        mtps[index].first = value;
      } else {
        mtps[index].second = value;
      }
      ++index;
    }
  }
  {
    int index = 0;
    for (const join::Algorithm algorithm : join::AllAlgorithms()) {
      wall.Row(join::NameOf(algorithm), mtps[index].first,
               mtps[index].second,
               mtps[index].second / std::max(mtps[index].first, 1e-9));
      ++index;
    }
  }
  std::printf("(1) wall clock on this host:\n");
  wall.Print();

  // --- (2) Simulated TLB profile of the partition (or build) phase. ---
  using memsim::HierarchyConfig;
  using memsim::PhaseReport;
  using memsim::ReplayGlobalBuild;
  using memsim::ReplayScatter;
  using memsim::TableLayout;

  // Page sizes are scaled 32x down (4 KB/256 entries vs 64 KB/32 entries)
  // so the paper's ratios of TLB reach to working-set size hold at
  // unit-scale replay sizes; the entry-count mechanism is unchanged.
  HierarchyConfig small_cfg = HierarchyConfig::SmallPages();  // 4 KB x 256
  HierarchyConfig huge_cfg = HierarchyConfig::SmallPages();
  huge_cfg.page_bytes = 64 * 1024;
  huge_cfg.tlb_entries = 32;

  const uint64_t tuples = std::min<uint64_t>(env.build_size * 4, 4u << 20);
  TablePrinter sim({"pattern", "4KB_tlb_miss%", "2MB_tlb_miss%", "verdict"});
  auto run_pattern = [&](const char* name, auto&& fn) {
    const PhaseReport small = fn(small_cfg);
    const PhaseReport huge = fn(huge_cfg);
    sim.Row(name, small.tlb.miss_rate() * 100, huge.tlb.miss_rate() * 100,
            huge.tlb.miss_rate() < small.tlb.miss_rate() ? "huge pages win"
                                                         : "small pages win");
  };
  run_pattern("PRB: direct scatter, 128 parts", [&](const auto& c) {
    return ReplayScatter(c, tuples, 128, /*swwcb=*/false, env.seed);
  });
  run_pattern("PRO+: SWWCB scatter, 2^12 parts", [&](const auto& c) {
    return ReplayScatter(c, tuples, 1 << 12, /*swwcb=*/true, env.seed);
  });
  run_pattern("NOP: global table build", [&](const auto& c) {
    return ReplayGlobalBuild(c, tuples, TableLayout::kLinear, env.seed);
  });
  run_pattern("NOPA: global array build", [&](const auto& c) {
    return ReplayGlobalBuild(c, tuples, TableLayout::kArray, env.seed);
  });
  std::printf(
      "\n(2) simulated TLB, 32x-scaled pages (4KB x 256 entries vs 64KB x "
      "32 entries -- same reach/entry-count ratios as the paper machine's "
      "4KB/256 vs 2MB/32):\n");
  sim.Print();
  std::printf(
      "\nexpected shape: PRB is the one pattern where the 2MB-page TLB "
      "loses (128 direct-scatter cursors exceed 32 entries but fit 256); "
      "SWWCB and the global builds want huge pages.\n");
  bench::PrintExecutorStats();
  return 0;
}
