// Shared helpers for the per-figure experiment harnesses.

#ifndef MMJOIN_BENCH_BENCH_COMMON_H_
#define MMJOIN_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>

#include "core/mmjoin.h"
#include "util/cli.h"
#include "util/table_printer.h"

namespace mmjoin::bench {

// Common experiment parameters, overridable from the command line:
//   --build=N --probe=N --threads=N --nodes=N --seed=N --pages=huge|small
//   --repeat=N (median-of-N timing)
//   --json=PATH (or MMJOIN_BENCH_JSON): machine-readable results, one JSON
//     object per line -- a `mmjoin.bench.v1` record per repeat plus one
//     final `mmjoin.metrics.v1` record (schema: docs/OBSERVABILITY.md)
//   --trace=PATH (or MMJOIN_TRACE): enables observability and writes a
//     Chrome trace-event file (load in Perfetto) at exit
struct BenchEnv {
  uint64_t build_size;
  uint64_t probe_size;
  int threads;
  int nodes;
  int repeat;
  uint64_t seed;
  mem::PagePolicy pages;
  std::string json_path;   // empty = no JSON output
  std::string trace_path;  // empty = observability off

  static BenchEnv FromCli(const CommandLine& cli, uint64_t default_build,
                          uint64_t default_probe, int default_threads = 4);
};

// Prints the standard harness banner: which paper artifact this reproduces
// and with which scaled-down parameters.
void PrintBanner(const char* artifact, const char* description,
                 const BenchEnv& env);

// Appends one `mmjoin.bench.v1` JSON line to the --json sink opened by
// PrintBanner (no-op when none is open). `extra_json` is spliced verbatim
// into the record (prefixed with a comma when non-empty) for
// harness-specific fields on top of the required schema -- e.g.
// `"selectivity":0.01,"sink_chunks":42`. RunMedian calls this per repeat;
// harnesses that time something other than a bare join (the exec pipeline
// sweeps) call it directly.
void AppendBenchRecord(const char* algorithm, int repeat_index,
                       uint64_t build_size, uint64_t probe_size, int threads,
                       const join::JoinResult& result,
                       const std::string& extra_json = "");

// Runs `algorithm` `env.repeat` times on the given workload and returns the
// run with the median total time (first run warms the data). All repeats run
// on the process-wide persistent pool (unless `config.executor` names
// another one) -- repeated joins spawn zero threads.
join::JoinResult RunMedian(join::Algorithm algorithm,
                           numa::NumaSystem* system,
                           const join::JoinConfig& config,
                           const workload::Relation& build,
                           const workload::Relation& probe, int repeat);

// Prints the process pool's reuse counters (threads spawned vs. dispatches
// run). Harnesses call this at exit to document that the whole run created
// worker threads once. Also finalizes the observability artifacts the
// banner opened: flushes the bench JSON sink (appending the final metrics
// record) and writes the Chrome trace file when those were requested.
void PrintExecutorStats();

}  // namespace mmjoin::bench

#endif  // MMJOIN_BENCH_BENCH_COMMON_H_
