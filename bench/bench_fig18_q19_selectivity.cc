// Figure 18 / Appendix E: TPC-H Q19 with a varying selectivity of the
// pushed-down selection on lineitem.
//
// Paper result: at Q19's native 3.57% the join barely matters and NOP*
// looks best end-to-end; as the selection passes more rows the actual join
// input grows and the partition-based joins overtake on the join phase and
// eventually on the whole query.

#include "bench_common.h"
#include "tpch/generator.h"
#include "tpch/q19.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::FromCli(cli, 0, 0);
  const double sf = cli.GetDouble("sf", 0.1);

  bench::PrintBanner(
      "Figure 18 (Q19 selectivity sweep)",
      "Q19 runtime split (filter+materialize probe | join | total) as the "
      "pushed-down selectivity grows from the native 3.57% to 100%.",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  const std::vector<join::Algorithm> algorithms = {
      join::Algorithm::kNOP, join::Algorithm::kNOPA, join::Algorithm::kCPRL,
      join::Algorithm::kCPRA};

  for (const double selectivity : {0.0357, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    tpch::GeneratorOptions options;
    options.scale_factor = sf;
    options.prefilter_selectivity = selectivity;
    options.seed = env.seed;
    tpch::LineitemTable lineitem = tpch::GenerateLineitem(&system, options);
    tpch::PartTable part = tpch::GeneratePart(&system, options);

    TablePrinter table(
        {"join", "filter_ms", "join_ms", "total_ms", "probe_rows"});
    for (const auto algorithm : algorithms) {
      tpch::Q19Result best;
      best.total_ns = INT64_MAX;
      for (int i = 0; i < env.repeat; ++i) {
        const tpch::Q19Result result =
            tpch::RunQ19(&system, lineitem, part, algorithm, env.threads);
        if (result.total_ns < best.total_ns) best = result;
      }
      table.Row(join::NameOf(algorithm), best.filter_ns / 1e6,
                best.join_ns / 1e6, best.total_ns / 1e6,
                best.filtered_rows);
    }
    std::printf("--- selectivity %.2f%% ---\n", selectivity * 100);
    table.Print();
    std::printf("\n");
  }
  bench::PrintExecutorStats();
  return 0;
}
