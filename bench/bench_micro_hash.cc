// google-benchmark micro-benchmarks for the hash-table substrates:
// build and probe cost per tuple for the four table flavours, at cache-
// resident and DRAM-resident sizes.

#include <benchmark/benchmark.h>

#include <vector>

#include "hash/array_table.h"
#include "hash/chained_table.h"
#include "hash/concise_table.h"
#include "hash/linear_probing_table.h"
#include "numa/system.h"
#include "util/rng.h"
#include "util/types.h"

namespace {

using namespace mmjoin;

numa::NumaSystem* System() {
  static auto* system = new numa::NumaSystem(4);
  return system;
}

std::vector<Tuple> DenseShuffled(uint64_t n) {
  std::vector<Tuple> tuples(n);
  for (uint64_t i = 0; i < n; ++i) {
    tuples[i] = Tuple{static_cast<uint32_t>(i), static_cast<uint32_t>(i)};
  }
  Rng rng(42);
  for (uint64_t i = n; i > 1; --i) {
    std::swap(tuples[i - 1], tuples[rng.NextBelow(i)]);
  }
  return tuples;
}

template <typename Table>
void ProbeLoop(benchmark::State& state, const Table& table,
               const std::vector<Tuple>& probes) {
  uint64_t checksum = 0;
  for (auto _ : state) {
    for (const Tuple& p : probes) {
      table.ProbeUnique(p.key,
                        [&](Tuple t) { checksum += t.payload; });
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() * probes.size());
}

void BM_LinearProbingBuild(benchmark::State& state) {
  const auto tuples = DenseShuffled(state.range(0));
  hash::LinearProbingTable<hash::IdentityHash> table(
      System(), tuples.size(), numa::Placement::kLocal);
  for (auto _ : state) {
    table.Reset(tuples.size());
    for (const Tuple& t : tuples) table.InsertSerial(t);
  }
  state.SetItemsProcessed(state.iterations() * tuples.size());
}
BENCHMARK(BM_LinearProbingBuild)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_LinearProbingProbe(benchmark::State& state) {
  const auto tuples = DenseShuffled(state.range(0));
  hash::LinearProbingTable<hash::IdentityHash> table(
      System(), tuples.size(), numa::Placement::kLocal);
  for (const Tuple& t : tuples) table.InsertSerial(t);
  ProbeLoop(state, table, tuples);
}
BENCHMARK(BM_LinearProbingProbe)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ChainedBuild(benchmark::State& state) {
  const auto tuples = DenseShuffled(state.range(0));
  hash::ChainedHashTable<hash::IdentityHash> table(
      System(), tuples.size(), numa::Placement::kLocal);
  for (auto _ : state) {
    table.Reset(tuples.size());
    for (const Tuple& t : tuples) table.InsertSerial(t);
  }
  state.SetItemsProcessed(state.iterations() * tuples.size());
}
BENCHMARK(BM_ChainedBuild)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ChainedProbe(benchmark::State& state) {
  const auto tuples = DenseShuffled(state.range(0));
  hash::ChainedHashTable<hash::IdentityHash> table(
      System(), tuples.size(), numa::Placement::kLocal);
  for (const Tuple& t : tuples) table.InsertSerial(t);
  ProbeLoop(state, table, tuples);
}
BENCHMARK(BM_ChainedProbe)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ConciseBuild(benchmark::State& state) {
  const auto tuples = DenseShuffled(state.range(0));
  for (auto _ : state) {
    hash::ConciseHashTable table(System(), tuples.size(),
                                 numa::Placement::kLocal);
    table.BuildSerial(ConstTupleSpan(tuples.data(), tuples.size()));
    benchmark::DoNotOptimize(table.overflow_size());
  }
  state.SetItemsProcessed(state.iterations() * tuples.size());
}
BENCHMARK(BM_ConciseBuild)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ConciseProbe(benchmark::State& state) {
  const auto tuples = DenseShuffled(state.range(0));
  hash::ConciseHashTable table(System(), tuples.size(),
                               numa::Placement::kLocal);
  table.BuildSerial(ConstTupleSpan(tuples.data(), tuples.size()));
  ProbeLoop(state, table, tuples);
}
BENCHMARK(BM_ConciseProbe)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ArrayBuild(benchmark::State& state) {
  const auto tuples = DenseShuffled(state.range(0));
  hash::ArrayTable table(System(), tuples.size(), 0,
                         numa::Placement::kLocal);
  for (auto _ : state) {
    table.Reset(tuples.size(), 0);
    for (const Tuple& t : tuples) table.InsertSerial(t);
  }
  state.SetItemsProcessed(state.iterations() * tuples.size());
}
BENCHMARK(BM_ArrayBuild)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ArrayProbe(benchmark::State& state) {
  const auto tuples = DenseShuffled(state.range(0));
  hash::ArrayTable table(System(), tuples.size(), 0,
                         numa::Placement::kLocal);
  for (const Tuple& t : tuples) table.InsertSerial(t);
  ProbeLoop(state, table, tuples);
}
BENCHMARK(BM_ArrayProbe)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace
