// Figure 9: average total time per tuple (partition + join split) when
// varying the radix bits, across build sizes, for the partition-based
// joins; comparing the "hash table fits L2" choice with the measured
// optimum.
//
// Paper result: the L2-fit choice tracks the optimum while the SWWCBs still
// fit the LLC; beyond that, partitioning cost explodes and fewer bits
// (LLC-fit partitions) win -- the basis of Equation (1).

#include <cmath>
#include <string>

#include "bench_common.h"
#include "partition/model.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::FromCli(cli, 1u << 20, 0);
  const uint32_t min_bits = static_cast<uint32_t>(cli.GetInt("min_bits", 4));
  const uint32_t max_bits =
      static_cast<uint32_t>(cli.GetInt("max_bits", 14));
  const int ratio = static_cast<int>(cli.GetInt("ratio", 10));

  bench::PrintBanner(
      "Figure 9 (radix-bit sweep across |R|)",
      "Average total time per processed tuple vs radix bits; * marks the "
      "measured optimum, L2 marks the naive hash-table-fits-L2 choice.",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  const partition::CacheSpec cache = partition::DetectHostCacheSpec();

  for (const join::Algorithm algorithm :
       {join::Algorithm::kPROiS, join::Algorithm::kPRAiS,
        join::Algorithm::kCPRL}) {
    std::printf("--- %s (|S| = %d x |R|) ---\n", join::NameOf(algorithm),
                ratio);
    for (uint64_t r = env.build_size / 4; r <= env.build_size; r *= 2) {
      workload::Relation build =
          workload::MakeDenseBuild(&system, r, env.seed).value();
      workload::Relation probe = workload::MakeUniformProbe(
          &system, r * ratio, r, env.seed + 1).value();

      // Naive L2-fit choice (first branch of Equation (1) unconditionally).
      const double table_bytes = static_cast<double>(r) * 16.0;
      const uint32_t l2_bits = std::max<uint32_t>(
          1,
          static_cast<uint32_t>(std::lround(std::log2(
              std::max(table_bytes / cache.l2_bytes, 2.0)))));

      TablePrinter table({"bits", "partition_ns/tuple", "join_ns/tuple",
                          "total_ns/tuple", "mark"});
      double best_total = 1e100;
      uint32_t best_bits = 0;
      std::vector<std::vector<std::string>> rows;
      for (uint32_t bits = min_bits; bits <= max_bits; ++bits) {
        join::JoinConfig config;
        config.num_threads = env.threads;
        config.radix_bits = bits;
        const join::JoinResult result = bench::RunMedian(
            algorithm, &system, config, build, probe, env.repeat);
        const double tuples = static_cast<double>(r + r * ratio);
        const double part = result.times.partition_ns / tuples;
        const double join_time = result.times.probe_ns / tuples;
        if (part + join_time < best_total) {
          best_total = part + join_time;
          best_bits = bits;
        }
        rows.push_back({std::to_string(bits),
                        TablePrinter::FormatDouble(part),
                        TablePrinter::FormatDouble(join_time),
                        TablePrinter::FormatDouble(part + join_time), ""});
      }
      for (auto& row : rows) {
        const uint32_t bits =
            static_cast<uint32_t>(std::stoul(row[0]));
        std::string mark;
        if (bits == best_bits) mark += "*opt ";
        if (bits == l2_bits) mark += "L2-fit";
        row[4] = mark;
        table.AddRow(row);
      }
      std::printf("|R| = %llu tuples (L2-fit says %u bits, optimum %u):\n",
                  static_cast<unsigned long long>(r), l2_bits, best_bits);
      table.Print();
      std::printf("\n");
    }
  }
  bench::PrintExecutorStats();
  return 0;
}
