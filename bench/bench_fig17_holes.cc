// Figure 17 / Appendix C: holes in the key domain -- build keys stratified
// over a domain k x |R| for k = 1..20.
//
// Paper result: NOPA barely cares (its global array grows but accesses were
// random anyway); the partition-based ARRAY joins (PRAiS/CPRA) degrade as
// the per-partition array outgrows the caches -- UNLESS the partition count
// is adapted to the domain (dashed lines), which restores them; hash-table
// variants take only a small collision hit.

#include "bench_common.h"
#include "partition/model.h"
#include "util/bits.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env =
      bench::BenchEnv::FromCli(cli, 1u << 20, 10u << 20);

  bench::PrintBanner(
      "Figure 17 (holes in the key domain)",
      "Throughput vs domain-size factor k (domain = k x |R|). 'adapted' "
      "columns re-derive the radix bits from the DOMAIN instead of |R| so "
      "per-partition arrays keep fitting L2 (the paper's dashed lines).",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  const partition::CacheSpec cache = partition::DetectHostCacheSpec();
  const std::vector<join::Algorithm> algorithms = {
      join::Algorithm::kNOP,   join::Algorithm::kNOPA,
      join::Algorithm::kCPRL,  join::Algorithm::kCPRA,
      join::Algorithm::kPROiS, join::Algorithm::kPRLiS,
      join::Algorithm::kPRAiS};

  TablePrinter table([&] {
    std::vector<std::string> headers{"k"};
    for (const auto algorithm : algorithms) {
      headers.push_back(join::NameOf(algorithm));
    }
    headers.push_back("CPRA_adapted");
    headers.push_back("PRAiS_adapted");
    return headers;
  }());

  for (const uint64_t k : {1ull, 2ull, 4ull, 8ull, 12ull, 16ull, 20ull}) {
    workload::Relation build =
        workload::MakeSparseBuild(&system, env.build_size, k, env.seed).value();
    workload::Relation probe = workload::MakeProbeFromBuild(
        &system, env.probe_size, build, env.seed + 1).value();
    std::vector<std::string> row{std::to_string(k)};

    join::JoinConfig config;
    config.num_threads = env.threads;
    for (const auto algorithm : algorithms) {
      const join::JoinResult result = bench::RunMedian(
          algorithm, &system, config, build, probe, env.repeat);
      row.push_back(TablePrinter::FormatDouble(
          result.ThroughputMtps(env.build_size, env.probe_size), 1));
    }

    // Domain-adapted bits: per-partition array (4 B/entry) must fit L2.
    const uint64_t domain = build.key_domain();
    join::JoinConfig adapted = config;
    adapted.radix_bits = std::max<uint32_t>(
        1, CeilLog2(std::max<uint64_t>(domain * 4 / cache.l2_bytes, 2)));
    for (const auto algorithm :
         {join::Algorithm::kCPRA, join::Algorithm::kPRAiS}) {
      const join::JoinResult result = bench::RunMedian(
          algorithm, &system, adapted, build, probe, env.repeat);
      row.push_back(TablePrinter::FormatDouble(
          result.ThroughputMtps(env.build_size, env.probe_size), 1));
    }
    table.AddRow(row);
  }
  table.Print();
  bench::PrintExecutorStats();
  return 0;
}
