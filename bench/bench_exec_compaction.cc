// Dynamic chunk compaction sweep: join selectivity x density threshold.
//
// Runs scan(S) -> HashJoinProbe(R) -> count/checksum aggregate on the
// exec:: pipeline. Probe keys are uniform over [0, |R| / selectivity), so a
// `selectivity` fraction of probe tuples find a match. With a radix join,
// each partition task flushes its (partial) match chunk at the task
// boundary -- at low selectivity the chunks crossing the post-join
// boundary are mostly empty slots. The compactor gathers them when their
// density falls below the threshold; this harness measures how many chunks
// (and dead chunk-slots) actually cross the sink boundary at each
// (selectivity, threshold) point.
//
//   ./bench_exec_compaction [--build=1000000] [--probe=4000000]
//       [--threads=N] [--bits=11] [--repeat=3] [--json=PATH]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exec/operators.h"
#include "exec/pipeline.h"

namespace {

using namespace mmjoin;

constexpr double kSelectivities[] = {0.01, 0.05, 0.10, 0.25, 0.50, 1.00};
constexpr double kThresholds[] = {0.0, 0.25, 0.50, 1.00};

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::FromCli(
      cli, /*default_build=*/1'000'000, /*default_probe=*/4'000'000);
  const auto radix_bits = static_cast<uint32_t>(cli.GetInt("bits", 11));
  bench::PrintBanner(
      "exec",
      "Dynamic chunk compaction: join selectivity x density threshold "
      "(CPRL probe, chunks crossing the post-join sink boundary)",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  workload::Relation build =
      workload::MakeDenseBuild(&system, env.build_size, env.seed).value();

  TablePrinter table({"selectivity", "threshold", "matches", "sink_chunks",
                      "sink_density", "rows_compacted", "flushes",
                      "total_ms"});

  for (const double selectivity : kSelectivities) {
    // Uniform keys over [0, |R| / selectivity): a `selectivity` fraction
    // hits the dense build domain [0, |R|).
    const auto domain = static_cast<uint64_t>(
        static_cast<double>(env.build_size) / selectivity);
    workload::Relation probe =
        workload::MakeUniformProbe(&system, env.probe_size, domain,
                                   env.seed + 1)
            .value();

    for (const double threshold : kThresholds) {
      for (int repeat = 0; repeat < env.repeat; ++repeat) {
        exec::TupleScan scan(probe.cspan());
        exec::HashJoinProbe::Spec spec;
        spec.algorithm = join::Algorithm::kCPRL;
        spec.build = build.cspan();
        spec.key_domain = domain;
        spec.radix_bits = radix_bits;
        exec::HashJoinProbe join_probe(spec);
        exec::CountAggregate aggregate(
            {exec::kJoinBuildPayloadCol, exec::kJoinProbePayloadCol});
        exec::Pipeline pipeline(&scan, {&join_probe}, &aggregate);

        exec::PipelineConfig config;
        config.num_threads = env.threads;
        config.compaction_threshold = threshold;
        const exec::PipelineStats stats =
            pipeline.Run(&system, config).value();

        // The aggregate recomputes the join checksum from the chunks that
        // crossed the boundary -- a correctness cross-check of the whole
        // compaction path.
        if (aggregate.rows() != stats.join_matches ||
            aggregate.checksum() != stats.join_result.checksum) {
          std::fprintf(stderr,
                       "[mmjoin] bench: chunk stream disagrees with join "
                       "(%llu/%llu rows, %llu/%llu checksum)\n",
                       static_cast<unsigned long long>(aggregate.rows()),
                       static_cast<unsigned long long>(stats.join_matches),
                       static_cast<unsigned long long>(aggregate.checksum()),
                       static_cast<unsigned long long>(
                           stats.join_result.checksum));
          return 1;
        }

        const double sink_density =
            stats.sink_chunks == 0
                ? 0.0
                : static_cast<double>(stats.sink_rows) /
                      (static_cast<double>(stats.sink_chunks) *
                       exec::kChunkCapacity);
        if (repeat == env.repeat - 1) {
          table.Row(selectivity, threshold, stats.join_matches,
                    stats.sink_chunks, sink_density, stats.rows_compacted,
                    stats.compaction_flushes, stats.total_ns / 1e6);
        }

        join::JoinResult record = stats.join_result;
        record.times.total_ns = stats.total_ns;  // pipeline end-to-end
        char extra[256];
        std::snprintf(
            extra, sizeof(extra),
            "\"selectivity\":%.2f,\"compaction_threshold\":%.2f,"
            "\"sink_chunks\":%llu,\"sink_rows\":%llu,"
            "\"chunks_emitted\":%llu,\"rows_compacted\":%llu,"
            "\"compaction_flushes\":%llu",
            selectivity, threshold,
            static_cast<unsigned long long>(stats.sink_chunks),
            static_cast<unsigned long long>(stats.sink_rows),
            static_cast<unsigned long long>(stats.chunks_emitted),
            static_cast<unsigned long long>(stats.rows_compacted),
            static_cast<unsigned long long>(stats.compaction_flushes));
        bench::AppendBenchRecord("CPRL", repeat, env.build_size,
                                 env.probe_size, env.threads, record, extra);
      }
    }
  }
  table.Print();
  std::printf(
      "\nReading the table: at a fixed selectivity, higher thresholds gather "
      "sparse chunks before the sink boundary -- sink_chunks drops and "
      "sink_density approaches 1. threshold 0 never compacts; threshold 1 "
      "buffers every partial chunk.\n");
  bench::PrintExecutorStats();
  return 0;
}
