// Figure 3: white-box comparison -- black-box representatives plus the
// optimized variants NOPA, PRO, PRL, PRA.
//
// Paper result: enabling SWWCB + non-temporal streaming + single-pass
// partitioning roughly doubles radix-join throughput (PRO vs PRB) and the
// PR* variants overtake NOP; PRA/PRO/PRL look almost identical here (the
// scheduling bottleneck hides the table differences until Figure 7).

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env =
      bench::BenchEnv::FromCli(cli, 1u << 20, 10u << 20);

  bench::PrintBanner(
      "Figure 3 (white box comparison)",
      "Join throughput including the improved variants; expect ~2x over the "
      "black-box PRB and the PR* family overtaking NOP*.",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  workload::Relation build =
      workload::MakeDenseBuild(&system, env.build_size, env.seed).value();
  workload::Relation probe = workload::MakeUniformProbe(
      &system, env.probe_size, env.build_size, env.seed + 1).value();

  join::JoinConfig config;
  config.num_threads = env.threads;

  TablePrinter table({"join", "throughput_Mtps", "partition_ms", "join_ms",
                      "total_ms"});
  for (const join::Algorithm algorithm :
       {join::Algorithm::kMWAY, join::Algorithm::kCHTJ, join::Algorithm::kPRB,
        join::Algorithm::kNOP, join::Algorithm::kNOPA, join::Algorithm::kPRO,
        join::Algorithm::kPRL, join::Algorithm::kPRA}) {
    const join::JoinResult result = bench::RunMedian(
        algorithm, &system, config, build, probe, env.repeat);
    table.Row(join::NameOf(algorithm),
              result.ThroughputMtps(env.build_size, env.probe_size),
              result.times.partition_ns / 1e6,
              (result.times.build_ns + result.times.probe_ns) / 1e6,
              result.times.total_ns / 1e6);
  }
  table.Print();
  bench::PrintExecutorStats();
  return 0;
}
