// Figure 11: scalability of the partition phase alone, chunked vs global
// (non-chunked) partitioning, with the partition count growing with |R| so
// that a chained table per partition would fit L2.
//
// Paper result: the per-tuple partition cost stays flat up to 2^15
// partitions and deteriorates beyond -- once the per-thread SWWCBs no
// longer fit the shared LLC. Chunked partitioning tracks the same curve
// (slightly cheaper: no global histogram merge, no remote writes).

#include "bench_common.h"
#include "partition/chunked.h"
#include "partition/radix.h"
#include "thread/thread_team.h"
#include "util/bits.h"
#include "util/timer.h"

namespace {

using namespace mmjoin;

double GlobalPartitionNsPerTuple(numa::NumaSystem* system,
                                 const workload::Relation& input,
                                 uint32_t bits, int threads) {
  numa::NumaBuffer<Tuple> output(system, input.size(),
                                 numa::Placement::kChunkedRoundRobin);
  partition::RadixOptions options;
  options.fn = partition::RadixFn{0, bits};
  options.use_swwcb = true;
  options.num_threads = threads;
  partition::GlobalRadixPartitioner partitioner(
      system, options, input.cspan(),
      TupleSpan(output.data(), output.size()));
  thread::Barrier barrier(threads);
  Stopwatch watch;
  thread::RunTeam(threads, [&](int tid) {
    partitioner.BuildHistogram(tid);
    barrier.ArriveAndWait();
    if (tid == 0) partitioner.ComputeOffsets();
    barrier.ArriveAndWait();
    partitioner.Scatter(tid,
                        system->topology().NodeOfThread(tid, threads));
  });
  return static_cast<double>(watch.ElapsedNanos()) / input.size();
}

double ChunkedPartitionNsPerTuple(numa::NumaSystem* system,
                                  const workload::Relation& input,
                                  uint32_t bits, int threads) {
  numa::NumaBuffer<Tuple> output(system, input.size(),
                                 numa::Placement::kChunkedRoundRobin);
  partition::RadixOptions options;
  options.fn = partition::RadixFn{0, bits};
  options.use_swwcb = true;
  options.num_threads = threads;
  partition::ChunkedRadixPartitioner partitioner(
      system, options, input.cspan(),
      TupleSpan(output.data(), output.size()));
  Stopwatch watch;
  thread::RunTeam(threads, [&](int tid) {
    partitioner.PartitionChunk(
        tid, system->topology().NodeOfThread(tid, threads));
  });
  return static_cast<double>(watch.ElapsedNanos()) / input.size();
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::FromCli(cli, 1u << 22, 0);
  const uint64_t min_tuples =
      static_cast<uint64_t>(cli.GetInt("min_tuples", 1 << 16));

  bench::PrintBanner(
      "Figure 11 (partition-phase scalability)",
      "Average partition time per tuple; the partition count grows with |R| "
      "(one L2-sized chained table per partition), so larger inputs stress "
      "the SWWCB footprint.",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  TablePrinter table({"tuples", "partitions", "global_ns/tuple",
                      "chunked_ns/tuple"});
  for (uint64_t n = min_tuples; n <= env.build_size; n *= 2) {
    // Partition count: chained table (16 B/tuple) per partition fits 256 KB
    // L2, like the paper's x-axis (|R| doubles -> one more bit).
    const uint32_t bits = std::max<uint32_t>(
        1, CeilLog2(std::max<uint64_t>(n * 16 / (256 * 1024), 2)));
    workload::Relation input =
        workload::MakeDenseBuild(&system, n, env.seed).value();

    double global_best = 1e100, chunked_best = 1e100;
    for (int i = 0; i < env.repeat; ++i) {
      global_best = std::min(
          global_best,
          GlobalPartitionNsPerTuple(&system, input, bits, env.threads));
      chunked_best = std::min(
          chunked_best,
          ChunkedPartitionNsPerTuple(&system, input, bits, env.threads));
    }
    table.Row(static_cast<unsigned long long>(n), 1u << bits, global_best,
              chunked_best);
  }
  table.Print();
  bench::PrintExecutorStats();
  return 0;
}
