// Figure 6: per-NUMA-node bandwidth profiles of PRO, PROiS, and CPRL
// during the join phase.
//
// The paper visualizes this with VTune on real 4-socket hardware. A
// wall-clock timeline is meaningless on this 1-core host (threads
// timeslice), so we reproduce the profile deterministically: the join phase
// consumes co-partition tasks in a known order, and each task's build+probe
// bytes live on known nodes (partitioned output is chunked round-robin over
// nodes). We bucket the task sequence into time slices and report the bytes
// each node serves per slice -- exactly the quantity VTune's bandwidth
// profile shows.
//
// Paper result: PRO drains partitions in address order, so only ONE node's
// memory controller is active per slice; PROiS round-robins and keeps all
// nodes busy; CPRL reads every partition from ALL nodes, so it is balanced
// regardless of task order.

#include "bench_common.h"
#include "partition/model.h"
#include "thread/task_queue.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env =
      bench::BenchEnv::FromCli(cli, 1u << 20, 10u << 20);
  const int slices = static_cast<int>(cli.GetInt("slices", 10));

  bench::PrintBanner(
      "Figure 6 (per-node bandwidth profile of the join phase)",
      "Bytes served by each node per slice of the join-task sequence; the "
      "imbalance metric is max-node share x nodes (1.0 = all controllers "
      "busy, 4.0 = one at a time).",
      env);

  // Partition count as on the paper machine (Section 6.2 discusses
  // p = 16384 tasks on 60 threads); overridable via --bits.
  const partition::CacheSpec paper_cache;
  const uint32_t bits = static_cast<uint32_t>(cli.GetInt(
      "bits", partition::PredictRadixBits(env.build_size,
                                          partition::kLinearSpace,
                                          env.threads, paper_cache)));
  const uint32_t num_partitions = 1u << bits;
  // Per-partition bytes (uniform keys -> uniform partitions).
  const double r_bytes =
      static_cast<double>(env.build_size) * sizeof(Tuple) / num_partitions;
  const double s_bytes =
      static_cast<double>(env.probe_size) * sizeof(Tuple) / num_partitions;
  const double task_bytes = r_bytes + s_bytes;
  const uint32_t block = (num_partitions + env.nodes - 1) / env.nodes;

  struct Profile {
    const char* name;
    std::vector<uint32_t> order;
    bool reads_all_nodes;  // CPRL: every task touches every node
  };
  const Profile profiles[] = {
      {"PRO (sequential task order)",
       thread::SequentialOrder(num_partitions), false},
      {"PROiS (round-robin over nodes)",
       thread::RoundRobinNodeOrder(num_partitions, env.nodes), false},
      {"CPRL (any order; fragments on all nodes)",
       thread::SequentialOrder(num_partitions), true},
  };

  std::printf("radix bits = %u -> %u co-partition tasks (%.1f KB each)\n\n",
              bits, num_partitions, task_bytes / 1024);

  for (const Profile& profile : profiles) {
    std::printf("--- %s ---\n", profile.name);
    TablePrinter table([&] {
      std::vector<std::string> headers{"node"};
      for (int s = 0; s < slices; ++s) {
        headers.push_back("t" + std::to_string(s) + "_MB");
      }
      return headers;
    }());

    // traffic[slice][node]
    std::vector<std::vector<double>> traffic(
        slices, std::vector<double>(env.nodes, 0.0));
    for (std::size_t i = 0; i < profile.order.size(); ++i) {
      const int slice = static_cast<int>(i * slices / profile.order.size());
      if (profile.reads_all_nodes) {
        for (int node = 0; node < env.nodes; ++node) {
          traffic[slice][node] += task_bytes / env.nodes;
        }
      } else {
        const int node = static_cast<int>(profile.order[i] / block);
        traffic[slice][node] += task_bytes;
      }
    }

    for (int node = 0; node < env.nodes; ++node) {
      std::vector<std::string> row{"node" + std::to_string(node)};
      for (int s = 0; s < slices; ++s) {
        row.push_back(TablePrinter::FormatDouble(traffic[s][node] / 1e6, 1));
      }
      table.AddRow(row);
    }
    table.Print();
    // Imbalance over windows of `threads` consecutive tasks -- the set
    // actually in flight at one instant on the paper machine.
    double imbalance_sum = 0;
    int windows = 0;
    const std::size_t window = std::max(env.threads, env.nodes);
    for (std::size_t begin = 0; begin + window <= profile.order.size();
         begin += window) {
      std::vector<double> per_node(env.nodes, 0.0);
      for (std::size_t i = begin; i < begin + window; ++i) {
        if (profile.reads_all_nodes) {
          for (int node = 0; node < env.nodes; ++node) {
            per_node[node] += task_bytes / env.nodes;
          }
        } else {
          per_node[profile.order[i] / block] += task_bytes;
        }
      }
      double total = 0, max_node = 0;
      for (int node = 0; node < env.nodes; ++node) {
        total += per_node[node];
        max_node = std::max(max_node, per_node[node]);
      }
      imbalance_sum += max_node * env.nodes / total;
      ++windows;
    }
    std::printf("imbalance over %zu-task windows: %.2f  (1.0 = balanced, "
                "%d = one node at a time)\n\n",
                window, windows ? imbalance_sum / windows : 0.0, env.nodes);
  }
  bench::PrintExecutorStats();
  return 0;
}
