#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/phase_profile.h"
#include "obs/trace.h"
#include "thread/executor.h"

namespace mmjoin::bench {
namespace {

// State shared between PrintBanner (opens the sinks), RunMedian (appends one
// record per repeat), and PrintExecutorStats (finalizes). Harnesses are
// single-threaded drivers, so plain statics suffice.
struct ObsSinks {
  std::FILE* json = nullptr;
  std::string json_path;
  std::string trace_path;
  std::string artifact;
};

ObsSinks& Sinks() {
  static ObsSinks sinks;
  return sinks;
}

void AppendPhaseJson(std::string* out, const obs::PhaseProfile& profile) {
  *out += ",\"phases\":{";
  char buf[256];
  bool first = true;
  for (int p = 0; p < obs::kNumJoinPhases; ++p) {
    const auto phase = static_cast<obs::JoinPhase>(p);
    const obs::PhaseStat& stat = profile.Of(phase);
    if (stat.threads == 0) continue;
    if (!first) *out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"threads\":%d,\"total_ns\":%lld,\"min_ns\":%lld,"
                  "\"max_ns\":%lld",
                  obs::JoinPhaseName(phase), stat.threads,
                  static_cast<long long>(stat.total_ns),
                  static_cast<long long>(stat.min_ns),
                  static_cast<long long>(stat.max_ns));
    *out += buf;
    if (stat.counters.valid) {
      std::snprintf(buf, sizeof(buf),
                    ",\"cycles\":%llu,\"instructions\":%llu,"
                    "\"llc_misses\":%llu,\"dtlb_misses\":%llu",
                    static_cast<unsigned long long>(stat.counters.cycles),
                    static_cast<unsigned long long>(stat.counters.instructions),
                    static_cast<unsigned long long>(stat.counters.llc_misses),
                    static_cast<unsigned long long>(stat.counters.dtlb_misses));
      *out += buf;
    }
    *out += '}';
  }
  *out += '}';
}

}  // namespace

// Names come from code-owned tables (no escaping needed).
void AppendBenchRecord(const char* algorithm, int repeat_index,
                       uint64_t build_size, uint64_t probe_size, int threads,
                       const join::JoinResult& result,
                       const std::string& extra_json) {
  ObsSinks& sinks = Sinks();
  if (sinks.json == nullptr) return;
  std::string line = "{\"schema\":\"mmjoin.bench.v1\"";
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      ",\"artifact\":\"%s\",\"algorithm\":\"%s\",\"repeat\":%d,"
      "\"build\":%llu,\"probe\":%llu,\"threads\":%d,"
      "\"matches\":%llu,\"checksum\":%llu,"
      "\"partition_ns\":%lld,\"build_ns\":%lld,\"probe_ns\":%lld,"
      "\"total_ns\":%lld,\"mtps\":%.3f",
      sinks.artifact.c_str(), algorithm, repeat_index,
      static_cast<unsigned long long>(build_size),
      static_cast<unsigned long long>(probe_size), threads,
      static_cast<unsigned long long>(result.matches),
      static_cast<unsigned long long>(result.checksum),
      static_cast<long long>(result.times.partition_ns),
      static_cast<long long>(result.times.build_ns),
      static_cast<long long>(result.times.probe_ns),
      static_cast<long long>(result.times.total_ns),
      result.ThroughputMtps(build_size, probe_size));
  line += buf;
  if (!extra_json.empty()) {
    line += ',';
    line += extra_json;
  }
  if (result.profile.has_value()) AppendPhaseJson(&line, *result.profile);
  line += "}\n";
  std::fwrite(line.data(), 1, line.size(), sinks.json);
}

BenchEnv BenchEnv::FromCli(const CommandLine& cli, uint64_t default_build,
                           uint64_t default_probe, int default_threads) {
  BenchEnv env;
  env.build_size = static_cast<uint64_t>(
      cli.GetInt("build", static_cast<int64_t>(default_build)));
  env.probe_size = static_cast<uint64_t>(
      cli.GetInt("probe", static_cast<int64_t>(default_probe)));
  env.threads = static_cast<int>(cli.GetInt("threads", default_threads));
  env.nodes = static_cast<int>(cli.GetInt("nodes", 4));
  env.repeat = static_cast<int>(cli.GetInt("repeat", 3));
  env.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  const std::string pages = cli.GetString("pages", "huge");
  env.pages = pages == "small" ? mem::PagePolicy::kSmall
                               : mem::PagePolicy::kHuge;
  env.json_path = cli.GetString("json", "");
  if (env.json_path.empty()) {
    if (const char* path = std::getenv("MMJOIN_BENCH_JSON")) {
      env.json_path = path;
    }
  }
  env.trace_path = cli.GetString("trace", "");
  if (env.trace_path.empty()) {
    if (const char* path = std::getenv("MMJOIN_TRACE")) {
      env.trace_path = path;
    }
  }
  return env;
}

void PrintBanner(const char* artifact, const char* description,
                 const BenchEnv& env) {
  std::printf("=== %s ===\n%s\n", artifact, description);
  std::printf(
      "params: |R|=%llu |S|=%llu threads=%d nodes=%d repeat=%d seed=%llu\n"
      "(paper sizes |R|=128M |S|=1280M on 4x15 cores; scaled for this "
      "host -- shapes, not absolute numbers, are the reproduction target)\n\n",
      static_cast<unsigned long long>(env.build_size),
      static_cast<unsigned long long>(env.probe_size), env.threads,
      env.nodes, env.repeat, static_cast<unsigned long long>(env.seed));

  ObsSinks& sinks = Sinks();
  sinks.artifact = artifact;
  if (!env.json_path.empty() && sinks.json == nullptr) {
    sinks.json = std::fopen(env.json_path.c_str(), "w");
    if (sinks.json == nullptr) {
      std::fprintf(stderr, "[mmjoin] bench: cannot open --json file '%s'\n",
                   env.json_path.c_str());
    } else {
      sinks.json_path = env.json_path;
    }
  }
  if (!env.trace_path.empty()) {
    sinks.trace_path = env.trace_path;
    obs::Enable();
  }
}

join::JoinResult RunMedian(join::Algorithm algorithm,
                           numa::NumaSystem* system,
                           const join::JoinConfig& config,
                           const workload::Relation& build,
                           const workload::Relation& probe, int repeat) {
  join::JoinConfig pooled = config;
  if (pooled.executor == nullptr) {
    pooled.executor = &thread::GlobalExecutor();
  }
  std::vector<join::JoinResult> results;
  results.reserve(repeat);
  for (int i = 0; i < repeat; ++i) {
    StatusOr<join::JoinResult> result =
        join::RunJoin(algorithm, system, pooled, build, probe);
    if (!result.ok()) {
      // Fail fast: a harness that silently drops a failed repeat would
      // report a median over fewer runs than requested.
      std::fprintf(stderr, "[mmjoin] bench: %s join failed: %s\n",
                   join::NameOf(algorithm),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    AppendBenchRecord(join::NameOf(algorithm), i, build.size(), probe.size(),
                      pooled.num_threads, *result);
    results.push_back(std::move(result).value());
  }
  std::sort(results.begin(), results.end(),
            [](const join::JoinResult& a, const join::JoinResult& b) {
              return a.times.total_ns < b.times.total_ns;
            });
  return results[results.size() / 2];
}

void PrintExecutorStats() {
  const thread::ExecutorStats stats = thread::GlobalExecutor().stats();
  std::printf(
      "\n[pool] threads_spawned=%llu dispatches=%llu max_team=%llu "
      "(persistent executor: 0 threads created per join)\n",
      static_cast<unsigned long long>(stats.threads_spawned),
      static_cast<unsigned long long>(stats.dispatches),
      static_cast<unsigned long long>(stats.max_team_size));
  const mem::AllocStats alloc = mem::GetAllocStats();
  std::printf(
      "[alloc] allocations=%llu mmap=%llu huge_requests=%llu "
      "huge_fallbacks=%llu mmap_failures=%llu injected_failures=%llu "
      "numa_degradations=%llu\n",
      static_cast<unsigned long long>(alloc.total_allocations),
      static_cast<unsigned long long>(alloc.mmap_allocations),
      static_cast<unsigned long long>(alloc.huge_page_requests),
      static_cast<unsigned long long>(alloc.huge_page_fallbacks),
      static_cast<unsigned long long>(alloc.mmap_failures),
      static_cast<unsigned long long>(alloc.injected_failures),
      static_cast<unsigned long long>(alloc.numa_degradations));
  if (alloc.huge_page_fallbacks > 0) {
    std::printf(
        "[alloc] note: %llu huge-page request(s) degraded to default pages\n",
        static_cast<unsigned long long>(alloc.huge_page_fallbacks));
  }

  ObsSinks& sinks = Sinks();
  if (obs::Enabled()) {
    const obs::TraceRecorder& recorder = obs::TraceRecorder::Get();
    std::printf(
        "[obs] spans_recorded=%llu spans_dropped=%llu barrier_wait_ns=%llu "
        "idle_ns=%llu\n",
        static_cast<unsigned long long>(recorder.recorded_spans()),
        static_cast<unsigned long long>(recorder.dropped_spans()),
        static_cast<unsigned long long>(stats.barrier_wait_ns),
        static_cast<unsigned long long>(stats.idle_ns));
  }
  if (sinks.json != nullptr) {
    // Final record: the process-wide metrics snapshot.
    const std::string metrics = obs::MetricsRegistry::Get().Json();
    std::fwrite(metrics.data(), 1, metrics.size(), sinks.json);
    std::fputc('\n', sinks.json);
    std::fclose(sinks.json);
    sinks.json = nullptr;
    std::printf("[obs] bench records written to %s\n",
                sinks.json_path.c_str());
  }
  if (!sinks.trace_path.empty()) {
    const Status status =
        obs::TraceRecorder::Get().WriteChromeTrace(sinks.trace_path);
    if (status.ok()) {
      std::printf("[obs] chrome trace written to %s (load in Perfetto)\n",
                  sinks.trace_path.c_str());
    } else {
      std::fprintf(stderr, "[mmjoin] bench: trace write failed: %s\n",
                   status.ToString().c_str());
    }
    sinks.trace_path.clear();
  }
}

}  // namespace mmjoin::bench
