#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "thread/executor.h"

namespace mmjoin::bench {

BenchEnv BenchEnv::FromCli(const CommandLine& cli, uint64_t default_build,
                           uint64_t default_probe, int default_threads) {
  BenchEnv env;
  env.build_size = static_cast<uint64_t>(
      cli.GetInt("build", static_cast<int64_t>(default_build)));
  env.probe_size = static_cast<uint64_t>(
      cli.GetInt("probe", static_cast<int64_t>(default_probe)));
  env.threads = static_cast<int>(cli.GetInt("threads", default_threads));
  env.nodes = static_cast<int>(cli.GetInt("nodes", 4));
  env.repeat = static_cast<int>(cli.GetInt("repeat", 3));
  env.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  const std::string pages = cli.GetString("pages", "huge");
  env.pages = pages == "small" ? mem::PagePolicy::kSmall
                               : mem::PagePolicy::kHuge;
  return env;
}

void PrintBanner(const char* artifact, const char* description,
                 const BenchEnv& env) {
  std::printf("=== %s ===\n%s\n", artifact, description);
  std::printf(
      "params: |R|=%llu |S|=%llu threads=%d nodes=%d repeat=%d seed=%llu\n"
      "(paper sizes |R|=128M |S|=1280M on 4x15 cores; scaled for this "
      "host -- shapes, not absolute numbers, are the reproduction target)\n\n",
      static_cast<unsigned long long>(env.build_size),
      static_cast<unsigned long long>(env.probe_size), env.threads,
      env.nodes, env.repeat, static_cast<unsigned long long>(env.seed));
}

join::JoinResult RunMedian(join::Algorithm algorithm,
                           numa::NumaSystem* system,
                           const join::JoinConfig& config,
                           const workload::Relation& build,
                           const workload::Relation& probe, int repeat) {
  join::JoinConfig pooled = config;
  if (pooled.executor == nullptr) {
    pooled.executor = &thread::GlobalExecutor();
  }
  std::vector<join::JoinResult> results;
  results.reserve(repeat);
  for (int i = 0; i < repeat; ++i) {
    StatusOr<join::JoinResult> result =
        join::RunJoin(algorithm, system, pooled, build, probe);
    if (!result.ok()) {
      // Fail fast: a harness that silently drops a failed repeat would
      // report a median over fewer runs than requested.
      std::fprintf(stderr, "[mmjoin] bench: %s join failed: %s\n",
                   join::NameOf(algorithm),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    results.push_back(std::move(result).value());
  }
  std::sort(results.begin(), results.end(),
            [](const join::JoinResult& a, const join::JoinResult& b) {
              return a.times.total_ns < b.times.total_ns;
            });
  return results[results.size() / 2];
}

void PrintExecutorStats() {
  const thread::ExecutorStats stats = thread::GlobalExecutor().stats();
  std::printf(
      "\n[pool] threads_spawned=%llu dispatches=%llu max_team=%llu "
      "(persistent executor: 0 threads created per join)\n",
      static_cast<unsigned long long>(stats.threads_spawned),
      static_cast<unsigned long long>(stats.dispatches),
      static_cast<unsigned long long>(stats.max_team_size));
  const mem::AllocStats alloc = mem::GetAllocStats();
  std::printf(
      "[alloc] allocations=%llu mmap=%llu huge_requests=%llu "
      "huge_fallbacks=%llu mmap_failures=%llu injected_failures=%llu "
      "numa_degradations=%llu\n",
      static_cast<unsigned long long>(alloc.total_allocations),
      static_cast<unsigned long long>(alloc.mmap_allocations),
      static_cast<unsigned long long>(alloc.huge_page_requests),
      static_cast<unsigned long long>(alloc.huge_page_fallbacks),
      static_cast<unsigned long long>(alloc.mmap_failures),
      static_cast<unsigned long long>(alloc.injected_failures),
      static_cast<unsigned long long>(alloc.numa_degradations));
  if (alloc.huge_page_fallbacks > 0) {
    std::printf(
        "[alloc] note: %llu huge-page request(s) degraded to default pages\n",
        static_cast<unsigned long long>(alloc.huge_page_fallbacks));
  }
}

}  // namespace mmjoin::bench
