// Figure 10: throughput of the (non-dominated) join algorithms when scaling
// the input dataset size, for |S| = 10 x |R| and |S| = |R|.
//
// Paper result: up to ~4M build tuples all methods are comparable and NOP*
// looks great (the build side fits the LLC); beyond that, throughput of the
// NOP* family collapses to the random-DRAM-access floor while the PR*/CPR*
// family keeps its level -- partitioning pays once the data exceeds the
// caches. CHTJ is hit hardest (two dependent accesses); MWAY is stable but
// lower.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  bench::BenchEnv env = bench::BenchEnv::FromCli(cli, 1u << 22, 0);
  if (!cli.Has("repeat")) env.repeat = 1;  // the large sizes dominate
  const uint64_t min_build =
      static_cast<uint64_t>(cli.GetInt("min_build", 1 << 14));

  bench::PrintBanner(
      "Figure 10 (scalability in dataset size)",
      "Throughput (M input tuples/s) while doubling |R|; left block "
      "|S|=10x|R|, right block |S|=|R|. Radix bits follow Equation (1).",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  const std::vector<join::Algorithm> algorithms = {
      join::Algorithm::kMWAY, join::Algorithm::kCHTJ, join::Algorithm::kNOP,
      join::Algorithm::kNOPA, join::Algorithm::kCPRL, join::Algorithm::kCPRA,
      join::Algorithm::kPROiS, join::Algorithm::kPRLiS,
      join::Algorithm::kPRAiS};

  for (const int ratio : {10, 1}) {
    std::printf("--- |S| = %d x |R| ---\n", ratio);
    TablePrinter table([&] {
      std::vector<std::string> headers{"R_tuples"};
      for (const auto algorithm : algorithms) {
        headers.push_back(join::NameOf(algorithm));
      }
      return headers;
    }());
    for (uint64_t r = min_build; r <= env.build_size; r *= 4) {
      workload::Relation build =
          workload::MakeDenseBuild(&system, r, env.seed).value();
      workload::Relation probe = workload::MakeUniformProbe(
          &system, r * ratio, r, env.seed + 1).value();
      join::JoinConfig config;
      config.num_threads = env.threads;

      std::vector<std::string> row{std::to_string(r)};
      for (const auto algorithm : algorithms) {
        const join::JoinResult result = bench::RunMedian(
            algorithm, &system, config, build, probe, env.repeat);
        row.push_back(TablePrinter::FormatDouble(
            result.ThroughputMtps(r, r * ratio), 1));
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf("\n");
  }
  bench::PrintExecutorStats();
  return 0;
}
