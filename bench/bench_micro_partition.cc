// google-benchmark micro-benchmarks for the partitioning kernels: direct
// scatter vs SWWCB + non-temporal streaming, global vs chunked, and the
// cost of the histogram pass.

#include <benchmark/benchmark.h>

#include <vector>

#include "numa/system.h"
#include "partition/chunked.h"
#include "partition/radix.h"
#include "thread/thread_team.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using namespace mmjoin;

numa::NumaSystem* System() {
  static auto* system = new numa::NumaSystem(4);
  return system;
}

void BM_Histogram(benchmark::State& state) {
  numa::NumaSystem* system = System();
  workload::Relation input =
      workload::MakeDenseBuild(system, state.range(0), 1).value();
  const partition::RadixFn fn{0, 10};
  std::vector<uint64_t> hist(fn.num_partitions());
  for (auto _ : state) {
    std::fill(hist.begin(), hist.end(), 0);
    for (uint64_t i = 0; i < input.size(); ++i) {
      ++hist[fn(input.data()[i].key)];
    }
    benchmark::DoNotOptimize(hist.data());
  }
  state.SetItemsProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_Histogram)->Arg(1 << 18)->Arg(1 << 21);

template <bool kSwwcb>
void BM_GlobalScatter(benchmark::State& state) {
  numa::NumaSystem* system = System();
  const uint64_t n = state.range(0);
  const auto bits = static_cast<uint32_t>(state.range(1));
  workload::Relation input = workload::MakeDenseBuild(system, n, 1).value();
  numa::NumaBuffer<Tuple> output(system, n,
                                 numa::Placement::kChunkedRoundRobin);
  for (auto _ : state) {
    partition::RadixOptions options;
    options.fn = partition::RadixFn{0, bits};
    options.use_swwcb = kSwwcb;
    options.num_threads = 1;
    partition::GlobalRadixPartitioner partitioner(
        system, options, input.cspan(),
        TupleSpan(output.data(), output.size()));
    partitioner.BuildHistogram(0);
    partitioner.ComputeOffsets();
    partitioner.Scatter(0, 0);
    benchmark::DoNotOptimize(output.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GlobalScatter<false>)
    ->Args({1 << 20, 6})
    ->Args({1 << 20, 10})
    ->Args({1 << 20, 14});
BENCHMARK(BM_GlobalScatter<true>)
    ->Args({1 << 20, 6})
    ->Args({1 << 20, 10})
    ->Args({1 << 20, 14});

void BM_ChunkedPartition(benchmark::State& state) {
  numa::NumaSystem* system = System();
  const uint64_t n = state.range(0);
  const auto bits = static_cast<uint32_t>(state.range(1));
  const int threads = 4;
  workload::Relation input = workload::MakeDenseBuild(system, n, 1).value();
  numa::NumaBuffer<Tuple> output(system, n,
                                 numa::Placement::kChunkedRoundRobin);
  for (auto _ : state) {
    partition::RadixOptions options;
    options.fn = partition::RadixFn{0, bits};
    options.use_swwcb = true;
    options.num_threads = threads;
    partition::ChunkedRadixPartitioner partitioner(
        system, options, input.cspan(),
        TupleSpan(output.data(), output.size()));
    thread::RunTeam(threads, [&](int tid) {
      partitioner.PartitionChunk(
          tid, system->topology().NodeOfThread(tid, threads));
    });
    benchmark::DoNotOptimize(output.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ChunkedPartition)->Args({1 << 20, 10});

void BM_SubPartitionSerial(benchmark::State& state) {
  numa::NumaSystem* system = System();
  const uint64_t n = state.range(0);
  workload::Relation input = workload::MakeDenseBuild(system, n, 1).value();
  std::vector<Tuple> output(n);
  for (auto _ : state) {
    const partition::PartitionLayout layout = partition::SubPartitionSerial(
        input.cspan(), TupleSpan(output.data(), output.size()),
        partition::RadixFn{7, 7});
    benchmark::DoNotOptimize(layout.offsets.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SubPartitionSerial)->Arg(1 << 18);

}  // namespace
