// Table 4 / Appendix D: micro-architectural profile of every join --
// L1/L2/LLC hit rates and TLB behaviour per phase -- reproduced with the
// cache/TLB simulator replaying each algorithm's access streams on the
// paper machine's cache configuration.
//
// Paper result: partition-based joins trade more memory operations for
// ~99% join-phase hit rates; NOP* miss on nearly every table access once
// the table exceeds the LLC; CHTJ pays ~2x NOP's misses (bitmap + array);
// NOPA roughly halves NOP's misses (4-byte cells instead of 16-byte
// slots).
//
// Identical access patterns are replayed once and shared across algorithm
// rows (all SWWCB-based radix joins share one partition-phase stream).

#include "bench_common.h"
#include "memsim/replay.h"
#include "partition/model.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  using namespace mmjoin::memsim;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env =
      bench::BenchEnv::FromCli(cli, 1u << 22, 1u << 23);

  bench::PrintBanner(
      "Table 4 (simulated cache/TLB profile per join phase)",
      "Replayed access streams through the paper machine's hierarchy "
      "(32K/256K/30M caches, 32-entry TLB @ 2MB pages). The build table "
      "must exceed the 30MB LLC for the paper's contrast; default |R| "
      "gives a 64MB linear table.",
      env);

  const HierarchyConfig config = HierarchyConfig::HugePages();
  const uint64_t r = env.build_size;
  const uint64_t s = env.probe_size;
  const partition::CacheSpec paper_cache;  // paper machine for Equation (1)
  const uint32_t bits = partition::PredictRadixBits(
      r, partition::kLinearSpace, 32, paper_cache);
  const uint32_t partitions = 1u << bits;
  const uint64_t seed = env.seed;

  std::printf("replaying... (|R|=%llu, |S|=%llu, %u partitions)\n",
              static_cast<unsigned long long>(r),
              static_cast<unsigned long long>(s), partitions);

  // --- Shared replays (each distinct stream computed once). ---
  auto scatter_both = [&](uint32_t p, bool swwcb, int passes) {
    PhaseReport report;
    for (int pass = 0; pass < passes; ++pass) {
      report += ReplayScatter(config, r, p, swwcb, seed);
      report += ReplayScatter(config, s, p, swwcb, seed + 1);
    }
    return report;
  };
  const PhaseReport swwcb_partition = scatter_both(partitions, true, 1);
  const PhaseReport prb_partition = scatter_both(128, false, 2);
  const PhaseReport join_chained = ReplayPartitionedJoin(
      config, r, s, partitions, TableLayout::kChained, seed);
  const PhaseReport join_linear = ReplayPartitionedJoin(
      config, r, s, partitions, TableLayout::kLinear, seed);
  const PhaseReport join_array = ReplayPartitionedJoin(
      config, r, s, partitions, TableLayout::kArray, seed);

  struct RowSpec {
    const char* name;
    PhaseReport build;  // "Sort or Build or Partition Phase"
    PhaseReport probe;  // "Probe or Join Phase"
  };
  std::vector<RowSpec> rows;

  {  // MWAY: single-pass range partition + SIMD sort; merge-join probe.
    PhaseReport build = scatter_both(32, /*swwcb=*/true, 1);
    build += ReplaySortPhase(config, r, 1 << 15);
    build += ReplaySortPhase(config, s, 1 << 15);
    PhaseReport probe = ReplaySequentialScan(config, r);
    probe += ReplaySequentialScan(config, s);
    rows.push_back({"MWAY", build, probe});
  }
  {  // CHTJ: hash-prefix partition + CHT bulk load; NOP-style probe.
    PhaseReport build = ReplayScatter(config, r, 64, true, seed);
    build += ReplayGlobalBuild(config, r, TableLayout::kCht, seed);
    rows.push_back(
        {"CHTJ", build,
         ReplayGlobalProbe(config, s, r, TableLayout::kCht, seed)});
  }
  rows.push_back({"PRB", prb_partition, join_chained});
  rows.push_back({"NOP",
                  ReplayGlobalBuild(config, r, TableLayout::kLinear, seed),
                  ReplayGlobalProbe(config, s, r, TableLayout::kLinear,
                                    seed)});
  rows.push_back({"NOPA",
                  ReplayGlobalBuild(config, r, TableLayout::kArray, seed),
                  ReplayGlobalProbe(config, s, r, TableLayout::kArray,
                                    seed)});
  rows.push_back({"PRO", swwcb_partition, join_chained});
  rows.push_back({"PRL", swwcb_partition, join_linear});
  rows.push_back({"PRA", swwcb_partition, join_array});
  rows.push_back({"CPRL", swwcb_partition, join_linear});
  rows.push_back({"CPRA", swwcb_partition, join_array});
  rows.push_back({"PROiS", swwcb_partition, join_chained});
  rows.push_back({"PRLiS", swwcb_partition, join_linear});
  rows.push_back({"PRAiS", swwcb_partition, join_array});

  auto fmt = [](const AccessStats& stats) {
    return TablePrinter::FormatDouble(stats.hit_rate(), 2);
  };
  TablePrinter table({"join", "bld_ops_M", "bld_L2miss_M", "bld_L3miss_M",
                      "bld_L2hit", "bld_L3hit", "bld_TLBmiss_M",
                      "join_ops_M", "join_L2miss_M", "join_L3miss_M",
                      "join_L2hit", "join_L3hit", "join_TLBmiss_M"});
  for (const RowSpec& row : rows) {
    table.Row(row.name, row.build.ops / 1e6, row.build.l2.misses / 1e6,
              row.build.llc.misses / 1e6, fmt(row.build.l2),
              fmt(row.build.llc), row.build.tlb.misses / 1e6,
              row.probe.ops / 1e6, row.probe.l2.misses / 1e6,
              row.probe.llc.misses / 1e6, fmt(row.probe.l2),
              fmt(row.probe.llc), row.probe.tlb.misses / 1e6);
  }
  table.Print();
  std::printf(
      "\nradix bits from Equation (1) on the paper machine: %u\n"
      "(NUMA scheduling variants share their base algorithm's access "
      "pattern; Table 4's differences between PRO and PROiS stem from\n"
      "memory-controller parallelism, which a single-stream cache model "
      "does not see -- that effect is bench_fig06's subject.)\n",
      bits);
  bench::PrintExecutorStats();
  return 0;
}
