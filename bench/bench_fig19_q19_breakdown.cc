// Figure 19 / Appendix G: morphing the naked-join micro-benchmark stepwise
// into full TPC-H Q19 (with the NOP join), to attribute the query's
// overheads.
//
// Paper result: dynamic filtering of the input rows -- not tuple
// reconstruction -- eats most of the extra time; materializing a join index
// first (steps 3+4) beats the pipelined plan at 32 threads but loses at 60.

#include <cstdint>

#include "bench_common.h"
#include "tpch/generator.h"
#include "tpch/q19.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::FromCli(cli, 0, 0);
  const double sf = cli.GetDouble("sf", 0.1);

  bench::PrintBanner(
      "Figure 19 (Q19 cost morphing, NOP join)",
      "Runtime of each morph step: (1) naked join on pre-filtered input, "
      "(2) + dynamic filtering, (3) + join index, (4) + post-filter & "
      "aggregate from the index, (5) full pipelined query without index.",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  tpch::GeneratorOptions options;
  options.scale_factor = sf;
  options.seed = env.seed;
  tpch::LineitemTable lineitem = tpch::GenerateLineitem(&system, options);
  tpch::PartTable part = tpch::GeneratePart(&system, options);

  static const char* kStepNames[5] = {
      "(1) microbenchmark, pre-filtered input",
      "(2) like (1), filtering dynamically",
      "(3) like (2), plus join index",
      "(4) like (3), plus post-filter + aggregate",
      "(5) like (2)+(4), pipelined, no index",
  };

  for (const int threads : {env.threads, env.threads * 2}) {
    tpch::Q19MorphResult best;
    for (int s = 0; s < 5; ++s) best.step_ns[s] = INT64_MAX;
    for (int i = 0; i < env.repeat; ++i) {
      const tpch::Q19MorphResult morph =
          tpch::RunQ19Morph(&system, lineitem, part, threads);
      for (int s = 0; s < 5; ++s) {
        best.step_ns[s] = std::min(best.step_ns[s], morph.step_ns[s]);
      }
    }
    std::printf("--- %d threads ---\n", threads);
    TablePrinter table({"step", "runtime_ms"});
    for (int s = 0; s < 5; ++s) {
      table.Row(kStepNames[s], best.step_ns[s] / 1e6);
    }
    table.Print();
    std::printf("\n");
  }
  bench::PrintExecutorStats();
  return 0;
}
