// Figure 12: runtime of CPRL when setting the radix bits via Equation (1)
// vs the full sweep over bit counts -- the model should sit on (or within a
// few percent of) the sweep minimum for every input size.

#include "bench_common.h"
#include "partition/model.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::FromCli(cli, 1u << 21, 0);
  const uint64_t min_build =
      static_cast<uint64_t>(cli.GetInt("min_build", 1 << 16));
  const uint32_t min_bits = static_cast<uint32_t>(cli.GetInt("min_bits", 4));
  const uint32_t max_bits =
      static_cast<uint32_t>(cli.GetInt("max_bits", 14));
  const int ratio = static_cast<int>(cli.GetInt("ratio", 10));

  bench::PrintBanner(
      "Figure 12 (Equation (1) vs sweep, CPRL)",
      "Average total time per processed tuple with the predicted bit count "
      "vs the minimum over a sweep; overhead = predicted / best - 1.",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  const partition::CacheSpec cache = partition::DetectHostCacheSpec();

  TablePrinter table({"R_tuples", "predicted_bits", "predicted_ns/t",
                      "best_bits", "best_ns/t", "overhead_%"});
  for (uint64_t r = min_build; r <= env.build_size; r *= 2) {
    workload::Relation build = workload::MakeDenseBuild(&system, r, env.seed).value();
    workload::Relation probe = workload::MakeUniformProbe(
        &system, r * ratio, r, env.seed + 1).value();
    const double tuples = static_cast<double>(r + r * ratio);

    const uint32_t predicted = partition::PredictRadixBits(
        r, partition::kLinearSpace, env.threads, cache);

    auto run_bits = [&](uint32_t bits) {
      join::JoinConfig config;
      config.num_threads = env.threads;
      config.radix_bits = bits;
      const join::JoinResult result =
          bench::RunMedian(join::Algorithm::kCPRL, &system, config, build,
                           probe, env.repeat);
      return result.times.total_ns / tuples;
    };

    const double predicted_ns = run_bits(predicted);
    double best_ns = 1e100;
    uint32_t best_bits = 0;
    for (uint32_t bits = min_bits; bits <= max_bits; ++bits) {
      const double ns = bits == predicted ? predicted_ns : run_bits(bits);
      if (ns < best_ns) {
        best_ns = ns;
        best_bits = bits;
      }
    }
    table.Row(static_cast<unsigned long long>(r),
              static_cast<int>(predicted), predicted_ns,
              static_cast<int>(best_bits), best_ns,
              (predicted_ns / best_ns - 1.0) * 100.0);
  }
  table.Print();
  bench::PrintExecutorStats();
  return 0;
}
