// Figure 14: runtime of TPC-H Q19, with the time spent in the actual join
// highlighted, for NOP, NOPA, CPRL, and CPRA.
//
// Paper result (SF 100): the join is only ~10-15% of the query; scanning/
// filtering 600M lineitem rows and reconstructing attributes dominates.
// NOPA profits doubly: the dense sorted p_partkey makes the array build a
// sequential write, and no partitioning means probe-side attributes stay
// aligned for the post-join predicate.

#include <cmath>
#include <cstdint>

#include "bench_common.h"
#include "thread/executor.h"
#include "tpch/generator.h"
#include "tpch/q19.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::FromCli(cli, 0, 0);
  const double sf = cli.GetDouble("sf", 0.25);

  bench::PrintBanner(
      "Figure 14 (TPC-H Q19)",
      "Query runtime split into join vs rest-of-query (scan, filter, "
      "materialization, post-join predicate, aggregation).",
      env);
  std::printf("scale factor %.2f: |lineitem| = %llu, |part| = %llu\n\n", sf,
              static_cast<unsigned long long>(
                  sf * tpch::kLineitemPerScaleFactor),
              static_cast<unsigned long long>(sf * tpch::kPartPerScaleFactor));

  numa::NumaSystem system(env.nodes, env.pages);
  tpch::GeneratorOptions options;
  options.scale_factor = sf;
  options.seed = env.seed;
  tpch::LineitemTable lineitem = tpch::GenerateLineitem(&system, options);
  tpch::PartTable part = tpch::GeneratePart(&system, options);

  const double reference = tpch::Q19Reference(lineitem, part);

  TablePrinter table({"join", "total_ms", "join_ms", "rest_ms",
                      "join_share_%", "revenue_ok"});
  for (const join::Algorithm algorithm :
       {join::Algorithm::kNOP, join::Algorithm::kNOPA,
        join::Algorithm::kCPRL, join::Algorithm::kCPRA}) {
    tpch::Q19Result best;
    best.total_ns = INT64_MAX;
    for (int i = 0; i < env.repeat; ++i) {
      const tpch::Q19Result result =
          tpch::RunQ19(&system, lineitem, part, algorithm, env.threads,
                       tpch::Q19Strategy::kPipelined,
                       &thread::GlobalExecutor());
      if (result.total_ns < best.total_ns) best = result;
    }
    const double join_ms = best.join_ns / 1e6;
    const double total_ms = best.total_ns / 1e6;
    const bool revenue_ok =
        std::abs(best.revenue - reference) <
        std::abs(reference) * 1e-9 + 1e-6;
    table.Row(join::NameOf(algorithm), total_ms, join_ms,
              total_ms - join_ms, 100.0 * join_ms / total_ms,
              revenue_ok ? "yes" : "NO");
  }
  table.Print();
  std::printf("\nreference revenue: %.2f\n", reference);
  bench::PrintExecutorStats();
  return 0;
}
