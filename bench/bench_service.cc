// Multi-tenant service throughput: lanes x mixed job sizes.
//
// Drives one JoinService with a burst of jobs from several tenants -- half
// small uniform joins, half full-size Zipf-skewed joins, algorithms
// round-robined across CPRL / PRO / NOP -- and reports jobs/sec and the
// p95 job latency (submit -> completion, queue wait included). The sweep
// compares a single lane (pure serial execution, the pre-service baseline)
// against --lanes concurrent lanes; `peak_running` in each row is the
// concurrency witness that at least two joins really overlapped.
//
//   ./bench_service [--build=200000] [--probe=800000] [--threads=4]
//       [--lanes=3] [--jobs=24] [--zipf=0.85] [--repeat=3] [--json=PATH]
//
// JSON rows use algorithm="SERVICE" with build/probe set to the tuples
// processed across ALL jobs in the burst, so `mtps` reads as aggregate
// service throughput.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "service/join_service.h"
#include "util/timer.h"

namespace {

using namespace mmjoin;

constexpr join::Algorithm kAlgorithms[] = {
    join::Algorithm::kCPRL, join::Algorithm::kPRO, join::Algorithm::kNOP};
constexpr int kNumAlgorithms = 3;

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::FromCli(
      cli, /*default_build=*/200'000, /*default_probe=*/800'000);
  const int max_lanes = std::max(1, static_cast<int>(cli.GetInt("lanes", 3)));
  const int num_jobs = std::max(2, static_cast<int>(cli.GetInt("jobs", 24)));
  const double zipf = cli.GetDouble("zipf", 0.85);
  bench::PrintBanner(
      "service",
      "Multi-tenant JoinService: jobs/sec and p95 latency for a mixed "
      "small/large + Zipf job burst, one lane vs. concurrent lanes",
      env);

  TablePrinter table({"lanes", "jobs", "wall_ms", "jobs_per_sec",
                      "p95_latency_ms", "peak_running", "rejected"});

  std::vector<int> lane_counts = {1};
  if (max_lanes > 1) lane_counts.push_back(max_lanes);
  for (const int lanes : lane_counts) {

    service::ServiceOptions options;
    options.joiner.num_nodes = env.nodes;
    options.joiner.num_threads = env.threads;
    options.joiner.page_policy = env.pages;
    options.num_lanes = lanes;
    options.max_queue_depth = static_cast<std::size_t>(num_jobs) * 2;
    options.default_quota.max_concurrent_jobs = num_jobs;
    auto service_or = service::JoinService::Create(options);
    if (!service_or.ok()) {
      std::fprintf(stderr, "service start failed: %s\n",
                   service_or.status().ToString().c_str());
      return 1;
    }
    service::JoinService& service = *service_or.value();

    // Small jobs join a quarter-size uniform workload; large jobs the full
    // Zipf-skewed one. Both relation pairs live on the service's system.
    const uint64_t small_build = std::max<uint64_t>(env.build_size / 4, 1024);
    const uint64_t small_probe = std::max<uint64_t>(env.probe_size / 4, 4096);
    workload::Relation build_large =
        workload::MakeDenseBuild(service.system(), env.build_size, env.seed)
            .value();
    workload::Relation probe_large =
        workload::MakeZipfProbe(service.system(), env.probe_size,
                                env.build_size, zipf, env.seed + 1)
            .value();
    workload::Relation build_small =
        workload::MakeDenseBuild(service.system(), small_build, env.seed + 2)
            .value();
    workload::Relation probe_small =
        workload::MakeUniformProbe(service.system(), small_probe, small_build,
                                   env.seed + 3)
            .value();

    for (int repeat = 0; repeat < std::max(1, env.repeat); ++repeat) {
      const int64_t start_ns = NowNanos();
      std::vector<service::JobId> ids;
      ids.reserve(num_jobs);
      uint64_t tuples_build = 0, tuples_probe = 0;
      for (int i = 0; i < num_jobs; ++i) {
        const bool large = (i % 2) == 0;
        service::JobSpec spec;
        spec.tenant = "tenant" + std::to_string(i % 3);
        spec.algorithm = kAlgorithms[i % kNumAlgorithms];
        spec.build = large ? &build_large : &build_small;
        spec.probe = large ? &probe_large : &probe_small;
        const StatusOr<service::JobId> id = service.SubmitJob(spec);
        if (!id.ok()) {
          std::fprintf(stderr, "submit failed: %s\n",
                       id.status().ToString().c_str());
          return 1;
        }
        ids.push_back(*id);
        tuples_build += spec.build->size();
        tuples_probe += spec.probe->size();
      }

      join::JoinResult aggregate;
      std::vector<int64_t> latencies;
      latencies.reserve(ids.size());
      for (const service::JobId id : ids) {
        const StatusOr<service::JobResult> result = service.Wait(id);
        if (!result.ok()) {
          std::fprintf(stderr, "job %llu failed: %s\n",
                       static_cast<unsigned long long>(id),
                       result.status().ToString().c_str());
          return 1;
        }
        aggregate.matches += result->join.matches;
        aggregate.checksum += result->join.checksum;
        latencies.push_back(result->queue_wait_ns + result->run_ns);
      }
      const int64_t wall_ns = NowNanos() - start_ns;
      aggregate.times.total_ns = wall_ns;

      std::sort(latencies.begin(), latencies.end());
      const int64_t p95_ns = latencies[std::min(
          latencies.size() - 1, (latencies.size() * 95) / 100)];
      const double jobs_per_sec =
          wall_ns > 0 ? static_cast<double>(num_jobs) * 1e9 /
                            static_cast<double>(wall_ns)
                      : 0.0;
      const service::ServiceStats stats = service.stats();

      table.Row(lanes, num_jobs, wall_ns / 1e6, jobs_per_sec, p95_ns / 1e6,
                stats.peak_running, stats.rejected);
      char extra[256];
      std::snprintf(extra, sizeof(extra),
                    "\"lanes\":%d,\"jobs\":%d,\"jobs_per_sec\":%.2f,"
                    "\"p95_latency_ns\":%lld,\"peak_running\":%d,"
                    "\"rejected\":%llu",
                    lanes, num_jobs, jobs_per_sec,
                    static_cast<long long>(p95_ns), stats.peak_running,
                    static_cast<unsigned long long>(stats.rejected));
      bench::AppendBenchRecord("SERVICE", repeat, tuples_build, tuples_probe,
                               env.threads, aggregate, extra);
    }

    const service::ServiceStats stats = service.stats();
    if (lanes > 1 && stats.peak_running < 2) {
      std::fprintf(stderr, "[service] WARNING: %d lanes never overlapped "
                           "(peak_running=%d)\n",
                   lanes, stats.peak_running);
    } else if (lanes > 1) {
      std::printf("[service] concurrency witness: peak_running=%d with %d "
                  "lanes\n",
                  stats.peak_running, lanes);
    }
    service.Shutdown();
  }

  table.Print();
  bench::PrintExecutorStats();
  return 0;
}
