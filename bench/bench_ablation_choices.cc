// Ablation study of the library's design choices (beyond the paper's own
// figures): each section toggles exactly one mechanism and reports the
// effect.
//
//  (a) skew task splitting: CPRL on a Zipf-0.99 probe with the probe-slice
//      factor swept from off to aggressive (the paper's skew handling,
//      Section 3.1 / Appendix A);
//  (b) SWWCB on/off for the one-pass radix join at a fixed bit count
//      (isolates Algorithm 1 from the pass-count effect of Figure 2);
//  (c) unique-probe shortcut: probes that stop at the first match vs
//      multiset scan-to-empty semantics, on the linear probing table
//      (the identity-hash/dense-key hazard discussed in
//      hash/linear_probing_table.h);
//  (d) scheduling order under the NUMA cost model: sequential vs
//      round-robin consume order, modeled remote traffic per window.

#include "bench_common.h"
#include "thread/task_queue.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env =
      bench::BenchEnv::FromCli(cli, 1u << 20, 10u << 20);

  bench::PrintBanner("Ablation (design choices)",
                     "One mechanism toggled per section.", env);

  numa::NumaSystem system(env.nodes, env.pages);

  // --- (a) Skew task splitting. ---
  {
    workload::Relation build =
        workload::MakeDenseBuild(&system, env.build_size, env.seed).value();
    workload::Relation probe = workload::MakeZipfProbe(
        &system, env.probe_size, env.build_size, 0.99, env.seed + 1).value();
    TablePrinter table({"skew_task_factor", "CPRL_total_ms", "PROiS_total_ms"});
    for (const uint32_t factor : {0u, 32u, 8u, 2u}) {
      join::JoinConfig config;
      config.num_threads = env.threads;
      config.skew_task_factor = factor;
      const auto cprl = bench::RunMedian(join::Algorithm::kCPRL, &system,
                                         config, build, probe, env.repeat);
      const auto prois = bench::RunMedian(join::Algorithm::kPROiS, &system,
                                          config, build, probe, env.repeat);
      table.Row(factor == 0 ? "off" : std::to_string(factor),
                cprl.times.total_ns / 1e6, prois.times.total_ns / 1e6);
    }
    std::printf("(a) probe-slice splitting on Zipf 0.99 (lower factor = "
                "more slices):\n");
    table.Print();
    std::printf("\n");
  }

  // --- (b) SWWCB on/off at fixed bits. ---
  {
    workload::Relation build =
        workload::MakeDenseBuild(&system, env.build_size, env.seed).value();
    workload::Relation probe = workload::MakeUniformProbe(
        &system, env.probe_size, env.build_size, env.seed + 1).value();
    TablePrinter table({"config", "partition_ms", "total_ms"});
    for (const bool swwcb : {false, true}) {
      // PRB forced to one pass == PRO without SWWCB; PRO == with.
      join::JoinConfig config;
      config.num_threads = env.threads;
      config.radix_bits = 10;
      config.num_passes = 1;
      const auto algorithm =
          swwcb ? join::Algorithm::kPRO : join::Algorithm::kPRB;
      const auto result = bench::RunMedian(algorithm, &system, config, build,
                                           probe, env.repeat);
      table.Row(swwcb ? "SWWCB + NT streaming" : "direct scatter",
                result.times.partition_ns / 1e6, result.times.total_ns / 1e6);
    }
    std::printf("(b) one-pass scatter at 2^10 partitions:\n");
    table.Print();
    std::printf("\n");
  }

  // --- (c) Unique-probe shortcut. ---
  {
    // Deliberately small input: the scan-to-empty semantics degenerate to
    // O(|R|) per probe on this workload, so full-size runs take minutes.
    const uint64_t r = std::min<uint64_t>(env.build_size, 50000);
    const uint64_t s = std::min<uint64_t>(env.probe_size, 200000);
    workload::Relation build = workload::MakeDenseBuild(&system, r, env.seed).value();
    workload::Relation probe =
        workload::MakeUniformProbe(&system, s, r, env.seed + 1).value();
    TablePrinter table({"probe_semantics", "NOP_total_ms", "PRL_total_ms"});
    for (const bool unique : {true, false}) {
      join::JoinConfig config;
      config.num_threads = env.threads;
      config.build_unique = unique;
      const auto nop = bench::RunMedian(join::Algorithm::kNOP, &system,
                                        config, build, probe, env.repeat);
      const auto prl = bench::RunMedian(join::Algorithm::kPRL, &system,
                                        config, build, probe, env.repeat);
      table.Row(unique ? "stop at first match (PK)" : "scan to empty slot",
                nop.times.total_ns / 1e6, prl.times.total_ns / 1e6);
    }
    std::printf(
        "(c) probe semantics on a dense PK build (identity hash makes the "
        "table one occupied cluster -- multiset scans degenerate):\n");
    table.Print();
    std::printf("\n");
  }

  // --- (d) Scheduling order, modeled. ---
  {
    const uint32_t partitions = 1u << 10;
    const uint32_t block = (partitions + env.nodes - 1) / env.nodes;
    TablePrinter table({"order", "avg_distinct_nodes_per_window"});
    for (const bool round_robin : {false, true}) {
      const std::vector<uint32_t> order =
          round_robin ? thread::RoundRobinNodeOrder(partitions, env.nodes)
                      : thread::SequentialOrder(partitions);
      double distinct_sum = 0;
      int windows = 0;
      for (std::size_t begin = 0;
           begin + static_cast<std::size_t>(env.threads) <= order.size();
           begin += env.threads) {
        std::vector<bool> seen(env.nodes, false);
        int distinct = 0;
        for (int i = 0; i < env.threads; ++i) {
          const int node = static_cast<int>(order[begin + i] / block);
          if (!seen[node]) {
            seen[node] = true;
            ++distinct;
          }
        }
        distinct_sum += distinct;
        ++windows;
      }
      table.Row(round_robin ? "round-robin (iS)" : "sequential",
                distinct_sum / windows);
    }
    std::printf("(d) memory controllers active per %d-task window (max %d):\n",
                env.threads, env.nodes);
    table.Print();
  }
  bench::PrintExecutorStats();
  return 0;
}
