// Figure 1: black-box comparison of the four fundamental join
// representatives (MWAY, CHTJ, PRB, NOP) -- throughput in M input tuples/s.
//
// Paper result: NOP is fastest, then PRB, then CHTJ, with MWAY last; this
// black-box ordering is what Sections 5-6 later overturn by enabling the
// partitioning optimizations.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env =
      bench::BenchEnv::FromCli(cli, 1u << 20, 10u << 20);

  bench::PrintBanner(
      "Figure 1 (black box comparison)",
      "Throughput of the fundamental join representatives, unoptimized: "
      "PRB runs two passes without SWWCB; NOP/CHTJ/MWAY as published.",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  workload::Relation build =
      workload::MakeDenseBuild(&system, env.build_size, env.seed).value();
  workload::Relation probe = workload::MakeUniformProbe(
      &system, env.probe_size, env.build_size, env.seed + 1).value();

  join::JoinConfig config;
  config.num_threads = env.threads;

  TablePrinter table({"join", "throughput_Mtps", "total_ms", "matches"});
  for (const join::Algorithm algorithm :
       {join::Algorithm::kMWAY, join::Algorithm::kCHTJ, join::Algorithm::kPRB,
        join::Algorithm::kNOP}) {
    const join::JoinResult result = bench::RunMedian(
        algorithm, &system, config, build, probe, env.repeat);
    table.Row(join::NameOf(algorithm),
              result.ThroughputMtps(env.build_size, env.probe_size),
              result.times.total_ns / 1e6, result.matches);
  }
  table.Print();
  bench::PrintExecutorStats();
  return 0;
}
