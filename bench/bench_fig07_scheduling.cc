// Figure 7: PR* and CPR* vs the improved-scheduling variants (PR*iS).
//
// Paper result: round-robin-over-nodes task scheduling speeds the join
// phase of PRL/PRA by over 2x (all memory controllers active); CPR* does
// not profit (it already reads every partition from all nodes), and the two
// optimizations are not cumulative. With scheduling fixed, the hash-table
// choice finally shows: arrays < linear < chained in join-phase time.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env =
      bench::BenchEnv::FromCli(cli, 1u << 20, 10u << 20);

  bench::PrintBanner(
      "Figure 7 (improved scheduling)",
      "Runtime of PR*/CPR* vs PR*iS, partition and join phases, plus the "
      "modeled NUMA cost (which exposes the controller-serialization effect "
      "wall-clock cannot show on a 1-socket host).",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  workload::Relation build =
      workload::MakeDenseBuild(&system, env.build_size, env.seed).value();
  workload::Relation probe = workload::MakeUniformProbe(
      &system, env.probe_size, env.build_size, env.seed + 1).value();

  join::JoinConfig config;
  config.num_threads = env.threads;

  TablePrinter table({"join", "partition_ms", "join_ms", "total_ms",
                      "remote_read_MB", "remote_write_MB"});
  for (const join::Algorithm algorithm :
       {join::Algorithm::kPRO, join::Algorithm::kPROiS, join::Algorithm::kPRL,
        join::Algorithm::kPRLiS, join::Algorithm::kPRA,
        join::Algorithm::kPRAiS, join::Algorithm::kCPRL,
        join::Algorithm::kCPRA}) {
    const join::JoinResult timed = bench::RunMedian(
        algorithm, &system, config, build, probe, env.repeat);
    system.EnableAccounting();
    join::RunJoinOrDie(algorithm, &system, config, build, probe);
    const double remote_read =
        system.counters()->TotalRemoteReadBytes() / 1e6;
    const double remote_write =
        system.counters()->TotalRemoteWriteBytes() / 1e6;
    system.DisableAccounting();
    table.Row(join::NameOf(algorithm), timed.times.partition_ns / 1e6,
              timed.times.probe_ns / 1e6, timed.times.total_ns / 1e6,
              remote_read, remote_write);
  }
  table.Print();
  bench::PrintExecutorStats();
  return 0;
}
