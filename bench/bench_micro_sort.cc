// google-benchmark micro-benchmarks for the sort substrate: the SIMD merge
// kernel vs std::merge, MergeSortPacked vs std::sort, and the multiway
// merge.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "sort/bitonic.h"
#include "sort/multiway_merge.h"
#include "util/rng.h"

namespace {

using namespace mmjoin;

std::vector<uint64_t> RandomPacked(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> data(n);
  for (auto& v : data) v = rng.Next() >> 1;  // positive as signed
  return data;
}

void BM_SimdMerge(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto a = RandomPacked(n, 1);
  auto b = RandomPacked(n, 2);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<uint64_t> out(2 * n);
  for (auto _ : state) {
    sort::MergeSignedRuns(reinterpret_cast<const int64_t*>(a.data()),
                          a.size(),
                          reinterpret_cast<const int64_t*>(b.data()),
                          b.size(), reinterpret_cast<int64_t*>(out.data()));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_SimdMerge)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_StdMerge(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto a = RandomPacked(n, 1);
  auto b = RandomPacked(n, 2);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<uint64_t> out(2 * n);
  for (auto _ : state) {
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_StdMerge)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_MergeSortPacked(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto original = RandomPacked(n, 3);
  std::vector<uint64_t> data(n), scratch(n);
  for (auto _ : state) {
    std::copy(original.begin(), original.end(), data.begin());
    sort::MergeSortPacked(data.data(), n, scratch.data());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MergeSortPacked)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_StdSortPacked(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto original = RandomPacked(n, 3);
  std::vector<uint64_t> data(n);
  for (auto _ : state) {
    std::copy(original.begin(), original.end(), data.begin());
    std::sort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StdSortPacked)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_MultiwayMerge(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const std::size_t per_run = 1 << 16;
  std::vector<std::vector<uint64_t>> storage(k);
  std::vector<sort::SortedRun> runs;
  for (int r = 0; r < k; ++r) {
    storage[r] = RandomPacked(per_run, 10 + r);
    std::sort(storage[r].begin(), storage[r].end());
    runs.push_back(sort::SortedRun{storage[r].data(), storage[r].size()});
  }
  std::vector<uint64_t> out(per_run * k);
  for (auto _ : state) {
    sort::MultiwayMerge(runs, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * per_run * k);
}
BENCHMARK(BM_MultiwayMerge)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
