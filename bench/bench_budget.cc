// Memory-budget degradation sweep: budget fraction x algorithm x scale.
//
// For each algorithm the harness first measures the plan-level working set
// (peak reservation against an effectively-unbounded tracker), then re-runs
// the join at shrinking fractions of that measured peak. Partition-based
// joins (PRO, CPRL here) are expected to degrade through the re-plan /
// spill-wave ladder with bit-identical results; NOP's indivisible global
// table either fits or rejects with a clean ResourceExhausted. Each row
// reports which degradation stage fired (mem.budget_* deltas) and the
// actual resident high-water mark (mem.peak_bytes).
//
//   ./bench_budget [--build=1000000] [--probe=4000000] [--threads=N]
//       [--repeat=3] [--json=PATH]
//
// The secondary scale is --build/4 x --probe/4, exercising the ladder at a
// different probe:budget ratio.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "mem/aligned_alloc.h"
#include "mem/budget.h"

namespace {

using namespace mmjoin;

constexpr double kFractions[] = {1.0, 0.5, 0.15};
constexpr join::Algorithm kAlgorithms[] = {
    join::Algorithm::kPRO, join::Algorithm::kCPRL, join::Algorithm::kNOP};

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env = bench::BenchEnv::FromCli(
      cli, /*default_build=*/1'000'000, /*default_probe=*/4'000'000);
  bench::PrintBanner(
      "budget",
      "Per-join memory budgets: graceful degradation (re-plan -> spill "
      "waves -> reject) at fractions of each algorithm's measured peak",
      env);

  numa::NumaSystem system(env.nodes, env.pages);

  TablePrinter table({"algorithm", "scale", "fraction", "budget_mb",
                      "status", "replans", "waves", "wave_rounds",
                      "peak_resident_mb", "total_ms"});

  const uint64_t scales[][2] = {
      {env.build_size, env.probe_size},
      {std::max<uint64_t>(env.build_size / 4, 1024),
       std::max<uint64_t>(env.probe_size / 4, 4096)}};

  for (const auto& scale : scales) {
    const uint64_t build_size = scale[0];
    const uint64_t probe_size = scale[1];
    workload::Relation build =
        workload::MakeDenseBuild(&system, build_size, env.seed).value();
    workload::Relation probe =
        workload::MakeUniformProbe(&system, probe_size, build_size,
                                   env.seed + 1)
            .value();

    for (const join::Algorithm algorithm : kAlgorithms) {
      // Measure the plan-level working set: a budget far above any plan
      // admits without degradation, and the tracker's peak reservation is
      // the deterministic estimate every later fraction is based on.
      uint64_t measured_peak = 0;
      {
        mem::BudgetTracker tracker(uint64_t{1} << 40);
        join::JoinConfig config;
        config.num_threads = env.threads;
        config.budget = &tracker;
        const auto baseline =
            join::RunJoin(algorithm, &system, config, build, probe);
        if (!baseline.ok()) {
          std::fprintf(stderr, "[mmjoin] bench: %s baseline failed: %s\n",
                       join::NameOf(algorithm),
                       baseline.status().ToString().c_str());
          return 1;
        }
        measured_peak = tracker.peak_reserved_bytes();
      }

      for (const double fraction : kFractions) {
        const uint64_t budget = std::max<uint64_t>(
            static_cast<uint64_t>(static_cast<double>(measured_peak) *
                                  fraction),
            join::JoinConfig::kMinMemBudgetBytes);

        for (int repeat = 0; repeat < env.repeat; ++repeat) {
          mem::ResetBudgetStats();
          mem::ResetPeakResident();
          mem::BudgetTracker tracker(budget);
          join::JoinConfig config;
          config.num_threads = env.threads;
          config.budget = &tracker;
          const auto result =
              join::RunJoin(algorithm, &system, config, build, probe);
          const mem::BudgetStats stats = mem::GetBudgetStats();
          const uint64_t peak_resident = mem::GetAllocStats().peak_bytes;

          join::JoinResult record;
          const char* status = "ok";
          if (result.ok()) {
            record = result.value();
          } else if (result.status().code() ==
                     StatusCode::kResourceExhausted) {
            status = "rejected";  // clean check-and-reject, not a failure
          } else {
            std::fprintf(stderr, "[mmjoin] bench: %s at %.2f failed: %s\n",
                         join::NameOf(algorithm), fraction,
                         result.status().ToString().c_str());
            return 1;
          }

          if (repeat == env.repeat - 1) {
            table.Row(join::NameOf(algorithm),
                      build_size == env.build_size ? "full" : "quarter",
                      fraction, budget / 1e6, status, stats.replans,
                      stats.waves, stats.wave_rounds, peak_resident / 1e6,
                      record.times.total_ns / 1e6);
          }

          char extra[320];
          std::snprintf(
              extra, sizeof(extra),
              "\"budget_fraction\":%.2f,\"budget_bytes\":%llu,"
              "\"planned_peak_bytes\":%llu,\"peak_resident_bytes\":%llu,"
              "\"budget_status\":\"%s\",\"budget_replans\":%llu,"
              "\"budget_waves\":%llu,\"budget_wave_rounds\":%llu",
              fraction, static_cast<unsigned long long>(budget),
              static_cast<unsigned long long>(measured_peak),
              static_cast<unsigned long long>(peak_resident), status,
              static_cast<unsigned long long>(stats.replans),
              static_cast<unsigned long long>(stats.waves),
              static_cast<unsigned long long>(stats.wave_rounds));
          bench::AppendBenchRecord(join::NameOf(algorithm), repeat,
                                   build_size, probe_size, env.threads,
                                   record, extra);
        }
      }
    }
  }

  table.Print();
  std::printf(
      "\nReading the table: fraction 1.0 admits the measured plan as-is. "
      "Shrinking budgets push PRO/CPRL through the degradation ladder -- "
      "replans (radix bits / pass count re-planned), then waves (probe side "
      "joined in sequential slices) -- with identical results throughout. "
      "NOP's one global table cannot degrade: it runs when the budget fits "
      "and reports a clean rejection when it does not.\n");
  bench::PrintExecutorStats();
  return 0;
}
