// Figure 15 / Appendix A: throughput under skewed probe-key distributions,
// Zipf factor 0 .. 1.25, for |S| = 10x|R| and |S| = |R|.
//
// Paper result: low skew changes little; high skew (theta > 0.9) shifts the
// picture toward the no-partitioning joins -- partition-based tasks become
// unbalanced (only partly rescued by probe-slice task splitting), while the
// unpartitioned table enjoys cache hits on the hot keys. The theta = 1.25
// point stresses the sharded scheduler's work stealing and shared skew
// build slots: nearly all probe mass lands in a handful of partitions.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  bench::BenchEnv env =
      bench::BenchEnv::FromCli(cli, 1u << 22, 0);
  if (!cli.Has("repeat")) env.repeat = 1;

  bench::PrintBanner(
      "Figure 15 (skewed probe keys)",
      "Throughput vs Zipf factor; the 10 hottest ranks are remapped across "
      "the key domain as in the paper.",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  const std::vector<join::Algorithm> algorithms = {
      join::Algorithm::kMWAY, join::Algorithm::kCHTJ, join::Algorithm::kNOP,
      join::Algorithm::kNOPA, join::Algorithm::kCPRL, join::Algorithm::kCPRA,
      join::Algorithm::kPROiS, join::Algorithm::kPRLiS,
      join::Algorithm::kPRAiS};
  const double thetas[] = {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.25};

  for (const int ratio : {10, 1}) {
    std::printf("--- |S| = %d x |R| ---\n", ratio);
    workload::Relation build =
        workload::MakeDenseBuild(&system, env.build_size, env.seed).value();
    TablePrinter table([&] {
      std::vector<std::string> headers{"zipf"};
      for (const auto algorithm : algorithms) {
        headers.push_back(join::NameOf(algorithm));
      }
      return headers;
    }());
    for (const double theta : thetas) {
      workload::Relation probe = workload::MakeZipfProbe(
          &system, env.build_size * ratio, env.build_size, theta,
          env.seed + 1).value();
      join::JoinConfig config;
      config.num_threads = env.threads;
      std::vector<std::string> row{TablePrinter::FormatDouble(theta)};
      for (const auto algorithm : algorithms) {
        const join::JoinResult result = bench::RunMedian(
            algorithm, &system, config, build, probe, env.repeat);
        row.push_back(TablePrinter::FormatDouble(
            result.ThroughputMtps(env.build_size, env.build_size * ratio),
            1));
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf("\n");
  }
  bench::PrintExecutorStats();
  return 0;
}
