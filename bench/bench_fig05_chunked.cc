// Figure 5: runtime of the PR*-algorithms vs the chunked CPR*-algorithms,
// broken into partition phase and join phase, plus the NUMA write profile
// behind the difference (Figure 4).
//
// Paper result: CPR* beats PR* by ~20%; the partitioning time drops because
// chunked partitioning writes only node-locally, and (surprisingly, until
// Section 6.2 explains it) even the join phase is faster because CPR* reads
// every partition from all nodes and so never serializes on one memory
// controller.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env =
      bench::BenchEnv::FromCli(cli, 1u << 20, 10u << 20);

  bench::PrintBanner(
      "Figure 5 (PR* vs CPR*)",
      "End-to-end runtime split into partition and join phases, plus "
      "local/remote partition-write traffic from the NUMA model.",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  workload::Relation build =
      workload::MakeDenseBuild(&system, env.build_size, env.seed).value();
  workload::Relation probe = workload::MakeUniformProbe(
      &system, env.probe_size, env.build_size, env.seed + 1).value();

  join::JoinConfig config;
  config.num_threads = env.threads;

  TablePrinter table({"join", "partition_ms", "join_ms", "total_ms",
                      "remote_write_MB", "local_write_MB",
                      "modeled_cost_ms"});
  for (const join::Algorithm algorithm :
       {join::Algorithm::kPRO, join::Algorithm::kPRL, join::Algorithm::kPRA,
        join::Algorithm::kCPRL, join::Algorithm::kCPRA}) {
    const join::JoinResult timed = bench::RunMedian(
        algorithm, &system, config, build, probe, env.repeat);

    // Separate instrumented run for the traffic profile.
    system.EnableAccounting();
    join::RunJoinOrDie(algorithm, &system, config, build, probe);
    const double remote_mb =
        system.counters()->TotalRemoteWriteBytes() / 1e6;
    const double local_mb =
        system.counters()->TotalLocalWriteBytes() / 1e6;
    const double modeled = system.counters()->ModeledCostMillis();
    system.DisableAccounting();

    table.Row(join::NameOf(algorithm), timed.times.partition_ns / 1e6,
              timed.times.probe_ns / 1e6, timed.times.total_ns / 1e6,
              remote_mb, local_mb, modeled);
  }
  table.Print();
  std::printf(
      "\nCPR* writes partitions 100%% node-locally (remote_write ~ 0); PR* "
      "scatters ~%d/%d of its partition writes to remote nodes.\n",
      env.nodes - 1, env.nodes);
  bench::PrintExecutorStats();
  return 0;
}
