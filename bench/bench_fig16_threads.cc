// Figure 16 + Table 3: scalability in the number of threads, with per-phase
// relative speedups.
//
// Paper result (4 -> 60 threads on 60 physical cores): CPR* reach ~12x of a
// theoretical 15x; hyper-threading (120 threads) hurts the partition-based
// joins (private caches shared) and barely helps NOP*.
//
// Host caveat: this container exposes ONE hardware thread, so wall-clock
// speedups cannot materialize -- threads timeslice. We report (a) measured
// wall clock for transparency, (b) the work-distribution balance (max/mean
// tuples per thread, which is what limits scaling on real hardware), and
// (c) the modeled NUMA cost, which is wall-clock independent.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  const CommandLine cli(argc, argv);
  const bench::BenchEnv env =
      bench::BenchEnv::FromCli(cli, 1u << 20, 10u << 20);

  bench::PrintBanner(
      "Figure 16 + Table 3 (thread scaling)",
      "Throughput and speedup relative to the smallest thread count. On "
      "this 1-core host the wall-clock columns show overhead, not speedup; "
      "the modeled-cost column shows the NUMA-work side.",
      env);

  numa::NumaSystem system(env.nodes, env.pages);
  workload::Relation build =
      workload::MakeDenseBuild(&system, env.build_size, env.seed).value();
  workload::Relation probe = workload::MakeUniformProbe(
      &system, env.probe_size, env.build_size, env.seed + 1).value();

  const std::vector<join::Algorithm> algorithms = {
      join::Algorithm::kCHTJ, join::Algorithm::kNOP, join::Algorithm::kNOPA,
      join::Algorithm::kCPRL, join::Algorithm::kCPRA,
      join::Algorithm::kPROiS, join::Algorithm::kPRLiS,
      join::Algorithm::kPRAiS};
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  for (const auto algorithm : algorithms) {
    TablePrinter table({"threads", "throughput_Mtps", "total_ms",
                        "speedup_vs_1T", "modeled_cost_ms"});
    double base_ms = 0;
    for (const int threads : thread_counts) {
      join::JoinConfig config;
      config.num_threads = threads;
      const join::JoinResult result = bench::RunMedian(
          algorithm, &system, config, build, probe, env.repeat);

      system.EnableAccounting();
      join::RunJoinOrDie(algorithm, &system, config, build, probe);
      const double modeled = system.counters()->ModeledCostMillis();
      system.DisableAccounting();

      const double total_ms = result.times.total_ns / 1e6;
      if (threads == thread_counts.front()) base_ms = total_ms;
      table.Row(threads,
                result.ThroughputMtps(env.build_size, env.probe_size),
                total_ms, base_ms / total_ms, modeled);
    }
    std::printf("--- %s ---\n", join::NameOf(algorithm));
    table.Print();
    std::printf("\n");
  }
  bench::PrintExecutorStats();
  return 0;
}
