# Empty dependencies file for swwcb_test.
# This may be replaced when dependencies are built.
