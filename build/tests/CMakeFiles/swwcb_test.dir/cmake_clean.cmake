file(REMOVE_RECURSE
  "CMakeFiles/swwcb_test.dir/swwcb_test.cc.o"
  "CMakeFiles/swwcb_test.dir/swwcb_test.cc.o.d"
  "swwcb_test"
  "swwcb_test.pdb"
  "swwcb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swwcb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
