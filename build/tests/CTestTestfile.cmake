# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/boundary_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/hash_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/join_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/memsim_test[1]_include.cmake")
include("/root/repo/build/tests/numa_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/sort_test[1]_include.cmake")
include("/root/repo/build/tests/swwcb_test[1]_include.cmake")
include("/root/repo/build/tests/thread_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
