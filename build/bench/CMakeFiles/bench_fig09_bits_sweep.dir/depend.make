# Empty dependencies file for bench_fig09_bits_sweep.
# This may be replaced when dependencies are built.
