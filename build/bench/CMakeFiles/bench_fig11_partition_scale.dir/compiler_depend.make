# Empty compiler generated dependencies file for bench_fig11_partition_scale.
# This may be replaced when dependencies are built.
