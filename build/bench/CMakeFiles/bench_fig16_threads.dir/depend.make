# Empty dependencies file for bench_fig16_threads.
# This may be replaced when dependencies are built.
