file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_sort.dir/bench_micro_sort.cc.o"
  "CMakeFiles/bench_micro_sort.dir/bench_micro_sort.cc.o.d"
  "bench_micro_sort"
  "bench_micro_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
