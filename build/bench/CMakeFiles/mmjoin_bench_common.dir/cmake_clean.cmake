file(REMOVE_RECURSE
  "CMakeFiles/mmjoin_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/mmjoin_bench_common.dir/bench_common.cc.o.d"
  "libmmjoin_bench_common.a"
  "libmmjoin_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmjoin_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
