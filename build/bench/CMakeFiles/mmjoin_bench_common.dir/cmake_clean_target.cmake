file(REMOVE_RECURSE
  "libmmjoin_bench_common.a"
)
