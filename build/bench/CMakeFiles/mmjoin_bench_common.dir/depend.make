# Empty dependencies file for mmjoin_bench_common.
# This may be replaced when dependencies are built.
