file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_q19_selectivity.dir/bench_fig18_q19_selectivity.cc.o"
  "CMakeFiles/bench_fig18_q19_selectivity.dir/bench_fig18_q19_selectivity.cc.o.d"
  "bench_fig18_q19_selectivity"
  "bench_fig18_q19_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_q19_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
