# Empty compiler generated dependencies file for bench_fig18_q19_selectivity.
# This may be replaced when dependencies are built.
