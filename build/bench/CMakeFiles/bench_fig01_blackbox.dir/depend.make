# Empty dependencies file for bench_fig01_blackbox.
# This may be replaced when dependencies are built.
