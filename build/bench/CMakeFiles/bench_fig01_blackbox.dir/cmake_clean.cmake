file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_blackbox.dir/bench_fig01_blackbox.cc.o"
  "CMakeFiles/bench_fig01_blackbox.dir/bench_fig01_blackbox.cc.o.d"
  "bench_fig01_blackbox"
  "bench_fig01_blackbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_blackbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
