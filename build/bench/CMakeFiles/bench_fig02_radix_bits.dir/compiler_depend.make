# Empty compiler generated dependencies file for bench_fig02_radix_bits.
# This may be replaced when dependencies are built.
