# Empty dependencies file for bench_fig07_scheduling.
# This may be replaced when dependencies are built.
