file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_scheduling.dir/bench_fig07_scheduling.cc.o"
  "CMakeFiles/bench_fig07_scheduling.dir/bench_fig07_scheduling.cc.o.d"
  "bench_fig07_scheduling"
  "bench_fig07_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
