file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_whitebox.dir/bench_fig03_whitebox.cc.o"
  "CMakeFiles/bench_fig03_whitebox.dir/bench_fig03_whitebox.cc.o.d"
  "bench_fig03_whitebox"
  "bench_fig03_whitebox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_whitebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
