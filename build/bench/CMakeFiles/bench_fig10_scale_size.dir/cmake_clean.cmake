file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_scale_size.dir/bench_fig10_scale_size.cc.o"
  "CMakeFiles/bench_fig10_scale_size.dir/bench_fig10_scale_size.cc.o.d"
  "bench_fig10_scale_size"
  "bench_fig10_scale_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_scale_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
