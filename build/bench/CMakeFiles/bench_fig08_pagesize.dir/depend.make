# Empty dependencies file for bench_fig08_pagesize.
# This may be replaced when dependencies are built.
