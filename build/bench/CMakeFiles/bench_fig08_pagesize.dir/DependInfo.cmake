
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig08_pagesize.cc" "bench/CMakeFiles/bench_fig08_pagesize.dir/bench_fig08_pagesize.cc.o" "gcc" "bench/CMakeFiles/bench_fig08_pagesize.dir/bench_fig08_pagesize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mmjoin_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_join.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_thread.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_numa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
