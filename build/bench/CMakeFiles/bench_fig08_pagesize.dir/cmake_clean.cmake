file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_pagesize.dir/bench_fig08_pagesize.cc.o"
  "CMakeFiles/bench_fig08_pagesize.dir/bench_fig08_pagesize.cc.o.d"
  "bench_fig08_pagesize"
  "bench_fig08_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
