# Empty compiler generated dependencies file for bench_fig05_chunked.
# This may be replaced when dependencies are built.
