file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_chunked.dir/bench_fig05_chunked.cc.o"
  "CMakeFiles/bench_fig05_chunked.dir/bench_fig05_chunked.cc.o.d"
  "bench_fig05_chunked"
  "bench_fig05_chunked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_chunked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
