# Empty dependencies file for bench_fig19_q19_breakdown.
# This may be replaced when dependencies are built.
