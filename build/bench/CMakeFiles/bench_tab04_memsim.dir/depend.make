# Empty dependencies file for bench_tab04_memsim.
# This may be replaced when dependencies are built.
