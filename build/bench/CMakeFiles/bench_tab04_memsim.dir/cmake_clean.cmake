file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_memsim.dir/bench_tab04_memsim.cc.o"
  "CMakeFiles/bench_tab04_memsim.dir/bench_tab04_memsim.cc.o.d"
  "bench_tab04_memsim"
  "bench_tab04_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
