file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_holes.dir/bench_fig17_holes.cc.o"
  "CMakeFiles/bench_fig17_holes.dir/bench_fig17_holes.cc.o.d"
  "bench_fig17_holes"
  "bench_fig17_holes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_holes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
