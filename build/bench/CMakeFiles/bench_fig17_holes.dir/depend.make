# Empty dependencies file for bench_fig17_holes.
# This may be replaced when dependencies are built.
