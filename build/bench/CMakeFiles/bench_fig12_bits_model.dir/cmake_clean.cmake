file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_bits_model.dir/bench_fig12_bits_model.cc.o"
  "CMakeFiles/bench_fig12_bits_model.dir/bench_fig12_bits_model.cc.o.d"
  "bench_fig12_bits_model"
  "bench_fig12_bits_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_bits_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
