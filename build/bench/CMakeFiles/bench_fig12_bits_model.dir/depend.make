# Empty dependencies file for bench_fig12_bits_model.
# This may be replaced when dependencies are built.
