# Empty dependencies file for bench_fig14_tpch_q19.
# This may be replaced when dependencies are built.
