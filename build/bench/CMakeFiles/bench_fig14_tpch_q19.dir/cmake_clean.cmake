file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_tpch_q19.dir/bench_fig14_tpch_q19.cc.o"
  "CMakeFiles/bench_fig14_tpch_q19.dir/bench_fig14_tpch_q19.cc.o.d"
  "bench_fig14_tpch_q19"
  "bench_fig14_tpch_q19.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_tpch_q19.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
