file(REMOVE_RECURSE
  "CMakeFiles/run_join.dir/run_join.cc.o"
  "CMakeFiles/run_join.dir/run_join.cc.o.d"
  "run_join"
  "run_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
