# Empty dependencies file for run_join.
# This may be replaced when dependencies are built.
