# Empty dependencies file for star_schema_advisor.
# This may be replaced when dependencies are built.
