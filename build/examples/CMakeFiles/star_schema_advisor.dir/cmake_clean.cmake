file(REMOVE_RECURSE
  "CMakeFiles/star_schema_advisor.dir/star_schema_advisor.cc.o"
  "CMakeFiles/star_schema_advisor.dir/star_schema_advisor.cc.o.d"
  "star_schema_advisor"
  "star_schema_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_schema_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
