file(REMOVE_RECURSE
  "CMakeFiles/tpch_q19.dir/tpch_q19.cc.o"
  "CMakeFiles/tpch_q19.dir/tpch_q19.cc.o.d"
  "tpch_q19"
  "tpch_q19.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_q19.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
