# Empty dependencies file for tpch_q19.
# This may be replaced when dependencies are built.
