# Empty dependencies file for mmjoin_memsim.
# This may be replaced when dependencies are built.
