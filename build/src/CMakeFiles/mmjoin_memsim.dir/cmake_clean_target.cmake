file(REMOVE_RECURSE
  "libmmjoin_memsim.a"
)
