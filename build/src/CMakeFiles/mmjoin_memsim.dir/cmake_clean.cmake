file(REMOVE_RECURSE
  "CMakeFiles/mmjoin_memsim.dir/memsim/cache.cc.o"
  "CMakeFiles/mmjoin_memsim.dir/memsim/cache.cc.o.d"
  "CMakeFiles/mmjoin_memsim.dir/memsim/replay.cc.o"
  "CMakeFiles/mmjoin_memsim.dir/memsim/replay.cc.o.d"
  "libmmjoin_memsim.a"
  "libmmjoin_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmjoin_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
