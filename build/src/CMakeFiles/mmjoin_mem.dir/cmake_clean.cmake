file(REMOVE_RECURSE
  "CMakeFiles/mmjoin_mem.dir/mem/aligned_alloc.cc.o"
  "CMakeFiles/mmjoin_mem.dir/mem/aligned_alloc.cc.o.d"
  "libmmjoin_mem.a"
  "libmmjoin_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmjoin_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
