# Empty dependencies file for mmjoin_mem.
# This may be replaced when dependencies are built.
