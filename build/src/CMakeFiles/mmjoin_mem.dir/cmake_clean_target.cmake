file(REMOVE_RECURSE
  "libmmjoin_mem.a"
)
