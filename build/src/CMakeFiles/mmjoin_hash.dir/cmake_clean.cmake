file(REMOVE_RECURSE
  "CMakeFiles/mmjoin_hash.dir/hash/concise_table.cc.o"
  "CMakeFiles/mmjoin_hash.dir/hash/concise_table.cc.o.d"
  "libmmjoin_hash.a"
  "libmmjoin_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmjoin_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
