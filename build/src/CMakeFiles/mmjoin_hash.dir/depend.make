# Empty dependencies file for mmjoin_hash.
# This may be replaced when dependencies are built.
