file(REMOVE_RECURSE
  "libmmjoin_hash.a"
)
