file(REMOVE_RECURSE
  "libmmjoin_tpch.a"
)
