# Empty dependencies file for mmjoin_tpch.
# This may be replaced when dependencies are built.
