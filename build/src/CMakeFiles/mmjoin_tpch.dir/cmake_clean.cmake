file(REMOVE_RECURSE
  "CMakeFiles/mmjoin_tpch.dir/tpch/generator.cc.o"
  "CMakeFiles/mmjoin_tpch.dir/tpch/generator.cc.o.d"
  "CMakeFiles/mmjoin_tpch.dir/tpch/q19.cc.o"
  "CMakeFiles/mmjoin_tpch.dir/tpch/q19.cc.o.d"
  "CMakeFiles/mmjoin_tpch.dir/tpch/tables.cc.o"
  "CMakeFiles/mmjoin_tpch.dir/tpch/tables.cc.o.d"
  "libmmjoin_tpch.a"
  "libmmjoin_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmjoin_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
