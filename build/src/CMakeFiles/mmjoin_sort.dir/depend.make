# Empty dependencies file for mmjoin_sort.
# This may be replaced when dependencies are built.
