file(REMOVE_RECURSE
  "CMakeFiles/mmjoin_sort.dir/sort/bitonic.cc.o"
  "CMakeFiles/mmjoin_sort.dir/sort/bitonic.cc.o.d"
  "CMakeFiles/mmjoin_sort.dir/sort/multiway_merge.cc.o"
  "CMakeFiles/mmjoin_sort.dir/sort/multiway_merge.cc.o.d"
  "libmmjoin_sort.a"
  "libmmjoin_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmjoin_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
