file(REMOVE_RECURSE
  "libmmjoin_sort.a"
)
