file(REMOVE_RECURSE
  "libmmjoin_util.a"
)
