# Empty dependencies file for mmjoin_util.
# This may be replaced when dependencies are built.
