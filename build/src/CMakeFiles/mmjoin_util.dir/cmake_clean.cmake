file(REMOVE_RECURSE
  "CMakeFiles/mmjoin_util.dir/util/cli.cc.o"
  "CMakeFiles/mmjoin_util.dir/util/cli.cc.o.d"
  "CMakeFiles/mmjoin_util.dir/util/table_printer.cc.o"
  "CMakeFiles/mmjoin_util.dir/util/table_printer.cc.o.d"
  "libmmjoin_util.a"
  "libmmjoin_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmjoin_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
