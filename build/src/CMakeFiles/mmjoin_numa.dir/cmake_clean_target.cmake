file(REMOVE_RECURSE
  "libmmjoin_numa.a"
)
