# Empty dependencies file for mmjoin_numa.
# This may be replaced when dependencies are built.
