file(REMOVE_RECURSE
  "CMakeFiles/mmjoin_numa.dir/numa/system.cc.o"
  "CMakeFiles/mmjoin_numa.dir/numa/system.cc.o.d"
  "libmmjoin_numa.a"
  "libmmjoin_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmjoin_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
