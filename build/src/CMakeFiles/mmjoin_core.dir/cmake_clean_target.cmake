file(REMOVE_RECURSE
  "libmmjoin_core.a"
)
