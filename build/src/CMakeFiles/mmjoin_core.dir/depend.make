# Empty dependencies file for mmjoin_core.
# This may be replaced when dependencies are built.
