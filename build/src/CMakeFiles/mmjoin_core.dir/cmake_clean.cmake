file(REMOVE_RECURSE
  "CMakeFiles/mmjoin_core.dir/core/advisor.cc.o"
  "CMakeFiles/mmjoin_core.dir/core/advisor.cc.o.d"
  "CMakeFiles/mmjoin_core.dir/core/joiner.cc.o"
  "CMakeFiles/mmjoin_core.dir/core/joiner.cc.o.d"
  "libmmjoin_core.a"
  "libmmjoin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmjoin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
