
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/join/chtj_join.cc" "src/CMakeFiles/mmjoin_join.dir/join/chtj_join.cc.o" "gcc" "src/CMakeFiles/mmjoin_join.dir/join/chtj_join.cc.o.d"
  "/root/repo/src/join/cpr_join.cc" "src/CMakeFiles/mmjoin_join.dir/join/cpr_join.cc.o" "gcc" "src/CMakeFiles/mmjoin_join.dir/join/cpr_join.cc.o.d"
  "/root/repo/src/join/factory.cc" "src/CMakeFiles/mmjoin_join.dir/join/factory.cc.o" "gcc" "src/CMakeFiles/mmjoin_join.dir/join/factory.cc.o.d"
  "/root/repo/src/join/mway_join.cc" "src/CMakeFiles/mmjoin_join.dir/join/mway_join.cc.o" "gcc" "src/CMakeFiles/mmjoin_join.dir/join/mway_join.cc.o.d"
  "/root/repo/src/join/nop_join.cc" "src/CMakeFiles/mmjoin_join.dir/join/nop_join.cc.o" "gcc" "src/CMakeFiles/mmjoin_join.dir/join/nop_join.cc.o.d"
  "/root/repo/src/join/pr_join.cc" "src/CMakeFiles/mmjoin_join.dir/join/pr_join.cc.o" "gcc" "src/CMakeFiles/mmjoin_join.dir/join/pr_join.cc.o.d"
  "/root/repo/src/join/reference.cc" "src/CMakeFiles/mmjoin_join.dir/join/reference.cc.o" "gcc" "src/CMakeFiles/mmjoin_join.dir/join/reference.cc.o.d"
  "/root/repo/src/join/registry.cc" "src/CMakeFiles/mmjoin_join.dir/join/registry.cc.o" "gcc" "src/CMakeFiles/mmjoin_join.dir/join/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmjoin_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_thread.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_numa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmjoin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
