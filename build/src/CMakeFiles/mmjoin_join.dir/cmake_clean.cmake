file(REMOVE_RECURSE
  "CMakeFiles/mmjoin_join.dir/join/chtj_join.cc.o"
  "CMakeFiles/mmjoin_join.dir/join/chtj_join.cc.o.d"
  "CMakeFiles/mmjoin_join.dir/join/cpr_join.cc.o"
  "CMakeFiles/mmjoin_join.dir/join/cpr_join.cc.o.d"
  "CMakeFiles/mmjoin_join.dir/join/factory.cc.o"
  "CMakeFiles/mmjoin_join.dir/join/factory.cc.o.d"
  "CMakeFiles/mmjoin_join.dir/join/mway_join.cc.o"
  "CMakeFiles/mmjoin_join.dir/join/mway_join.cc.o.d"
  "CMakeFiles/mmjoin_join.dir/join/nop_join.cc.o"
  "CMakeFiles/mmjoin_join.dir/join/nop_join.cc.o.d"
  "CMakeFiles/mmjoin_join.dir/join/pr_join.cc.o"
  "CMakeFiles/mmjoin_join.dir/join/pr_join.cc.o.d"
  "CMakeFiles/mmjoin_join.dir/join/reference.cc.o"
  "CMakeFiles/mmjoin_join.dir/join/reference.cc.o.d"
  "CMakeFiles/mmjoin_join.dir/join/registry.cc.o"
  "CMakeFiles/mmjoin_join.dir/join/registry.cc.o.d"
  "libmmjoin_join.a"
  "libmmjoin_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmjoin_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
