# Empty compiler generated dependencies file for mmjoin_join.
# This may be replaced when dependencies are built.
