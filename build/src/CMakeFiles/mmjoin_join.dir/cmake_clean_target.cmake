file(REMOVE_RECURSE
  "libmmjoin_join.a"
)
