file(REMOVE_RECURSE
  "CMakeFiles/mmjoin_workload.dir/workload/generator.cc.o"
  "CMakeFiles/mmjoin_workload.dir/workload/generator.cc.o.d"
  "CMakeFiles/mmjoin_workload.dir/workload/zipf.cc.o"
  "CMakeFiles/mmjoin_workload.dir/workload/zipf.cc.o.d"
  "libmmjoin_workload.a"
  "libmmjoin_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmjoin_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
