file(REMOVE_RECURSE
  "libmmjoin_workload.a"
)
