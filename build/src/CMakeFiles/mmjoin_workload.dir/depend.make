# Empty dependencies file for mmjoin_workload.
# This may be replaced when dependencies are built.
