file(REMOVE_RECURSE
  "libmmjoin_thread.a"
)
