file(REMOVE_RECURSE
  "CMakeFiles/mmjoin_thread.dir/thread/task_queue.cc.o"
  "CMakeFiles/mmjoin_thread.dir/thread/task_queue.cc.o.d"
  "CMakeFiles/mmjoin_thread.dir/thread/thread_team.cc.o"
  "CMakeFiles/mmjoin_thread.dir/thread/thread_team.cc.o.d"
  "libmmjoin_thread.a"
  "libmmjoin_thread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmjoin_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
