# Empty dependencies file for mmjoin_thread.
# This may be replaced when dependencies are built.
