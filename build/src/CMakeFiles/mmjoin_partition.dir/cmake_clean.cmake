file(REMOVE_RECURSE
  "CMakeFiles/mmjoin_partition.dir/partition/chunked.cc.o"
  "CMakeFiles/mmjoin_partition.dir/partition/chunked.cc.o.d"
  "CMakeFiles/mmjoin_partition.dir/partition/model.cc.o"
  "CMakeFiles/mmjoin_partition.dir/partition/model.cc.o.d"
  "CMakeFiles/mmjoin_partition.dir/partition/radix.cc.o"
  "CMakeFiles/mmjoin_partition.dir/partition/radix.cc.o.d"
  "libmmjoin_partition.a"
  "libmmjoin_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmjoin_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
