file(REMOVE_RECURSE
  "libmmjoin_partition.a"
)
