# Empty dependencies file for mmjoin_partition.
# This may be replaced when dependencies are built.
