// Cross-algorithm correctness tests: all thirteen joins must produce the
// exact same result as the single-threaded reference join on every workload
// class the paper evaluates (dense/uniform, 1:1 ratio, Zipf-skewed, sparse
// domains, tiny inputs), under varying thread counts, radix bits, and skew
// task splitting.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "join/join_algorithm.h"
#include "join/reference.h"
#include "numa/system.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace mmjoin::join {
namespace {

numa::NumaSystem* System() {
  static auto* system = new numa::NumaSystem(4);
  return system;
}

void ExpectMatchesReference(Algorithm algorithm,
                            const workload::Relation& build,
                            const workload::Relation& probe,
                            const JoinConfig& config,
                            const std::string& context) {
  const JoinResult expected = ReferenceJoin(build.cspan(), probe.cspan());
  const JoinResult actual =
      RunJoin(algorithm, System(), config, build, probe).value();
  EXPECT_EQ(actual.matches, expected.matches)
      << NameOf(algorithm) << " " << context;
  EXPECT_EQ(actual.checksum, expected.checksum)
      << NameOf(algorithm) << " " << context;
  EXPECT_GT(actual.times.total_ns, 0);
}

class AllJoinsTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AllJoinsTest, DensePkUniformFk) {
  workload::Relation build = workload::MakeDenseBuild(System(), 20000, 1).value();
  workload::Relation probe =
      workload::MakeUniformProbe(System(), 100000, 20000, 2).value();
  JoinConfig config;
  config.num_threads = 4;
  ExpectMatchesReference(GetParam(), build, probe, config, "dense/uniform");
}

TEST_P(AllJoinsTest, EqualSizedRelations) {
  workload::Relation build = workload::MakeDenseBuild(System(), 30000, 3).value();
  workload::Relation probe =
      workload::MakeUniformProbe(System(), 30000, 30000, 4).value();
  JoinConfig config;
  config.num_threads = 4;
  ExpectMatchesReference(GetParam(), build, probe, config, "1:1");
}

TEST_P(AllJoinsTest, SkewedProbeZipf099) {
  workload::Relation build = workload::MakeDenseBuild(System(), 16384, 5).value();
  workload::Relation probe =
      workload::MakeZipfProbe(System(), 100000, 16384, 0.99, 6).value();
  JoinConfig config;
  config.num_threads = 4;
  ExpectMatchesReference(GetParam(), build, probe, config, "zipf 0.99");
}

TEST_P(AllJoinsTest, SkewedProbeWithAggressiveTaskSplitting) {
  workload::Relation build = workload::MakeDenseBuild(System(), 8192, 7).value();
  workload::Relation probe =
      workload::MakeZipfProbe(System(), 60000, 8192, 0.9, 8).value();
  JoinConfig config;
  config.num_threads = 4;
  config.skew_task_factor = 2;  // force many probe slices
  ExpectMatchesReference(GetParam(), build, probe, config, "skew slicing");
}

TEST_P(AllJoinsTest, SparseDomainHoles) {
  workload::Relation build = workload::MakeSparseBuild(System(), 10000, 7, 9).value();
  workload::Relation probe =
      workload::MakeProbeFromBuild(System(), 80000, build, 10).value();
  JoinConfig config;
  config.num_threads = 4;
  ExpectMatchesReference(GetParam(), build, probe, config, "holes k=7");
}

TEST_P(AllJoinsTest, TinyInputs) {
  workload::Relation build = workload::MakeDenseBuild(System(), 10, 11).value();
  workload::Relation probe =
      workload::MakeUniformProbe(System(), 37, 10, 12).value();
  JoinConfig config;
  config.num_threads = 4;  // more threads than sensible for 10 tuples
  ExpectMatchesReference(GetParam(), build, probe, config, "tiny");
}

TEST_P(AllJoinsTest, SingleThread) {
  workload::Relation build = workload::MakeDenseBuild(System(), 5000, 13).value();
  workload::Relation probe =
      workload::MakeUniformProbe(System(), 25000, 5000, 14).value();
  JoinConfig config;
  config.num_threads = 1;
  ExpectMatchesReference(GetParam(), build, probe, config, "1 thread");
}

TEST_P(AllJoinsTest, NonPowerOfTwoThreads) {
  workload::Relation build = workload::MakeDenseBuild(System(), 12000, 15).value();
  workload::Relation probe =
      workload::MakeUniformProbe(System(), 60000, 12000, 16).value();
  JoinConfig config;
  config.num_threads = 7;
  ExpectMatchesReference(GetParam(), build, probe, config, "7 threads");
}

TEST_P(AllJoinsTest, ExplicitRadixBits) {
  workload::Relation build = workload::MakeDenseBuild(System(), 20000, 17).value();
  workload::Relation probe =
      workload::MakeUniformProbe(System(), 60000, 20000, 18).value();
  for (const uint32_t bits : {1u, 5u, 10u}) {
    JoinConfig config;
    config.num_threads = 4;
    config.radix_bits = bits;
    ExpectMatchesReference(GetParam(), build, probe, config,
                           "bits=" + std::to_string(bits));
  }
}

TEST_P(AllJoinsTest, ProbeSmallerThanBuild) {
  workload::Relation build = workload::MakeDenseBuild(System(), 20000, 19).value();
  workload::Relation probe =
      workload::MakeUniformProbe(System(), 1000, 20000, 20).value();
  JoinConfig config;
  config.num_threads = 4;
  ExpectMatchesReference(GetParam(), build, probe, config, "small probe");
}

// Exact multiset of matched pairs via a MatchSink on a small input.
class PairCollectorSink final : public MatchSink {
 public:
  explicit PairCollectorSink(int num_threads) : pairs_(num_threads) {}
  void Consume(int tid, Tuple build, Tuple probe) override {
    pairs_[tid].emplace_back(build.payload, probe.payload);
  }
  std::vector<std::pair<uint32_t, uint32_t>> Sorted() const {
    std::vector<std::pair<uint32_t, uint32_t>> all;
    for (const auto& local : pairs_) {
      all.insert(all.end(), local.begin(), local.end());
    }
    std::sort(all.begin(), all.end());
    return all;
  }

 private:
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> pairs_;
};

TEST_P(AllJoinsTest, MaterializedPairsExactlyMatchReference) {
  workload::Relation build = workload::MakeDenseBuild(System(), 3000, 21).value();
  workload::Relation probe =
      workload::MakeUniformProbe(System(), 9000, 3000, 22).value();
  const auto expected = ReferenceJoinPairs(build.cspan(), probe.cspan());

  PairCollectorSink sink(4);
  JoinConfig config;
  config.num_threads = 4;
  config.sink = &sink;
  RunJoin(GetParam(), System(), config, build, probe).value();
  EXPECT_EQ(sink.Sorted(), expected) << NameOf(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    All, AllJoinsTest, ::testing::ValuesIn(AllAlgorithms()),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return std::string(NameOf(info.param));
    });

// --- Duplicate build keys (non-array algorithms only; array tables require
// unique keys by construction, as in the paper). ---------------------------

class DuplicateJoinsTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(DuplicateJoinsTest, DuplicateBuildKeys) {
  numa::NumaSystem* system = System();
  workload::Relation build(system, 10000);
  Rng rng(23);
  for (uint64_t i = 0; i < build.size(); ++i) {
    build.data()[i] = Tuple{static_cast<uint32_t>(rng.NextBelow(3000)),
                            static_cast<uint32_t>(i)};
  }
  build.set_key_domain(3000);
  workload::Relation probe =
      workload::MakeUniformProbe(system, 20000, 3000, 24).value();

  JoinConfig config;
  config.num_threads = 4;
  config.build_unique = false;
  ExpectMatchesReference(GetParam(), build, probe, config, "dup builds");
}

INSTANTIATE_TEST_SUITE_P(
    NonArray, DuplicateJoinsTest,
    ::testing::Values(Algorithm::kPRB, Algorithm::kNOP, Algorithm::kCHTJ,
                      Algorithm::kMWAY, Algorithm::kPRO, Algorithm::kPRL,
                      Algorithm::kCPRL, Algorithm::kPROiS,
                      Algorithm::kPRLiS),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return std::string(NameOf(info.param));
    });

// --- Registry metadata ------------------------------------------------------

TEST(Registry, ThirteenAlgorithms) {
  EXPECT_EQ(AllAlgorithms().size(), 13u);
}

TEST(Registry, NamesRoundTrip) {
  for (const Algorithm algorithm : AllAlgorithms()) {
    const auto parsed = AlgorithmFromName(NameOf(algorithm));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, algorithm);
  }
  EXPECT_FALSE(AlgorithmFromName("NOPE").has_value());
}

TEST(Registry, ClassTaxonomyMatchesPaperTable1) {
  EXPECT_EQ(InfoOf(Algorithm::kPRB).join_class, JoinClass::kPartitionBased);
  EXPECT_EQ(InfoOf(Algorithm::kNOP).join_class, JoinClass::kNoPartitioning);
  EXPECT_EQ(InfoOf(Algorithm::kCHTJ).join_class,
            JoinClass::kNoPartitioning);
  EXPECT_EQ(InfoOf(Algorithm::kMWAY).join_class, JoinClass::kSortMerge);
  EXPECT_EQ(InfoOf(Algorithm::kCPRL).join_class,
            JoinClass::kPartitionBased);
}

TEST(Registry, ArrayJoinsFlagDenseRequirement) {
  EXPECT_TRUE(InfoOf(Algorithm::kNOPA).requires_dense_keys);
  EXPECT_TRUE(InfoOf(Algorithm::kPRA).requires_dense_keys);
  EXPECT_TRUE(InfoOf(Algorithm::kCPRA).requires_dense_keys);
  EXPECT_TRUE(InfoOf(Algorithm::kPRAiS).requires_dense_keys);
  EXPECT_FALSE(InfoOf(Algorithm::kNOP).requires_dense_keys);
}

// --- Phase time sanity -------------------------------------------------------

TEST(PhaseTimes, PartitionJoinsReportPartitionPhase) {
  workload::Relation build = workload::MakeDenseBuild(System(), 50000, 25).value();
  workload::Relation probe =
      workload::MakeUniformProbe(System(), 200000, 50000, 26).value();
  JoinConfig config;
  config.num_threads = 4;
  for (const Algorithm algorithm :
       {Algorithm::kPRO, Algorithm::kCPRL, Algorithm::kPRB}) {
    const JoinResult result =
        RunJoin(algorithm, System(), config, build, probe).value();
    EXPECT_GT(result.times.partition_ns, 0) << NameOf(algorithm);
    EXPECT_GT(result.times.probe_ns, 0) << NameOf(algorithm);
    EXPECT_GE(result.times.total_ns,
              result.times.partition_ns + result.times.probe_ns - 1000000)
        << NameOf(algorithm);
  }
}

TEST(PhaseTimes, NopReportsBuildAndProbe) {
  workload::Relation build = workload::MakeDenseBuild(System(), 50000, 27).value();
  workload::Relation probe =
      workload::MakeUniformProbe(System(), 200000, 50000, 28).value();
  JoinConfig config;
  config.num_threads = 4;
  const JoinResult result =
      RunJoin(Algorithm::kNOP, System(), config, build, probe).value();
  EXPECT_GT(result.times.build_ns, 0);
  EXPECT_GT(result.times.probe_ns, 0);
  EXPECT_EQ(result.times.partition_ns, 0);
}

TEST(Throughput, UsesInputBasedDefinition) {
  JoinResult result;
  result.times.total_ns = 1'000'000'000;  // 1 s
  result.matches = 1;                     // output-insensitive
  EXPECT_DOUBLE_EQ(result.ThroughputMtps(600'000'000, 400'000'000), 1000.0);
}

}  // namespace
}  // namespace mmjoin::join
