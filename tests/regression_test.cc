// Regression tests for specific defects found and fixed during
// development. Each test encodes the failure mode so it cannot return.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "hash/array_table.h"
#include "hash/linear_probing_table.h"
#include "memsim/cache.h"
#include "memsim/replay.h"
#include "numa/system.h"
#include "partition/model.h"
#include "tpch/generator.h"
#include "tpch/q19.h"
#include "util/timer.h"
#include "workload/generator.h"

namespace mmjoin {
namespace {

// Bug 1: linear probing Probe() scans to the first empty slot; with the
// identity hash on a dense PK build the occupied region is one contiguous
// cluster, so a full-semantics probe of key k walked O(|R| - k) slots.
// ProbeUnique must stay O(1) on this workload.
TEST(Regression, DenseIdentityProbeUniqueIsConstantTime) {
  numa::NumaSystem system(1);
  const uint64_t n = 200000;
  hash::LinearProbingTable<hash::IdentityHash> table(
      &system, n, numa::Placement::kLocal);
  for (uint64_t k = 0; k < n; ++k) {
    table.InsertSerial(Tuple{static_cast<uint32_t>(k), 1});
  }
  // Probing every key once must be fast: O(n) total, not O(n^2). 200k
  // O(1) probes take well under a millisecond; the quadratic behaviour
  // took seconds. Use a generous 200 ms bound to stay timing-robust.
  Stopwatch watch;
  uint64_t found = 0;
  for (uint64_t k = 0; k < n; ++k) {
    found += table.ProbeUnique(static_cast<uint32_t>(k), [](Tuple) {});
  }
  EXPECT_EQ(found, n);
  EXPECT_LT(watch.ElapsedSeconds(), 0.2);
}

// Bug 2: the Q19 selectivity knob silently saturated at 25% because only
// the shipmode mass scaled while shipinstruct stayed at the TPC-H 1/4.
TEST(Regression, Q19SelectivityKnobReachesFullRange) {
  numa::NumaSystem system(4);
  for (const double target : {0.5, 1.0}) {
    tpch::GeneratorOptions options;
    options.lineitem_rows = 100000;
    options.part_rows = 1000;
    options.prefilter_selectivity = target;
    options.seed = 3;
    tpch::LineitemTable lineitem = tpch::GenerateLineitem(&system, options);
    uint64_t passing = 0;
    for (uint64_t i = 0; i < lineitem.num_tuples(); ++i) {
      passing += tpch::PreJoin(lineitem, i) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(passing) / lineitem.num_tuples(),
                target, 0.02)
        << "target " << target;
  }
}

// Bug 3: the cache simulator without a prefetcher charged sequential
// streams full demand misses, drowning the random-access contrast that
// Table 4 is about.
TEST(Regression, PrefetcherSuppressesSequentialDemandMisses) {
  memsim::HierarchyConfig with = memsim::HierarchyConfig::HugePages();
  memsim::HierarchyConfig without = with;
  without.prefetch_streams = 0;

  const auto streamed = memsim::ReplaySequentialScan(with, 1 << 20);
  const auto unstreamed = memsim::ReplaySequentialScan(without, 1 << 20);
  // Without prefetching a scan misses once per line (1/8 of accesses);
  // with it, almost never.
  EXPECT_GT(unstreamed.llc.misses, (1u << 20) / 8 - 1000);
  EXPECT_LT(streamed.llc.misses, unstreamed.llc.misses / 20);
}

// Bug 4: Equation (1) ignored that oversubscribed workers share one
// hardware thread's L2 (paper machines have private L2 per worker).
TEST(Regression, RadixBitModelAccountsForSharedL2) {
  partition::CacheSpec shared;
  shared.l2_bytes = 2 * 1024 * 1024;
  shared.llc_bytes = 256ull * 1024 * 1024;
  shared.hardware_threads = 1;  // 4 workers share one core's L2
  partition::CacheSpec privat = shared;
  privat.hardware_threads = 4;

  const uint32_t shared_bits = partition::PredictRadixBits(
      1 << 20, partition::kLinearSpace, 4, shared);
  const uint32_t private_bits = partition::PredictRadixBits(
      1 << 20, partition::kLinearSpace, 4, privat);
  EXPECT_EQ(private_bits + 2, shared_bits);  // 4 sharers = 2 extra bits
}

// Bug 5: array-table probes read out of bounds for keys beyond the build
// domain (probe side need not honour the FK contract).
TEST(Regression, ArrayTableProbeOutOfDomainMisses) {
  numa::NumaSystem system(1);
  hash::ArrayTable table(&system, 100, 0, numa::Placement::kLocal);
  table.InsertSerial(Tuple{99, 7});
  EXPECT_EQ(table.Probe(99, [](Tuple) {}), 1u);
  EXPECT_EQ(table.Probe(100, [](Tuple) {}), 0u);
  EXPECT_EQ(table.Probe(0xFFFFFFFE, [](Tuple) {}), 0u);
}

// Bug 6: Q19 morph steps 1-3 used the multiset probe and made the "naked
// join" microbenchmark slower than the full query. Step 1 (pre-filtered
// probe only) must be the cheapest step.
TEST(Regression, Q19MorphStepOneIsCheapest) {
  numa::NumaSystem system(4);
  tpch::GeneratorOptions options;
  options.lineitem_rows = 200000;
  options.part_rows = 20000;
  options.seed = 5;
  tpch::LineitemTable lineitem = tpch::GenerateLineitem(&system, options);
  tpch::PartTable part = tpch::GeneratePart(&system, options);

  // Median-of-3 to be robust against scheduler noise.
  int64_t best[5] = {INT64_MAX, INT64_MAX, INT64_MAX, INT64_MAX, INT64_MAX};
  for (int i = 0; i < 3; ++i) {
    const tpch::Q19MorphResult morph =
        tpch::RunQ19Morph(&system, lineitem, part, 4);
    for (int s = 0; s < 5; ++s) {
      best[s] = std::min(best[s], morph.step_ns[s]);
    }
  }
  // Step 1 probes 3.57% of the rows; step 2 scans all rows. Allow slack
  // but require a clear gap.
  EXPECT_LT(best[0], best[1]);
}

}  // namespace
}  // namespace mmjoin
