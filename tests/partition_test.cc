// Unit and property tests for radix partitioning: global (PRO-style),
// serial sub-partitioning (PRB pass 2), chunked (CPRL), and the Equation (1)
// radix-bit model.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "numa/system.h"
#include "partition/chunked.h"
#include "partition/model.h"
#include "partition/radix.h"
#include "thread/thread_team.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace mmjoin::partition {
namespace {

numa::NumaSystem* System() {
  static auto* system = new numa::NumaSystem(4);
  return system;
}

std::vector<Tuple> RandomTuples(std::size_t n, uint32_t key_range,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> tuples(n);
  for (std::size_t i = 0; i < n; ++i) {
    tuples[i] = Tuple{static_cast<uint32_t>(rng.NextBelow(key_range)),
                      static_cast<uint32_t>(i)};
  }
  return tuples;
}

std::multiset<uint64_t> PackedMultiset(const Tuple* data, std::size_t n) {
  std::multiset<uint64_t> set;
  for (std::size_t i = 0; i < n; ++i) set.insert(PackTuple(data[i]));
  return set;
}

void RunGlobalPartition(GlobalRadixPartitioner* partitioner,
                        int num_threads) {
  thread::Barrier barrier(num_threads);
  thread::RunTeam(num_threads, [&](int tid) {
    partitioner->BuildHistogram(tid);
    barrier.ArriveAndWait();
    if (tid == 0) partitioner->ComputeOffsets();
    barrier.ArriveAndWait();
    partitioner->Scatter(tid, 0);
  });
}

class GlobalPartitionTest
    : public ::testing::TestWithParam<std::tuple<bool, int, uint32_t>> {};

TEST_P(GlobalPartitionTest, PreservesMultisetAndPartitionInvariant) {
  const auto [swwcb, threads, bits] = GetParam();
  const auto input = RandomTuples(20000, 1u << 20, 7 + bits);
  std::vector<Tuple> output(input.size());

  RadixOptions options;
  options.fn = RadixFn{0, bits};
  options.use_swwcb = swwcb;
  options.num_threads = threads;
  GlobalRadixPartitioner partitioner(
      System(), options, ConstTupleSpan(input.data(), input.size()),
      TupleSpan(output.data(), output.size()));
  RunGlobalPartition(&partitioner, threads);

  const PartitionLayout& layout = partitioner.layout();
  ASSERT_EQ(layout.num_partitions(), 1u << bits);
  EXPECT_EQ(layout.offsets.front(), 0u);
  EXPECT_EQ(layout.offsets.back(), input.size());

  // Every tuple sits in its radix partition.
  for (uint32_t p = 0; p < layout.num_partitions(); ++p) {
    for (uint64_t i = layout.PartitionBegin(p);
         i < layout.PartitionBegin(p) + layout.PartitionSize(p); ++i) {
      ASSERT_EQ(options.fn(output[i].key), p) << "at index " << i;
    }
  }
  // And the output is a permutation of the input.
  EXPECT_EQ(PackedMultiset(output.data(), output.size()),
            PackedMultiset(input.data(), input.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GlobalPartitionTest,
    ::testing::Combine(::testing::Values(false, true),    // swwcb
                       ::testing::Values(1, 3, 4, 8),     // threads
                       ::testing::Values(0u, 1u, 4u, 8u)  // radix bits
                       ));

TEST(GlobalPartition, SwwcbAndDirectProduceIdenticalOutput) {
  const auto input = RandomTuples(10000, 1u << 16, 99);
  std::vector<Tuple> out_direct(input.size());
  std::vector<Tuple> out_swwcb(input.size());

  for (const bool swwcb : {false, true}) {
    RadixOptions options;
    options.fn = RadixFn{0, 6};
    options.use_swwcb = swwcb;
    options.num_threads = 4;
    GlobalRadixPartitioner partitioner(
        System(), options, ConstTupleSpan(input.data(), input.size()),
        TupleSpan(swwcb ? out_swwcb.data() : out_direct.data(),
                  input.size()));
    RunGlobalPartition(&partitioner, 4);
  }
  EXPECT_EQ(out_direct, out_swwcb);
}

TEST(GlobalPartition, ShiftedRadixFunction) {
  const auto input = RandomTuples(5000, 1u << 20, 3);
  std::vector<Tuple> output(input.size());
  RadixOptions options;
  options.fn = RadixFn{10, 4};  // partition on bits [10, 14)
  options.use_swwcb = true;
  options.num_threads = 2;
  GlobalRadixPartitioner partitioner(
      System(), options, ConstTupleSpan(input.data(), input.size()),
      TupleSpan(output.data(), output.size()));
  RunGlobalPartition(&partitioner, 2);
  const PartitionLayout& layout = partitioner.layout();
  for (uint32_t p = 0; p < 16; ++p) {
    for (uint64_t i = layout.PartitionBegin(p);
         i < layout.PartitionBegin(p) + layout.PartitionSize(p); ++i) {
      ASSERT_EQ((output[i].key >> 10) & 15u, p);
    }
  }
}

TEST(SubPartitionSerial, RefinesAPartition) {
  // Take keys sharing low 4 bits (= partition 5 of a 4-bit pass) and refine
  // by the next 4 bits.
  std::vector<Tuple> input;
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    input.push_back(
        Tuple{static_cast<uint32_t>((rng.NextBelow(1 << 16) << 4) | 5),
              static_cast<uint32_t>(i)});
  }
  std::vector<Tuple> output(input.size());
  const PartitionLayout layout = SubPartitionSerial(
      ConstTupleSpan(input.data(), input.size()),
      TupleSpan(output.data(), output.size()), RadixFn{4, 4});

  EXPECT_EQ(layout.offsets.back(), input.size());
  for (uint32_t p = 0; p < 16; ++p) {
    for (uint64_t i = layout.PartitionBegin(p);
         i < layout.PartitionBegin(p) + layout.PartitionSize(p); ++i) {
      ASSERT_EQ((output[i].key >> 4) & 15u, p);
      ASSERT_EQ(output[i].key & 15u, 5u);  // pass-1 bits untouched
    }
  }
  EXPECT_EQ(PackedMultiset(output.data(), output.size()),
            PackedMultiset(input.data(), input.size()));
}

class ChunkedPartitionTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(ChunkedPartitionTest, FragmentsCoverChunksExactly) {
  const auto [threads, bits] = GetParam();
  const auto input = RandomTuples(17777, 1u << 20, 13);
  std::vector<Tuple> output(input.size());

  RadixOptions options;
  options.fn = RadixFn{0, bits};
  options.use_swwcb = true;
  options.num_threads = threads;
  ChunkedRadixPartitioner partitioner(
      System(), options, ConstTupleSpan(input.data(), input.size()),
      TupleSpan(output.data(), output.size()));
  thread::RunTeam(threads,
                  [&](int tid) { partitioner.PartitionChunk(tid, 0); });

  const ChunkedLayout& layout = partitioner.layout();
  ASSERT_EQ(layout.num_chunks, threads);
  ASSERT_EQ(layout.num_partitions, 1u << bits);

  // Per chunk: fragments tile the chunk range; tuples are in their radix
  // partition; the chunk's output is a permutation of the chunk's input.
  uint64_t total = 0;
  for (int c = 0; c < threads; ++c) {
    const thread::Range range =
        thread::ChunkRange(input.size(), threads, c);
    uint64_t cursor = range.begin;
    for (uint32_t p = 0; p < layout.num_partitions; ++p) {
      ASSERT_EQ(layout.FragmentOffset(c, p), cursor);
      const uint64_t size = layout.FragmentSize(c, p);
      for (uint64_t i = cursor; i < cursor + size; ++i) {
        ASSERT_EQ(options.fn(output[i].key), p);
      }
      cursor += size;
      total += size;
    }
    ASSERT_EQ(cursor, range.end);
    EXPECT_EQ(PackedMultiset(output.data() + range.begin, range.size()),
              PackedMultiset(input.data() + range.begin, range.size()));
  }
  EXPECT_EQ(total, input.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChunkedPartitionTest,
                         ::testing::Combine(::testing::Values(1, 2, 4, 7),
                                            ::testing::Values(0u, 3u, 8u)));

TEST(ChunkedPartition, PartitionSizeSumsFragments) {
  const auto input = RandomTuples(5000, 256, 21);
  std::vector<Tuple> output(input.size());
  RadixOptions options;
  options.fn = RadixFn{0, 4};
  options.use_swwcb = true;
  options.num_threads = 4;
  ChunkedRadixPartitioner partitioner(
      System(), options, ConstTupleSpan(input.data(), input.size()),
      TupleSpan(output.data(), output.size()));
  thread::RunTeam(4, [&](int tid) { partitioner.PartitionChunk(tid, 0); });

  uint64_t total = 0;
  for (uint32_t p = 0; p < 16; ++p) {
    total += partitioner.layout().PartitionSize(p);
  }
  EXPECT_EQ(total, input.size());
}

// The headline NUMA property (Figure 4): chunked partitioning performs zero
// remote writes, global partitioning many.
TEST(ChunkedPartition, NoRemoteWritesWhenThreadsMatchNodes) {
  numa::NumaSystem system(4);
  workload::Relation rel = workload::MakeDenseBuild(&system, 1 << 16, 5).value();
  numa::NumaBuffer<Tuple> output(&system, rel.size(),
                                 numa::Placement::kChunkedRoundRobin);
  system.EnableAccounting();

  RadixOptions options;
  options.fn = RadixFn{0, 6};
  options.use_swwcb = true;
  options.num_threads = 4;
  ChunkedRadixPartitioner partitioner(
      &system, options, rel.cspan(),
      TupleSpan(output.data(), output.size()));
  thread::RunTeam(4, [&](int tid) {
    partitioner.PartitionChunk(tid,
                               system.topology().NodeOfThread(tid, 4));
  });
  EXPECT_EQ(system.counters()->TotalRemoteWriteBytes(), 0u);
  EXPECT_GT(system.counters()->TotalLocalWriteBytes(), 0u);
}

TEST(GlobalPartition, HasRemoteWrites) {
  numa::NumaSystem system(4);
  workload::Relation rel = workload::MakeDenseBuild(&system, 1 << 16, 5).value();
  numa::NumaBuffer<Tuple> output(&system, rel.size(),
                                 numa::Placement::kChunkedRoundRobin);
  system.EnableAccounting();

  RadixOptions options;
  options.fn = RadixFn{0, 6};
  options.use_swwcb = true;
  options.num_threads = 4;
  GlobalRadixPartitioner partitioner(
      &system, options, rel.cspan(),
      TupleSpan(output.data(), output.size()));
  thread::Barrier barrier(4);
  thread::RunTeam(4, [&](int tid) {
    partitioner.BuildHistogram(tid);
    barrier.ArriveAndWait();
    if (tid == 0) partitioner.ComputeOffsets();
    barrier.ArriveAndWait();
    partitioner.Scatter(tid, system.topology().NodeOfThread(tid, 4));
  });
  // Each thread writes into every partition; 3/4 of partition memory is
  // remote to it.
  EXPECT_GT(system.counters()->TotalRemoteWriteBytes(),
            system.counters()->TotalLocalWriteBytes());
}

// ---- Equation (1) model ----------------------------------------------------

TEST(RadixBitModel, NearMonotoneInBuildSize) {
  // Doubling |R| never decreases the predicted bits by more than one (a
  // one-bit dip is legitimate at the L2 -> LLC regime switch, where the
  // model stops targeting L2-resident partitions).
  const CacheSpec cache;  // paper machine
  uint32_t prev = 0;
  for (uint64_t r = 1 << 20; r <= (uint64_t{1} << 31); r *= 2) {
    const uint32_t bits = PredictRadixBits(r, kLinearSpace, 32, cache);
    EXPECT_GE(bits + 1, prev);
    prev = bits;
  }
}

TEST(RadixBitModel, MatchesPaperSweetSpot) {
  // Figure 2: |R| = 128M with ~16 B/tuple tables on the paper machine ->
  // around 14 bits (the paper's measured optimum), +-1.
  const CacheSpec cache;
  const uint32_t bits =
      PredictRadixBits(128ull << 20, kLinearSpace, 32, cache);
  EXPECT_GE(bits, 13u);
  EXPECT_LE(bits, 15u);
}

TEST(RadixBitModel, SwitchesToLlcRegimeForHugeInputs) {
  // For |R| = 2048M (paper Figure 9(d)) the SWWCBs no longer fit the LLC
  // share and the model must cap the partition count below the L2 target.
  const CacheSpec cache;
  const uint32_t bits_l2_regime =
      PredictRadixBits(256ull << 20, kLinearSpace, 32, cache);
  const uint32_t bits_llc_regime =
      PredictRadixBits(2048ull << 20, kLinearSpace, 32, cache);
  const double l2_partitions =
      (256.0 * (1 << 20) * 16) / cache.l2_bytes;  // what L2 fit would need
  const double llc_chosen = 1 << bits_llc_regime;
  // The chosen count for 2048M must be well below 8x the 256M choice
  // (pure L2 scaling would multiply by 8).
  EXPECT_LT(llc_chosen, 8 * l2_partitions);
  EXPECT_GE(bits_llc_regime, bits_l2_regime);
}

TEST(RadixBitModel, ArrayTablesNeedFewerBits) {
  // Arrays are ~4x denser than hash tables, so fewer partitions suffice
  // (the paper observes different optimal bits per table, Section 7.3).
  const CacheSpec cache;
  const uint32_t array_bits =
      PredictRadixBits(128ull << 20, kArraySpace, 32, cache);
  const uint32_t linear_bits =
      PredictRadixBits(128ull << 20, kLinearSpace, 32, cache);
  EXPECT_LT(array_bits, linear_bits);
}

TEST(RadixBitModel, ClampsToSaneRange) {
  const CacheSpec cache;
  EXPECT_GE(PredictRadixBits(1, kLinearSpace, 1, cache), 1u);
  EXPECT_LE(PredictRadixBits(uint64_t{1} << 40, kLinearSpace, 1, cache),
            24u);
}

TEST(DetectHostCacheSpec, ReturnsPlausibleSizes) {
  const CacheSpec spec = DetectHostCacheSpec();
  EXPECT_GE(spec.l1_bytes, 8u * 1024);
  EXPECT_GE(spec.l2_bytes, spec.l1_bytes);
  EXPECT_GE(spec.llc_bytes, spec.l2_bytes);
}

}  // namespace
}  // namespace mmjoin::partition
