// Unit tests for the util module: bit tricks, RNG, CLI parsing, table
// printing, tuple packing.

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "util/bits.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/types.h"

namespace mmjoin {
namespace {

TEST(Bits, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 63));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 63) + 1));
}

TEST(Bits, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(Bits, FloorAndCeilLog2) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
}

TEST(Bits, RoundUpAndCeilDiv) {
  EXPECT_EQ(RoundUp(0, 8), 0u);
  EXPECT_EQ(RoundUp(1, 8), 8u);
  EXPECT_EQ(RoundUp(8, 8), 8u);
  EXPECT_EQ(RoundUp(9, 8), 16u);
  EXPECT_EQ(CeilDiv(0, 8), 0u);
  EXPECT_EQ(CeilDiv(1, 8), 1u);
  EXPECT_EQ(CeilDiv(16, 8), 2u);
  EXPECT_EQ(CeilDiv(17, 8), 3u);
}

TEST(Bits, PopcountBelow) {
  EXPECT_EQ(PopcountBelow(0xFF, 0), 0u);
  EXPECT_EQ(PopcountBelow(0xFF, 4), 4u);
  EXPECT_EQ(PopcountBelow(0xFF, 64), 8u);
  EXPECT_EQ(PopcountBelow(~uint64_t{0}, 63), 63u);
  EXPECT_EQ(PopcountBelow(uint64_t{1} << 63, 63), 0u);
  EXPECT_EQ(PopcountBelow(uint64_t{1} << 63, 64), 1u);
}

TEST(Tuple, PackUnpackRoundTrip) {
  const Tuple tuples[] = {{0, 0}, {1, 2}, {0xFFFFFFFE, 0xFFFFFFFF},
                          {42, 0}, {0, 42}};
  for (const Tuple& t : tuples) {
    EXPECT_EQ(UnpackTuple(PackTuple(t)), t);
  }
}

TEST(Tuple, PackedOrderIsKeyMajor) {
  EXPECT_LT(PackTuple({1, 0xFFFFFFFF}), PackTuple({2, 0}));
  EXPECT_LT(PackTuple({5, 1}), PackTuple({5, 2}));
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(99);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.05);
  EXPECT_GT(max, 0.95);
}

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--threads=8", "--size=1000000"};
  CommandLine cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.GetInt("threads", 1), 8);
  EXPECT_EQ(cli.GetInt("size", 0), 1000000);
  EXPECT_EQ(cli.GetInt("missing", 42), 42);
}

TEST(Cli, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--name", "cprl", "--flag"};
  CommandLine cli(4, const_cast<char**>(argv));
  EXPECT_EQ(cli.GetString("name", ""), "cprl");
  EXPECT_TRUE(cli.GetBool("flag", false));
  EXPECT_FALSE(cli.GetBool("other", false));
}

TEST(Cli, ParsesDoublesAndBools) {
  const char* argv[] = {"prog", "--theta=0.99", "--huge=false"};
  CommandLine cli(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.GetDouble("theta", 0.0), 0.99);
  EXPECT_FALSE(cli.GetBool("huge", true));
}

TEST(Cli, CollectsPositional) {
  const char* argv[] = {"prog", "one", "--k=1", "two"};
  CommandLine cli(4, const_cast<char**>(argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "one");
  EXPECT_EQ(cli.positional()[1], "two");
}

TEST(TablePrinter, FormatsAlignedTable) {
  TablePrinter table({"name", "value"});
  table.Row("alpha", 1);
  table.Row("b", 12345);

  char buffer[256] = {0};
  std::FILE* stream = fmemopen(buffer, sizeof(buffer), "w");
  table.Print(stream);
  std::fclose(stream);

  EXPECT_NE(std::strstr(buffer, "name"), nullptr);
  EXPECT_NE(std::strstr(buffer, "alpha"), nullptr);
  EXPECT_NE(std::strstr(buffer, "12345"), nullptr);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.Row(1, 2.5);
  char buffer[128] = {0};
  std::FILE* stream = fmemopen(buffer, sizeof(buffer), "w");
  table.PrintCsv(stream);
  std::fclose(stream);
  EXPECT_STREQ(buffer, "a,b\n1,2.50\n");
}

TEST(TablePrinter, FormatDouble) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.234, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatDouble(1.0, 0), "1");
}

}  // namespace
}  // namespace mmjoin
