// Direct unit tests of the software write-combine buffer primitives --
// especially the partial head/tail cache-line handling that protects
// adjacent threads' output ranges.

#include <gtest/gtest.h>

#include <vector>

#include "mem/aligned_alloc.h"
#include "partition/swwcb.h"
#include "util/types.h"

namespace mmjoin::partition {
namespace {

constexpr uint32_t kGuard = 0xDEADBEEF;

class SwwcbTest : public ::testing::Test {
 protected:
  // Output array pre-filled with guard tuples so any out-of-range write is
  // detected.
  void Init(std::size_t size) {
    output_.assign(size, Tuple{kGuard, kGuard});
  }

  std::vector<Tuple> output_;
};

TEST_F(SwwcbTest, AlignedRangeFullLines) {
  Init(64);
  mem::AlignedBuffer<CacheLineBuffer> buffers(1, mem::PagePolicy::kDefault);
  ScatterCursor cursor{0, 0};
  for (uint32_t i = 0; i < 16; ++i) {
    SwwcbPush(output_.data(), buffers.data(), &cursor, 0,
              Tuple{i, i * 2});
  }
  SwwcbDrain(output_.data(), buffers.data(), &cursor, 0);
  mem::StreamFence();
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(output_[i], (Tuple{i, i * 2}));
  }
  EXPECT_EQ(output_[16].key, kGuard);
}

TEST_F(SwwcbTest, UnalignedStartDoesNotClobberPredecessor) {
  // Start mid-line (offset 3): slots 0..2 belong to a previous writer.
  Init(64);
  mem::AlignedBuffer<CacheLineBuffer> buffers(1, mem::PagePolicy::kDefault);
  ScatterCursor cursor{3, 3};
  for (uint32_t i = 0; i < 20; ++i) {
    SwwcbPush(output_.data(), buffers.data(), &cursor, 0, Tuple{i, i});
  }
  SwwcbDrain(output_.data(), buffers.data(), &cursor, 0);
  mem::StreamFence();
  EXPECT_EQ(output_[0].key, kGuard);
  EXPECT_EQ(output_[1].key, kGuard);
  EXPECT_EQ(output_[2].key, kGuard);
  for (uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(output_[3 + i], (Tuple{i, i})) << i;
  }
  EXPECT_EQ(output_[23].key, kGuard);
}

TEST_F(SwwcbTest, ShortRangeWithinOneLine) {
  // Fewer tuples than a cache line, starting unaligned: everything flows
  // through the drain path.
  Init(16);
  mem::AlignedBuffer<CacheLineBuffer> buffers(1, mem::PagePolicy::kDefault);
  ScatterCursor cursor{5, 5};
  for (uint32_t i = 0; i < 2; ++i) {
    SwwcbPush(output_.data(), buffers.data(), &cursor, 0, Tuple{i, 9});
  }
  SwwcbDrain(output_.data(), buffers.data(), &cursor, 0);
  EXPECT_EQ(output_[4].key, kGuard);
  EXPECT_EQ(output_[5], (Tuple{0, 9}));
  EXPECT_EQ(output_[6], (Tuple{1, 9}));
  EXPECT_EQ(output_[7].key, kGuard);
}

TEST_F(SwwcbTest, EveryStartOffsetAndLength) {
  // Exhaustive property check over start alignment x tuple count.
  mem::AlignedBuffer<CacheLineBuffer> buffers(1, mem::PagePolicy::kDefault);
  for (uint64_t start = 0; start < 8; ++start) {
    for (uint64_t count = 0; count <= 40; ++count) {
      Init(64);
      ScatterCursor cursor{start, start};
      for (uint64_t i = 0; i < count; ++i) {
        SwwcbPush(output_.data(), buffers.data(), &cursor, 0,
                  Tuple{static_cast<uint32_t>(i), 1});
      }
      SwwcbDrain(output_.data(), buffers.data(), &cursor, 0);
      mem::StreamFence();
      for (uint64_t i = 0; i < start; ++i) {
        ASSERT_EQ(output_[i].key, kGuard)
            << "start=" << start << " count=" << count << " i=" << i;
      }
      for (uint64_t i = 0; i < count; ++i) {
        ASSERT_EQ(output_[start + i].key, i)
            << "start=" << start << " count=" << count;
      }
      ASSERT_EQ(output_[start + count].key, kGuard)
          << "start=" << start << " count=" << count;
    }
  }
}

TEST_F(SwwcbTest, InterleavedPartitionsStayDisjoint) {
  // Two partitions with adjacent ranges, pushed in interleaved order.
  Init(64);
  mem::AlignedBuffer<CacheLineBuffer> buffers(2, mem::PagePolicy::kDefault);
  ScatterCursor cursors[2] = {{2, 2}, {21, 21}};  // partition 0: [2,21)
  for (uint32_t i = 0; i < 19; ++i) {
    SwwcbPush(output_.data(), buffers.data(), cursors, 0, Tuple{i, 0});
    SwwcbPush(output_.data(), buffers.data(), cursors, 1, Tuple{100 + i, 1});
  }
  SwwcbDrain(output_.data(), buffers.data(), cursors, 0);
  SwwcbDrain(output_.data(), buffers.data(), cursors, 1);
  mem::StreamFence();
  for (uint32_t i = 0; i < 19; ++i) {
    ASSERT_EQ(output_[2 + i], (Tuple{i, 0}));
    ASSERT_EQ(output_[21 + i], (Tuple{100 + i, 1}));
  }
  EXPECT_EQ(output_[0].key, kGuard);
  EXPECT_EQ(output_[1].key, kGuard);
  EXPECT_EQ(output_[40].key, kGuard);
}

}  // namespace
}  // namespace mmjoin::partition
