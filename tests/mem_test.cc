// Unit tests for the mem module: aligned allocation, page policies,
// non-temporal stores.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "mem/aligned_alloc.h"
#include "mem/nt_store.h"
#include "util/types.h"

namespace mmjoin::mem {
namespace {

TEST(AlignedAlloc, SmallAllocationAligned) {
  void* p = AllocateAligned(100, 64, PagePolicy::kDefault);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  std::memset(p, 0xAB, 100);
  FreeAligned(p, 100);
}

TEST(AlignedAlloc, LargeAllocationAlignedAndWritable) {
  const std::size_t bytes = 8 << 20;  // mmap path
  void* p = AllocateAligned(bytes, 64, PagePolicy::kDefault);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  auto* c = static_cast<char*>(p);
  c[0] = 1;
  c[bytes - 1] = 2;
  EXPECT_EQ(c[0], 1);
  EXPECT_EQ(c[bytes - 1], 2);
  FreeAligned(p, bytes);
}

TEST(AlignedAlloc, HugePagePolicyAllocates) {
  const std::size_t bytes = 4 << 20;
  void* p = AllocateAligned(bytes, 64, PagePolicy::kHuge);
  ASSERT_NE(p, nullptr);
  // Huge-page requests are aligned to the huge page size.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kHugePageSize, 0u);
  PrefaultPages(p, bytes);
  FreeAligned(p, bytes);
}

TEST(AlignedAlloc, SmallPagePolicyAllocates) {
  const std::size_t bytes = 4 << 20;
  void* p = AllocateAligned(bytes, 64, PagePolicy::kSmall);
  ASSERT_NE(p, nullptr);
  PrefaultPages(p, bytes);
  FreeAligned(p, bytes);
}

TEST(AlignedAlloc, ZeroBytesYieldsUsablePointer) {
  void* p = AllocateAligned(0, 64, PagePolicy::kDefault);
  ASSERT_NE(p, nullptr);
  FreeAligned(p, 0);
}

TEST(AlignedBuffer, RaiiAndMove) {
  AlignedBuffer<uint64_t> a(1000, PagePolicy::kDefault);
  ASSERT_EQ(a.size(), 1000u);
  a[0] = 7;
  a[999] = 9;
  AlignedBuffer<uint64_t> b = std::move(a);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(b[0], 7u);
  EXPECT_EQ(b[999], 9u);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());
}

TEST(NtStore, AlignedCacheLineCopy) {
  alignas(64) Tuple src[8];
  alignas(64) Tuple dst[8];
  for (int i = 0; i < 8; ++i) {
    src[i] = Tuple{static_cast<uint32_t>(i), static_cast<uint32_t>(i * 10)};
  }
  StoreCacheLineNonTemporal(dst, src);
  StreamFence();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[i], src[i]);
}

TEST(NtStore, UnalignedDestinationFallback) {
  alignas(64) Tuple src[8];
  alignas(64) Tuple dst_storage[16] = {};
  for (int i = 0; i < 8; ++i) {
    src[i] = Tuple{static_cast<uint32_t>(i + 1), 0};
  }
  Tuple* dst = dst_storage + 1;  // 8-byte aligned, not 16-byte
  StoreCacheLineNonTemporal(dst, src);
  StreamFence();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[i], src[i]);
}

TEST(NtStore, StoreTuplesPartial) {
  Tuple src[5] = {{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}};
  Tuple dst[5] = {};
  StoreTuples(dst, src, 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dst[i], src[i]);
}

TEST(NtStore, StreamingSupportedOnX86) {
#if defined(__SSE2__)
  EXPECT_TRUE(HasStreamingStores());
#else
  EXPECT_FALSE(HasStreamingStores());
#endif
}

}  // namespace
}  // namespace mmjoin::mem
